//! Drive the full elastic stack with a Facebook-style demand trace and the
//! §III-B AutoScaler: watch it scale the tier and keep the database under
//! its capacity.
//!
//! Run with: `cargo run --release --example autoscale_trace`

use elmem::cluster::ClusterConfig;
use elmem::core::migration::MigrationCosts;
use elmem::core::{run_experiment, AutoScalerConfig, ExperimentConfig, FaultPlan, MigrationPolicy};
use elmem::util::SimTime;
use elmem::workload::{GeneralizedPareto, Keyspace, TraceKind, WorkloadConfig};

fn main() {
    let mut cluster = ClusterConfig::small_test();
    cluster.initial_nodes = 6;
    let mut scaler = AutoScalerConfig::new(cluster.r_db(), cluster.node_memory);
    scaler.epoch = SimTime::from_secs(60);
    scaler.max_nodes = 8;
    // Let the stack-distance estimator see a few minutes of reuse before
    // trusting its quantiles (see the autoscaler module docs).
    scaler.min_observations = 400_000;

    let config = ExperimentConfig {
        workload: WorkloadConfig {
            // Values capped at 4 KB so the tiny demo nodes (4 MB, 4 pages)
            // can give every touched slab class a page.
            keyspace: Keyspace::with_distribution(
                100_000,
                7,
                GeneralizedPareto::facebook_etc(),
                4_000,
            ),
            zipf_exponent: 1.0,
            items_per_request: 3,
            peak_rate: 1000.0,
            trace: TraceKind::FacebookSys.demand_trace(),
        },
        policy: MigrationPolicy::elmem(),
        autoscaler: Some(scaler.into()),
        scheduled: vec![],
        prefill_top_ranks: 50_000,
        costs: MigrationCosts::default(),
        faults: FaultPlan::new(),
        healing: None,
        master: Default::default(),
        seed: 7,
        cluster,
    };

    println!("running the SYS trace (60 simulated minutes) with the AutoScaler...\n");
    let result = run_experiment(config);

    println!("scaling events:");
    if result.events.is_empty() {
        println!("  (none)");
    }
    for ev in &result.events {
        let kind = if ev.to_nodes < ev.from_nodes {
            "IN "
        } else {
            "OUT"
        };
        let migrated = ev
            .report
            .as_ref()
            .map(|r| {
                format!(
                    ", migrated {} items in {}",
                    r.items_migrated,
                    r.phases.total()
                )
            })
            .unwrap_or_default();
        println!(
            "  {kind} t={:>7} {} -> {} nodes{migrated}",
            ev.decided_at.to_string(),
            ev.from_nodes,
            ev.to_nodes
        );
    }

    println!("\nper-minute timeline (hit rate / p95 ms):");
    for p in result.timeline.iter().filter(|p| p.second % 60 == 0) {
        let bar: String = std::iter::repeat_n('#', (p.hit_rate * 30.0) as usize).collect();
        println!(
            "  min {:>2}  hit {:.3} {bar:<30} p95 {:>8.2} ms",
            p.second / 60,
            p.hit_rate,
            p.p95_ms
        );
    }
    println!(
        "\nserved {} requests; final tier size: {} nodes",
        result.total_requests, result.final_members
    );
}
