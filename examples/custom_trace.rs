//! Bring your own demand trace: parse raw per-interval request counts (the
//! form real traces like the paper's Facebook/Microsoft inputs arrive in),
//! run the elastic stack over them, and compare ElMem against the baseline.
//!
//! Run with: `cargo run --release --example custom_trace`

use elmem::cluster::ClusterConfig;
use elmem::core::migration::MigrationCosts;
use elmem::core::{run_experiment, ExperimentConfig, FaultPlan, MigrationPolicy, ScaleAction};
use elmem::util::stats::degradation_summary;
use elmem::util::SimTime;
use elmem::workload::{DemandTrace, GeneralizedPareto, Keyspace, WorkloadConfig};

fn main() {
    // Pretend this came from your load balancer's logs: requests per
    // minute, one line each, comments allowed. A lunchtime lull follows a
    // busy morning — a textbook scale-in opportunity.
    let raw = "\
# req/min from the edge LB, 2026-07-03, 20 minutes
60000\n61000\n59000\n62000\n60000\n58000
45000\n31000\n24000\n19000\n18000\n18500
18000\n17500\n18200\n18000\n19000\n18400\n18800\n18100";
    let trace = DemandTrace::parse(raw, SimTime::from_secs(60)).expect("trace parses");
    println!(
        "parsed {} samples; peak→trough variation {:.1}x",
        trace.samples().len(),
        trace.peak() / trace.trough()
    );

    // The demand drop at ~minute 7 justifies retiring a node at minute 9.
    let scheduled = vec![(SimTime::from_secs(9 * 60), ScaleAction::In { count: 1 })];
    // A database tight enough that losing one node's data overloads it
    // (the paper's regime: r_DB is the bottleneck).
    let mut cluster = ClusterConfig::small_test();
    cluster.db_servers = 1;
    cluster.db_service = SimTime::from_millis(10); // r_DB = 100 req/s
    let mk = |policy: MigrationPolicy| {
        run_experiment(ExperimentConfig {
            cluster: cluster.clone(),
            workload: WorkloadConfig {
                keyspace: Keyspace::with_distribution(
                    100_000,
                    11,
                    GeneralizedPareto::facebook_etc(),
                    4_000,
                ),
                zipf_exponent: 1.0,
                items_per_request: 3,
                peak_rate: 250.0, // scale the normalized trace to our testbed
                trace: trace.clone(),
            },
            policy,
            autoscaler: None,
            scheduled: scheduled.clone(),
            prefill_top_ranks: 60_000,
            costs: MigrationCosts::default(),
            faults: FaultPlan::new(),
            healing: None,
            master: Default::default(),
            seed: 11,
        })
    };

    let baseline = mk(MigrationPolicy::Baseline);
    let elmem = mk(MigrationPolicy::elmem());

    for (name, result) in [("baseline", &baseline), ("elmem", &elmem)] {
        let commit = result.first_commit_second().expect("one scaling event");
        let d = degradation_summary(&result.timeline, commit, 25.0);
        println!(
            "{name:<9} peak p95 {:>8.2} ms   mean post p95 {:>7.2} ms",
            d.peak_p95_ms, d.mean_p95_ms
        );
    }
    println!("\n(same trace, same seed, same scaling moment — only Q3 differs)");
}
