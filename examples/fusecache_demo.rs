//! The FuseCache algorithm in isolation: select the hottest `n` items
//! across `k` MRU-sorted lists and compare against the k-way-merge and
//! flatten-and-sort baselines (the §IV comparison).
//!
//! Run with: `cargo run --release --example fusecache_demo`

use std::time::Instant;

use elmem::core::fusecache::{fusecache_instrumented, kway_top_n, sort_merge_top_n};
use elmem::store::Hotness;
use elmem::util::{DetRng, KeyId, SimTime};

fn make_lists(k: usize, n_per_list: usize, seed: u64) -> Vec<Vec<Hotness>> {
    let mut rng = DetRng::seed(seed);
    let mut key = 0u64;
    (0..k)
        .map(|_| {
            let mut l: Vec<Hotness> = (0..n_per_list)
                .map(|_| {
                    key += 1;
                    Hotness::new(SimTime::from_nanos(rng.next_below(1 << 40)), KeyId(key))
                })
                .collect();
            l.sort_unstable_by(|a, b| b.cmp(a));
            l
        })
        .collect()
}

fn main() {
    // The paper's shape: one retained node with n items + (k-1) incoming
    // metadata lists from retiring nodes.
    let k = 10;
    let n = 200_000;
    let lists = make_lists(k, n / k, 42);
    let refs: Vec<&[Hotness]> = lists.iter().map(|l| l.as_slice()).collect();
    let take = n / 2;
    println!("selecting the hottest {take} of {n} items across {k} sorted lists\n");

    let t = Instant::now();
    let (fc, stats) = fusecache_instrumented(&refs, take);
    let t_fc = t.elapsed();

    let t = Instant::now();
    let kw = kway_top_n(&refs, take);
    let t_kw = t.elapsed();

    let t = Instant::now();
    let sm = sort_merge_top_n(&refs, take);
    let t_sm = t.elapsed();

    assert_eq!(fc, kw, "fusecache and k-way merge must agree");
    assert_eq!(fc, sm, "fusecache and sort-merge must agree");

    println!("algorithm        time         complexity");
    println!(
        "fusecache    {t_fc:>10.2?}     O(k log^2 n)  ({} rounds, {} comparisons)",
        stats.rounds, stats.comparisons
    );
    println!("k-way heap   {t_kw:>10.2?}     O(n log k)");
    println!("sort merge   {t_sm:>10.2?}     O(N log N)");

    println!("\npicks per list (items taken from the top of each):");
    for (i, &p) in fc.iter().enumerate() {
        println!("  list {i:>2}: {p:>7} of {}", refs[i].len());
    }
    println!(
        "\nall three agree; fusecache is {:.0}x faster than sort-merge here",
        t_sm.as_secs_f64() / t_fc.as_secs_f64().max(1e-9)
    );
}
