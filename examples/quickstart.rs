//! Quickstart: boot a Memcached tier, warm it, scale it in with ElMem's
//! migration, and watch the hit rate survive the scaling action.
//!
//! Run with: `cargo run --release --example quickstart`

use elmem::cluster::{Cluster, ClusterConfig};
use elmem::core::migration::{migrate_scale_in, MigrationCosts};
use elmem::core::scoring::choose_retiring;
use elmem::store::ImportMode;
use elmem::util::{DetRng, KeyId, SimTime};
use elmem::workload::{GeneralizedPareto, Keyspace};

fn main() {
    // A 4-node tier with a small keyspace so this runs instantly.
    let mut cluster = Cluster::new(
        ClusterConfig::small_test(),
        // Values capped at 4 KB so the tiny demo nodes (4 MB, 4 pages)
        // can give every touched slab class a page.
        Keyspace::with_distribution(50_000, 0, GeneralizedPareto::facebook_etc(), 4_000),
        DetRng::seed(1),
    );
    println!(
        "booted {} cache nodes ({} each), database capacity {} req/s",
        cluster.tier.membership().len(),
        cluster.tier.config().node_memory,
        cluster.tier.config().r_db(),
    );

    // Warm the cache: touch 5000 keys with increasing recency.
    for k in 0..5000u64 {
        let key = KeyId(k);
        let owner = cluster.tier.node_for_key(key).expect("tier nonempty");
        let size = cluster.keyspace().value_size(key);
        cluster
            .tier
            .node_mut(owner)
            .expect("node exists")
            .store
            .set(key, size, SimTime::from_secs(1 + k))
            .expect("fits");
    }
    println!(
        "warmed {} items across the tier",
        cluster.tier.total_items()
    );

    // Measure hit rate before scaling.
    let probe = |cluster: &mut Cluster, at: SimTime| -> f64 {
        let mut hits = 0;
        for k in 0..5000u64 {
            let (_, hit) = cluster.lookup_and_fill(KeyId(k), at);
            if hit {
                hits += 1;
            }
        }
        f64::from(hits) / 5000.0
    };
    println!(
        "hit rate before scale-in: {:.3}",
        probe(&mut cluster, SimTime::from_secs(10_000))
    );

    // ElMem scale-in: score nodes, migrate the hottest data, flip.
    let (victims, scored) = choose_retiring(&cluster.tier, 1).unwrap();
    println!("\nnode scores (coldest first):");
    for (id, score) in &scored {
        println!("  {id}: {score:.1}");
    }
    let report = migrate_scale_in(
        &mut cluster.tier,
        &victims,
        SimTime::from_secs(20_000),
        &MigrationCosts::default(),
        ImportMode::Merge,
    )
    .expect("migration succeeds");
    cluster
        .tier
        .commit_remove(&victims)
        .expect("commit succeeds");
    println!(
        "\nretired {:?}: migrated {} items ({}) in {} (modeled)",
        victims,
        report.items_migrated,
        report.bytes_migrated,
        report.phases.total()
    );

    println!(
        "hit rate after ElMem scale-in: {:.3} (a cold scale-in would have lost ~1/4 of hits)",
        probe(&mut cluster, SimTime::from_secs(30_000))
    );
}
