//! Which node should be retired? The §III-C weighted-median scoring in
//! action: build a tier with deliberately different per-node hotness and
//! verify the coldest-median node is also the cheapest to migrate.
//!
//! Run with: `cargo run --release --example node_choice`

use elmem::cluster::{Cluster, ClusterConfig};
use elmem::core::migration::{migrate_scale_in, MigrationCosts};
use elmem::core::scoring::{choose_retiring, node_score};
use elmem::store::ImportMode;
use elmem::util::{DetRng, KeyId, SimTime};
use elmem::workload::{GeneralizedPareto, Keyspace};

fn main() {
    let mut cluster = Cluster::new(
        ClusterConfig::small_test(),
        // Values capped at 4 KB so the tiny demo nodes (4 MB, 4 pages)
        // can give every touched slab class a page.
        Keyspace::with_distribution(100_000, 3, GeneralizedPareto::facebook_etc(), 4_000),
        DetRng::seed(3),
    );

    // Warm 20k keys. Keys on lower-numbered nodes get *older* timestamps,
    // creating a clear hotness gradient across nodes.
    for k in 0..20_000u64 {
        let key = KeyId(k);
        let owner = cluster.tier.node_for_key(key).expect("tier nonempty");
        let base = u64::from(owner.0 + 1) * 100_000;
        let size = cluster.keyspace().value_size(key);
        let _ = cluster
            .tier
            .node_mut(owner)
            .expect("node exists")
            .store
            .set(key, size, SimTime::from_secs(base + k));
    }

    println!("per-node §III-C scores (weighted median hotness; lower = colder):");
    for &id in cluster.tier.membership().members() {
        let store = &cluster.tier.node(id).expect("member").store;
        println!(
            "  {id}: score {:>12.1}, items {:>6}",
            node_score(store),
            store.len()
        );
    }

    // What would each choice cost? Clone the tier and try everyone.
    println!("\nitems migrated if retiring each node (10 -> 9 style what-if):");
    let members: Vec<_> = cluster.tier.membership().members().to_vec();
    let mut by_choice = Vec::new();
    for id in members {
        let mut trial = cluster.tier.clone();
        let report = migrate_scale_in(
            &mut trial,
            &[id],
            SimTime::from_secs(10_000_000),
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .expect("migration succeeds");
        println!(
            "  retire {id}: {:>6} items, {}",
            report.items_migrated, report.bytes_migrated
        );
        by_choice.push((id, report.items_migrated));
    }

    let (chosen, _) = choose_retiring(&cluster.tier, 1).unwrap();
    let best = by_choice
        .iter()
        .min_by_key(|(_, items)| *items)
        .expect("nonempty");
    println!(
        "\nscoring picked {}, cheapest was {} -> {}",
        chosen[0],
        best.0,
        if chosen[0] == best.0 {
            "optimal choice"
        } else {
            "near-optimal choice"
        }
    );
}
