//! Offline shim for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *exact subset* of the `rand` 0.8 API it consumes:
//! the [`RngCore`]/[`SeedableRng`] core traits (implemented by
//! `elmem_util::DetRng`) and the ergonomic [`Rng`] extension trait
//! (`gen`, `gen_range`, `fill`). Semantics match rand 0.8 closely enough
//! for the deterministic simulation (uniform ints via Lemire-style
//! multiply-shift, floats via 53-bit mantissa), but this is NOT a drop-in
//! replacement for the real crate outside this workspace.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type returned by fallible RNG operations (never constructed by
/// the deterministic generators in this workspace).
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand::Error({})", self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core RNG trait: raw 32/64-bit output plus byte filling.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible byte filling (infallible for in-memory generators).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (e.g. `[u8; 8]`).
    type Seed: Sized + Default + AsMut<[u8]>;
    /// Builds the generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Convenience: seed from a `u64` by splatting it into the seed bytes.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for (chunk, byte) in seed
            .as_mut()
            .iter_mut()
            .zip(state.to_le_bytes().iter().cycle())
        {
            *chunk = *byte;
        }
        Self::from_seed(seed)
    }
}

/// Values samplable uniformly over their whole domain (the shim's stand-in
/// for `Standard: Distribution<T>`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` via multiply-shift.
fn next_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let l = m as u64;
        if l >= bound || l >= l.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(next_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(next_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// The ergonomic extension trait, blanket-implemented for every
/// [`RngCore`] (as in real rand).
pub trait Rng: RngCore {
    /// Draws a value uniformly over `T`'s whole domain.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p outside [0,1]: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn gen_range_int_in_bounds() {
        let mut r = Counter(42);
        for _ in 0..1000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5u32..=7);
            assert!((5..=7).contains(&y));
        }
    }

    #[test]
    fn gen_range_float_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(0.0..10.0);
            assert!((0.0..10.0).contains(&x));
        }
    }

    #[test]
    fn gen_produces_all_supported_types() {
        let mut r = Counter(1);
        let _: u64 = r.gen();
        let _: f64 = r.gen();
        let _: bool = r.gen();
    }
}
