//! Offline shim for `criterion`.
//!
//! Provides the subset of the criterion 0.5 API the workspace benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`], [`BatchSize`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple wall-clock timer instead of criterion's statistical engine.
//!
//! Each benchmark is warmed up briefly, then timed over `sample_size`
//! samples; the mean ns/iter (and derived throughput, when declared) is
//! printed to stdout. Good enough to compare implementations by eye, with
//! zero external dependencies.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched setup output is sized (accepted and ignored by the shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Declared work per iteration, used to derive a rate from the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendered with
/// `Display`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Anything usable as a benchmark name: `&str`, `String`, or
/// [`BenchmarkId`].
pub trait IntoBenchmarkName {
    /// The rendered benchmark name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.full
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration measured by the last `iter*` call.
    ns_per_iter: f64,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running it enough times per sample to exceed a
    /// minimum measurable window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that runs ≥ 1 ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        let mut total = Duration::ZERO;
        let mut count: u64 = 0;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            total += start.elapsed();
            count += iters;
        }
        self.ns_per_iter = total.as_nanos() as f64 / count as f64;
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut count: u64 = 0;
        // Batched routines are assumed non-trivial; one setup+run per
        // sample, with sample count scaled up for stability.
        let samples = self.sample_size.max(10);
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            count += 1;
        }
        self.ns_per_iter = total.as_nanos() as f64 / count as f64;
    }
}

fn report(name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.2} Melem/s)", n as f64 / ns_per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.2} MiB/s)",
                n as f64 / ns_per_iter * 1e9 / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!("{name:<48} {ns_per_iter:>14.1} ns/iter{rate}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'c Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs a benchmark taking an explicit input.
    pub fn bench_with_input<I, F>(&mut self, id: impl IntoBenchmarkName, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            ns_per_iter: 0.0,
            sample_size: self.criterion.sample_size,
        };
        f(&mut bencher, input);
        let full = format!("{}/{}", self.name, id.into_name());
        report(&full, bencher.ns_per_iter, self.throughput);
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkName, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            ns_per_iter: 0.0,
            sample_size: self.criterion.sample_size,
        };
        f(&mut bencher);
        let full = format!("{}/{}", self.name, id.into_name());
        report(&full, bencher.ns_per_iter, self.throughput);
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkName, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            ns_per_iter: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&id.into_name(), bencher.ns_per_iter, None);
    }
}

/// Bundles benchmark functions under one entry point, in either the
/// positional (`criterion_group!(benches, f, g)`) or the configured
/// (`name = ...; config = ...; targets = ...`) form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 100],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = work
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
