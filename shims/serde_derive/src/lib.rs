//! Offline shim for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as forward
//! declarations — nothing actually serializes (no `serde_json`, no trait
//! bounds on `Serialize`/`Deserialize`). These derives therefore expand to
//! nothing, which keeps every annotated type compiling without pulling the
//! real proc-macro stack (syn/quote/proc-macro2) from the network.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (accepts and ignores `#[serde(...)]` attrs).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (accepts and ignores `#[serde(...)]` attrs).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
