//! Offline shim: the minimal subset of the rayon API this workspace uses.
//!
//! The real rayon crate is a work-stealing thread pool; this shim exposes
//! the same surface (`scope`, `Scope::spawn`, `join`,
//! `current_num_threads`) backed by plain `std::thread::scope` threads.
//! Callers in this workspace spawn one long-lived worker per job slot and
//! pull work items off a shared queue, so the absence of work stealing
//! does not change scheduling behaviour in practice.

use std::num::NonZeroUsize;

/// The number of threads the runtime would use for parallel work: the
/// machine's available parallelism (1 if it cannot be queried).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A scope in which spawned tasks may borrow from the enclosing stack
/// frame. All tasks are joined before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope. Panics in the
    /// task propagate when the scope joins, matching rayon.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a scope, runs `op` inside it, and joins every spawned task
/// before returning `op`'s result.
pub fn scope<'env, F, R>(op: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| op(&Scope { inner: s }))
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("joined task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_from_task() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::Relaxed);
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn scope_returns_op_result() {
        let v = scope(|_| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
