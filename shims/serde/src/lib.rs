//! Offline shim for `serde`.
//!
//! Declares the `Serialize`/`Deserialize` traits (never implemented — the
//! workspace derives them only as forward declarations and nothing bounds
//! on them) and re-exports the no-op derive macros under the `derive`
//! feature, mirroring real serde's layout.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
