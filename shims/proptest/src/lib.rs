//! Offline shim for `proptest`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! deterministic mini property-testing engine exposing exactly the proptest
//! API surface the test suites use: the [`proptest!`] macro, range / tuple /
//! [`collection::vec`] / [`arbitrary::any`] / [`strategy::Just`] strategies,
//! `prop_map`, [`prop_oneof!`], `prop_assert*!`, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its generated inputs (all
//!   strategies yield `Debug` values here) but is not minimized;
//! * **Derived seeding** — each test's RNG is seeded from a hash of its
//!   module path + name, so runs are bit-reproducible across invocations
//!   and machines (real proptest defaults to OS entropy + a regressions
//!   file); the `proptest-regressions` files in the tree are ignored;
//! * **Fixed default cases** — 64 per test (real default 256) to keep the
//!   heavier whole-system properties fast.

pub mod rng {
    //! The shim's deterministic RNG (xoshiro256** with SplitMix64 seeding —
    //! the same construction as `elmem_util::DetRng`, embedded here so the
    //! shim has no dependencies).

    /// Deterministic RNG driving all strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seeds from a 64-bit value.
        pub fn seed(seed: u64) -> Self {
            let mut sm = seed;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Seeds deterministically from a test's fully-qualified name.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng::seed(h)
        }

        /// Next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform integer in `[0, bound)`.
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be positive");
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (bound as u128);
                let l = m as u64;
                if l >= bound || l >= l.wrapping_neg() % bound {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod test_runner {
    //! Run configuration.

    /// Per-test configuration (only `cases` is honoured by the shim).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::ops::{Range, RangeInclusive};

    use crate::rng::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe (`sample` only), so heterogeneous strategies with the
    /// same value type can be unified via [`BoxedStrategy`].
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod collection {
    //! Collection strategies.

    use std::ops::{Range, RangeInclusive};

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Accepted length specifications for [`vec`].
    pub trait IntoSizeRange {
        /// Lower and *inclusive* upper bound on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitives.

    use std::marker::PhantomData;

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draws one value uniformly over the domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Namespace mirror so call sites can write `prop::collection::vec(...)`.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! Everything test files import via `use proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a property condition (no shrinking: forwards to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (forwards to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (forwards to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its inputs are uninteresting. The shim has
/// no case budget accounting, so a failed assumption just ends the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `config.cases` deterministic cases. Failing
/// cases print their generated inputs before propagating the panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::rng::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest {} failed at case {}/{} with inputs: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        inputs
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::rng::TestRng::seed(1);
        for _ in 0..1000 {
            let x = (5u64..10).sample(&mut rng);
            assert!((5..10).contains(&x));
            let y = (3u32..=3).sample(&mut rng);
            assert_eq!(y, 3);
        }
    }

    #[test]
    fn vec_strategy_honours_length() {
        let mut rng = crate::rng::TestRng::seed(2);
        for _ in 0..200 {
            let v = prop::collection::vec(0u64..5, 2..6).sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![(0u64..1).prop_map(|_| 'a'), (0u64..1).prop_map(|_| 'b'),];
        let mut rng = crate::rng::TestRng::seed(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::rng::TestRng::for_test("x::y");
        let mut b = crate::rng::TestRng::for_test("x::y");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn the_macro_itself_works(x in 0u64..100, v in prop::collection::vec(0u32..10, 0..5)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 5);
        }
    }
}
