//! Cross-crate integration: scale-in with the full 3-phase ElMem migration
//! preserves the globally hottest items and beats baseline hit rates.

use elmem::cluster::{Cluster, ClusterConfig};
use elmem::core::migration::{migrate_scale_in, MigrationCosts};
use elmem::core::scoring::choose_retiring;
use elmem::store::{Hotness, ImportMode};
use elmem::util::{DetRng, KeyId, NodeId, SimTime};
use elmem::workload::{GeneralizedPareto, Keyspace};

/// Builds a warmed 4-node cluster where every key has a distinct access
/// time; returns (cluster, keys-with-times).
fn warmed() -> (Cluster, Vec<(KeyId, SimTime)>) {
    let mut cluster = Cluster::new(
        ClusterConfig::small_test(),
        // Cap values at 4 KB so the 4-page small_test nodes can give every
        // touched size class a page.
        Keyspace::with_distribution(50_000, 3, GeneralizedPareto::facebook_etc(), 4_000),
        DetRng::seed(11),
    );
    let mut touched = Vec::new();
    for k in 0..4000u64 {
        let key = KeyId(k);
        let t = SimTime::from_secs(1 + k);
        let owner = cluster.tier.node_for_key(key).unwrap();
        let size = cluster.keyspace().value_size(key);
        cluster
            .tier
            .node_mut(owner)
            .unwrap()
            .store
            .set(key, size, t)
            .unwrap();
        touched.push((key, t));
    }
    (cluster, touched)
}

#[test]
fn migration_preserves_global_hottest_set() {
    let (mut cluster, touched) = warmed();
    let now = SimTime::from_secs(100_000);

    // Pick the coldest node, migrate, flip.
    let (victims, _) = choose_retiring(&cluster.tier, 1).unwrap();
    let report = migrate_scale_in(
        &mut cluster.tier,
        &victims,
        now,
        &MigrationCosts::default(),
        ImportMode::Merge,
    )
    .unwrap();
    cluster.tier.commit_remove(&victims).unwrap();

    assert!(report.items_migrated > 0);

    // Collect what survived across the retained nodes.
    let mut survived: Vec<Hotness> = Vec::new();
    for &id in cluster.tier.membership().members() {
        let store = &cluster.tier.node(id).unwrap().store;
        survived.extend(store.iter().map(|i| i.hotness()));
    }
    // Nothing was over capacity here, so *every* cached item must survive:
    // migration without memory pressure loses nothing.
    assert_eq!(survived.len(), touched.len());
}

#[test]
fn migration_under_memory_pressure_keeps_sorted_lists() {
    // Overfill the small cluster so the merge must evict: retained class
    // lists must remain MRU-sorted (evictions only from the cold end).
    let mut cluster = Cluster::new(
        ClusterConfig::small_test(),
        Keyspace::with_distribution(400_000, 5, GeneralizedPareto::facebook_etc(), 4_000),
        DetRng::seed(13),
    );
    for k in 0..200_000u64 {
        let key = KeyId(k);
        let owner = cluster.tier.node_for_key(key).unwrap();
        let size = cluster.keyspace().value_size(key);
        let _ =
            cluster
                .tier
                .node_mut(owner)
                .unwrap()
                .store
                .set(key, size, SimTime::from_secs(1 + k));
    }
    assert!(cluster.tier.total_items() > 0);

    let (victims, _) = choose_retiring(&cluster.tier, 1).unwrap();
    migrate_scale_in(
        &mut cluster.tier,
        &victims,
        SimTime::from_secs(1_000_000),
        &MigrationCosts::default(),
        ImportMode::Merge,
    )
    .unwrap();
    cluster.tier.commit_remove(&victims).unwrap();

    for &id in cluster.tier.membership().members() {
        let store = &cluster.tier.node(id).unwrap().store;
        for class in store.classes().ids() {
            let dump = store.dump_class(class);
            for w in dump.items.windows(2) {
                assert!(w[0].hotness() >= w[1].hotness());
            }
        }
    }
}

#[test]
fn post_flip_requests_hit_migrated_data() {
    let (mut cluster, _) = warmed();
    let now = SimTime::from_secs(100_000);
    let (victims, _) = choose_retiring(&cluster.tier, 1).unwrap();

    // Keys that lived on the victim before the flip.
    let victim_keys: Vec<KeyId> = (0..4000u64)
        .map(KeyId)
        .filter(|&k| cluster.tier.node_for_key(k) == Some(victims[0]))
        .collect();
    assert!(!victim_keys.is_empty());

    migrate_scale_in(
        &mut cluster.tier,
        &victims,
        now,
        &MigrationCosts::default(),
        ImportMode::Merge,
    )
    .unwrap();
    cluster.tier.commit_remove(&victims).unwrap();

    // After the flip, those keys hash to retained nodes and must hit.
    let mut hits = 0;
    for &k in &victim_keys {
        let (_, hit) = cluster.lookup_and_fill(k, now + SimTime::from_secs(1));
        if hit {
            hits += 1;
        }
    }
    assert_eq!(
        hits,
        victim_keys.len(),
        "all previously-cached victim keys should hit after migration"
    );
}

#[test]
fn baseline_scale_in_loses_victim_data() {
    let (mut cluster, _) = warmed();
    let (victims, _) = choose_retiring(&cluster.tier, 1).unwrap();
    let victim_keys: Vec<KeyId> = (0..4000u64)
        .map(KeyId)
        .filter(|&k| cluster.tier.node_for_key(k) == Some(victims[0]))
        .collect();
    cluster.tier.immediate_scale_in(&victims).unwrap();
    let mut hits = 0;
    for &k in &victim_keys {
        let (_, hit) = cluster.lookup_and_fill(k, SimTime::from_secs(200_000));
        if hit {
            hits += 1;
        }
    }
    assert_eq!(hits, 0, "baseline must cold-miss all victim keys");
}

#[test]
fn scoring_identifies_a_deliberately_cold_node() {
    let (mut cluster, _) = warmed();
    // Refresh every non-node-0 item far in the future so node 0 is coldest.
    for k in 0..4000u64 {
        let key = KeyId(k);
        let owner = cluster.tier.node_for_key(key).unwrap();
        if owner != NodeId(0) {
            cluster
                .tier
                .node_mut(owner)
                .unwrap()
                .store
                .get(key, SimTime::from_secs(1_000_000 + k))
                .unwrap();
        }
    }
    let (victims, scored) = choose_retiring(&cluster.tier, 1).unwrap();
    assert_eq!(victims, vec![NodeId(0)]);
    assert_eq!(scored[0].0, NodeId(0));
}
