//! Property tests for the pipelined migration planner: the shipment plan
//! — contents, order, and stats — must be **byte-identical** whatever the
//! worker count, across arbitrary warm states, node counts, and retiring
//! sets; and the full supervised migration (report and every surviving
//! store) must be unaffected by the planner's jobs knob.

use elmem::cluster::{CacheTier, ClusterConfig};
use elmem::core::migration::{
    migrate_scale_in, plan_scale_in_shipments, set_planning_jobs, MigrationCosts,
};
use elmem::store::{ImportMode, MetadataDump};
use elmem::util::{KeyId, NodeId, SimTime};
use proptest::prelude::*;

/// A warm tier: each access `(key, extra)` sets the key at its ring owner
/// with value size `32 + extra` and a strictly increasing timestamp
/// (duplicates re-access, refreshing recency).
fn warm_tier(nodes: u32, accesses: &[(u64, u16)]) -> CacheTier {
    let mut cfg = ClusterConfig::small_test();
    cfg.initial_nodes = nodes;
    let mut tier = CacheTier::new(cfg);
    let mut now = SimTime::from_secs(1);
    for &(k, extra) in accesses {
        let key = KeyId(k);
        let owner = tier.node_for_key(key).unwrap();
        let _ = tier
            .node_mut(owner)
            .unwrap()
            .store
            .set(key, 32 + u32::from(extra), now);
        now += SimTime::from_secs(1);
    }
    tier
}

/// Every member's full metadata dump — the observable store state a
/// migration leaves behind (MRU order included).
fn tier_state(tier: &CacheTier) -> Vec<(NodeId, MetadataDump)> {
    tier.membership()
        .members()
        .iter()
        .map(|&id| (id, tier.node(id).unwrap().store.dump_metadata()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipelined_plan_is_byte_identical_to_serial(
        nodes in 3u32..8,
        accesses in prop::collection::vec((0u64..5000, 0u16..2000), 50..600),
        retire in 1usize..3,
    ) {
        let tier = warm_tier(nodes, &accesses);
        let retiring: Vec<NodeId> = (0..retire.min(nodes as usize - 1))
            .map(|i| NodeId(i as u32))
            .collect();
        let (serial_plan, serial_stats) =
            plan_scale_in_shipments(&tier, &retiring, 1).unwrap();
        for jobs in [2usize, 3, 8] {
            let (plan, stats) = plan_scale_in_shipments(&tier, &retiring, jobs).unwrap();
            prop_assert_eq!(&plan, &serial_plan, "jobs={} plan diverges from serial", jobs);
            prop_assert_eq!(stats, serial_stats, "jobs={} stats diverge from serial", jobs);
        }
    }

    #[test]
    fn migration_outcome_ignores_planner_jobs(
        accesses in prop::collection::vec((0u64..3000, 0u16..1000), 50..400),
        victim in 0u32..4,
    ) {
        let tier = warm_tier(4, &accesses);
        let retiring = [NodeId(victim)];
        let now = SimTime::from_secs(1_000_000);
        let costs = MigrationCosts::default();
        let mut reference = None;
        for jobs in [1usize, 4] {
            set_planning_jobs(jobs);
            let mut t = tier.clone();
            let report =
                migrate_scale_in(&mut t, &retiring, now, &costs, ImportMode::Merge).unwrap();
            let state = tier_state(&t);
            match &reference {
                None => reference = Some((report, state)),
                Some((r0, s0)) => {
                    prop_assert_eq!(&report, r0, "jobs={} report diverges", jobs);
                    prop_assert_eq!(&state, s0, "jobs={} store state diverges", jobs);
                }
            }
        }
        set_planning_jobs(0);
    }
}
