//! Cross-crate integration: the §III-B AutoScaler driving the full stack —
//! Eq. (1) + stack-distance sizing reacts to demand changes, and the hit
//! rate after scaling stays sufficient for the database (p ≥ p_min).

use elmem::cluster::ClusterConfig;
use elmem::core::migration::MigrationCosts;
use elmem::core::{run_experiment, AutoScalerConfig, ExperimentConfig, FaultPlan, MigrationPolicy};
use elmem::util::SimTime;
use elmem::workload::{DemandTrace, Keyspace, WorkloadConfig};

fn config(trace: DemandTrace, peak_rate: f64, seed: u64) -> ExperimentConfig {
    let cluster = ClusterConfig::small_test();
    let mut scaler = AutoScalerConfig::new(cluster.r_db(), cluster.node_memory);
    scaler.epoch = SimTime::from_secs(30);
    scaler.max_nodes = 8;
    // Small-scale test: warm up within the first epoch.
    scaler.min_observations = 20_000;
    ExperimentConfig {
        workload: WorkloadConfig {
            keyspace: Keyspace::new(30_000, 6),
            zipf_exponent: 1.0,
            items_per_request: 3,
            peak_rate,
            trace,
        },
        policy: MigrationPolicy::elmem(),
        autoscaler: Some(scaler.into()),
        scheduled: vec![],
        prefill_top_ranks: 15_000,
        costs: MigrationCosts::default(),
        faults: FaultPlan::new(),
        healing: None,
        master: Default::default(),
        seed,
        cluster,
    }
}

#[test]
fn demand_drop_triggers_scale_in() {
    // High demand for 2 min, then a sustained drop to 10%.
    let trace = DemandTrace::new(
        vec![1.0, 1.0, 1.0, 1.0, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1],
        SimTime::from_secs(30),
    );
    let result = run_experiment(config(trace, 400.0, 41));
    assert!(
        !result.events.is_empty(),
        "the drop should trigger at least one scale-in"
    );
    assert!(
        result.final_members < 4,
        "tier should shrink, ended at {}",
        result.final_members
    );
    // Every event here is a scale-in.
    for ev in &result.events {
        assert!(ev.to_nodes < ev.from_nodes);
    }
}

#[test]
fn steady_low_demand_never_scales_out() {
    let trace = DemandTrace::new(vec![0.2; 11], SimTime::from_secs(30));
    let result = run_experiment(config(trace, 300.0, 43));
    for ev in &result.events {
        assert!(ev.to_nodes < ev.from_nodes, "low demand must not scale out");
    }
}

#[test]
fn hit_rate_stays_adequate_after_autoscaling() {
    // After scale-in, the achieved hit rate must keep DB load ≈ under r_DB:
    // misses/s ≤ r_DB with headroom for estimation noise.
    let trace = DemandTrace::new(
        vec![1.0, 1.0, 1.0, 1.0, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3],
        SimTime::from_secs(30),
    );
    let cfg = config(trace, 400.0, 47);
    let r_db = cfg.cluster.r_db();
    let result = run_experiment(cfg);
    if result.events.is_empty() {
        return; // nothing scaled; trivially fine
    }
    let settle = result.events.last().unwrap().committed_at.as_secs() + 60;
    let late: Vec<_> = result
        .timeline
        .iter()
        .filter(|p| p.second >= settle && p.requests > 0)
        .collect();
    if late.is_empty() {
        return;
    }
    // Average miss throughput late in the run.
    let total_lookups: u64 = late.iter().map(|p| p.requests * 3).sum();
    let miss_rate = 1.0 - late.iter().map(|p| p.hit_rate).sum::<f64>() / late.len() as f64;
    let misses_per_sec = miss_rate * total_lookups as f64 / late.len() as f64;
    assert!(
        misses_per_sec < r_db * 1.5,
        "DB overloaded after scaling: {misses_per_sec:.0} misses/s vs r_DB {r_db}"
    );
}

#[test]
fn autoscaler_respects_busy_master() {
    // Two back-to-back decisions cannot overlap: committed_at of event i
    // must precede decided_at of event i+1.
    let trace = DemandTrace::new(
        vec![1.0, 1.0, 0.5, 0.3, 0.2, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1],
        SimTime::from_secs(30),
    );
    let result = run_experiment(config(trace, 400.0, 53));
    for pair in result.events.windows(2) {
        assert!(
            pair[0].committed_at <= pair[1].decided_at,
            "scaling actions overlapped"
        );
    }
}
