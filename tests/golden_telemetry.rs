//! Golden-trace regression suite: fixed-seed scenarios whose full
//! telemetry dumps — event stream, latency histograms, counter series,
//! per-node rows — must stay **byte-identical** to the checked-in
//! fixtures under `tests/golden/`. Any change to request scheduling,
//! breaker behaviour, migration phasing, or the dump encoding shows up
//! here as a diff.
//!
//! To re-bless after an intentional change:
//!
//! ```text
//! BLESS=1 cargo test -p elmem --test golden_telemetry
//! ```

use elmem::cluster::ClusterConfig;
use elmem::core::migration::MigrationCosts;
use elmem::core::{
    run_experiment_with_telemetry, ExperimentConfig, FaultPlan, MigrationPolicy, ScaleAction,
};
use elmem::util::{SimTime, TelemetryConfig};
use elmem::workload::{DemandTrace, Keyspace, WorkloadConfig};
use std::path::{Path, PathBuf};

/// A one-minute steady run on the tiny test tier with one scheduled
/// scaling action at the 30 s mark.
fn config(action: ScaleAction) -> ExperimentConfig {
    ExperimentConfig {
        cluster: ClusterConfig::small_test(),
        workload: WorkloadConfig {
            keyspace: Keyspace::new(20_000, 4),
            zipf_exponent: 1.0,
            items_per_request: 3,
            peak_rate: 200.0,
            trace: DemandTrace::new(vec![1.0; 6], SimTime::from_secs(10)),
        },
        policy: MigrationPolicy::elmem(),
        autoscaler: None,
        scheduled: vec![(SimTime::from_secs(30), action)],
        prefill_top_ranks: 10_000,
        costs: MigrationCosts::default(),
        faults: FaultPlan::new(),
        healing: None,
        master: Default::default(),
        seed: 11,
    }
}

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

/// Byte-compares `dump` against the named fixture; `BLESS=1` rewrites the
/// fixture instead. On mismatch the panic shows the first divergence with
/// context rather than both multi-kilobyte strings.
fn check_golden(name: &str, dump: &str) {
    let path = fixture_path(name);
    if std::env::var("BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, dump).unwrap();
        println!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run `BLESS=1 cargo test -p elmem \
             --test golden_telemetry` to generate it",
            path.display()
        )
    });
    if dump != golden {
        let at = dump
            .bytes()
            .zip(golden.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(dump.len().min(golden.len()));
        let ctx = |s: &str| {
            let from = at.saturating_sub(60);
            s.get(from..(at + 60).min(s.len()))
                .unwrap_or("")
                .to_string()
        };
        panic!(
            "telemetry dump diverged from {} at byte {at} (got {} bytes, fixture {}):\n  \
             got    ...{}...\n  golden ...{}...\nIf the change is intentional, re-bless with \
             `BLESS=1 cargo test -p elmem --test golden_telemetry`.",
            path.display(),
            dump.len(),
            golden.len(),
            ctx(dump),
            ctx(&golden)
        );
    }
}

fn run_dump(action: ScaleAction) -> String {
    let r = run_experiment_with_telemetry(config(action), TelemetryConfig::default());
    r.telemetry.to_json()
}

#[test]
fn scale_in_dump_matches_golden() {
    check_golden("scale_in.json", &run_dump(ScaleAction::In { count: 1 }));
}

#[test]
fn scale_out_dump_matches_golden() {
    check_golden("scale_out.json", &run_dump(ScaleAction::Out { count: 1 }));
}

#[test]
fn scale_in_resume_dump_matches_golden() {
    // The scale-in scenario with the Master crashing 200 ms into the
    // migration and resuming from the journal — pins the full crash /
    // restart / resume / commit event sequence (`master_crashed`,
    // `migration_resumed`) byte-for-byte.
    let mut cfg = config(ScaleAction::In { count: 1 });
    cfg.master.crashes = vec![SimTime::from_secs(30) + SimTime::from_millis(200)];
    let r = run_experiment_with_telemetry(cfg, TelemetryConfig::default());
    let dump = r.telemetry.to_json();
    assert!(
        dump.contains("\"master_crashed\"") && dump.contains("\"migration_resumed\""),
        "resume scenario must actually crash and resume"
    );
    check_golden("scale_in_resume.json", &dump);
}

#[test]
fn golden_scenarios_are_byte_reproducible() {
    // The fixture comparison only constrains drift across *commits*; this
    // pins the stronger in-process claim the goldens rest on — the same
    // seed yields the same bytes twice in the same build.
    let a = run_dump(ScaleAction::In { count: 1 });
    let b = run_dump(ScaleAction::In { count: 1 });
    assert_eq!(a, b);
}
