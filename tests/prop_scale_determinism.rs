//! Cluster-scale determinism (the scale fast path's correctness claims,
//! DESIGN.md §15): a 100-node scenario's [`TelemetryDump`] is
//! **byte-identical** across worker counts (`ELMEM_JOBS` ∈ {1, 4}) and
//! store shard counts (`ELMEM_SHARDS` ∈ {1, 8}), and the alias-capable
//! request generator leaves laptop-preset request streams untouched
//! **key-for-key** relative to the pre-existing rejection sampler.
//!
//! [`TelemetryDump`]: elmem::core::telemetry::TelemetryDump

use elmem::cluster::ClusterConfig;
use elmem::core::migration::MigrationCosts;
use elmem::core::{
    run_experiment_with_telemetry, ExperimentConfig, FaultPlan, MigrationPolicy, ScaleAction,
};
use elmem::store::SizeClasses;
use elmem::util::par::set_par_jobs;
use elmem::util::{ByteSize, DetRng, SimTime, TelemetryConfig};
use elmem::workload::{
    DemandTrace, Keyspace, RequestGenerator, WorkloadConfig, ZipfAlias, ZipfPopularity,
};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that flip the process-global worker-count override
/// (the programmatic face of `ELMEM_JOBS`); cargo runs test fns in this
/// binary on concurrent threads.
static JOBS_KNOB: Mutex<()> = Mutex::new(());

/// Laptop-preset workload shape — mirrors `elmem-bench`'s `exp` constants
/// (Zipf(1.0), 5-key multi-gets, 833 req/s peak, 1.4M-key ETC keyspace,
/// comfortably below the alias threshold) — over a short trace so one
/// proptest case stays sub-second.
fn laptop_preset_workload(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        keyspace: Keyspace::new(1_400_000, seed),
        zipf_exponent: 1.0,
        items_per_request: 5,
        peak_rate: 833.0,
        trace: DemandTrace::new(vec![1.0, 0.8, 0.6, 1.0], SimTime::from_secs(4)),
    }
}

/// A 100-node tier sized for tests: the node count is the paper's scale,
/// the per-node footprint is the unit-test shrink so four full runs fit in
/// one proptest case.
fn hundred_node_cluster(shards: usize) -> ClusterConfig {
    ClusterConfig {
        store_shards: shards,
        initial_nodes: 100,
        node_memory: ByteSize::from_mib(4),
        slab_classes: SizeClasses::new(96, 4.0, ByteSize::PAGE.as_u64()),
        vnodes: 32,
        ..ClusterConfig::small_test()
    }
}

/// The 100-node scenario: prefilled tier, diurnal-ish demand, one scale-in
/// and one scale-out of 10 nodes each — so the run crosses every fan-out
/// path (warm-up fill, migration dump/import, probe rounds).
fn hundred_node_scenario(seed: u64, shards: usize) -> ExperimentConfig {
    ExperimentConfig {
        cluster: hundred_node_cluster(shards),
        workload: WorkloadConfig {
            keyspace: Keyspace::new(60_000, seed),
            zipf_exponent: 1.0,
            items_per_request: 5,
            peak_rate: 1_200.0,
            trace: DemandTrace::new(vec![1.0, 0.7, 0.5, 1.0], SimTime::from_secs(5)),
        },
        policy: MigrationPolicy::elmem(),
        autoscaler: None,
        scheduled: vec![
            (SimTime::from_secs(4), ScaleAction::In { count: 10 }),
            (SimTime::from_secs(9), ScaleAction::Out { count: 10 }),
        ],
        prefill_top_ranks: 60_000,
        costs: MigrationCosts::default(),
        faults: FaultPlan::new(),
        healing: None,
        master: Default::default(),
        seed,
    }
}

fn dump(seed: u64, jobs: usize, shards: usize) -> String {
    set_par_jobs(jobs);
    let r = run_experiment_with_telemetry(
        hundred_node_scenario(seed, shards),
        TelemetryConfig::default(),
    );
    set_par_jobs(0);
    r.telemetry.to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The scale claim: the full telemetry dump of a 100-node run —
    /// event stream, histograms, counter series, per-node rows — is
    /// byte-identical at every (jobs, shards) point of the
    /// {1, 4} × {1, 8} grid.
    #[test]
    fn hundred_node_dump_identical_across_jobs_and_shards(seed in 0u64..1_000) {
        let _guard = JOBS_KNOB.lock().unwrap_or_else(|e| e.into_inner());
        let want = dump(seed, 1, 1);
        for (jobs, shards) in [(4, 1), (1, 8), (4, 8)] {
            let got = dump(seed, jobs, shards);
            prop_assert_eq!(
                &got, &want,
                "dump diverged at jobs={} shards={} (seed {})",
                jobs, shards, seed
            );
        }
    }

    /// The laptop-stream claim: at laptop-preset scale (1.4M keys, below
    /// the alias threshold) the alias-capable `RequestGenerator::new` —
    /// the constructor every experiment calls — produces the same request
    /// stream, key for key and arrival for arrival, as the pre-existing
    /// rejection-sampling generator. Pinned goldens rest on this.
    #[test]
    fn laptop_preset_streams_match_rejection_sampler_key_for_key(seed in any::<u64>()) {
        let cfg = laptop_preset_workload(seed);
        let mut auto_gen = RequestGenerator::new(cfg.clone(), DetRng::seed(seed));
        prop_assert!(
            auto_gen.alias().is_none(),
            "laptop preset must sit below the alias threshold"
        );
        let mut rejection =
            RequestGenerator::with_alias_sampling(cfg, DetRng::seed(seed), false);
        let mut n = 0u64;
        loop {
            let a = auto_gen.next_request();
            let b = rejection.next_request();
            prop_assert_eq!(&a, &b, "streams diverged at request {}", n);
            if a.is_none() {
                break;
            }
            n += 1;
        }
        prop_assert!(n > 1_000, "trace produced only {} requests", n);
    }

    /// The alias-table claims that make the post-threshold switch safe:
    /// the table is a pure function of (n, s) — byte-identical across
    /// build worker counts — and the forced-alias generator keeps the
    /// arrival process and the rank→key permutation of the rejection
    /// sampler (keys differ only by which *rank* each draw picks).
    #[test]
    fn alias_generator_preserves_arrivals_and_permutation(seed in any::<u64>()) {
        let _guard = JOBS_KNOB.lock().unwrap_or_else(|e| e.into_inner());
        let zipf = ZipfPopularity::new(200_000, 1.0, seed);
        set_par_jobs(1);
        let serial = ZipfAlias::from_zipf(&zipf);
        set_par_jobs(4);
        let parallel = ZipfAlias::from_zipf(&zipf);
        set_par_jobs(0);
        prop_assert_eq!(serial.fingerprint(), parallel.fingerprint());
        // Twin RNGs: the rank the alias sampler draws maps to exactly the
        // key the rejection sampler's permutation assigns to that rank.
        let mut rank_rng = DetRng::seed(seed ^ 0x5eed);
        let mut key_rng = DetRng::seed(seed ^ 0x5eed);
        for _ in 0..2_000 {
            let rank = serial.sample_rank(&mut rank_rng);
            prop_assert_eq!(serial.sample(&mut key_rng), zipf.key_for_rank(rank));
        }

        let cfg = laptop_preset_workload(seed);
        let mut rejection =
            RequestGenerator::with_alias_sampling(cfg.clone(), DetRng::seed(seed), false);
        let mut alias = RequestGenerator::with_alias_sampling(cfg, DetRng::seed(seed), true);
        loop {
            match (rejection.next_request(), alias.next_request()) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.arrival, b.arrival);
                    prop_assert_eq!(a.keys.len(), b.keys.len());
                }
                (None, None) => break,
                (a, b) => prop_assert!(false, "lengths diverged: {:?} vs {:?}", a, b),
            }
        }
    }
}
