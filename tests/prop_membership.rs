//! Whole-system property test: an arbitrary sequence of ElMem scalings and
//! traffic preserves the system's behavioral invariants.
//!
//! Note which invariant is *not* claimed: "every cached copy lives on its
//! hash owner". Scale-out intentionally leaves stale copies on the source
//! nodes (§III-D4) — after the membership flip those keys hash to the new
//! node and the stale copies age out of the sources' LRU naturally. The
//! invariants below are the ones the design actually guarantees.

use elmem::cluster::{Cluster, ClusterConfig};
use elmem::core::migration::MigrationCosts;
use elmem::core::{master::Master, MigrationPolicy};
use elmem::util::{DetRng, KeyId, SimTime};
use elmem::workload::{GeneralizedPareto, Keyspace};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Step {
    In(u32),
    Out(u32),
    Traffic(u64),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u32..3).prop_map(Step::In),
        (1u32..3).prop_map(Step::Out),
        (1u64..200).prop_map(Step::Traffic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn scaling_sequences_preserve_invariants(
        steps in prop::collection::vec(step_strategy(), 1..8),
        seed in 0u64..1000,
    ) {
        let mut cluster = Cluster::new(
            ClusterConfig::small_test(),
            Keyspace::with_distribution(20_000, seed, GeneralizedPareto::facebook_etc(), 4_000),
            DetRng::seed(seed),
        );
        let mut master = Master::new(MigrationPolicy::elmem(), MigrationCosts::default(), seed);
        let mut rng = DetRng::seed(seed).split("traffic");
        let mut now = SimTime::from_secs(1);
        let mut expected_members = cluster.tier.membership().len();

        // Warm a little.
        for k in 0..2000u64 {
            let _ = cluster.lookup_and_fill(KeyId(k), now);
            now += SimTime::from_millis(1);
        }

        for step in steps {
            now += SimTime::from_secs(10);
            match step {
                Step::In(count) => {
                    let members = cluster.tier.membership().len() as u32;
                    let count = count.min(members.saturating_sub(1));
                    if count == 0 { continue; }
                    if let Ok(orch) = master.scale_in(&mut cluster, count, now) {
                        for d in &orch.deferred {
                            Master::apply(&mut cluster, &d.kind);
                        }
                        now = now.max(orch.committed_at);
                        expected_members -= orch.nodes.len();

                        // INVARIANT: ElMem scale-in leaves nothing behind —
                        // every retired node is empty and off.
                        for &id in &orch.nodes {
                            let node = cluster.tier.node(id).unwrap();
                            prop_assert!(!node.is_online());
                            prop_assert_eq!(node.store.len(), 0);
                        }
                    }
                }
                Step::Out(count) => {
                    if let Ok(orch) = master.scale_out(&mut cluster, count, now) {
                        for d in &orch.deferred {
                            Master::apply(&mut cluster, &d.kind);
                        }
                        now = now.max(orch.committed_at);
                        expected_members += orch.nodes.len();

                        // INVARIANT: a migrated-then-committed new node
                        // only holds keys it owns under the new ring.
                        for &id in &orch.nodes {
                            let node = cluster.tier.node(id).unwrap();
                            for item in node.store.iter() {
                                prop_assert_eq!(
                                    cluster.tier.node_for_key(item.key),
                                    Some(id)
                                );
                            }
                        }
                    }
                }
                Step::Traffic(n) => {
                    for _ in 0..n {
                        let key = KeyId(rng.next_below(20_000));
                        let _ = cluster.lookup_and_fill(key, now);
                        now += SimTime::from_millis(1);

                        // INVARIANT: a key just looked up hits immediately
                        // after (it was present or has just been filled on
                        // its owner).
                        let (_, hit) = cluster.lookup_and_fill(key, now);
                        prop_assert!(hit, "repeat lookup of {key} missed");
                        now += SimTime::from_millis(1);
                    }
                }
            }

            // INVARIANT: membership accounting matches the executed actions.
            prop_assert_eq!(cluster.tier.membership().len(), expected_members);
            prop_assert!(!cluster.tier.membership().is_empty());

            // INVARIANT: powered-off nodes hold nothing.
            for id in cluster.tier.iter_nodes().map(|n| n.id()).collect::<Vec<_>>() {
                let node = cluster.tier.node(id).unwrap();
                if !node.is_online() {
                    prop_assert_eq!(node.store.len(), 0);
                }
            }

            // INVARIANT: every member node is online.
            for &id in cluster.tier.membership().members() {
                prop_assert!(cluster.tier.node(id).unwrap().is_online());
            }
        }
    }
}
