//! End-to-end self-healing: a crash mid-run must be detected within the
//! suspicion window, the corpse evicted, and — with a warmed replacement —
//! the hit rate restored measurably faster than with eviction alone.
//! Without healing, the dead node stays in the ring and its keyspace slice
//! pays client timeouts (bounded by the circuit breaker) forever.

use elmem::cluster::ClusterConfig;
use elmem::core::migration::MigrationCosts;
use elmem::core::{
    run_experiment, ExperimentConfig, ExperimentResult, FaultPlan, HealingConfig, MigrationPolicy,
};
use elmem::util::{NodeId, SimTime};
use elmem::workload::{DemandTrace, Keyspace, WorkloadConfig};

const CRASH_S: u64 = 30;
const RUN_SECS: usize = 13; // 13 × 10 s segments = 130 s

fn config(healing: Option<HealingConfig>) -> ExperimentConfig {
    ExperimentConfig {
        cluster: ClusterConfig::small_test(),
        workload: WorkloadConfig {
            // ~30 k ETC-sized keys against 4 × 4 MiB nodes: the working
            // set needs all four nodes, so the capacity a replacement
            // restores is visible in the steady-state hit rate.
            keyspace: Keyspace::new(30_000, 2),
            zipf_exponent: 1.0,
            items_per_request: 3,
            peak_rate: 250.0,
            trace: DemandTrace::new(vec![1.0; RUN_SECS], SimTime::from_secs(10)),
        },
        policy: MigrationPolicy::elmem(),
        autoscaler: None,
        scheduled: vec![],
        prefill_top_ranks: 15_000,
        costs: MigrationCosts::default(),
        faults: FaultPlan::new().crash(SimTime::from_secs(CRASH_S), NodeId(1)),
        healing,
        master: Default::default(),
        seed: 2,
    }
}

/// Mean hit rate over `[from, to)` seconds of the timeline.
fn hit_rate(r: &ExperimentResult, from: u64, to: u64) -> f64 {
    let pts: Vec<_> = r
        .timeline
        .iter()
        .filter(|p| p.second >= from && p.second < to && p.requests > 0)
        .collect();
    pts.iter().map(|p| p.hit_rate).sum::<f64>() / pts.len().max(1) as f64
}

#[test]
fn without_healing_the_corpse_stays_and_clients_pay_timeouts() {
    let r = run_experiment(config(None));
    assert!(r.recoveries.is_empty());
    assert_eq!(r.final_members, 4, "nobody evicts the dead node");
    assert!(r.client_timeouts > 0, "dead-node lookups cost the timeout");
    assert!(
        r.fast_failovers > r.client_timeouts,
        "the breaker must absorb most of the failures ({} timeouts, {} fast)",
        r.client_timeouts,
        r.fast_failovers
    );
    assert!(
        r.breaker_transitions >= 2,
        "closed -> open, then half-open probes"
    );
    assert_eq!(r.probes_sent, 0, "no detector configured");
}

#[test]
fn crash_is_detected_within_the_suspicion_window_and_evicted() {
    let healing = HealingConfig::evict_only();
    let r = run_experiment(config(Some(healing)));
    assert_eq!(r.recoveries.len(), 1);
    let rec = &r.recoveries[0];
    assert_eq!(rec.node, NodeId(1));
    assert_eq!(rec.crashed_at, Some(SimTime::from_secs(CRASH_S)));
    // Threshold lost probes at interval+jitter each, plus one round of
    // phase alignment: the suspicion window.
    let d = healing.detector;
    let window = (d.probe_interval + d.jitter) * u64::from(d.suspicion_threshold + 1);
    let latency = rec.detection_latency().expect("crash time known");
    assert!(
        latency <= window,
        "detection took {latency}, window is {window}"
    );
    assert!(rec.replacement.is_none());
    assert!(!rec.warmed);
    assert_eq!(r.final_members, 3, "evicted, not replaced");
    assert!(r.probes_sent > 0);
    // Eviction caps the timeout bill: far fewer than the unhealed run.
    let unhealed = run_experiment(config(None));
    assert!(
        r.client_timeouts < unhealed.client_timeouts,
        "eviction must stop the timeout bleed ({} vs {})",
        r.client_timeouts,
        unhealed.client_timeouts
    );
}

#[test]
fn warm_replacement_restores_capacity_and_beats_evict_only() {
    let warm = run_experiment(config(Some(HealingConfig::warm_replacement())));
    assert_eq!(warm.recoveries.len(), 1);
    let rec = &warm.recoveries[0];
    let replacement = rec.replacement.expect("one-for-one replacement");
    assert!(rec.warmed);
    assert!(
        rec.recovered_at > rec.confirmed_at,
        "warmup takes time before the membership flip"
    );
    assert_eq!(warm.final_members, 4, "capacity restored");
    assert_ne!(replacement, NodeId(1), "a fresh node, not the corpse");

    let evict = run_experiment(config(Some(HealingConfig::evict_only())));
    let none = run_experiment(config(None));
    // Steady state after every recovery settled: the warmed tier serves
    // more from cache than the shrunken one, which beats the unhealed one.
    let tail = |r: &ExperimentResult| hit_rate(r, 70, 130);
    assert!(
        tail(&warm) > tail(&evict),
        "restored capacity must show in the tail hit rate ({} vs {})",
        tail(&warm),
        tail(&evict)
    );
    assert!(
        tail(&evict) > tail(&none),
        "evicting the corpse must beat leaving it ({} vs {})",
        tail(&evict),
        tail(&none)
    );
}

#[test]
fn healing_timelines_are_bit_reproducible() {
    let a = run_experiment(config(Some(HealingConfig::warm_replacement())));
    let b = run_experiment(config(Some(HealingConfig::warm_replacement())));
    assert_eq!(a.timeline, b.timeline);
    assert_eq!(a.recoveries, b.recoveries);
    assert_eq!(a.client_timeouts, b.client_timeouts);
    assert_eq!(a.fast_failovers, b.fast_failovers);
    assert_eq!(a.breaker_transitions, b.breaker_transitions);
    assert_eq!(a.probes_sent, b.probes_sent);
    assert_eq!(a.total_requests, b.total_requests);
}
