//! Cross-crate integration: the four policies ranked end-to-end, mirroring
//! the orderings of §V-B1 and §V-B4 (ElMem ≺ CacheScale/Naive ≺ baseline
//! in post-scaling degradation).

use elmem::cluster::ClusterConfig;
use elmem::core::migration::MigrationCosts;
use elmem::core::{run_experiment, ExperimentConfig, FaultPlan, MigrationPolicy, ScaleAction};
use elmem::util::stats::TimelinePoint;
use elmem::util::SimTime;
use elmem::workload::{DemandTrace, Keyspace, WorkloadConfig};

fn config(policy: MigrationPolicy, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        cluster: ClusterConfig::small_test(),
        workload: WorkloadConfig {
            keyspace: Keyspace::new(30_000, 2),
            zipf_exponent: 1.0,
            items_per_request: 3,
            peak_rate: 250.0,
            trace: DemandTrace::new(vec![1.0; 13], SimTime::from_secs(10)),
        },
        policy,
        autoscaler: None,
        scheduled: vec![(SimTime::from_secs(40), ScaleAction::In { count: 1 })],
        prefill_top_ranks: 15_000,
        costs: MigrationCosts::default(),
        faults: FaultPlan::new(),
        healing: None,
        master: Default::default(),
        seed,
    }
}

/// Mean post-commit miss rate over seconds with traffic.
fn post_miss_rate(timeline: &[TimelinePoint], commit_s: u64) -> f64 {
    let pts: Vec<&TimelinePoint> = timeline
        .iter()
        .filter(|p| p.second >= commit_s && p.requests > 0)
        .collect();
    assert!(!pts.is_empty());
    1.0 - pts.iter().map(|p| p.hit_rate).sum::<f64>() / pts.len() as f64
}

/// Mean post-commit p95 RT.
fn post_p95(timeline: &[TimelinePoint], commit_s: u64) -> f64 {
    let pts: Vec<&TimelinePoint> = timeline
        .iter()
        .filter(|p| p.second >= commit_s && p.requests > 0)
        .collect();
    pts.iter().map(|p| p.p95_ms).sum::<f64>() / pts.len().max(1) as f64
}

#[test]
fn elmem_beats_baseline_on_miss_rate_and_tail() {
    let base = run_experiment(config(MigrationPolicy::Baseline, 21));
    let elmem = run_experiment(config(MigrationPolicy::elmem(), 21));
    let cb = base.events[0].committed_at.as_secs();
    let ce = elmem.events[0].committed_at.as_secs();
    assert!(
        post_miss_rate(&elmem.timeline, ce) < post_miss_rate(&base.timeline, cb),
        "miss rate ordering violated"
    );
    assert!(
        post_p95(&elmem.timeline, ce) <= post_p95(&base.timeline, cb),
        "p95 ordering violated"
    );
}

#[test]
fn elmem_beats_naive() {
    let naive = run_experiment(config(MigrationPolicy::Naive, 22));
    let elmem = run_experiment(config(MigrationPolicy::elmem(), 22));
    let cn = naive.events[0].committed_at.as_secs();
    let ce = elmem.events[0].committed_at.as_secs();
    assert!(
        post_miss_rate(&elmem.timeline, ce) <= post_miss_rate(&naive.timeline, cn),
        "elmem {} vs naive {}",
        post_miss_rate(&elmem.timeline, ce),
        post_miss_rate(&naive.timeline, cn)
    );
}

/// Mean hit rate over a window of seconds.
fn hit_in_window(timeline: &[TimelinePoint], from_s: u64, to_s: u64) -> f64 {
    let pts: Vec<&TimelinePoint> = timeline
        .iter()
        .filter(|p| p.second >= from_s && p.second < to_s && p.requests > 0)
        .collect();
    assert!(!pts.is_empty());
    pts.iter().map(|p| p.hit_rate).sum::<f64>() / pts.len() as f64
}

#[test]
fn cachescale_beats_baseline_but_not_elmem() {
    // Short discard window so the secondary cache is dropped well inside
    // the run (the paper discards after ~2 min; our run is ~2 min total, so
    // the window scales down with everything else).
    let window_s = 20u64;
    let cachescale = MigrationPolicy::CacheScale {
        window: SimTime::from_secs(window_s),
    };
    let base = run_experiment(config(MigrationPolicy::Baseline, 23));
    let cs = run_experiment(config(cachescale, 23));
    let elmem = run_experiment(config(MigrationPolicy::elmem(), 23));
    let decided = base.events[0].decided_at.as_secs();

    // While the secondary is alive, CacheScale avoids the baseline's
    // transient (its retries hit the retiring node).
    let transient_base = hit_in_window(&base.timeline, decided, decided + window_s);
    let transient_cs = hit_in_window(&cs.timeline, decided, decided + window_s);
    assert!(
        transient_cs > transient_base,
        "cachescale transient {transient_cs} should beat baseline {transient_base}"
    );

    // After the discard, items CacheScale's request-driven promotion never
    // touched are lost; ElMem migrated them, so it hits more (§V-B4: the
    // promotion "is dictated by the request rate and thus may be limited").
    let discard = decided + window_s;
    let post_cs = hit_in_window(&cs.timeline, discard, discard + 25);
    let post_elmem = hit_in_window(&elmem.timeline, discard, discard + 25);
    assert!(
        post_elmem > post_cs,
        "post-discard: elmem {post_elmem} should beat cachescale {post_cs}"
    );
}

#[test]
fn all_policies_converge_to_target_membership() {
    for (policy, seed) in [
        (MigrationPolicy::Baseline, 31),
        (MigrationPolicy::elmem(), 32),
        (MigrationPolicy::Naive, 33),
        (MigrationPolicy::cachescale(), 34),
    ] {
        let result = run_experiment(config(policy, seed));
        assert_eq!(result.final_members, 3, "policy {policy}");
        assert_eq!(result.events.len(), 1, "policy {policy}");
    }
}
