//! Cross-crate integration: scale-out (§III-D4) — new nodes are filled by
//! migration before the membership flips, avoiding the cold cache.

use elmem::cluster::{Cluster, ClusterConfig};
use elmem::core::migration::{migrate_scale_out, MigrationCosts};
use elmem::util::{DetRng, KeyId, SimTime};
use elmem::workload::{GeneralizedPareto, Keyspace};

fn warmed() -> Cluster {
    let mut cluster = Cluster::new(
        ClusterConfig::small_test(),
        // Cap values at 4 KB so the 4-page small_test nodes can give every
        // touched size class a page.
        Keyspace::with_distribution(50_000, 3, GeneralizedPareto::facebook_etc(), 4_000),
        DetRng::seed(17),
    );
    for k in 0..4000u64 {
        let key = KeyId(k);
        let owner = cluster.tier.node_for_key(key).unwrap();
        let size = cluster.keyspace().value_size(key);
        cluster
            .tier
            .node_mut(owner)
            .unwrap()
            .store
            .set(key, size, SimTime::from_secs(1 + k))
            .unwrap();
    }
    cluster
}

#[test]
fn scale_out_keeps_remapped_keys_hitting() {
    let mut cluster = warmed();
    let now = SimTime::from_secs(100_000);

    let new = cluster.tier.provision_nodes(1);
    migrate_scale_out(&mut cluster.tier, &new, now, &MigrationCosts::default()).unwrap();
    cluster.tier.commit_add(&new).unwrap();

    // Every key cached before must still hit after the flip — the ones
    // that moved to the new node were migrated ahead of the flip.
    let mut hits = 0;
    for k in 0..4000u64 {
        let (_, hit) = cluster.lookup_and_fill(KeyId(k), now + SimTime::from_secs(1));
        if hit {
            hits += 1;
        }
    }
    assert_eq!(hits, 4000, "ElMem scale-out must not cold-miss");
}

#[test]
fn cold_scale_out_misses_remapped_keys() {
    let mut cluster = warmed();
    let before_ring = cluster.tier.membership().ring().clone();

    // Baseline-style scale-out: flip immediately, new node cold.
    let new = cluster.tier.provision_nodes(1);
    cluster.tier.commit_add(&new).unwrap();

    let mut remapped = 0;
    let mut misses = 0;
    for k in 0..4000u64 {
        let key = KeyId(k);
        let now_owner = cluster.tier.node_for_key(key).unwrap();
        if before_ring.node_for(key) != Some(now_owner) {
            remapped += 1;
            let (_, hit) = cluster.lookup_and_fill(key, SimTime::from_secs(100_000));
            if !hit {
                misses += 1;
            }
        }
    }
    assert!(remapped > 0);
    assert_eq!(misses, remapped, "cold scale-out misses every remapped key");
}

#[test]
fn scale_out_migrates_about_one_over_k_plus_one() {
    let mut cluster = warmed();
    let new = cluster.tier.provision_nodes(1);
    let report = migrate_scale_out(
        &mut cluster.tier,
        &new,
        SimTime::from_secs(100_000),
        &MigrationCosts::default(),
    )
    .unwrap();
    // 4 → 5 nodes: ~1/5 of the 4000 cached items should move.
    let frac = report.items_migrated as f64 / 4000.0;
    assert!((0.08..0.4).contains(&frac), "moved fraction {frac}");
}

#[test]
fn multi_node_scale_out_works() {
    let mut cluster = warmed();
    let now = SimTime::from_secs(100_000);
    let new = cluster.tier.provision_nodes(3);
    let report =
        migrate_scale_out(&mut cluster.tier, &new, now, &MigrationCosts::default()).unwrap();
    cluster.tier.commit_add(&new).unwrap();
    assert_eq!(cluster.tier.membership().len(), 7);
    assert!(report.items_migrated > 0);
    // All keys still hit.
    let mut hits = 0;
    for k in 0..4000u64 {
        let (_, hit) = cluster.lookup_and_fill(KeyId(k), now + SimTime::from_secs(1));
        if hit {
            hits += 1;
        }
    }
    assert_eq!(hits, 4000);
}
