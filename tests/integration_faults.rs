//! End-to-end fault injection: crashes landing in specific migration
//! phases must abort cleanly — no panic, a correct
//! `MigrationOutcome::Aborted`, and a consistent committed membership.

use elmem::cluster::ClusterConfig;
use elmem::core::migration::MigrationCosts;
use elmem::core::{
    run_experiment, AbortCause, ExperimentConfig, ExperimentResult, FaultPlan, MigrationOutcome,
    MigrationPhase, MigrationPolicy, ScaleAction,
};
use elmem::util::{NodeId, SimTime};
use elmem::workload::{DemandTrace, Keyspace, WorkloadConfig};

fn config(faults: FaultPlan) -> ExperimentConfig {
    ExperimentConfig {
        cluster: ClusterConfig::small_test(),
        workload: WorkloadConfig {
            keyspace: Keyspace::new(30_000, 2),
            zipf_exponent: 1.0,
            items_per_request: 3,
            peak_rate: 250.0,
            trace: DemandTrace::new(vec![1.0; 13], SimTime::from_secs(10)),
        },
        policy: MigrationPolicy::elmem(),
        autoscaler: None,
        scheduled: vec![(SimTime::from_secs(40), ScaleAction::In { count: 1 })],
        prefill_top_ranks: 15_000,
        costs: MigrationCosts::default(),
        faults,
        healing: None,
        master: Default::default(),
        seed: 2,
    }
}

/// Fault-free probe: learns when the migration is decided, who retires,
/// and how long each phase lasts — so the fault tests can aim a crash
/// into a specific phase window.
fn probe() -> (ExperimentResult, SimTime, NodeId, SimTime, SimTime) {
    let result = run_experiment(config(FaultPlan::new()));
    assert_eq!(result.events.len(), 1);
    let ev = &result.events[0];
    let report = ev.report.clone().expect("elmem migrates");
    assert!(report.outcome.is_completed());
    let victim = ev.nodes[0];
    let phase1_end = ev.decided_at
        + report.phases.scoring
        + report.phases.dump
        + report.phases.metadata_transfer;
    let phase2_end = phase1_end + report.phases.fusecache;
    assert!(
        report.phases.data_transfer > SimTime::ZERO,
        "probe must exercise phase 3"
    );
    let decided_at = ev.decided_at;
    (result, decided_at, victim, phase1_end, phase2_end)
}

#[test]
fn source_crash_in_phase1_aborts_and_commits_consistently() {
    let (_, decided_at, victim, phase1_end, _) = probe();
    // Land the crash halfway into the metadata window.
    let crash_at = decided_at + (phase1_end - decided_at).mul_f64(0.5);
    let result = run_experiment(config(FaultPlan::new().crash(crash_at, victim)));

    assert_eq!(result.events.len(), 1);
    let ev = &result.events[0];
    let report = ev.report.as_ref().expect("report present on abort");
    assert_eq!(
        report.outcome,
        MigrationOutcome::Aborted {
            phase: MigrationPhase::MetadataTransfer,
            cause: AbortCause::SourceCrashed(victim),
        }
    );
    // Nothing was imported before the abort; the scaling committed at the
    // crash instant by evicting the dead source.
    assert_eq!(report.items_migrated, 0);
    assert_eq!(ev.committed_at, crash_at);
    assert_eq!(ev.to_nodes, 3);
    assert_eq!(result.final_members, 3);
}

#[test]
fn destination_crash_in_phase3_aborts_and_commits_consistently() {
    let (_, decided_at, victim, _, phase2_end) = probe();
    // A retained destination: the highest node id that is not retiring
    // (moves are applied in ascending destination order, so earlier
    // destinations get their imports before the abort).
    let dest = (0..4u32).rev().map(NodeId).find(|&n| n != victim).unwrap();
    // Land the crash just inside the data-migration window.
    let crash_at = phase2_end + SimTime::from_nanos(1);
    assert!(crash_at > decided_at);
    let result = run_experiment(config(FaultPlan::new().crash(crash_at, dest)));

    assert_eq!(result.events.len(), 1);
    let ev = &result.events[0];
    let report = ev.report.as_ref().expect("report present on abort");
    assert_eq!(
        report.outcome,
        MigrationOutcome::Aborted {
            phase: MigrationPhase::DataMigration,
            cause: AbortCause::DestinationCrashed(dest),
        }
    );
    // Partial imports to healthy destinations are kept.
    assert!(report.items_migrated > 0);
    assert_eq!(ev.committed_at, crash_at);
    // Both the retiring source and the dead destination leave: 4 → 2.
    assert_eq!(ev.to_nodes, 2);
    assert_eq!(result.final_members, 2);
}

#[test]
fn identical_seeds_give_bit_identical_faulty_timelines() {
    let (_, decided_at, victim, phase1_end, _) = probe();
    let crash_at = decided_at + (phase1_end - decided_at).mul_f64(0.5);
    let plan = FaultPlan::new()
        .crash(crash_at, victim)
        .slow_link(
            SimTime::from_secs(10),
            NodeId(1),
            4.0,
            SimTime::from_secs(30),
        )
        .drop_transfers_with_prob(0.2);
    let a = run_experiment(config(plan.clone()));
    let b = run_experiment(config(plan));
    assert_eq!(a.timeline, b.timeline);
    assert_eq!(a.events, b.events);
    assert_eq!(a.final_members, b.final_members);
    assert_eq!(a.total_requests, b.total_requests);
}

#[test]
fn crashed_node_degrades_service_but_run_survives() {
    // Crash a node with no scaling scheduled at all: the tier keeps the
    // dead member (its gets become misses) and the run completes.
    let mut cfg = config(FaultPlan::new().crash(SimTime::from_secs(30), NodeId(1)));
    cfg.scheduled = vec![];
    let faulty = run_experiment(cfg);
    let mut clean_cfg = config(FaultPlan::new());
    clean_cfg.scheduled = vec![];
    let clean = run_experiment(clean_cfg);

    assert_eq!(faulty.final_members, 4, "no control action: no eviction");
    let post_miss = |r: &ExperimentResult| {
        let pts: Vec<_> = r
            .timeline
            .iter()
            .filter(|p| p.second >= 35 && p.requests > 0)
            .collect();
        1.0 - pts.iter().map(|p| p.hit_rate).sum::<f64>() / pts.len().max(1) as f64
    };
    assert!(
        post_miss(&faulty) > post_miss(&clean),
        "a dead node's keyspace slice must miss"
    );
}

#[test]
fn link_slowdown_stretches_migration() {
    let (clean, decided_at, victim, _, _) = probe();
    // Slow the retiring source's NIC 8x across the whole migration.
    let plan =
        FaultPlan::new().slow_link(SimTime::from_secs(35), victim, 8.0, SimTime::from_secs(200));
    let slow = run_experiment(config(plan));
    assert_eq!(slow.events.len(), 1);
    let slow_ev = &slow.events[0];
    let clean_ev = &clean.events[0];
    assert_eq!(slow_ev.decided_at, decided_at);
    assert!(
        slow_ev.committed_at > clean_ev.committed_at,
        "slowdown must delay the commit: {} vs {}",
        slow_ev.committed_at,
        clean_ev.committed_at
    );
    assert!(slow_ev.report.as_ref().unwrap().outcome.is_completed());
    assert_eq!(slow.final_members, 3);
}
