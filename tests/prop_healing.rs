//! Property test for the self-healing loop: under *any* small fault plan
//! — crashes, partitions, slow links at arbitrary times and targets — the
//! detector converges. No live node is ever confirmed dead (partitions and
//! slow links flap suspicion but never kill), every node that crashes
//! during the run leaves the final membership (except the one corpse the
//! tier keeps when *everything* died and no replacement policy is armed),
//! and the healed timeline is bit-reproducible.

use elmem::cluster::ClusterConfig;
use elmem::core::migration::MigrationCosts;
use elmem::core::{
    run_experiment, ExperimentConfig, FaultPlan, HealingConfig, MigrationPolicy, ScaleAction,
};
use elmem::util::{NodeId, SimTime};
use elmem::workload::{DemandTrace, Keyspace, WorkloadConfig};
use proptest::prelude::*;

fn config(faults: FaultPlan, healing: HealingConfig, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        cluster: ClusterConfig::small_test(),
        workload: WorkloadConfig {
            keyspace: Keyspace::new(8_000, 3),
            zipf_exponent: 1.0,
            items_per_request: 3,
            peak_rate: 150.0,
            trace: DemandTrace::new(vec![1.0; 6], SimTime::from_secs(10)),
        },
        policy: MigrationPolicy::elmem(),
        autoscaler: None,
        scheduled: vec![(SimTime::from_secs(20), ScaleAction::In { count: 1 })],
        prefill_top_ranks: 4_000,
        costs: MigrationCosts::default(),
        faults,
        healing: Some(healing),
        master: Default::default(),
        seed,
    }
}

/// One generated fault: (kind selector, at-second, node, factor/duration).
type RawFault = (u8, u64, u32, u64);

fn build_plan(raw: &[RawFault]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &(kind, at_s, node, extra) in raw {
        let at = SimTime::from_secs(at_s);
        let node = NodeId(node);
        plan = match kind % 3 {
            0 => plan.crash(at, node),
            1 => plan.slow_link(
                at,
                node,
                2.0 + (extra % 14) as f64,
                SimTime::from_secs(10 + extra),
            ),
            _ => plan.partition(at, node, SimTime::from_secs(1 + extra % 20)),
        };
    }
    plan
}

fn healing_mode(mode: u8) -> HealingConfig {
    match mode % 3 {
        0 => HealingConfig::evict_only(),
        1 => HealingConfig::cold_replacement(),
        _ => HealingConfig::warm_replacement(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn detector_converges_under_any_fault_plan(
        raw in prop::collection::vec(
            (0u8..3, 0u64..50, 0u32..4, 0u64..30),
            0..4,
        ),
        mode in 0u8..3,
        seed in 0u64..50,
    ) {
        let plan = build_plan(&raw);
        let healing = healing_mode(mode);
        let result = run_experiment(config(plan.clone(), healing, seed));

        // 1. Safety: only nodes that actually crashed are ever confirmed
        // dead. A partitioned or slow-linked node flaps in suspicion but
        // must never trigger a recovery.
        for rec in &result.recoveries {
            let crashed_at = rec.crashed_at;
            prop_assert!(
                crashed_at.is_some(),
                "node {:?} was confirmed dead without a scheduled crash",
                rec.node
            );
            prop_assert!(rec.confirmed_at >= crashed_at.unwrap());
            prop_assert!(rec.confirmed_at >= rec.suspected_at);
            prop_assert!(rec.recovered_at >= rec.confirmed_at);
        }

        // 2. Liveness: every crashed member is eventually evicted. The one
        // exception: with no replacement policy, a fully-dead tier keeps a
        // single corpse so clients still have somewhere to hash to.
        if result.final_crashed_members > 0 {
            prop_assert_eq!(healing.replacement, elmem::core::ReplacementPolicy::None);
            prop_assert_eq!(result.final_crashed_members, 1);
            prop_assert_eq!(result.final_members, 1);
        }

        // 3. The tier never empties, and counters stay coherent.
        prop_assert!(result.final_members >= 1);
        prop_assert!(result.total_requests > 0);
        prop_assert!(result.probes_sent > 0, "the detector must have probed");

        // 4. Bit-reproducibility of the whole healed run.
        let replay = run_experiment(config(plan, healing, seed));
        prop_assert_eq!(&result.timeline, &replay.timeline);
        prop_assert_eq!(&result.recoveries, &replay.recoveries);
        prop_assert_eq!(result.final_members, replay.final_members);
        prop_assert_eq!(result.client_timeouts, replay.client_timeouts);
        prop_assert_eq!(result.breaker_transitions, replay.breaker_transitions);
        prop_assert_eq!(result.probes_sent, replay.probes_sent);
    }
}
