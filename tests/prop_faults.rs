//! Property test for the fault-injection layer: *any* small `FaultPlan` —
//! arbitrary crash times and targets, link degradation, shipment-drop
//! probabilities — must leave the tier consistent. The experiment never
//! panics, the committed membership never empties, scaling events stay
//! causally ordered, and the whole faulty timeline is bit-reproducible.

use elmem::cluster::ClusterConfig;
use elmem::core::migration::MigrationCosts;
use elmem::core::{run_experiment, ExperimentConfig, FaultPlan, MigrationPolicy, ScaleAction};
use elmem::util::{NodeId, SimTime};
use elmem::workload::{DemandTrace, Keyspace, WorkloadConfig};
use proptest::prelude::*;

fn config(faults: FaultPlan, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        cluster: ClusterConfig::small_test(),
        workload: WorkloadConfig {
            keyspace: Keyspace::new(8_000, 3),
            zipf_exponent: 1.0,
            items_per_request: 3,
            peak_rate: 150.0,
            trace: DemandTrace::new(vec![1.0; 6], SimTime::from_secs(10)),
        },
        policy: MigrationPolicy::elmem(),
        autoscaler: None,
        scheduled: vec![(SimTime::from_secs(20), ScaleAction::In { count: 1 })],
        prefill_top_ranks: 4_000,
        costs: MigrationCosts::default(),
        faults,
        healing: None,
        master: Default::default(),
        seed,
    }
}

/// One generated fault: (kind selector, at-second, node, factor/duration).
type RawFault = (u8, u64, u32, u64);

fn build_plan(raw: &[RawFault], meta_drop: f64, data_drop: f64) -> FaultPlan {
    let mut plan = FaultPlan::new()
        .drop_metadata_with_prob(meta_drop)
        .drop_transfers_with_prob(data_drop);
    for &(kind, at_s, node, extra) in raw {
        let at = SimTime::from_secs(at_s);
        let node = NodeId(node);
        plan = match kind % 3 {
            0 => plan.crash(at, node),
            1 => plan.slow_link(
                at,
                node,
                2.0 + (extra % 14) as f64,
                SimTime::from_secs(10 + extra),
            ),
            _ => plan.partition(at, node, SimTime::from_secs(1 + extra % 20)),
        };
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn any_fault_plan_leaves_tier_consistent(
        raw in prop::collection::vec(
            (0u8..3, 0u64..60, 0u32..4, 0u64..30),
            0..4,
        ),
        meta_drop in 0.0f64..0.4,
        data_drop in 0.0f64..0.3,
        seed in 0u64..50,
    ) {
        let plan = build_plan(&raw, meta_drop, data_drop);
        let result = run_experiment(config(plan.clone(), seed));

        // 1. The tier never empties: an abort fallback keeps ≥1 member.
        prop_assert!(result.final_members >= 1);
        prop_assert!(result.final_members <= 4);
        prop_assert!(result.total_requests > 0);

        // 2. Scaling events stay causally ordered, with sane node counts.
        for ev in &result.events {
            prop_assert!(ev.committed_at >= ev.decided_at);
            prop_assert!(ev.to_nodes >= 1);
            if let Some(report) = &ev.report {
                prop_assert!(report.completed >= report.started);
                // An aborted migration still reports a coherent item flow.
                prop_assert!(report.items_migrated <= report.items_considered);
            }
        }

        // 3. Bit-reproducibility: the same plan and seed replay the same
        // timeline, event log, and membership.
        let replay = run_experiment(config(plan, seed));
        prop_assert_eq!(&result.timeline, &replay.timeline);
        prop_assert_eq!(&result.events, &replay.events);
        prop_assert_eq!(result.final_members, replay.final_members);
    }
}
