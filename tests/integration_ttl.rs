//! Cross-crate integration: TTLs survive migration — a migrated item keeps
//! its original expiry on the destination node, and expired items are not
//! worth migrating in the first place.

use elmem::cluster::{Cluster, ClusterConfig};
use elmem::core::migration::{migrate_scale_in, migrate_scale_out, MigrationCosts};
use elmem::core::scoring::choose_retiring;
use elmem::store::ImportMode;
use elmem::util::{DetRng, KeyId, SimTime};
use elmem::workload::{GeneralizedPareto, Keyspace};

fn cluster() -> Cluster {
    Cluster::new(
        ClusterConfig::small_test(),
        Keyspace::with_distribution(50_000, 9, GeneralizedPareto::facebook_etc(), 4_000),
        DetRng::seed(29),
    )
}

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

#[test]
fn migrated_items_keep_their_ttl() {
    let mut c = cluster();
    // Half the keys get a TTL expiring at t=5000, half never expire.
    for k in 0..2000u64 {
        let key = KeyId(k);
        let owner = c.tier.node_for_key(key).unwrap();
        let size = c.keyspace().value_size(key);
        let store = &mut c.tier.node_mut(owner).unwrap().store;
        if k % 2 == 0 {
            store
                .set_with_ttl(key, size, t(1 + k), SimTime::from_secs(5000))
                .unwrap();
        } else {
            store.set(key, size, t(1 + k)).unwrap();
        }
    }

    let (victims, _) = choose_retiring(&c.tier, 1).unwrap();
    migrate_scale_in(
        &mut c.tier,
        &victims,
        t(3000),
        &MigrationCosts::default(),
        ImportMode::Merge,
    )
    .unwrap();
    c.tier.commit_remove(&victims).unwrap();

    // Shortly after the flip everything still hits...
    let mut hits_before = 0;
    for k in 0..2000u64 {
        let (_, hit) = c.lookup_and_fill(KeyId(k), t(3100));
        if hit {
            hits_before += 1;
        }
    }
    assert_eq!(hits_before, 2000);

    // ...but past the original expiry horizon, every TTL'd item is dead,
    // including the migrated copies (expiry crossed nodes intact).
    let mut expired_hits = 0;
    let mut eternal_hits = 0;
    for k in 0..2000u64 {
        // peek-based check to avoid refilling through the DB path.
        let owner = c.tier.node_for_key(KeyId(k)).unwrap();
        let alive = c
            .tier
            .node(owner)
            .unwrap()
            .store
            .peek(KeyId(k))
            .is_some_and(|item| !item.is_expired(t(3100 + 5000)));
        if k % 2 == 0 {
            if alive {
                expired_hits += 1;
            }
        } else if alive {
            eternal_hits += 1;
        }
    }
    assert_eq!(expired_hits, 0, "TTL'd items must be dead after expiry");
    assert_eq!(eternal_hits, 1000, "non-TTL items unaffected");
}

#[test]
fn scale_out_preserves_ttl_too() {
    let mut c = cluster();
    for k in 0..1000u64 {
        let key = KeyId(k);
        let owner = c.tier.node_for_key(key).unwrap();
        let size = c.keyspace().value_size(key);
        c.tier
            .node_mut(owner)
            .unwrap()
            .store
            .set_with_ttl(key, size, t(1 + k), SimTime::from_secs(9000))
            .unwrap();
    }
    let new = c.tier.provision_nodes(1);
    migrate_scale_out(&mut c.tier, &new, t(2000), &MigrationCosts::default()).unwrap();
    c.tier.commit_add(&new).unwrap();

    // Everything that landed on the new node carries the original expiry.
    let store = &c.tier.node(new[0]).unwrap().store;
    assert!(!store.is_empty());
    for item in store.iter() {
        assert!(item.expires > t(9000));
        assert!(item.expires < SimTime::MAX);
    }
}

#[test]
fn crawler_runs_tier_wide() {
    let mut c = cluster();
    for k in 0..1000u64 {
        let key = KeyId(k);
        let owner = c.tier.node_for_key(key).unwrap();
        let size = c.keyspace().value_size(key);
        c.tier
            .node_mut(owner)
            .unwrap()
            .store
            .set_with_ttl(key, size, t(1), SimTime::from_secs(10))
            .unwrap();
    }
    let mut reclaimed = 0;
    let ids: Vec<_> = c.tier.online_nodes();
    for id in ids {
        reclaimed += c
            .tier
            .node_mut(id)
            .unwrap()
            .store
            .crawl_expired(t(100), u64::MAX);
    }
    assert_eq!(reclaimed, 1000);
    assert_eq!(c.tier.total_items(), 0);
}
