//! Chaos-engine integration: schedule serialization, the committed
//! regression fixture, shrinker determinism, and breaker legality under a
//! flapping link (DESIGN.md §12).

use elmem_cluster::{Cluster, ClusterConfig};
use elmem_core::chaos::run_chaos;
use elmem_core::migration::set_planning_jobs;
use elmem_sim::chaos::{shrink, ChaosPlan};
use elmem_sim::FaultPlan;
use elmem_util::telemetry::{BreakerPhase, EventKind};
use elmem_util::{DetRng, KeyId, NodeId, SimTime};
use elmem_workload::Keyspace;

fn fixture_text() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/chaos_regression.json"
    );
    std::fs::read_to_string(path).expect("read chaos regression fixture")
}

fn fixture_plan() -> ChaosPlan {
    ChaosPlan::parse_json(fixture_text().trim_end()).expect("fixture parses")
}

/// The fixture is the canonical serialization of its own seed: parsing
/// and reserializing it is byte-identical, and the generator still
/// produces exactly this plan. (Regenerate the fixture deliberately if
/// the generator or the JSON format changes.)
#[test]
fn fixture_round_trips_byte_identically() {
    let text = fixture_text();
    let trimmed = text.trim_end();
    let plan = ChaosPlan::parse_json(trimmed).expect("fixture parses");
    assert_eq!(
        plan.to_json(),
        trimmed,
        "reserialization must be byte-identical"
    );
    assert_eq!(
        ChaosPlan::generate(plan.seed).to_json(),
        trimmed,
        "generator drifted from the committed fixture"
    );
}

/// Replaying the committed schedule violates no invariant, and the replay
/// is deterministic down to the telemetry bytes.
#[test]
fn fixture_replays_clean_and_deterministically() {
    let plan = fixture_plan();
    let a = run_chaos(&plan);
    assert!(a.passed(), "violations: {:?}", a.violations);
    let b = run_chaos(&plan);
    assert_eq!(
        a.result.telemetry.to_json(),
        b.result.telemetry.to_json(),
        "same schedule must replay byte-identically"
    );
}

/// Feeding the shrinker a deliberately "failing" predicate (the run pays
/// at least one client timeout — true for the fixture, whose schedule
/// crashes nodes) minimizes to the same plan on every run and at every
/// planner worker count.
#[test]
fn shrinker_is_deterministic_across_worker_counts() {
    let plan = fixture_plan();
    let fails = |p: &ChaosPlan| run_chaos(p).result.client_timeouts > 0;
    assert!(fails(&plan), "predicate must hold for the full schedule");

    set_planning_jobs(1);
    let serial = shrink(&plan, fails);
    let serial_again = shrink(&plan, fails);
    set_planning_jobs(4);
    let parallel = shrink(&plan, fails);
    set_planning_jobs(1);

    assert!(fails(&serial), "minimal plan must still fail");
    assert_eq!(
        serial.to_json(),
        serial_again.to_json(),
        "shrinking must be run-to-run deterministic"
    );
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "shrinking must not depend on the planner worker count"
    );
    // It genuinely minimized: a single fault explains a client timeout.
    assert_eq!(serial.faults.scheduled().len(), 1);
    assert!(serial.actions.is_empty());
}

/// A flapping link walks the breaker through every legal edge —
/// closed→open on the timeout streak, open→half-open at each cooldown,
/// half-open→open when the probe fails into the second outage,
/// half-open→closed when the probe finally lands — and nothing else.
#[test]
fn breaker_survives_flapping_link_through_legal_edges() {
    let mut c = Cluster::new(
        ClusterConfig::small_test(),
        Keyspace::new(10_000, 0),
        DetRng::seed(1),
    );
    // Raw clusters start with tracing off; the edge assertions need it.
    c.set_telemetry_config(&elmem_util::TelemetryConfig::default());
    let victim = NodeId(0);
    let key = (0..10_000)
        .map(KeyId)
        .find(|&k| c.tier.node_for_key(k) == Some(victim))
        .expect("some key hashes to the victim");

    // Outage 1: three timeouts trip the breaker (threshold 3).
    c.tier
        .node_mut(victim)
        .unwrap()
        .link
        .partition_until(SimTime::from_secs(4));
    for s in 0..3 {
        c.lookup_and_fill(key, SimTime::from_secs(s));
    }
    // Open breaker fails fast inside the cooldown.
    c.lookup_and_fill(key, SimTime::from_secs(3));
    assert_eq!(c.fast_failovers(), 1);
    // Outage 2 begins before the cooldown's half-open probe, which
    // therefore fails and re-opens the breaker.
    c.tier
        .node_mut(victim)
        .unwrap()
        .link
        .partition_until(SimTime::from_secs(12));
    c.lookup_and_fill(key, SimTime::from_secs(8));
    // The link has healed when the next cooldown expires: the probe
    // succeeds and the breaker closes.
    c.lookup_and_fill(key, SimTime::from_secs(14));

    let edges: Vec<(BreakerPhase, BreakerPhase)> = c
        .telemetry()
        .trace
        .events()
        .filter(|e| e.node == Some(victim))
        .filter_map(|e| match e.kind {
            EventKind::BreakerTransition { from, to } => Some((from, to)),
            _ => None,
        })
        .collect();
    assert_eq!(
        edges,
        vec![
            (BreakerPhase::Closed, BreakerPhase::Open),
            (BreakerPhase::Open, BreakerPhase::HalfOpen),
            (BreakerPhase::HalfOpen, BreakerPhase::Open),
            (BreakerPhase::Open, BreakerPhase::HalfOpen),
            (BreakerPhase::HalfOpen, BreakerPhase::Closed),
        ],
        "flapping link must walk exactly the legal breaker edges"
    );
    // The chain is well-formed: each edge leaves where the next picks up.
    for w in edges.windows(2) {
        assert_eq!(w[0].1, w[1].0);
    }
}

/// An empty fault plan serializes and parses back to itself — the
/// degenerate end of the schedule-JSON space the shrinker drives toward.
#[test]
fn empty_fault_plan_round_trips() {
    let plan = FaultPlan::new();
    let json = plan.to_json();
    let back = FaultPlan::from_json(
        &elmem_util::json::JsonValue::parse(&json).expect("serialized plan parses"),
    )
    .expect("empty plan converts");
    assert_eq!(back.to_json(), json);
}
