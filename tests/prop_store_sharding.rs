//! Sharding-equivalence harness (the tentpole's correctness argument,
//! DESIGN.md §14): the sharded [`SlabStore`] at *any* shard count is
//! observationally byte-identical to the unsharded store, and the `Sync`
//! [`ConcurrentSlabStore`] facade, driven one op at a time under a seeded
//! thread interleaving, matches the serial facade exactly.
//!
//! Op sequences cover set / get / delete / TTL-expiry / eviction (the
//! stores are sized so hot classes overflow their pages) / batch_import.

use elmem_store::{ConcurrentSlabStore, ImportMode, ItemMeta, SizeClasses, SlabStore, StoreConfig};
use elmem_util::{ByteSize, DetRng, KeyId, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Set { key: u64, size: u32 },
    SetTtl { key: u64, size: u32, ttl: u64 },
    Get { key: u64 },
    Touch { key: u64, ttl: u64 },
    Delete { key: u64 },
    Crawl { budget: u64 },
    Import { base: u64, n: u64 },
}

/// Sizes land in the ladder's three classes (2048/4096/8192); the store
/// below holds 3 pages, so a busy class fills its page and evicts.
fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..150, 1u32..6000).prop_map(|(key, size)| Op::Set { key, size }),
        (0u64..150, 1u32..6000, 1u64..400).prop_map(|(key, size, ttl)| Op::SetTtl {
            key,
            size,
            ttl
        }),
        (0u64..150).prop_map(|key| Op::Get { key }),
        (0u64..150, 1u64..400).prop_map(|(key, ttl)| Op::Touch { key, ttl }),
        (0u64..150).prop_map(|key| Op::Delete { key }),
        (1u64..40).prop_map(|budget| Op::Crawl { budget }),
        (0u64..20, 1u64..30).prop_map(|(base, n)| Op::Import { base, n }),
    ]
}

fn store(shards: usize) -> SlabStore {
    SlabStore::new(StoreConfig {
        memory: ByteSize::from_mib(3),
        classes: SizeClasses::new(2048, 2.0, 8192),
        shards,
    })
}

/// The batch an `Import` op carries: fresh hot keys (disjoint from the
/// set/get key range), hottest first, all in the smallest class. Derived
/// purely from the op and the clock so every store sees the same batch.
fn import_batch(base: u64, n: u64, now: SimTime) -> Vec<ItemMeta> {
    (0..n)
        .map(|i| ItemMeta {
            key: KeyId(10_000 + base * 100 + i),
            value_size: 10,
            last_access: now.checked_add(SimTime::from_millis(n - i)).unwrap(),
            expires: SimTime::MAX,
        })
        .collect()
}

fn apply(s: &mut SlabStore, op: &Op, now: SimTime) {
    match *op {
        Op::Set { key, size } => {
            let _ = s.set(KeyId(key), size, now);
        }
        Op::SetTtl { key, size, ttl } => {
            let _ = s.set_with_ttl(KeyId(key), size, now, SimTime::from_millis(ttl));
        }
        Op::Get { key } => {
            let _ = s.get(KeyId(key), now);
        }
        Op::Touch { key, ttl } => {
            let _ = s.touch(KeyId(key), now, SimTime::from_millis(ttl));
        }
        Op::Delete { key } => {
            let _ = s.delete(KeyId(key));
        }
        Op::Crawl { budget } => {
            let _ = s.crawl_expired(now, budget);
        }
        Op::Import { base, n } => {
            let batch = import_batch(base, n, now);
            let class = s.classes().class_for(batch[0].footprint()).unwrap();
            let _ = s.batch_import(class, &batch, ImportMode::Merge);
        }
    }
}

/// Everything the store exposes, as one comparable string: the canonical
/// dump, op counters, per-class occupancy/pressure/median, and the page
/// accounting.
fn fingerprint(s: &SlabStore) -> String {
    let per_class: Vec<_> = s
        .classes()
        .ids()
        .map(|c| {
            (
                c,
                s.len_of_class(c),
                s.pages_of_class(c),
                s.free_chunks_of_class(c),
                s.eviction_pressure(c),
                s.median_hotness(c),
            )
        })
        .collect();
    format!(
        "{:?}|{:?}|{:?}|{}|{}|{}|{:?}",
        s.dump_metadata(),
        s.stats(),
        per_class,
        s.len(),
        s.bytes_used(),
        s.pages_used(),
        s.page_weights(),
    )
}

proptest! {
    /// Tentpole claim: sharded(N) == unsharded for N ∈ {1, 2, 4, 8}, for
    /// arbitrary op sequences — dumps, stats, audits, medians, page
    /// accounting, all byte-identical.
    #[test]
    fn sharded_store_matches_unsharded_reference(
        ops in prop::collection::vec(op_strategy(), 1..300),
    ) {
        let mut reference = store(1);
        for (i, op) in ops.iter().enumerate() {
            apply(&mut reference, op, SimTime::from_millis(7 * (i as u64 + 1)));
        }
        reference.audit().unwrap();
        let want = fingerprint(&reference);
        for shards in [2usize, 4, 8] {
            let mut s = store(shards);
            for (i, op) in ops.iter().enumerate() {
                apply(&mut s, op, SimTime::from_millis(7 * (i as u64 + 1)));
            }
            s.audit().unwrap();
            prop_assert_eq!(
                &fingerprint(&s),
                &want,
                "sharded({}) diverged from the unsharded store",
                shards
            );
        }
    }

    /// Planning fan-out claim: the per-shard dump path migration planning
    /// uses reassembles to the exact serial dump, at any job count.
    #[test]
    fn per_shard_dumps_merge_to_canonical_dump(
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let mut s = store(8);
        for (i, op) in ops.iter().enumerate() {
            apply(&mut s, op, SimTime::from_millis(7 * (i as u64 + 1)));
        }
        let full = s.dump_metadata();
        let parts: Vec<_> = (0..s.shard_count()).map(|i| s.dump_shard_classes(i)).collect();
        prop_assert_eq!(&s.merge_shard_dumps(&parts), &full);
        for jobs in [1usize, 3, 8] {
            prop_assert_eq!(&s.dump_metadata_par(jobs), &full);
        }
    }

    /// Concurrent-facade claim: under a seeded interleaving of per-thread
    /// op streams, applied one op at a time (every thread order is a legal
    /// schedule of the real facade), the concurrent store returns the same
    /// results as the serial facade and converges to the identical state.
    #[test]
    fn concurrent_facade_matches_serial_under_seeded_interleaving(
        streams in prop::collection::vec(
            prop::collection::vec(op_strategy(), 1..60),
            1..5,
        ),
        seed in any::<u64>(),
    ) {
        let mut serial = store(4);
        let conc = ConcurrentSlabStore::from_serial(store(4));
        let mut rng = DetRng::seed(seed);
        let mut cursors = vec![0usize; streams.len()];
        let mut step = 0u64;
        loop {
            let live: Vec<usize> = (0..streams.len())
                .filter(|&t| cursors[t] < streams[t].len())
                .collect();
            let Some(&t) = live.get(rng.next_below(live.len().max(1) as u64) as usize)
            else {
                break;
            };
            let op = &streams[t][cursors[t]];
            cursors[t] += 1;
            step += 1;
            let now = SimTime::from_millis(7 * step);
            match *op {
                Op::Set { key, size } => {
                    prop_assert_eq!(
                        serial.set(KeyId(key), size, now).is_ok(),
                        conc.set(KeyId(key), size, now).is_ok()
                    );
                }
                Op::SetTtl { key, size, ttl } => {
                    let ttl = SimTime::from_millis(ttl);
                    prop_assert_eq!(
                        serial.set_with_ttl(KeyId(key), size, now, ttl).is_ok(),
                        conc.set_with_ttl(KeyId(key), size, now, ttl).is_ok()
                    );
                }
                Op::Get { key } => {
                    prop_assert_eq!(serial.get(KeyId(key), now), conc.get(KeyId(key), now));
                }
                Op::Touch { key, ttl } => {
                    let ttl = SimTime::from_millis(ttl);
                    prop_assert_eq!(
                        serial.touch(KeyId(key), now, ttl),
                        conc.touch(KeyId(key), now, ttl)
                    );
                }
                Op::Delete { key } => {
                    prop_assert_eq!(serial.delete(KeyId(key)), conc.delete(KeyId(key)));
                }
                // Crawl and batch-import are serial-only surface
                // (quiesce-point ops, DESIGN.md §14): no-ops here.
                Op::Crawl { .. } | Op::Import { .. } => {}
            }
        }
        let conc = conc.into_serial();
        serial.audit().unwrap();
        conc.audit().unwrap();
        prop_assert_eq!(serial.stats(), conc.stats());
        prop_assert_eq!(&fingerprint(&conc), &fingerprint(&serial));
    }
}
