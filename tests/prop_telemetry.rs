//! Property tests for the telemetry primitives: the log-bucketed latency
//! histogram's merge is associative and commutative (merging dumps from
//! different nodes in any order gives the same tier-wide histogram), its
//! quantiles are monotone, the reported quantile overshoots the exact
//! nearest-rank value by at most one bucket width, and an end-to-end run
//! records exactly one request-latency sample per request served.

use elmem::cluster::ClusterConfig;
use elmem::core::migration::MigrationCosts;
use elmem::core::{
    run_experiment_with_telemetry, ExperimentConfig, FaultPlan, MigrationPolicy, ScaleAction,
};
use elmem::util::telemetry::{bucket_index, bucket_width};
use elmem::util::{LatencyHistogram, SimTime, TelemetryConfig};
use elmem::workload::{DemandTrace, Keyspace, WorkloadConfig};
use proptest::collection::vec;
use proptest::prelude::*;

fn histogram(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Latency-like values spanning the whole bucket layout: sub-microsecond
/// to ~18 s, plus the u64 extremes.
fn value() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        1_000u64..1_000_000,
        1_000_000u64..60_000_000_000,
        Just(u64::MAX),
    ]
}

proptest! {
    #[test]
    fn merge_is_commutative(a in vec(value(), 0..200), b in vec(value(), 0..200)) {
        let (ha, hb) = (histogram(&a), histogram(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.to_json(), ba.to_json());
    }

    #[test]
    fn merge_is_associative(
        a in vec(value(), 0..150),
        b in vec(value(), 0..150),
        c in vec(value(), 0..150),
    ) {
        let (ha, hb, hc) = (histogram(&a), histogram(&b), histogram(&c));
        // (a ∪ b) ∪ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ∪ (b ∪ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // And both equal recording the concatenation directly.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&left, &histogram(&all));
    }

    #[test]
    fn quantiles_are_monotone(values in vec(value(), 1..300)) {
        let h = histogram(&values);
        let qs: Vec<u64> = (0..=20).map(|i| h.value_at_quantile(i as f64 / 20.0)).collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone: {:?}", qs);
        }
        prop_assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
        prop_assert!(h.p99() <= h.max());
    }

    #[test]
    fn merged_quantile_error_is_within_one_bucket(
        a in vec(value(), 1..200),
        b in vec(value(), 1..200),
        q_milli in 0u64..=1000,
    ) {
        let q = q_milli as f64 / 1000.0;
        let mut merged = histogram(&a);
        merged.merge(&histogram(&b));
        // Exact nearest-rank quantile over the combined samples.
        let mut all: Vec<u64> = a.iter().chain(&b).copied().collect();
        all.sort_unstable();
        let rank = ((q * all.len() as f64).ceil() as usize).clamp(1, all.len());
        let exact = all[rank - 1];
        let approx = merged.value_at_quantile(q);
        prop_assert!(
            approx >= exact,
            "bucket upper bound must not undershoot: approx {approx} < exact {exact}"
        );
        prop_assert!(
            approx - exact <= bucket_width(bucket_index(exact)),
            "overshoot {} exceeds one bucket width {} at value {exact}",
            approx - exact,
            bucket_width(bucket_index(exact))
        );
    }
}

fn tiny_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        cluster: ClusterConfig::small_test(),
        workload: WorkloadConfig {
            keyspace: Keyspace::new(5_000, 3),
            zipf_exponent: 1.0,
            items_per_request: 2,
            peak_rate: 100.0,
            trace: DemandTrace::new(vec![1.0; 3], SimTime::from_secs(5)),
        },
        policy: MigrationPolicy::elmem(),
        autoscaler: None,
        scheduled: vec![(SimTime::from_secs(8), ScaleAction::In { count: 1 })],
        prefill_top_ranks: 2_000,
        costs: MigrationCosts::default(),
        faults: FaultPlan::new(),
        healing: None,
        master: Default::default(),
        seed,
    }
}

proptest! {
    // End-to-end runs are comparatively slow; a handful of seeds suffices
    // for a bookkeeping identity.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn request_histogram_count_equals_requests_issued(seed in 0u64..1_000) {
        let r = run_experiment_with_telemetry(tiny_config(seed), TelemetryConfig::default());
        prop_assert_eq!(r.telemetry.request_rt.count(), r.total_requests);
        // Every lookup lands in exactly one per-command histogram.
        let lookups: u64 = r.telemetry.series.iter().map(|p| p.lookups).sum();
        prop_assert_eq!(
            r.telemetry.get_hit.count()
                + r.telemetry.get_miss.count()
                + r.telemetry.timeout_path.count(),
            lookups
        );
        let requests: u64 = r.telemetry.series.iter().map(|p| p.requests).sum();
        prop_assert_eq!(requests, r.total_requests);
    }
}
