//! Edge cases and failure injection across the scaling control plane:
//! empty victims, expired-only victims, minimum-size tiers, saturated
//! destinations, and repeated scalings down to one node and back.

use elmem::cluster::{Cluster, ClusterConfig};
use elmem::core::master::Master;
use elmem::core::migration::{migrate_scale_in, migrate_scale_out, MigrationCosts};
use elmem::core::MigrationPolicy;
use elmem::store::ImportMode;
use elmem::util::{ByteSize, DetRng, ElmemError, KeyId, NodeId, SimTime};
use elmem::workload::{GeneralizedPareto, Keyspace};

fn cluster() -> Cluster {
    Cluster::new(
        ClusterConfig::small_test(),
        Keyspace::with_distribution(50_000, 1, GeneralizedPareto::facebook_etc(), 4_000),
        DetRng::seed(3),
    )
}

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

#[test]
fn migrating_an_empty_victim_is_a_clean_noop() {
    let mut c = cluster();
    // Warm only nodes 1..3; node 0 stays empty.
    for k in 0..1000u64 {
        let key = KeyId(k);
        let owner = c.tier.node_for_key(key).unwrap();
        if owner != NodeId(0) {
            let size = c.keyspace().value_size(key);
            c.tier
                .node_mut(owner)
                .unwrap()
                .store
                .set(key, size, t(1 + k))
                .unwrap();
        }
    }
    let before = c.tier.total_items();
    let report = migrate_scale_in(
        &mut c.tier,
        &[NodeId(0)],
        t(10_000),
        &MigrationCosts::default(),
        ImportMode::Merge,
    )
    .unwrap();
    assert_eq!(report.items_migrated, 0);
    assert_eq!(report.items_considered, 0);
    assert_eq!(report.metadata_bytes, ByteSize::ZERO);
    c.tier.commit_remove(&[NodeId(0)]).unwrap();
    assert_eq!(c.tier.total_items(), before, "nothing lost, nothing moved");
}

#[test]
fn expired_only_victim_migrates_then_expires_everywhere() {
    let mut c = cluster();
    // Node contents that are all already past their TTL at migration time.
    for k in 0..500u64 {
        let key = KeyId(k);
        let owner = c.tier.node_for_key(key).unwrap();
        let size = c.keyspace().value_size(key);
        c.tier
            .node_mut(owner)
            .unwrap()
            .store
            .set_with_ttl(key, size, t(1 + k), SimTime::from_secs(10))
            .unwrap();
    }
    // Migrate long after everything expired. The dump still carries the
    // items (lazy expiry), but once anything touches them they die.
    migrate_scale_in(
        &mut c.tier,
        &[NodeId(0)],
        t(100_000),
        &MigrationCosts::default(),
        ImportMode::Merge,
    )
    .unwrap();
    c.tier.commit_remove(&[NodeId(0)]).unwrap();
    // Every key is a miss (lazy reclamation at lookup).
    let mut hits = 0;
    for k in 0..500u64 {
        let owner = c.tier.node_for_key(KeyId(k)).unwrap();
        if c.tier
            .node_mut(owner)
            .unwrap()
            .store
            .get(KeyId(k), t(100_010))
            .is_some()
        {
            hits += 1;
        }
    }
    assert_eq!(hits, 0, "expired items must not resurrect via migration");
}

#[test]
fn two_node_tier_can_only_lose_one() {
    let mut config = ClusterConfig::small_test();
    config.initial_nodes = 2;
    let mut c = Cluster::new(
        config,
        Keyspace::with_distribution(1_000, 1, GeneralizedPareto::facebook_etc(), 4_000),
        DetRng::seed(4),
    );
    let mut m = Master::new(MigrationPolicy::elmem(), MigrationCosts::default(), 1);
    assert!(m.scale_in(&mut c, 2, t(10)).is_err());
    let orch = m.scale_in(&mut c, 1, t(10)).unwrap();
    for d in &orch.deferred {
        Master::apply(&mut c, &d.kind);
    }
    assert_eq!(c.tier.membership().len(), 1);
    // The last node cannot be retired.
    assert!(m.scale_in(&mut c, 1, t(10_000)).is_err());
}

#[test]
fn saturated_destination_still_only_keeps_hottest() {
    // Destinations already at capacity with HOT items: a migration of
    // colder victim data must not displace them.
    let mut c = cluster();
    // Fill everything hot (recent timestamps).
    for k in 0..120_000u64 {
        let key = KeyId(k % 50_000);
        let owner = c.tier.node_for_key(key).unwrap();
        let size = c.keyspace().value_size(key);
        let _ = c
            .tier
            .node_mut(owner)
            .unwrap()
            .store
            .set(key, size, t(1_000_000 + k));
    }
    // Make the victim's items cold: rewrite its contents with old stamps.
    let victim = NodeId(2);
    let victim_keys: Vec<KeyId> = c
        .tier
        .node(victim)
        .unwrap()
        .store
        .iter()
        .map(|i| i.key)
        .collect();
    for (i, &key) in victim_keys.iter().enumerate() {
        let size = c.keyspace().value_size(key);
        // Rebuild with ancient timestamps (cold).
        c.tier.node_mut(victim).unwrap().store.delete(key);
        c.tier
            .node_mut(victim)
            .unwrap()
            .store
            .set(key, size, t(1 + i as u64))
            .unwrap();
    }
    // Snapshot of every retained node's resident keys before migration.
    let pre_keys: Vec<(NodeId, Vec<KeyId>)> = c
        .tier
        .membership()
        .members()
        .iter()
        .filter(|&&id| id != victim)
        .map(|&id| {
            let store = &c.tier.node(id).unwrap().store;
            (id, store.iter().map(|i| i.key).collect())
        })
        .collect();
    migrate_scale_in(
        &mut c.tier,
        &[victim],
        t(2_000_000),
        &MigrationCosts::default(),
        ImportMode::Merge,
    )
    .unwrap();
    c.tier.commit_remove(&[victim]).unwrap();
    // Every import is colder than every resident, so FuseCache must not
    // displace a single pre-existing item — and lists must stay sorted.
    for (id, keys) in pre_keys {
        let store = &c.tier.node(id).unwrap().store;
        for key in keys {
            assert!(
                store.contains(key),
                "hot resident {key} on {id} displaced by a cold import"
            );
        }
        let dump_sorted = store
            .dump_metadata()
            .classes
            .iter()
            .all(|d| d.items.windows(2).all(|w| w[0].hotness() >= w[1].hotness()));
        assert!(dump_sorted, "{id} lists must stay hotness-sorted");
    }
}

#[test]
fn repeated_scale_in_and_out_round_trip() {
    let mut c = cluster();
    for k in 0..2000u64 {
        let key = KeyId(k);
        let owner = c.tier.node_for_key(key).unwrap();
        let size = c.keyspace().value_size(key);
        c.tier
            .node_mut(owner)
            .unwrap()
            .store
            .set(key, size, t(1 + k))
            .unwrap();
    }
    let mut m = Master::new(MigrationPolicy::elmem(), MigrationCosts::default(), 2);
    let mut now = t(10_000);
    // 4 → 2 → 4 → 2.
    for (action, count) in [("in", 2u32), ("out", 2), ("in", 2)] {
        let orch = if action == "in" {
            m.scale_in(&mut c, count, now).unwrap()
        } else {
            m.scale_out(&mut c, count, now).unwrap()
        };
        for d in &orch.deferred {
            Master::apply(&mut c, &d.kind);
        }
        now = orch.committed_at + t(100);
    }
    assert_eq!(c.tier.membership().len(), 2);
    // Every originally-cached key that survived the shrink to 2 nodes is
    // reachable through the current membership; verify repeat-hit behavior.
    let mut hits = 0;
    for k in 0..2000u64 {
        let (_, hit1) = c.lookup_and_fill(KeyId(k), now);
        let (_, hit2) = c.lookup_and_fill(KeyId(k), now + SimTime::from_millis(1));
        assert!(hit2 || !hit1, "a hit key cannot immediately miss");
        if hit1 {
            hits += 1;
        }
        now += SimTime::from_millis(2);
    }
    assert!(hits > 0, "the tier should still be warm");
}

#[test]
fn scale_out_with_no_provisioned_nodes_rejected() {
    let mut c = cluster();
    let err = migrate_scale_out(&mut c.tier, &[], t(1), &MigrationCosts::default());
    assert!(matches!(err, Err(ElmemError::InvalidScaling(_))));
}
