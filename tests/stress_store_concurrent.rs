//! Real-thread stress harness for [`ConcurrentSlabStore`]: 4–8 OS threads
//! hammer disjoint *and* overlapping key ranges, then the store must pass
//! a full [`SlabStore::audit`] — exact item/byte conservation, no lost
//! updates, no double-frees — and the op counters must reconcile exactly
//! against what the threads report they did.
//!
//! The default test is CI-sized (seconds). The `#[ignore]`-gated full mode
//! (`cargo test --test stress_store_concurrent -- --ignored`) runs 8
//! threads against a store small enough to keep the eviction slow path
//! (page grants + global-LRU scans under the alloc lock) continuously hot.

use std::sync::Arc;
use std::thread;

use elmem_store::{ConcurrentSlabStore, SizeClasses, SlabStore, StoreConfig};
use elmem_util::{ByteSize, DetRng, KeyId, SimTime};

/// What one worker claims it did; reconciled against `StoreStats`.
#[derive(Debug, Default)]
struct WorkerTally {
    lookups: u64,
    hits: u64,
    sets_ok: u64,
    deletes_hit: u64,
}

/// Runs `threads` workers over a shared store. Each worker owns a disjoint
/// key range (its writes there are uncontended and fully deterministic) and
/// also fights every other worker over a small shared range.
fn hammer(store: &Arc<ConcurrentSlabStore>, threads: u64, ops_per_thread: u64) -> WorkerTally {
    let mut handles = Vec::new();
    for t in 0..threads {
        let store = Arc::clone(store);
        handles.push(thread::spawn(move || {
            let mut rng = DetRng::seed(0xE1_5E_ED).split_index(t);
            let mut tally = WorkerTally::default();
            let own_base = 1_000_000 * (t + 1);
            // Small enough that the CI store conserves everything, large
            // enough that the full-mode store must evict.
            let own_keys = ops_per_thread / 10 + 1;
            for i in 0..ops_per_thread {
                let now = SimTime::from_millis(i + 1);
                match rng.next_below(10) {
                    // 50%: write own range (sizes span two classes).
                    0..=4 => {
                        let key = KeyId(own_base + rng.next_below(own_keys));
                        let size = 10 + (rng.next_below(3000)) as u32;
                        if store.set(key, size, now).is_ok() {
                            tally.sets_ok += 1;
                        }
                    }
                    // 20%: read own range.
                    5 | 6 => {
                        let key = KeyId(own_base + rng.next_below(own_keys));
                        tally.lookups += 1;
                        if store.get(key, now).is_some() {
                            tally.hits += 1;
                        }
                    }
                    // 20%: fight over the shared range.
                    7 | 8 => {
                        let key = KeyId(rng.next_below(64));
                        if rng.next_below(2) == 0 {
                            if store.set(key, 10, now).is_ok() {
                                tally.sets_ok += 1;
                            }
                        } else {
                            tally.lookups += 1;
                            if store.get(key, now).is_some() {
                                tally.hits += 1;
                            }
                        }
                    }
                    // 10%: delete from either range.
                    _ => {
                        let key = if rng.next_below(2) == 0 {
                            KeyId(own_base + rng.next_below(own_keys))
                        } else {
                            KeyId(rng.next_below(64))
                        };
                        if store.delete(key) {
                            tally.deletes_hit += 1;
                        }
                    }
                }
            }
            tally
        }));
    }
    let mut total = WorkerTally::default();
    for h in handles {
        let t = h.join().expect("worker panicked");
        total.lookups += t.lookups;
        total.hits += t.hits;
        total.sets_ok += t.sets_ok;
        total.deletes_hit += t.deletes_hit;
    }
    total
}

/// Full conservation check: internal audit plus exact reconciliation of
/// the op counters against the workers' own tallies.
fn check_conservation(store: Arc<ConcurrentSlabStore>, tally: &WorkerTally) -> SlabStore {
    let stats = store.stats();
    assert_eq!(stats.sets, tally.sets_ok, "a successful set was lost");
    assert_eq!(stats.deletes, tally.deletes_hit, "a delete hit was lost");
    assert_eq!(
        stats.hits + stats.misses,
        tally.lookups,
        "a lookup was double-counted or dropped"
    );
    assert_eq!(stats.hits, tally.hits, "hit counts diverge");
    let serial = Arc::try_unwrap(store)
        .expect("all workers joined")
        .into_serial();
    // The audit walks every shard list and the index: item counts, byte
    // sums, free-list integrity, stamp monotonicity, page accounting.
    serial.audit().expect("post-stress audit");
    assert_eq!(serial.len(), serial.iter().count() as u64);
    serial
}

#[test]
fn stress_ci_four_threads() {
    // Big enough that nothing evicts: every conserved item is accounted.
    let store = Arc::new(ConcurrentSlabStore::new(StoreConfig {
        memory: ByteSize::from_mib(64),
        classes: SizeClasses::new(2048, 2.0, 8192),
        shards: 8,
    }));
    let tally = hammer(&store, 4, 20_000);
    let serial = check_conservation(store, &tally);
    assert_eq!(serial.stats().evictions, 0, "sized to never evict");
}

#[test]
#[ignore = "full-size stress: run with -- --ignored"]
fn stress_full_eight_threads_under_eviction() {
    // 4 pages for ~400k writes across two classes: the alloc slow path
    // (grants, then global-LRU evictions) runs for almost every insert.
    let store = Arc::new(ConcurrentSlabStore::new(StoreConfig {
        memory: ByteSize::from_mib(4),
        classes: SizeClasses::new(2048, 2.0, 8192),
        shards: 8,
    }));
    let tally = hammer(&store, 8, 100_000);
    let serial = check_conservation(store, &tally);
    assert!(
        serial.stats().evictions > 0,
        "sized to evict continuously; the slow path never ran"
    );
}
