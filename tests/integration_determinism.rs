//! Whole-system determinism: identical seeds give bit-identical runs;
//! different seeds differ. This is what makes every experiment in
//! EXPERIMENTS.md reproducible with a single command.

use elmem::cluster::ClusterConfig;
use elmem::core::migration::MigrationCosts;
use elmem::core::{
    run_experiment, run_experiment_with_telemetry, ExperimentConfig, FaultPlan, MigrationPolicy,
    ScaleAction,
};
use elmem::util::{SimTime, TelemetryConfig};
use elmem::workload::{Keyspace, TraceKind, WorkloadConfig};

fn config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        cluster: ClusterConfig::small_test(),
        workload: WorkloadConfig {
            keyspace: Keyspace::new(20_000, 4),
            zipf_exponent: 0.95,
            items_per_request: 4,
            peak_rate: 150.0,
            trace: TraceKind::FacebookEtc.demand_trace(),
        },
        policy: MigrationPolicy::elmem(),
        autoscaler: None,
        scheduled: vec![
            (SimTime::from_secs(600), ScaleAction::In { count: 1 }),
            (SimTime::from_secs(1800), ScaleAction::Out { count: 1 }),
        ],
        prefill_top_ranks: 10_000,
        costs: MigrationCosts::default(),
        faults: FaultPlan::new(),
        healing: None,
        master: Default::default(),
        seed,
    }
}

#[test]
fn same_seed_identical_results() {
    let a = run_experiment(config(99));
    let b = run_experiment(config(99));
    assert_eq!(a.timeline, b.timeline);
    assert_eq!(a.total_requests, b.total_requests);
    assert_eq!(a.final_members, b.final_members);
    assert_eq!(a.events.len(), b.events.len());
    for (ea, eb) in a.events.iter().zip(&b.events) {
        assert_eq!(ea, eb);
    }
}

#[test]
fn same_seed_identical_telemetry_dumps() {
    // The full observability surface — event stream, latency histograms,
    // counter series, per-node rows — must be byte-identical across two
    // runs of the same seed, with request tracing on so the stream also
    // carries one event per served request.
    let tcfg = TelemetryConfig {
        trace_requests: true,
        ..TelemetryConfig::default()
    };
    let a = run_experiment_with_telemetry(config(99), tcfg);
    let b = run_experiment_with_telemetry(config(99), tcfg);
    assert_eq!(a.telemetry, b.telemetry);
    assert_eq!(a.telemetry.to_json(), b.telemetry.to_json());
    assert!(
        a.telemetry.recorded_events > 0,
        "request tracing must populate the stream"
    );
}

#[test]
fn concurrent_runs_are_byte_identical_to_serial() {
    // The sweep harness's foundational claim, checked here at the system
    // level without the harness itself: experiments share no state, so
    // running them on concurrent threads — different seeds racing each
    // other — reproduces the serial runs bit for bit, telemetry dump
    // included. (The harness's own scheduling test lives with
    // `elmem-bench::sweep`; this guards the experiment side.)
    let seeds = [11u64, 12, 13, 14];
    let serial: Vec<String> = seeds
        .iter()
        .map(|&s| {
            run_experiment_with_telemetry(config(s), TelemetryConfig::default())
                .telemetry
                .to_json()
        })
        .collect();
    let concurrent: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&s| {
                scope.spawn(move || {
                    run_experiment_with_telemetry(config(s), TelemetryConfig::default())
                        .telemetry
                        .to_json()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(serial, concurrent);
}

#[test]
fn different_seeds_differ() {
    let a = run_experiment(config(1));
    let b = run_experiment(config(2));
    assert_ne!(
        a.total_requests, b.total_requests,
        "different seeds should give different arrival counts"
    );
}

#[test]
fn both_scheduled_actions_execute() {
    let r = run_experiment(config(7));
    assert_eq!(r.events.len(), 2);
    assert!(r.events[0].to_nodes < r.events[0].from_nodes); // scale-in
    assert!(r.events[1].to_nodes > r.events[1].from_nodes); // scale-out
    assert_eq!(r.final_members, 4);
}
