//! Property test for journal replay idempotence (DESIGN.md §13): a
//! migration interrupted by a Master crash at *any* point and resumed
//! from the durable journal must leave every store identical to the same
//! migration run uninterrupted — across warm states, seeds, and crash
//! points, including a second crash during the resume — and every sealed
//! shipment must be applied exactly once (re-deliveries suppressed by the
//! Agents' import ledgers, never imported twice).

use elmem::cluster::{Cluster, ClusterConfig};
use elmem::core::migration::{migrate_scale_in_journaled, MigrationCosts, Supervision};
use elmem::core::{MasterPlan, MigrationJournal};
use elmem::store::ImportMode;
use elmem::util::{DetRng, KeyId, NodeId, SimTime};
use elmem::workload::{GeneralizedPareto, Keyspace};
use proptest::prelude::*;

const NOW: SimTime = SimTime::from_secs(200_000);
const VICTIM: NodeId = NodeId(0);

fn warmed_cluster(accesses: &[u64], seed: u64) -> Cluster {
    let mut cluster = Cluster::new(
        ClusterConfig::small_test(),
        Keyspace::with_distribution(10_000, seed, GeneralizedPareto::facebook_etc(), 4_000),
        DetRng::seed(seed),
    );
    // Uniform item size → one slab class; strictly increasing access
    // times → a total MRU order, so equality below is exact.
    let mut now = SimTime::from_secs(1);
    for &k in accesses {
        let key = KeyId(k);
        let owner = cluster.tier.node_for_key(key).unwrap();
        cluster
            .tier
            .node_mut(owner)
            .unwrap()
            .store
            .set(key, 64, now)
            .unwrap();
        now += SimTime::from_secs(1);
    }
    cluster
}

/// Per-node resident items as `(key, value_size, last_access)`, sorted.
type Fingerprint = Vec<(NodeId, Vec<(KeyId, u32, SimTime)>)>;

/// Every member's resident items — the store-content equality the resume
/// protocol must preserve.
fn fingerprint(cluster: &Cluster) -> Fingerprint {
    let mut members: Vec<NodeId> = cluster.tier.membership().members().to_vec();
    members.sort();
    members
        .into_iter()
        .map(|id| {
            let store = &cluster.tier.node(id).unwrap().store;
            let mut items: Vec<(KeyId, u32, SimTime)> = store
                .iter()
                .map(|i| (i.key, i.value_size, i.last_access))
                .collect();
            items.sort();
            (id, items)
        })
        .collect()
}

/// Runs the journaled scale-in of [`VICTIM`] under `master`, returning the
/// report and the journal.
fn run_journaled(
    cluster: &mut Cluster,
    master: MasterPlan,
) -> (elmem::core::migration::MigrationReport, MigrationJournal) {
    let mut supervision = Supervision::none();
    supervision.master = master;
    let mut journal = MigrationJournal::new();
    let report = migrate_scale_in_journaled(
        &mut cluster.tier,
        &[VICTIM],
        NOW,
        &MigrationCosts::default(),
        ImportMode::Merge,
        &mut supervision,
        &mut journal,
        0,
    )
    .expect("journaled migration runs");
    (report, journal)
}

/// Total sealed shipments vs. total ledger applications across survivors:
/// exactly-once delivery, no shipment lost, none applied twice.
fn assert_exactly_once(cluster: &Cluster, journal: &MigrationJournal) {
    let replay = journal.replay(0);
    assert!(replay.committed, "interrupted migration must still commit");
    let manifest = replay.manifest.expect("plan sealed");
    assert_eq!(
        replay.acked.len(),
        manifest.len(),
        "every sealed shipment must be durably acked"
    );
    let applied: usize = cluster
        .tier
        .membership()
        .members()
        .iter()
        .map(|&id| cluster.tier.node(id).unwrap().import_ledger().len())
        .sum();
    assert_eq!(
        applied,
        manifest.len(),
        "each sealed shipment must be applied exactly once"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn resume_is_byte_identical_to_uninterrupted(
        accesses in prop::collection::vec(0u64..3000, 50..600),
        crash_frac in 1u64..1000,
        seed in 0u64..100,
    ) {
        // Uninterrupted reference run.
        let mut clean = warmed_cluster(&accesses, seed);
        let (clean_report, _) = run_journaled(&mut clean, MasterPlan::default());
        prop_assert!(clean_report.outcome.is_completed());
        let span = clean_report.completed.saturating_sub(NOW);

        // Same warm state, crashed part-way and resumed from the journal.
        let crash = NOW + SimTime::from_nanos(span.as_nanos() * crash_frac / 1000);
        let mut crashed = warmed_cluster(&accesses, seed);
        let (report, journal) = run_journaled(
            &mut crashed,
            MasterPlan {
                crashes: vec![crash],
                ..MasterPlan::default()
            },
        );
        prop_assert!(report.outcome.is_completed());
        prop_assert_eq!(report.resumes.len(), 1, "the crash must interrupt the run");
        prop_assert_eq!(report.items_migrated, clean_report.items_migrated);
        prop_assert_eq!(report.bytes_migrated, clean_report.bytes_migrated);
        prop_assert_eq!(fingerprint(&crashed), fingerprint(&clean));
        assert_exactly_once(&crashed, &journal);
    }

    #[test]
    fn resume_twice_equals_resume_once(
        accesses in prop::collection::vec(0u64..3000, 50..600),
        crash_frac in 1u64..900,
        seed in 0u64..100,
    ) {
        let mut clean = warmed_cluster(&accesses, seed);
        let (clean_report, _) = run_journaled(&mut clean, MasterPlan::default());
        let span = clean_report.completed.saturating_sub(NOW);

        // A second crash lands shortly after the first resume; whether it
        // interrupts again depends on how much work was left, and the
        // final state must be identical either way.
        let first = NOW + SimTime::from_nanos(span.as_nanos() * crash_frac / 1000);
        let second = first
            + MasterPlan::default().restart_delay
            + SimTime::from_nanos(span.as_nanos() / 20);
        let mut crashed = warmed_cluster(&accesses, seed);
        let (report, journal) = run_journaled(
            &mut crashed,
            MasterPlan {
                crashes: vec![first, second],
                ..MasterPlan::default()
            },
        );
        prop_assert!(report.outcome.is_completed());
        prop_assert!(!report.resumes.is_empty());
        prop_assert_eq!(report.items_migrated, clean_report.items_migrated);
        prop_assert_eq!(fingerprint(&crashed), fingerprint(&clean));
        assert_exactly_once(&crashed, &journal);
    }
}

/// A pinned double-interruption: both crashes land inside the migration,
/// so the journal provably resumes twice — and the outcome still matches
/// the uninterrupted run exactly.
#[test]
fn pinned_double_crash_resumes_twice() {
    let accesses: Vec<u64> = (0..400).map(|i| (i * 7) % 3000).collect();
    let mut clean = warmed_cluster(&accesses, 13);
    let (clean_report, _) = run_journaled(&mut clean, MasterPlan::default());
    let span = clean_report.completed.saturating_sub(NOW);

    let first = NOW + SimTime::from_nanos(span.as_nanos() / 2);
    let second =
        first + MasterPlan::default().restart_delay + SimTime::from_nanos(span.as_nanos() / 4);
    let mut crashed = warmed_cluster(&accesses, 13);
    let (report, journal) = run_journaled(
        &mut crashed,
        MasterPlan {
            crashes: vec![first, second],
            ..MasterPlan::default()
        },
    );
    assert!(report.outcome.is_completed());
    assert_eq!(report.resumes.len(), 2, "both crashes interrupt");
    assert_eq!(fingerprint(&crashed), fingerprint(&clean));
    assert_exactly_once(&crashed, &journal);
}
