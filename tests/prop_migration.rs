//! Property test for the whole scale-in migration: for uniform-size items
//! (one slab class), the items surviving on each retained node must be
//! exactly the hottest ones among {its own residents} ∪ {victim items that
//! hash to it} that fit its capacity — FuseCache's §IV guarantee, verified
//! against a brute-force oracle on arbitrary warm states.

use std::collections::{HashMap, HashSet};

use elmem::cluster::{Cluster, ClusterConfig};
use elmem::core::migration::{migrate_scale_in, MigrationCosts};
use elmem::store::{Hotness, ImportMode};
use elmem::util::{DetRng, KeyId, NodeId, SimTime};
use elmem::workload::{GeneralizedPareto, Keyspace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn scale_in_keeps_exactly_the_per_target_hottest(
        // (key, access-order) pairs; duplicate keys = re-accesses.
        accesses in prop::collection::vec(0u64..3000, 50..800),
        victim_sel in 0u32..4,
        seed in 0u64..100,
    ) {
        let mut cluster = Cluster::new(
            ClusterConfig::small_test(),
            Keyspace::with_distribution(10_000, seed, GeneralizedPareto::facebook_etc(), 4_000),
            DetRng::seed(seed),
        );
        // Uniform item size → a single slab class everywhere.
        let mut now = SimTime::from_secs(1);
        for &k in &accesses {
            let key = KeyId(k);
            let owner = cluster.tier.node_for_key(key).unwrap();
            cluster
                .tier
                .node_mut(owner)
                .unwrap()
                .store
                .set(key, 64, now)
                .unwrap();
            now += SimTime::from_secs(1);
        }

        let victim = NodeId(victim_sel);
        let retained_ring = cluster.tier.membership().ring().without(&[victim]);

        // Oracle: per retained node, the expected surviving set.
        let mut pre: HashMap<NodeId, Vec<(Hotness, KeyId)>> = HashMap::new();
        let mut victim_items: Vec<(Hotness, KeyId)> = Vec::new();
        for &id in cluster.tier.membership().members() {
            let store = &cluster.tier.node(id).unwrap().store;
            for item in store.iter() {
                if id == victim {
                    victim_items.push((item.hotness(), item.key));
                } else {
                    pre.entry(id).or_default().push((item.hotness(), item.key));
                }
            }
        }
        let mut expected: HashMap<NodeId, HashSet<KeyId>> = HashMap::new();
        for (&id, residents) in &pre {
            // Candidates: own residents + victim items hashing here.
            let mut cand = residents.clone();
            for &(h, k) in &victim_items {
                if retained_ring.node_for(k) == Some(id) {
                    cand.push((h, k));
                }
            }
            cand.sort_by_key(|&(h, _)| std::cmp::Reverse(h));
            // Capacity: FuseCache selects the top n where n = max(own list
            // length, one page of chunks) — here stores are far below
            // capacity, so n = how many actually fit ≥ candidate count
            // unless the class is page-limited; recompute via the same rule.
            let store = &cluster.tier.node(id).unwrap().store;
            let class = store.classes().class_for(64 + 59).unwrap();
            let n = (residents.len() as u64)
                .max(store.classes().chunks_per_page(class))
                .min(cand.len() as u64) as usize;
            expected.insert(id, cand.into_iter().take(n).map(|(_, k)| k).collect());
        }

        // Run the real migration and flip.
        migrate_scale_in(
            &mut cluster.tier,
            &[victim],
            now + SimTime::from_secs(10),
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .unwrap();
        cluster.tier.commit_remove(&[victim]).unwrap();

        for (&id, want) in &expected {
            let store = &cluster.tier.node(id).unwrap().store;
            let got: HashSet<KeyId> = store.iter().map(|i| i.key).collect();
            prop_assert_eq!(
                &got,
                want,
                "node {} survivors diverge from the oracle",
                id
            );
        }
    }
}
