//! Event-ordering invariants over real end-to-end traces: the telemetry
//! stream of a crash-recovery run (the `integration_recovery` scenario)
//! and of a scheduled scale-in must be causally well-formed — every
//! migration phase end or abort follows its matching start, breaker
//! transitions walk only legal edges of the closed/open/half-open
//! automaton, a node is suspected before it is confirmed dead, and the
//! dumped stream is sorted by time.

use elmem::cluster::ClusterConfig;
use elmem::core::migration::MigrationCosts;
use elmem::core::{
    run_experiment_with_telemetry, ExperimentConfig, ExperimentResult, FaultPlan, HealingConfig,
    MigrationPolicy, ScaleAction,
};
use elmem::util::telemetry::{BreakerPhase, Event, EventKind, MigrationPhaseKind};
use elmem::util::{NodeId, SimTime, TelemetryConfig};
use elmem::workload::{DemandTrace, Keyspace, WorkloadConfig};
use std::collections::BTreeMap;

const CRASH_S: u64 = 30;
const RUN_SECS: usize = 13; // 13 × 10 s segments = 130 s

/// The `integration_recovery` scenario: one crash on the tiny warm tier.
fn crash_config(healing: Option<HealingConfig>) -> ExperimentConfig {
    ExperimentConfig {
        cluster: ClusterConfig::small_test(),
        workload: WorkloadConfig {
            keyspace: Keyspace::new(30_000, 2),
            zipf_exponent: 1.0,
            items_per_request: 3,
            peak_rate: 250.0,
            trace: DemandTrace::new(vec![1.0; RUN_SECS], SimTime::from_secs(10)),
        },
        policy: MigrationPolicy::elmem(),
        autoscaler: None,
        scheduled: vec![],
        prefill_top_ranks: 15_000,
        costs: MigrationCosts::default(),
        faults: FaultPlan::new().crash(SimTime::from_secs(CRASH_S), NodeId(1)),
        healing,
        master: Default::default(),
        seed: 2,
    }
}

fn run(cfg: ExperimentConfig) -> ExperimentResult {
    run_experiment_with_telemetry(cfg, TelemetryConfig::default())
}

/// The dumped stream is sorted by `(t_ns, seq)` with no dropped events
/// (these runs stay far under the default ring capacity).
fn assert_stream_well_formed(events: &[Event]) {
    for w in events.windows(2) {
        assert!(
            (w[0].at, w[0].seq) <= (w[1].at, w[1].seq),
            "events out of order: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
}

/// Every `MigrationPhaseEnd` / `MigrationAborted` must follow a still-open
/// matching `MigrationPhaseStart`, and phases of one kind never nest.
fn assert_phases_bracketed(events: &[Event]) -> usize {
    let mut open: BTreeMap<MigrationPhaseKind, u64> = BTreeMap::new();
    let mut pairs = 0;
    for e in events {
        match e.kind {
            EventKind::MigrationPhaseStart { phase } => {
                let slot = open.entry(phase).or_insert(0);
                assert_eq!(*slot, 0, "phase {phase:?} started twice without an end");
                *slot = 1;
            }
            EventKind::MigrationPhaseEnd { phase } => {
                let slot = open.entry(phase).or_insert(0);
                assert_eq!(*slot, 1, "phase {phase:?} ended without a start");
                *slot = 0;
                pairs += 1;
            }
            EventKind::MigrationAborted { phase, .. } => {
                let slot = open.entry(phase).or_insert(0);
                assert_eq!(*slot, 1, "abort inside phase {phase:?} that never started");
                *slot = 0;
            }
            _ => {}
        }
    }
    assert!(
        open.values().all(|&v| v == 0),
        "phases left open at end of run: {open:?}"
    );
    pairs
}

/// Breaker transitions must chain per node (each `from` equals the node's
/// previous `to`, starting closed) and walk only legal automaton edges.
fn assert_breaker_edges_legal(events: &[Event]) -> usize {
    let legal = |from: BreakerPhase, to: BreakerPhase| {
        matches!(
            (from, to),
            (BreakerPhase::Closed, BreakerPhase::Open)
                | (BreakerPhase::Open, BreakerPhase::HalfOpen)
                | (BreakerPhase::HalfOpen, BreakerPhase::Closed)
                | (BreakerPhase::HalfOpen, BreakerPhase::Open)
        )
    };
    let mut state: BTreeMap<NodeId, BreakerPhase> = BTreeMap::new();
    let mut seen = 0;
    for e in events {
        if let EventKind::BreakerTransition { from, to } = e.kind {
            let node = e.node.expect("breaker events carry their node");
            let prev = *state.entry(node).or_insert(BreakerPhase::Closed);
            assert_eq!(
                prev, from,
                "breaker chain broken on {node}: {prev:?} then {e:?}"
            );
            assert!(legal(from, to), "illegal breaker edge {from:?} -> {to:?}");
            state.insert(node, to);
            seen += 1;
        }
    }
    seen
}

#[test]
fn unhealed_crash_trace_has_legal_breaker_edges() {
    let r = run(crash_config(None));
    let events = &r.telemetry.events;
    assert_stream_well_formed(events);
    let flips = assert_breaker_edges_legal(events);
    assert_eq!(
        flips as u64, r.breaker_transitions,
        "the trace must carry every breaker transition the run counted"
    );
    assert!(
        flips >= 2,
        "the dead node's breaker must open and probe half-open"
    );
    // No detector, no control plane: the trace must not invent them.
    assert!(events.iter().all(|e| !matches!(
        e.kind,
        EventKind::Probe { .. }
            | EventKind::NodeSuspected
            | EventKind::NodeConfirmedDead
            | EventKind::MigrationPhaseStart { .. }
    )));
    // The crash itself is on the record, at the scheduled instant.
    let crash = events
        .iter()
        .find(|e| matches!(e.kind, EventKind::NodeCrashed))
        .expect("fault injection must be traced");
    assert_eq!(crash.at, SimTime::from_secs(CRASH_S));
    assert_eq!(crash.node, Some(NodeId(1)));
}

#[test]
fn warm_recovery_trace_orders_detection_before_recovery() {
    let r = run(crash_config(Some(HealingConfig::warm_replacement())));
    let events = &r.telemetry.events;
    assert_stream_well_formed(events);
    assert_breaker_edges_legal(events);
    let pairs = assert_phases_bracketed(events);
    assert_eq!(pairs, 3, "the warmup migration runs all three phases");

    // Causal chain: crash -> suspicion -> confirmation -> warmup phases ->
    // recovery, in trace order on the victim.
    let pos = |pred: &dyn Fn(&Event) -> bool| {
        events
            .iter()
            .position(pred)
            .expect("expected event missing from trace")
    };
    let crashed = pos(&|e| matches!(e.kind, EventKind::NodeCrashed));
    let confirmed =
        pos(&|e| matches!(e.kind, EventKind::NodeConfirmedDead) && e.node == Some(NodeId(1)));
    let warm_start = pos(&|e| matches!(e.kind, EventKind::MigrationPhaseStart { .. }));
    let recovered = pos(&|e| matches!(e.kind, EventKind::RecoveryCompleted { .. }));
    assert!(crashed < confirmed, "the crash precedes its confirmation");
    // A clean crash loses every probe, so the death streak crosses the
    // threshold in one round: any NodeSuspected in the stream sits between
    // crash and confirmation, but a straight Alive -> ConfirmedDead jump
    // is legal.
    for (i, e) in events.iter().enumerate() {
        if matches!(e.kind, EventKind::NodeSuspected) && e.node == Some(NodeId(1)) {
            assert!(crashed < i && i < confirmed, "suspicion outside its window");
        }
    }
    assert!(
        confirmed < warm_start && warm_start < recovered,
        "warmup runs between confirmation and recovery"
    );
    // Lost probes against the corpse are on the record before confirmation.
    assert!(events[..confirmed]
        .iter()
        .any(|e| matches!(e.kind, EventKind::Probe { .. }) && e.node == Some(NodeId(1))));
}

#[test]
fn scheduled_scale_in_trace_brackets_migration_between_decision_and_commit() {
    let mut cfg = crash_config(None);
    cfg.faults = FaultPlan::new();
    cfg.scheduled = vec![(SimTime::from_secs(CRASH_S), ScaleAction::In { count: 1 })];
    let r = run(cfg);
    let events = &r.telemetry.events;
    assert_stream_well_formed(events);
    assert_eq!(assert_phases_bracketed(events), 3);

    let decided = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::ScalingDecided { .. }))
        .expect("scaling decision traced");
    let committed = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::MembershipCommitted { .. }))
        .expect("membership flip traced");
    assert!(decided < committed, "decision precedes the flip");
    assert!(
        events[decided..committed]
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MigrationPhaseEnd { .. }))
            .count()
            == 3,
        "all three migration phases complete between decision and commit"
    );
    if let EventKind::MembershipCommitted { members } = events[committed].kind {
        assert_eq!(members, 3, "4-node tier scales in to 3");
    }
}
