//! Property test for the sweep harness: for *any* small grid of experiment
//! cells and *any* worker count, the parallel run must produce results —
//! including the golden telemetry dumps — byte-identical to the serial
//! run, in cell order.

use elmem_bench::sweep;
use elmem_cluster::ClusterConfig;
use elmem_core::migration::MigrationCosts;
use elmem_core::{
    run_experiment_with_telemetry, ExperimentConfig, ExperimentResult, FaultPlan, MigrationPolicy,
    ScaleAction,
};
use elmem_util::{SimTime, TelemetryConfig};
use elmem_workload::{DemandTrace, Keyspace, WorkloadConfig};
use proptest::prelude::*;

/// One generated cell: (seed, policy selector, scale-in selector — 0 means
/// no scheduled action, anything else lands a scale-in at `5 + s % 30`s).
type RawCell = (u64, u8, u64);

fn cell_config(raw: &RawCell) -> ExperimentConfig {
    let (seed, policy_sel, scale_sel) = *raw;
    let policy = match policy_sel % 3 {
        0 => MigrationPolicy::Baseline,
        1 => MigrationPolicy::elmem(),
        _ => MigrationPolicy::Naive,
    };
    ExperimentConfig {
        cluster: ClusterConfig::small_test(),
        workload: WorkloadConfig {
            keyspace: Keyspace::new(6_000, seed),
            zipf_exponent: 1.0,
            items_per_request: 3,
            peak_rate: 120.0,
            trace: DemandTrace::new(vec![1.0; 5], SimTime::from_secs(8)),
        },
        policy,
        autoscaler: None,
        scheduled: if scale_sel == 0 {
            vec![]
        } else {
            vec![(
                SimTime::from_secs(5 + scale_sel % 30),
                ScaleAction::In { count: 1 },
            )]
        },
        prefill_top_ranks: 3_000,
        costs: MigrationCosts::default(),
        faults: FaultPlan::new(),
        healing: None,
        master: Default::default(),
        seed,
    }
}

/// Everything observable about a cell's result, as one byte string.
fn digest(r: &ExperimentResult) -> String {
    format!(
        "requests={} members={} events={} timeouts={} dump={}",
        r.total_requests,
        r.final_members,
        r.events.len(),
        r.client_timeouts,
        r.telemetry.to_json()
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn parallel_sweep_is_byte_identical_to_serial(
        raws in prop::collection::vec(
            (0u64..1000, 0u8..3, 0u64..30),
            1..5,
        ),
        jobs in 2usize..8,
    ) {
        let cells: Vec<ExperimentConfig> = raws.iter().map(cell_config).collect();
        let run = |jobs: usize| -> Vec<String> {
            sweep::run_cells(jobs, &cells, |_, cfg| {
                digest(&run_experiment_with_telemetry(
                    cfg.clone(),
                    TelemetryConfig::default(),
                ))
            })
        };
        let serial = run(1);
        let parallel = run(jobs);
        prop_assert_eq!(&serial, &parallel);
        // And a second parallel pass at a different worker count agrees too
        // (scheduling nondeterminism must never leak into results).
        let parallel2 = run(jobs / 2 + 1);
        prop_assert_eq!(&serial, &parallel2);
    }
}
