//! Peak-RSS probe for the perf benchmarks.
//!
//! The cluster-scale benchmark records how much resident memory the
//! 19 M-key scenario actually costs; on Linux the kernel already tracks
//! the high-water mark (`VmHWM` in `/proc/self/status`), so the probe is
//! one file read. On other platforms it reports `None` and the benchmark
//! emits `null` — a missing measurement, never a fabricated one.

/// Peak resident set size of this process, in bytes (Linux `VmHWM`).
/// `None` on platforms without the procfs counter or if parsing fails.
pub fn peak_rss_bytes() -> Option<u64> {
    read_vm_hwm()
}

#[cfg(target_os = "linux")]
fn read_vm_hwm() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

#[cfg(not(target_os = "linux"))]
fn read_vm_hwm() -> Option<u64> {
    None
}

/// Parses the `VmHWM:   123456 kB` line out of `/proc/self/status` text.
#[allow(dead_code)] // the non-linux build keeps the parser for its tests
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .strip_suffix("kB")?
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_procfs_status() {
        let status = "Name:\ttab_scale\nVmPeak:\t  999 kB\nVmHWM:\t  204800 kB\nVmRSS:\t 1 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(204800 * 1024));
    }

    #[test]
    fn missing_or_malformed_is_none() {
        assert_eq!(parse_vm_hwm("Name:\tx\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tlots kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_probe_reports_something_plausible() {
        let rss = peak_rss_bytes().expect("procfs VmHWM on linux");
        // A running test binary is bigger than 1 MiB and smaller than 1 TiB.
        assert!(rss > 1 << 20, "rss {rss}");
        assert!(rss < 1 << 40, "rss {rss}");
    }
}
