//! Shared experiment scaffolding: the laptop-scale deployment (a 1:8
//! shrink of the paper's testbed that preserves the ratios that drive the
//! dynamics) and result formatting.

use elmem_cluster::{BreakerConfig, ClusterConfig};
use elmem_core::migration::MigrationCosts;
use elmem_core::{ExperimentConfig, ExperimentResult, FaultPlan, MigrationPolicy, ScaleAction};
use elmem_store::SizeClasses;
use elmem_util::stats::{degradation_summary, DegradationSummary, TimelinePoint};
use elmem_util::{ByteSize, SimTime};
use elmem_workload::{Keyspace, TraceKind, WorkloadConfig};

/// Keys in the laptop-scale keyspace. Chosen so the 10-node tier
/// (10 × 64 MB ≈ 1.15 M chunked items) holds ~97% of the popularity mass
/// but *not* the whole keyspace — the paper's regime: a steady-state hit
/// rate just high enough that the database sits close to (but under) its
/// capacity at peak demand, so scaling-induced misses overwhelm it.
pub const LAPTOP_KEYS: u64 = 1_400_000;

/// Keys in the paper-scale keyspace — the full ETC population the paper
/// replays (~19 M distinct keys, §V).
pub const PAPER_KEYS: u64 = 19_000_000;

/// Per-request multi-get fan-out.
pub const ITEMS_PER_REQUEST: usize = 5;

/// Peak request rate, req/s. At 5 lookups/request and r_DB ≈ 167/s the
/// Eq. (1) threshold sits at p_min ≈ 0.96 at peak — the paper's regime:
/// the steady-state cache keeps the database comfortably below capacity,
/// but losing any node's data pushes it well past the knee.
pub const PEAK_RATE: f64 = 833.0;

/// Paper-scale peak request rate, req/s. 20 000 req/s × 5 lookups against
/// r_DB = 4 000/s keeps the same 25:1 peak-lookups-to-database ratio as
/// the laptop shrink, so Eq. (1) lands at the same p_min ≈ 0.96.
pub const PAPER_PEAK_RATE: f64 = 20_000.0;

/// Zipf popularity exponent.
pub const ZIPF: f64 = 1.0;

/// Hottest ranks prefilled before each run (the whole keyspace: the tier
/// starts warm, like the paper's steady state).
pub const PREFILL_RANKS: u64 = LAPTOP_KEYS;

/// Deployment scale for the `fig*`/`tab*` binaries.
///
/// Every experiment constructor in this module takes (or defaults) a
/// preset. [`Preset::Laptop`] is the 1:8 shrink all pinned golden numbers
/// were recorded on; [`Preset::Paper`] restores the paper's workload scale
/// — the full ~19 M-key ETC population at 20 k req/s on a tier ten times
/// as wide — while preserving the capacity and Eq. (1) ratios that drive
/// the dynamics. Resolution order: `--preset NAME` on the command line,
/// then the `ELMEM_PRESET` environment variable, then [`Preset::Laptop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Preset {
    /// Laptop-scale shrink (1.4 M keys, 833 req/s peak, 64 MiB nodes).
    #[default]
    Laptop,
    /// Paper-scale ETC (19 M keys, 20 k req/s peak, 10× node count).
    Paper,
}

/// Environment variable selecting the deployment preset.
pub const PRESET_ENV: &str = "ELMEM_PRESET";

impl Preset {
    /// Parses a preset name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Preset> {
        match name.trim().to_ascii_lowercase().as_str() {
            "laptop" => Some(Preset::Laptop),
            "paper" => Some(Preset::Paper),
            _ => None,
        }
    }

    /// Resolves `--preset NAME` / `--preset=NAME` from explicit arguments.
    pub fn from_args<S: AsRef<str>>(args: &[S]) -> Option<Preset> {
        let mut it = args.iter().map(AsRef::as_ref);
        while let Some(arg) = it.next() {
            if arg == "--preset" {
                return it.next().and_then(Preset::from_name);
            }
            if let Some(v) = arg.strip_prefix("--preset=") {
                return Preset::from_name(v);
            }
        }
        None
    }

    /// Resolves the preset for this process: `--preset` from the process
    /// arguments, else [`PRESET_ENV`], else [`Preset::Laptop`].
    pub fn from_cli() -> Preset {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Preset::from_args(&args)
            .or_else(|| {
                std::env::var(PRESET_ENV)
                    .ok()
                    .as_deref()
                    .and_then(Preset::from_name)
            })
            .unwrap_or_default()
    }

    /// The preset's display name (what `--preset` accepts).
    pub fn name(self) -> &'static str {
        match self {
            Preset::Laptop => "laptop",
            Preset::Paper => "paper",
        }
    }

    /// Keyspace population.
    pub fn keys(self) -> u64 {
        match self {
            Preset::Laptop => LAPTOP_KEYS,
            Preset::Paper => PAPER_KEYS,
        }
    }

    /// Peak request rate, req/s.
    pub fn peak_rate(self) -> f64 {
        match self {
            Preset::Laptop => PEAK_RATE,
            Preset::Paper => PAPER_PEAK_RATE,
        }
    }

    /// Hottest ranks prefilled before each run (the whole keyspace).
    pub fn prefill_ranks(self) -> u64 {
        self.keys()
    }

    /// Scales a laptop-scale node count to this preset's tier width
    /// (the paper tier is 10× as wide: 10 laptop nodes ↔ 100 paper nodes).
    pub fn scale_nodes(self, laptop_nodes: u32) -> u32 {
        match self {
            Preset::Laptop => laptop_nodes,
            Preset::Paper => laptop_nodes.saturating_mul(10),
        }
    }

    /// Model memory per node. The paper preset's 96 MiB keeps the tier's
    /// capacity:popularity-mass ratio at the laptop shrink's operating
    /// point (≈ 97% of mass resident at full width, keyspace > capacity),
    /// so the hit-rate/DB-load dynamics carry over at 13.6× the keys.
    pub fn node_memory(self) -> ByteSize {
        match self {
            Preset::Laptop => ByteSize::from_mib(64),
            Preset::Paper => ByteSize::from_mib(96),
        }
    }

    /// Database capacity knobs: (server count, per-request service time).
    /// Laptop: 1 × 6 ms → r_DB ≈ 167/s. Paper: 8 × 2 ms → r_DB = 4 000/s.
    fn db(self) -> (usize, SimTime) {
        match self {
            Preset::Laptop => (1, SimTime::from_millis(6)),
            Preset::Paper => (8, SimTime::from_millis(2)),
        }
    }
}

/// The deployment at a given preset scale; node count is the *actual*
/// initial tier width (callers scale via [`Preset::scale_nodes`]).
pub fn cluster_preset(preset: Preset, initial_nodes: u32) -> ClusterConfig {
    let (db_servers, db_service) = preset.db();
    ClusterConfig {
        initial_nodes,
        node_memory: preset.node_memory(),
        vnodes: 128,
        db_servers,
        db_service,
        db_shed_delay: SimTime::from_secs(2),
        mc_latency: SimTime::from_micros(200),
        client_timeout: SimTime::from_millis(250),
        breaker: BreakerConfig::default(),
        web_overhead: SimTime::from_millis(4),
        nic_bandwidth: 125_000_000.0,
        nic_latency: SimTime::from_micros(100),
        slab_classes: SizeClasses::new(96, 2.0, ByteSize::PAGE.as_u64()),
        store_shards: elmem_store::default_shard_count(),
    }
}

/// The workload at a given preset scale over a published trace shape.
pub fn workload_preset(preset: Preset, trace: TraceKind, seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        keyspace: Keyspace::new(preset.keys(), seed),
        zipf_exponent: ZIPF,
        items_per_request: ITEMS_PER_REQUEST,
        peak_rate: preset.peak_rate(),
        trace: trace.demand_trace(),
    }
}

/// A full experiment config at a given preset scale with scripted scaling
/// actions. `initial_nodes` is the actual tier width.
pub fn experiment_preset(
    preset: Preset,
    trace: TraceKind,
    initial_nodes: u32,
    policy: MigrationPolicy,
    scheduled: Vec<(SimTime, ScaleAction)>,
    seed: u64,
) -> ExperimentConfig {
    ExperimentConfig {
        cluster: cluster_preset(preset, initial_nodes),
        workload: workload_preset(preset, trace, seed),
        policy,
        autoscaler: None,
        scheduled,
        prefill_top_ranks: preset.prefill_ranks(),
        costs: MigrationCosts::default(),
        faults: FaultPlan::new(),
        healing: None,
        master: Default::default(),
        seed,
    }
}

/// The laptop-scale deployment: 10 × 64 MB nodes, r_DB ≈ 167 req/s.
pub fn laptop_cluster(initial_nodes: u32) -> ClusterConfig {
    cluster_preset(Preset::Laptop, initial_nodes)
}

/// The laptop-scale workload over a published trace shape.
pub fn laptop_workload(trace: TraceKind, seed: u64) -> WorkloadConfig {
    workload_preset(Preset::Laptop, trace, seed)
}

/// A full experiment config with scripted scaling actions.
pub fn laptop_experiment(
    trace: TraceKind,
    initial_nodes: u32,
    policy: MigrationPolicy,
    scheduled: Vec<(SimTime, ScaleAction)>,
    seed: u64,
) -> ExperimentConfig {
    experiment_preset(
        Preset::Laptop,
        trace,
        initial_nodes,
        policy,
        scheduled,
        seed,
    )
}

/// Restoration threshold used in degradation summaries: "stable" means the
/// per-second p95 is back under this many milliseconds.
pub const RESTORE_THRESHOLD_MS: f64 = 25.0;

/// Summarizes post-scaling degradation relative to the run's first commit.
pub fn summarize(result: &ExperimentResult) -> Option<DegradationSummary> {
    let commit = result.first_commit_second()?;
    Some(degradation_summary(
        &result.timeline,
        commit,
        RESTORE_THRESHOLD_MS,
    ))
}

/// Prints a timeline as `second hit_rate p95_ms` rows, sampled every
/// `every` seconds.
pub fn print_timeline(name: &str, timeline: &[TimelinePoint], every: u64) {
    println!("# {name}: second hit_rate p95_ms requests");
    for p in timeline.iter().filter(|p| p.second % every == 0) {
        println!(
            "{:>6} {:>6.3} {:>9.2} {:>7}",
            p.second, p.hit_rate, p.p95_ms, p.requests
        );
    }
}

/// Prints one summary row of a policy run.
pub fn print_summary_row(label: &str, result: &ExperimentResult) {
    match summarize(result) {
        Some(s) => {
            let restore = s
                .restoration_secs
                .map(|r| format!("{r}s"))
                .unwrap_or_else(|| "never".to_string());
            println!(
                "{label:<12} pre_p95={:>8.2}ms  post_mean_p95={:>9.2}ms  peak_p95={:>9.2}ms  restoration={restore}",
                s.pre_p95_ms, s.mean_p95_ms, s.peak_p95_ms
            );
        }
        None => println!("{label:<12} (no scaling event)"),
    }
}

/// Mean p95 over the `window` seconds after each scaling event (union of
/// per-event windows) — the way the paper's per-figure numbers focus on
/// the post-scaling episode rather than the whole tail of the run.
pub fn post_event_window_p95(result: &ExperimentResult, window: u64) -> f64 {
    let windows: Vec<(u64, u64)> = result
        .events
        .iter()
        .map(|e| {
            let s = e.committed_at.as_secs();
            (s, s + window)
        })
        .collect();
    let pts: Vec<&TimelinePoint> = result
        .timeline
        .iter()
        .filter(|p| p.requests > 0 && windows.iter().any(|&(a, b)| p.second >= a && p.second < b))
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    pts.iter().map(|p| p.p95_ms).sum::<f64>() / pts.len() as f64
}

/// Percentage reduction of mean post-scaling p95 vs a baseline run.
pub fn degradation_reduction(baseline: &ExperimentResult, other: &ExperimentResult) -> f64 {
    let b = summarize(baseline).map(|s| s.mean_p95_ms).unwrap_or(0.0);
    let o = summarize(other).map(|s| s.mean_p95_ms).unwrap_or(0.0);
    if b <= 0.0 {
        0.0
    } else {
        (b - o) / b * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laptop_cluster_ratios() {
        let c = laptop_cluster(10);
        assert!((c.r_db() - 166.67).abs() < 0.01);
        assert_eq!(c.initial_nodes, 10);
    }

    #[test]
    fn paper_preset_preserves_the_operating_ratios() {
        let laptop = cluster_preset(Preset::Laptop, 10);
        let paper = cluster_preset(Preset::Paper, Preset::Paper.scale_nodes(10));
        assert_eq!(paper.initial_nodes, 100);
        // Same 25:1 peak-lookups to database-capacity ratio on both scales.
        let ratio = |rate: f64, c: &ClusterConfig| rate * ITEMS_PER_REQUEST as f64 / c.r_db();
        let lr = ratio(PEAK_RATE, &laptop);
        let pr = ratio(PAPER_PEAK_RATE, &paper);
        assert!((lr - pr).abs() < 0.1, "laptop {lr} vs paper {pr}");
        assert!((paper.r_db() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn preset_resolution_precedence() {
        assert_eq!(Preset::from_name("Paper"), Some(Preset::Paper));
        assert_eq!(Preset::from_name("laptop"), Some(Preset::Laptop));
        assert_eq!(Preset::from_name("desk"), None);
        assert_eq!(
            Preset::from_args(&["--preset", "paper"]),
            Some(Preset::Paper)
        );
        assert_eq!(Preset::from_args(&["--preset=paper"]), Some(Preset::Paper));
        assert_eq!(Preset::from_args(&["--smoke"]), None);
        assert_eq!(Preset::default(), Preset::Laptop);
    }

    #[test]
    fn laptop_helpers_are_the_laptop_preset() {
        assert_eq!(laptop_cluster(10), cluster_preset(Preset::Laptop, 10));
        let a = laptop_workload(TraceKind::FacebookEtc, 7);
        let b = workload_preset(Preset::Laptop, TraceKind::FacebookEtc, 7);
        assert_eq!(a.keyspace, b.keyspace);
        assert_eq!(a.peak_rate, b.peak_rate);
        assert_eq!(a.items_per_request, b.items_per_request);
        assert_eq!(Preset::Laptop.prefill_ranks(), PREFILL_RANKS);
        assert_eq!(Preset::Paper.keys(), PAPER_KEYS);
    }

    #[test]
    fn workload_uses_trace_shape() {
        let w = laptop_workload(TraceKind::FacebookSys, 1);
        assert_eq!(w.trace.samples().len(), 60);
        assert_eq!(w.items_per_request, ITEMS_PER_REQUEST);
    }

    fn fake_result(event_second: u64, p95: impl Fn(u64) -> f64) -> ExperimentResult {
        use elmem_core::ScalingEvent;
        ExperimentResult {
            timeline: (0..1000)
                .map(|s| TimelinePoint {
                    second: s,
                    hit_rate: 1.0,
                    p95_ms: p95(s),
                    mean_ms: p95(s) / 2.0,
                    requests: 10,
                })
                .collect(),
            events: vec![ScalingEvent {
                decided_at: SimTime::from_secs(event_second),
                committed_at: SimTime::from_secs(event_second),
                from_nodes: 4,
                to_nodes: 3,
                nodes: vec![],
                report: None,
            }],
            final_members: 3,
            final_crashed_members: 0,
            total_requests: 10_000,
            recoveries: vec![],
            client_timeouts: 0,
            fast_failovers: 0,
            breaker_transitions: 0,
            telemetry: Default::default(),
            probes_sent: 0,
            detector_transitions: 0,
            profiler_tracked_keys: 0,
            journal: Default::default(),
        }
    }

    #[test]
    fn post_event_window_covers_only_the_window() {
        // p95 = 100 inside [300, 360), 5 elsewhere.
        let r = fake_result(300, |s| if (300..360).contains(&s) { 100.0 } else { 5.0 });
        let w60 = post_event_window_p95(&r, 60);
        assert!((w60 - 100.0).abs() < 1e-9, "w60 {w60}");
        // A 600 s window dilutes with the quiet tail.
        let w600 = post_event_window_p95(&r, 600);
        assert!(w600 < 20.0, "w600 {w600}");
    }

    #[test]
    fn degradation_reduction_is_relative() {
        let bad = fake_result(100, |s| if s >= 100 { 100.0 } else { 5.0 });
        let good = fake_result(100, |s| if s >= 100 { 10.0 } else { 5.0 });
        let red = degradation_reduction(&bad, &good);
        assert!((red - 90.0).abs() < 1.0, "reduction {red}");
    }

    #[test]
    fn summarize_none_without_events() {
        let mut r = fake_result(100, |_| 5.0);
        r.events.clear();
        assert!(summarize(&r).is_none());
    }
}
