//! Experiment harness shared by the `fig*`/`tab*` binaries that regenerate
//! every table and figure of the paper (see DESIGN.md §4 for the index and
//! EXPERIMENTS.md for recorded results).
//!
//! All binaries run their experiment cells through [`sweep`], which
//! parallelizes across cells (`--jobs N` / `ELMEM_JOBS`, default: all
//! cores) while keeping output byte-identical to a serial run.

pub mod exp;
pub mod rss;
pub mod sweep;
