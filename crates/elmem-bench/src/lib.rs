//! Experiment harness shared by the `fig*`/`tab*` binaries that regenerate
//! every table and figure of the paper (see DESIGN.md §4 for the index and
//! EXPERIMENTS.md for recorded results).

pub mod exp;
