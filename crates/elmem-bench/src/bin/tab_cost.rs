//! **E8 / §II-B + §II-C** — Cost/energy analysis of Memcached and the
//! potential savings from elasticity.
//!
//! Reproduces the static model: a Memcached node (1 socket, 72 GB) draws
//! ~47% more peak power than an app-tier node (2 sockets, 12 GB) and costs
//! ~66% more per hour on EC2; and the paper's §II-C estimate that a
//! perfectly elastic tier saves 30–70% of cache node-hours on real traces.

use elmem_bench::sweep;
use elmem_util::costmodel::{app_tier_spec, compare, elastic_savings, memcached_spec, PowerModel};
use elmem_workload::TraceKind;

fn main() {
    println!("== Tab (SS II-B): cost/energy analysis ==\n");
    let model = PowerModel::paper_calibrated();
    let c = compare(&model);
    let app = app_tier_spec();
    let mc = memcached_spec();
    println!(
        "app-tier node:  {} sockets, {:>3} GB -> {:>6.1} W, ${:.3}/hr",
        app.cpu_sockets, app.dram_gb, c.app_watts, app.hourly_cost_usd
    );
    println!(
        "memcached node: {} sockets, {:>3} GB -> {:>6.1} W, ${:.3}/hr",
        mc.cpu_sockets, mc.dram_gb, c.cache_watts, mc.hourly_cost_usd
    );
    println!(
        "power overhead: +{:.0}% (paper: +47%)   cost overhead: +{:.0}% (paper: +66%)",
        c.power_overhead * 100.0,
        c.cost_overhead * 100.0
    );

    println!("\n== SS II-C: elasticity savings on the five traces ==\n");
    println!(
        "{:<12} {:>14} {:>12}",
        "trace", "node-hours saved", "peak nodes"
    );
    let rows = sweep::run_cells(sweep::jobs_from_cli(), &TraceKind::ALL, |_, kind| {
        let t = kind.demand_trace();
        // A perfectly elastic tier sized each minute to ceil(demand * 10).
        let demand: Vec<u32> = t
            .samples()
            .iter()
            .map(|&d| (d * 10.0).ceil().max(1.0) as u32)
            .collect();
        let peak = demand.iter().copied().max().unwrap();
        (kind.name(), elastic_savings(&demand), peak)
    });
    for (name, savings, peak) in rows {
        println!("{name:<12} {:>13.1}% {peak:>12}", savings * 100.0);
    }
    println!("\n(the one-hour Fig. 5 snippets understate what full diurnal traces allow)");

    // §II-C's headline numbers come from *full-day* Facebook traces with
    // ~2x diurnal swing plus 2-3x spikes; reconstruct that shape over 24h.
    println!("\n== SS II-C: full diurnal day (2x swing + spikes) ==\n");
    let day: Vec<u32> = (0..24 * 60)
        .map(|m| {
            let hour = m as f64 / 60.0;
            // Diurnal sinusoid between 0.33 and 1.0 of peak...
            let base = 0.665 - 0.335 * ((hour - 4.0) / 24.0 * std::f64::consts::TAU).cos();
            // ...with a brief 1.5x lunchtime spike.
            let spike = if (12.0..12.5).contains(&hour) {
                1.5
            } else {
                1.0
            };
            ((base * spike).min(1.0) * 10.0).ceil().max(1.0) as u32
        })
        .collect();
    println!(
        "diurnal day: node-hours saved {:.1}% (paper: 30-70%)",
        elastic_savings(&day) * 100.0
    );
}
