//! Ablations of ElMem's design choices (beyond the paper's own tables):
//!
//! 1. **Import mode** — Merge (timestamp-preserving, keeps the MRU-sorted
//!    invariant) vs Prepend (the paper's §III-D3 prose verbatim).
//! 2. **CacheScale discard window** — the comparator's one tunable; the
//!    paper fixes it at ≈2 min.
//! 3. **Ring vnodes** — per-node popularity imbalance, which drives both
//!    the Fig. 7 node-choice spread and the Fig. 8 policy gaps.
//! 4. **Reactive vs predictive Q1** — §III-B's "pluggable module" claim,
//!    exercised on a rising-demand trace where prediction pre-provisions.

use elmem_bench::exp::{
    cluster_preset, experiment_preset, print_summary_row, workload_preset, Preset,
};
use elmem_bench::sweep;
use elmem_cluster::Cluster;
use elmem_core::migration::{migrate_scale_in, MigrationCosts};
use elmem_core::scoring::node_score;
use elmem_core::{
    run_experiment, AutoScalerConfig, MigrationPolicy, PredictiveConfig, ScaleAction,
};
use elmem_store::ImportMode;
use elmem_util::{DetRng, NodeId, SimTime};
use elmem_workload::{RequestGenerator, TraceKind};

fn minutes(m: u64) -> SimTime {
    SimTime::from_secs(m * 60)
}

fn main() {
    let preset = Preset::from_cli();
    ablate_import_mode(preset);
    ablate_cachescale_window(preset);
    ablate_vnodes(preset);
    ablate_predictive();
}

fn ablate_import_mode(preset: Preset) {
    let nodes = preset.scale_nodes(10);
    println!(
        "== Ablation 1: batch-import mode (ETC, {nodes} -> {}) ==\n",
        nodes - 1
    );
    let scheduled = vec![(minutes(25), ScaleAction::In { count: 1 })];
    let cells = [
        ("merge", ImportMode::Merge),
        ("prepend", ImportMode::Prepend),
    ];
    let results = sweep::run_cells(sweep::jobs_from_cli(), &cells, |_, (_, mode)| {
        run_experiment(experiment_preset(
            preset,
            TraceKind::FacebookEtc,
            nodes,
            MigrationPolicy::ElMem { import: *mode },
            scheduled.clone(),
            411,
        ))
    });
    for ((label, _), result) in cells.iter().zip(&results) {
        print_summary_row(label, result);
    }
    println!(
        "(FuseCache guarantees migrated items are hotter than evicted ones,\n so both modes keep the same item set; Merge additionally preserves\n the sorted-list invariant that later FuseCache runs rely on)\n"
    );
}

fn ablate_cachescale_window(preset: Preset) {
    let nodes = preset.scale_nodes(10);
    println!(
        "== Ablation 2: CacheScale discard window (SYS, {nodes} -> {}) ==\n",
        nodes - 3
    );
    let scheduled = vec![(minutes(30), ScaleAction::In { count: 3 })];
    let cells = [30u64, 120, 480];
    let results = sweep::run_cells(sweep::jobs_from_cli(), &cells, |_, &window_s| {
        let mut cfg = experiment_preset(
            preset,
            TraceKind::FacebookSys,
            nodes,
            MigrationPolicy::CacheScale {
                window: SimTime::from_secs(window_s),
            },
            scheduled.clone(),
            412,
        );
        cfg.workload.zipf_exponent = 0.95;
        run_experiment(cfg)
    });
    for (window_s, result) in cells.iter().zip(&results) {
        print_summary_row(&format!("window={window_s}s"), result);
    }
    println!(
        "(longer windows promote more items before the discard but keep the\n retiring nodes powered longer — the elasticity savings erode)\n"
    );
}

fn ablate_vnodes(preset: Preset) {
    println!("== Ablation 3: ring vnodes vs node-choice spread ==\n");
    println!(
        "{:>7} {:>16} {:>16} {:>10}",
        "vnodes", "coldest (items)", "worst (items)", "spread"
    );
    let cells = [8u32, 32, 128];
    let results = sweep::run_cells(sweep::jobs_from_cli(), &cells, |_, &vnodes| {
        let seed = 413;
        let mut cluster_cfg = cluster_preset(preset, preset.scale_nodes(10));
        cluster_cfg.vnodes = vnodes;
        let workload = workload_preset(preset, TraceKind::FacebookEtc, seed);
        let rng = DetRng::seed(seed);
        let mut cluster = Cluster::new(cluster_cfg, workload.keyspace.clone(), rng.split("c"));
        let mut gen = RequestGenerator::new(workload, rng.split("w"));
        let zipf = gen.zipf().clone();
        cluster.prefill(
            (1..=preset.prefill_ranks())
                .rev()
                .map(|r| zipf.key_for_rank(r)),
            SimTime::ZERO,
        );
        while let Some(req) = gen.next_request() {
            if req.arrival > SimTime::from_secs(120) {
                break;
            }
            cluster.handle(&req);
        }
        let mut scored: Vec<(NodeId, f64)> = cluster
            .tier
            .membership()
            .members()
            .iter()
            .map(|&id| (id, node_score(&cluster.tier.node(id).unwrap().store)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let migrated_for = |id: NodeId| -> u64 {
            let mut trial = cluster.tier.clone();
            migrate_scale_in(
                &mut trial,
                &[id],
                SimTime::from_secs(200),
                &MigrationCosts::default(),
                ImportMode::Merge,
            )
            .expect("migration succeeds")
            .items_migrated
        };
        let coldest = migrated_for(scored[0].0);
        let worst = scored
            .iter()
            .map(|&(id, _)| migrated_for(id))
            .max()
            .unwrap();
        (coldest, worst)
    });
    for (vnodes, (coldest, worst)) in cells.iter().zip(&results) {
        println!(
            "{vnodes:>7} {coldest:>16} {worst:>16} {:>9.0}%",
            (*worst as f64 / *coldest as f64 - 1.0) * 100.0
        );
    }
    println!(
        "(fewer vnodes -> more per-node imbalance -> bigger payoff from the\n SS III-C scoring; the paper's testbed behaved like a low-vnode ring)\n"
    );
}

fn ablate_predictive() {
    println!("== Ablation 4: reactive vs predictive Q1 on a demand ramp ==\n");
    // Drive both scalers with identical observations and an arrival-rate
    // ramp: 2,000 -> 10,000 lookups/s over 8 epochs (r_DB = 1,000/s).
    use elmem_core::{AutoScaler, PredictiveAutoScaler};
    use elmem_util::ByteSize;
    use elmem_workload::ZipfPopularity;

    let mut base = AutoScalerConfig::new(1000.0, ByteSize::from_mib(16));
    base.epoch = SimTime::from_secs(60);
    base.min_observations = 100_000;
    base.max_nodes = 32;
    let mut reactive = AutoScaler::new(base.clone());
    let mut predictive = PredictiveAutoScaler::new(PredictiveConfig::new(base));

    // A flat-ish popularity (Zipf 0.8) gives the sizing real dynamic range
    // across the ramp's p_min span.
    let zipf = ZipfPopularity::new(1_000_000, 0.8, 1);
    let mut rng = DetRng::seed(414);
    let mut nodes_r = 4u32;
    let mut nodes_p = 4u32;
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12}",
        "epoch", "rate", "forecast", "reactive", "predictive"
    );
    for epoch in 1..=8u64 {
        let rate = 2000.0 + 1000.0 * (epoch - 1) as f64;
        // One epoch's worth of sampled lookups.
        for _ in 0..300_000 {
            let key = zipf.sample(&mut rng);
            reactive.observe(key, 400);
            predictive.observe(key, 400);
        }
        let now = SimTime::from_secs(60 * epoch);
        if let Some(h) = reactive.decide(now, rate, nodes_r) {
            nodes_r = h.target_nodes;
        }
        if let Some(h) = predictive.decide(now, rate, nodes_p) {
            nodes_p = h.target_nodes;
        }
        println!(
            "{epoch:>6} {rate:>10.0} {:>10.0} {nodes_r:>12} {nodes_p:>12}",
            predictive.forecast().unwrap_or(0.0)
        );
    }
    println!("\n(the forecaster sizes for the *predicted* rate, so its node count\n leads the reactive one on the ramp — capacity plus its hot data are\n ready when demand arrives, absorbing the ~2 min migration overhead)");
}
