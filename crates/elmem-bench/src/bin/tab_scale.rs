//! **E20 / cluster-scale fast path** — wall-clock throughput and memory
//! of the full paper-scale scenario (a 100-node tier over the ~19 M-key
//! ETC population), tracked in `results/BENCH_scale.json`.
//!
//! Three measurements:
//!
//! * **byte-identity cell** (always runs, in-process): a 32-node scenario
//!   sized so every cluster-scale fast path is active — alias-table
//!   sampling, the exact→MIMIR profiler switch, and the fan-out of
//!   warm-up fill over `par_map_indexed` — executed once with 1 worker
//!   and once with 4. The full digests (counters plus the golden
//!   telemetry dump) must be **byte-identical**; the assertion is
//!   unconditional, every run, whatever the core count.
//! * **optimized column**: the headline run — diurnal demand with a
//!   10%-of-tier scale-in and the matching scale-out — timed end to end
//!   (keyspace + alias construction, 19 M-key warm-up fill, serving,
//!   migrations). Headline: simulation events (fills + lookups) per
//!   wall-clock second, plus peak RSS.
//! * **pre-opt column**: the same scenario on the preserved
//!   pre-optimization path — rejection-inversion Zipf sampling (alias
//!   threshold pinned to `u64::MAX`), the preserved
//!   [`LegacyExactStackDistance`](elmem_stackdist::LegacyExactStackDistance)
//!   engine (SipHash maps + high-water Fenwick, never handing off to
//!   MIMIR), and 1 worker.
//!
//! Each column runs in its **own child process** (the binary re-execs
//! itself with a hidden `--column` flag): `VmHWM` is a per-process
//! high-water mark, so per-column peak RSS is only meaningful from a
//! fresh process — and the global fast-path knobs can never leak from
//! one column into the other.
//!
//! ## What full mode asserts (and what it only records)
//!
//! Unconditionally: the identity cell's byte-identity; both columns
//! complete the same diurnal scenario (equal event counts, both scaling
//! actions committed); the optimized column's throughput stays within a
//! single-core timing-noise band of the pre-opt column's; and the
//! profiler's **tracked-key population** is bounded — the optimized
//! column ends at or under the exact→MIMIR switch threshold (+10% slack;
//! MIMIR's rounder aging evicts retired buckets, so in practice it
//! settles well below the ceiling) while the pre-opt legacy engine has
//! grown past it (it keeps two map entries plus
//! a high-water Fenwick slot for every distinct key it ever sees). The
//! tracked-key counts are a deterministic function of the key stream, so
//! this bounded-memory claim is machine-independent; peak process RSS is
//! **recorded, not asserted** — both columns' RSS is dominated by the
//! ~19 M-item store, and the optimized column also carries the ~152 MB
//! alias table, so the process-level gap says little about the profiler.
//!
//! The wall-clock speedup is **recorded, not pinned to a target**: on a
//! single-core host the serving base (cache-cold store walks shared by
//! both columns) dominates end-to-end wall-clock, and the pre-opt
//! inefficiencies this issue targeted — per-request allocation,
//! unindexed event handling — were already gone at this repo's HEAD, so
//! the honest end-to-end ratio is far smaller than the isolated
//! component ratios (the observation path alone is ~3× cheaper, its
//! state ~10× smaller; see DESIGN.md §15). `--smoke` shrinks the
//! scenario to 32 nodes / 1 M keys for CI: it still runs all three
//! measurements and the unconditional identity assertion, but never
//! reads from — or overwrites — a committed full-mode results file, and
//! skips the tracked-key and speedup assertions (at smoke scale both
//! columns run an exact engine over the same small population).

use std::fmt::Write as _;
use std::time::Instant;

use elmem_bench::exp::{cluster_preset, Preset, ITEMS_PER_REQUEST, ZIPF};
use elmem_bench::{rss, sweep};
use elmem_core::migration::MigrationCosts;
use elmem_core::{
    run_experiment_with_telemetry, AutoScalerConfig, ExperimentConfig, ExperimentResult, FaultPlan,
    MigrationPolicy, ScaleAction,
};
use elmem_util::par::set_par_jobs;
use elmem_util::{SimTime, TelemetryConfig};
use elmem_workload::{DemandTrace, Keyspace, WorkloadConfig};

const RESULT_PATH: &str = "results/BENCH_scale.json";
const SCHEMA: &str = "elmem-scale-v1";

/// Slack on the optimized column's tracked-key bound: MIMIR may briefly
/// hold one rotating bucket beyond the population it adopted at the
/// switch, so allow the end-of-run count to exceed the switch threshold
/// by this factor.
const TRACKED_KEYS_SLACK: f64 = 1.10;

/// Full mode pins the optimized column's events/sec to at worst this
/// fraction of the pre-opt column's. The two columns are separated by far
/// less than single-core timing noise end-to-end (the serving base
/// dominates both; see the module docs), so this is a regression tripwire
/// with a noise band, not a performance target — the recorded speedup and
/// the tracked-key bound carry the actual claims.
const SPEEDUP_NOISE_FLOOR: f64 = 0.90;

/// One cluster-scale scenario: a diurnal day compressed into
/// `7 × step_secs`, with a scale-in of a tenth of the tier at the demand
/// trough and the matching scale-out on the ramp back up.
#[derive(Clone, Copy)]
struct Scenario {
    nodes: u32,
    keys: u64,
    peak_rate: f64,
    step_secs: u64,
}

/// The paper-scale headline scenario: 100 nodes over the full ETC
/// population at 20 k req/s peak (≈ 8.4 M requests / 42 M lookups over a
/// 420-second compressed diurnal).
fn full_scenario() -> Scenario {
    Scenario {
        nodes: 100,
        keys: Preset::Paper.keys(),
        peak_rate: Preset::Paper.peak_rate(),
        step_secs: 60,
    }
}

/// CI-sized shrink: same shape, 32 nodes / 1 M keys.
fn smoke_scenario() -> Scenario {
    Scenario {
        nodes: 32,
        keys: 1_000_000,
        peak_rate: 3_200.0,
        step_secs: 10,
    }
}

/// The always-on byte-identity cell: small enough to run twice per
/// invocation, large enough that the warm-up fill crosses the fan-out
/// threshold and the profiler crosses its (lowered) switch threshold.
fn identity_scenario() -> Scenario {
    Scenario {
        nodes: 32,
        keys: 300_000,
        peak_rate: 3_200.0,
        step_secs: 5,
    }
}

fn scenario_by_name(name: &str) -> Scenario {
    match name {
        "full" => full_scenario(),
        "smoke" => smoke_scenario(),
        other => panic!("unknown scenario {other:?}"),
    }
}

fn experiment(sc: &Scenario) -> ExperimentConfig {
    let mut cluster = cluster_preset(Preset::Paper, sc.nodes);
    if sc.nodes < 100 {
        // Shrunk tiers keep the paper regime: node memory so the tier
        // holds most-but-not-all of the keyspace, database capacity so
        // peak lookups stay at 25× r_DB (Eq. 1's p_min ≈ 0.96).
        cluster.node_memory = elmem_util::ByteSize::from_mib(16);
        let r_db_target = sc.peak_rate * ITEMS_PER_REQUEST as f64 / 25.0;
        cluster.db_service =
            SimTime::from_nanos((cluster.db_servers as f64 / r_db_target * 1e9).round() as u64);
    }
    // The autoscaler observes every lookup (the paper's always-on Q1
    // monitoring — the stack-distance hot path this benchmark measures)
    // but never decides: the scaling actions are scripted, so both
    // measured runs execute the same diurnal scale-in/out.
    let mut scaler = AutoScalerConfig::new(cluster.r_db(), cluster.node_memory);
    scaler.min_observations = u64::MAX;
    scaler.max_nodes = sc.nodes + sc.nodes / 5;
    let count = (sc.nodes / 10).max(1);
    let step = SimTime::from_secs(sc.step_secs);
    ExperimentConfig {
        cluster,
        workload: WorkloadConfig {
            keyspace: Keyspace::new(sc.keys, 20),
            zipf_exponent: ZIPF,
            items_per_request: ITEMS_PER_REQUEST,
            peak_rate: sc.peak_rate,
            trace: DemandTrace::new(vec![1.0, 0.85, 0.6, 0.45, 0.45, 0.6, 0.85, 1.0], step),
        },
        policy: MigrationPolicy::elmem(),
        autoscaler: Some(scaler.into()),
        scheduled: vec![
            (step * 3, ScaleAction::In { count }),
            (step * 6, ScaleAction::Out { count }),
        ],
        prefill_top_ranks: sc.keys,
        costs: MigrationCosts::default(),
        faults: FaultPlan::new(),
        healing: None,
        master: Default::default(),
        seed: 20,
    }
}

fn run(cfg: ExperimentConfig) -> ExperimentResult {
    run_experiment_with_telemetry(cfg, TelemetryConfig::default())
}

/// Simulation events a run processes: the warm-up fills plus every served
/// lookup. Both columns compute it from their own counters (their request
/// *key* streams differ — the alias sampler spends its RNG differently —
/// but arrivals, and therefore counts, match).
fn events(sc: &Scenario, r: &ExperimentResult) -> u64 {
    sc.keys + r.total_requests * ITEMS_PER_REQUEST as u64
}

/// The canonical digest for the byte-identity assertion: end-state
/// counters, scaling events, and the full golden telemetry dump.
fn digest(r: &ExperimentResult) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "requests={} members={} events={} timeouts={} migrated_events={} ",
        r.total_requests,
        r.final_members,
        r.events.len(),
        r.client_timeouts,
        r.events.iter().map(|e| e.nodes.len()).sum::<usize>(),
    );
    out.push_str(&r.telemetry.to_json());
    out.push('\n');
    out
}

/// Forces every cluster-scale fast path on, whatever the keyspace size
/// (the identity cell and the smoke headline sit below the production
/// thresholds).
fn thresholds_fast(switch_keys: u64) {
    elmem_workload::set_alias_threshold(1);
    elmem_stackdist::set_adaptive_switch_keys(switch_keys);
    elmem_stackdist::set_legacy_exact(false);
}

/// Pins the preserved pre-optimization path: rejection-inversion Zipf
/// sampling, the legacy exact stack-distance engine (never handing off
/// to MIMIR), one worker.
fn thresholds_preopt() {
    elmem_workload::set_alias_threshold(u64::MAX);
    elmem_stackdist::set_legacy_exact(true);
    set_par_jobs(1);
}

/// Restores the production defaults (and the ambient worker count).
fn thresholds_default() {
    elmem_workload::set_alias_threshold(elmem_workload::DEFAULT_ALIAS_THRESHOLD);
    elmem_stackdist::set_adaptive_switch_keys(elmem_stackdist::DEFAULT_ADAPTIVE_SWITCH_KEYS);
    elmem_stackdist::set_legacy_exact(false);
    set_par_jobs(0);
}

/// One column's measurements, as reported by its child process.
#[derive(Clone, Copy)]
struct ColumnResult {
    events: u64,
    requests: u64,
    scaling_events: u64,
    profiler_keys: u64,
    wall_s: f64,
    peak_rss_mib: Option<f64>,
}

impl ColumnResult {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }
}

/// Child-process entry: run one column of one scenario and print a
/// single machine-readable line for the parent.
fn run_column(column: &str, scenario: &str) {
    let sc = scenario_by_name(scenario);
    match (column, scenario) {
        ("opt", "full") => {} // production defaults: every fast path auto-engages
        ("opt", _) => thresholds_fast(500_000),
        ("pre", _) => thresholds_preopt(),
        (other, _) => panic!("unknown column {other:?}"),
    }
    let t0 = Instant::now();
    let r = run(experiment(&sc));
    let wall = t0.elapsed().as_secs_f64();
    let rss_mib = rss::peak_rss_bytes().map(|b| b as f64 / (1 << 20) as f64);
    println!(
        "COLUMN {{\"events\":{},\"requests\":{},\"scaling_events\":{},\"profiler_keys\":{},\"wall_s\":{:.3},\"peak_rss_mib\":{}}}",
        events(&sc, &r),
        r.total_requests,
        r.events.len(),
        r.profiler_tracked_keys,
        wall,
        rss_mib.map_or("null".into(), |m| format!("{m:.1}")),
    );
}

/// Re-execs this binary to run one column in a fresh process (clean
/// `VmHWM`, clean global knobs) and parses its report line.
fn spawn_column(column: &str, scenario: &str) -> ColumnResult {
    let exe = std::env::current_exe().expect("own executable path");
    let out = std::process::Command::new(exe)
        .args(["--column", column, "--scenario", scenario])
        .output()
        .expect("spawn column child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "column {column} child failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let line = stdout
        .lines()
        .find_map(|l| l.strip_prefix("COLUMN "))
        .expect("column child printed a COLUMN line");
    let field = |name: &str| -> Option<f64> {
        let pat = format!("\"{name}\":");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    };
    ColumnResult {
        events: field("events").expect("events") as u64,
        requests: field("requests").expect("requests") as u64,
        scaling_events: field("scaling_events").expect("scaling_events") as u64,
        profiler_keys: field("profiler_keys").expect("profiler_keys") as u64,
        wall_s: field("wall_s").expect("wall_s"),
        peak_rss_mib: field("peak_rss_mib"),
    }
}

/// The previously committed full-mode baseline, if any (smoke records are
/// never comparable).
fn read_baseline() -> Option<f64> {
    let text = std::fs::read_to_string(RESULT_PATH).ok()?;
    if !text.contains("\"mode\":\"full\"") {
        return None;
    }
    let field = "\"baseline_events_per_sec\":";
    let start = text.find(field)? + field.len();
    let rest = &text[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("null".into(), |m| format!("{m:.1}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--column") {
        let column = args.get(i + 1).expect("--column <opt|pre>").clone();
        let j = args
            .iter()
            .position(|a| a == "--scenario")
            .expect("--scenario <full|smoke>");
        let scenario = args.get(j + 1).expect("--scenario <full|smoke>").clone();
        run_column(&column, &scenario);
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let rebaseline = args.iter().any(|a| a == "--rebaseline");
    let jobs = sweep::jobs_from_cli();
    let cores = rayon::current_num_threads();
    println!(
        "== tab_scale: cluster-scale fast path{} ==",
        if smoke { " [smoke]" } else { "" }
    );
    println!("cores={cores} jobs={jobs}\n");

    // -- 1. Byte-identity: 1 worker vs 4, all fast paths active. -----------
    let idc = identity_scenario();
    thresholds_fast(50_000);
    set_par_jobs(1);
    let serial = digest(&run(experiment(&idc)));
    set_par_jobs(4);
    let parallel = digest(&run(experiment(&idc)));
    thresholds_default();
    let byte_identical = serial == parallel;
    println!(
        "identity cell ({} nodes, {} keys): 1 worker vs 4 workers byte_identical={byte_identical}",
        idc.nodes, idc.keys
    );
    assert!(
        byte_identical,
        "parallel fill/probe fan-out must be byte-identical to serial"
    );

    // -- 2. The two columns, each in a fresh child process. -----------------
    let name = if smoke { "smoke" } else { "full" };
    let sc = scenario_by_name(name);
    println!(
        "\nscenario: {} nodes, {} keys, peak {} req/s, diurnal {}s",
        sc.nodes,
        sc.keys,
        sc.peak_rate,
        7 * sc.step_secs
    );
    let opt = spawn_column("opt", name);
    println!(
        "optimized: {} events ({} requests, {} scaling events) in {:.1}s = {:.0} events/s, \
         profiler tracks {} keys, peak RSS {} MiB",
        opt.events,
        opt.requests,
        opt.scaling_events,
        opt.wall_s,
        opt.events_per_sec(),
        opt.profiler_keys,
        fmt_opt(opt.peak_rss_mib),
    );
    let pre = spawn_column("pre", name);
    println!(
        "pre-opt:   {} events ({} requests, {} scaling events) in {:.1}s = {:.0} events/s, \
         profiler tracks {} keys, peak RSS {} MiB",
        pre.events,
        pre.requests,
        pre.scaling_events,
        pre.wall_s,
        pre.events_per_sec(),
        pre.profiler_keys,
        fmt_opt(pre.peak_rss_mib),
    );
    let speedup = opt.events_per_sec() / pre.events_per_sec();
    println!(
        "speedup: {speedup:.2}x events/sec over the pre-opt path; profiler population \
         {} (bounded) vs {} (legacy, grows with every distinct key)",
        opt.profiler_keys, pre.profiler_keys
    );

    // -- 3. The claims every run pins. --------------------------------------
    assert_eq!(
        opt.events, pre.events,
        "both columns must complete the same scenario end-to-end"
    );
    for (label, col) in [("optimized", &opt), ("pre-opt", &pre)] {
        assert_eq!(
            col.scaling_events, 2,
            "{label}: the diurnal scale-in and scale-out must both commit"
        );
    }
    let switch_keys = elmem_stackdist::DEFAULT_ADAPTIVE_SWITCH_KEYS;
    if !smoke {
        assert!(
            speedup >= SPEEDUP_NOISE_FLOOR,
            "optimized column regressed below the pre-opt path \
             ({speedup:.2}x < {SPEEDUP_NOISE_FLOOR}x noise floor)"
        );
        // The bounded-memory claim, in its deterministic form: at ETC
        // scale the adaptive profiler's population stays pinned near the
        // switch threshold while the legacy engine's has grown past it.
        let bound = (switch_keys as f64 * TRACKED_KEYS_SLACK) as u64;
        assert!(
            opt.profiler_keys <= bound,
            "adaptive profiler tracks {} keys, above its {bound}-key bound",
            opt.profiler_keys
        );
        assert!(
            pre.profiler_keys > switch_keys,
            "legacy profiler tracks only {} keys — the scenario no longer \
             exercises unbounded growth past the {switch_keys}-key threshold",
            pre.profiler_keys
        );
    }

    // The committed baseline is the full-mode pre-opt rate: the number
    // future PRs regress the optimized rate against.
    let baseline = if smoke || rebaseline {
        pre.events_per_sec()
    } else {
        read_baseline().unwrap_or(pre.events_per_sec())
    };
    let improvement = opt.events_per_sec() / baseline;

    // -- 4. Emit results/BENCH_scale.json. ----------------------------------
    let mut doc = String::new();
    let _ = write!(
        doc,
        "{{\"schema\":\"{SCHEMA}\",\"mode\":\"{name}\",\"jobs\":{jobs},\"cores\":{cores},\
         \"scenario\":{{\"nodes\":{},\"keys\":{},\"peak_rate\":{:.0},\"trace_secs\":{}}},\
         \"optimized\":{{\"events\":{},\"requests\":{},\"wall_ms\":{:.1},\
         \"events_per_sec\":{:.1},\"profiler_keys\":{},\"peak_rss_mib\":{}}},\
         \"preopt\":{{\"events\":{},\"requests\":{},\"wall_ms\":{:.1},\
         \"events_per_sec\":{:.1},\"profiler_keys\":{},\"peak_rss_mib\":{}}},\
         \"speedup\":{:.3},\"profiler_switch_keys\":{},\
         \"baseline_events_per_sec\":{:.1},\"vs_baseline\":{:.3},\
         \"identity\":{{\"byte_identical\":{byte_identical},\"workers\":[1,4],\
         \"nodes\":{},\"keys\":{}}}}}",
        sc.nodes,
        sc.keys,
        sc.peak_rate,
        7 * sc.step_secs,
        opt.events,
        opt.requests,
        opt.wall_s * 1000.0,
        opt.events_per_sec(),
        opt.profiler_keys,
        fmt_opt(opt.peak_rss_mib),
        pre.events,
        pre.requests,
        pre.wall_s * 1000.0,
        pre.events_per_sec(),
        pre.profiler_keys,
        fmt_opt(pre.peak_rss_mib),
        speedup,
        switch_keys,
        baseline,
        improvement,
        idc.nodes,
        idc.keys,
    );
    let keep_full = smoke
        && std::fs::read_to_string(RESULT_PATH)
            .map(|t| t.contains("\"mode\":\"full\""))
            .unwrap_or(false);
    if keep_full {
        println!("\nkeeping existing full-mode {RESULT_PATH} (smoke run not recorded)");
    } else {
        std::fs::create_dir_all("results").expect("create results/");
        std::fs::write(RESULT_PATH, &doc).expect("write BENCH_scale.json");
        println!("\nwrote {RESULT_PATH}");
    }

    println!(
        "Interpretation: the optimized column runs the alias-table sampler, \
         the adaptive (exact->MIMIR) profiler and the fan-out warm-up fill; \
         the pre-opt column pins the preserved serial \
         rejection-sampling/legacy-Fenwick path. Same scenario, same \
         machine, separate processes — the events/sec ratio is the \
         end-to-end win and the tracked-key gap is the bounded-memory win."
    );
}
