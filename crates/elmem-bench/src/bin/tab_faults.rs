//! **Robustness** — fault injection during the 3-phase scale-in.
//!
//! Runs a fault-free 10 → 9 migration first to learn the victim and the
//! phase windows, then replays the same deterministic run with a crash
//! aimed into phase 1 (retiring source) and phase 3 (retained
//! destination), plus shipment-drop and NIC-slowdown scenarios. Every
//! faulty run must finish without panicking, report the abort phase the
//! crash landed in, and commit a consistent membership; the table compares
//! the post-scaling p95 against the fault-free run.

use elmem_bench::exp::{experiment_preset, post_event_window_p95, Preset};
use elmem_bench::sweep;
use elmem_core::{
    run_experiment, ExperimentConfig, ExperimentResult, FaultPlan, MigrationOutcome,
    MigrationPolicy, ScaleAction,
};
use elmem_util::{NodeId, SimTime};
use elmem_workload::{DemandTrace, TraceKind};

const SEED: u64 = 17;
const SCALE_AT: SimTime = SimTime::from_secs(120);
const P95_WINDOW_S: u64 = 120;

fn experiment(faults: FaultPlan) -> ExperimentConfig {
    let preset = Preset::from_cli();
    let mut cfg = experiment_preset(
        preset,
        TraceKind::FacebookEtc,
        preset.scale_nodes(10),
        MigrationPolicy::elmem(),
        vec![(SCALE_AT, ScaleAction::In { count: 1 })],
        SEED,
    );
    // A compact demand shape: steady, a dip justifying the scale-in, a
    // recovery tail long enough to watch the post-scaling episode.
    cfg.workload.trace = DemandTrace::new(
        vec![1.0, 1.0, 0.6, 0.6, 0.7, 0.9, 0.9],
        SimTime::from_secs(60),
    );
    cfg.faults = faults;
    cfg
}

fn outcome_label(result: &ExperimentResult) -> String {
    match result.events.first().and_then(|e| e.report.as_ref()) {
        Some(r) => match r.outcome {
            MigrationOutcome::Completed => {
                format!("completed ({} retries)", r.transfer_retries)
            }
            MigrationOutcome::Aborted { phase, cause } => {
                format!("ABORTED in {phase:?}: {cause:?}")
            }
        },
        None => "no event".to_string(),
    }
}

fn row(label: &str, result: &ExperimentResult) {
    let committed = result
        .events
        .first()
        .map(|e| format!("{}", e.committed_at))
        .unwrap_or_else(|| "-".to_string());
    println!(
        "{label:<18} members={}  committed={committed:<12}  post_p95={:>8.2}ms  {}",
        result.final_members,
        post_event_window_p95(result, P95_WINDOW_S),
        outcome_label(result),
    );
}

fn main() {
    println!("== Tab (robustness): faults during the 3-phase migration ==\n");

    let clean = run_experiment(experiment(FaultPlan::new()));
    let ev = clean.events.first().expect("scale-in ran");
    let report = ev.report.as_ref().expect("elmem migrates");
    assert!(report.outcome.is_completed());
    let victim = ev.nodes[0];
    let phase1_end = ev.decided_at
        + report.phases.scoring
        + report.phases.dump
        + report.phases.metadata_transfer;
    let phase2_end = phase1_end + report.phases.fusecache;
    let dest = (0..10u32).rev().map(NodeId).find(|&n| n != victim).unwrap();
    println!(
        "fault-free probe: victim={victim}, phase1 ends {phase1_end}, data phase \
         [{phase2_end}, {}]\n",
        report.completed
    );

    // The four faulty replays only depend on the fault-free probe above, so
    // they are independent cells for the sweep harness.
    let cells = [
        FaultPlan::new().crash(
            ev.decided_at + (phase1_end - ev.decided_at).mul_f64(0.5),
            victim,
        ),
        FaultPlan::new().crash(phase2_end + SimTime::from_millis(1), dest),
        FaultPlan::new()
            .drop_metadata_with_prob(0.3)
            .drop_transfers_with_prob(0.15),
        FaultPlan::new().slow_link(SCALE_AT, victim, 8.0, SimTime::from_secs(300)),
    ];
    let mut results = sweep::run_cells(sweep::jobs_from_cli(), &cells, |_, faults| {
        run_experiment(experiment(faults.clone()))
    })
    .into_iter();
    let src_crash = results.next().expect("src-crash cell ran");
    let dst_crash = results.next().expect("dst-crash cell ran");
    let drops = results.next().expect("drops cell ran");
    let slow = results.next().expect("slow-NIC cell ran");

    row("fault-free", &clean);
    row("src crash (P1)", &src_crash);
    row("dst crash (P3)", &dst_crash);
    row("30%/15% drops", &drops);
    row("8x slow NIC", &slow);

    println!(
        "\nInterpretation: crash aborts keep the run alive — the Master \
         commits the scaling at the abort instant and evicts the dead node. \
         A source crash degrades to a baseline-style scale-in (the victim's \
         hot data is lost). A destination crash is the worst case: the tier \
         drops to {} nodes and loses a retained node's whole cache on top \
         of the victim's, though the partial phase-3 imports already \
         applied to healthy nodes are kept. Drops cost retries/backoff and \
         a slow NIC stretches the migration; both still complete.",
        dst_crash.final_members
    );
}
