//! **E16 / migration perf baseline** — wall-clock cost of the migration
//! *data plane* (scoring → dump → FuseCache planning → import), tracked in
//! `results/BENCH_migration.json` against a committed pre-optimization
//! baseline, mirroring `tab_perf`'s smoke/full-mode discipline.
//!
//! Three measurements:
//!
//! * **end-to-end migration**: one warmed laptop-scale tier, retire the
//!   Master's scoring choice, time `migrate_scale_in` (best of N reps on
//!   cloned tiers). The committed JSON keeps `baseline_migrate_wall_ms`
//!   from the first recorded full run (the pre-optimization baseline) so
//!   `improvement_pct` tracks data-plane work across PRs. Pass
//!   `--rebaseline` to reset it to the current run.
//! * **scoring rounds**: repeated `choose_retiring` passes — the §III-C
//!   crawl whose per-class `median_hotness` probe the store now caches.
//! * **plan construction**: `plan_scale_in_shipments` run serially
//!   (`jobs = 1`) and in parallel (`--jobs` / `ELMEM_JOBS`); the two plans
//!   must be **byte-identical**, and the wall-clock ratio is the speedup.
//!
//! `--smoke` runs a seconds-long version for CI: it always asserts
//! parallel == serial plan identity, and additionally asserts speedup
//! ≥ 1.5× when at least 4 cores are available and ≥ 4 jobs requested. A
//! smoke run never reads from — or overwrites — a full-mode results file;
//! its numbers come from a smaller tier and are not comparable.
//! Absolute wall-clock numbers are machine-dependent; the machine-agnostic
//! fields are the byte-identity bit, the speedup ratio, and the item
//! counters.

use std::fmt::Write as _;
use std::time::Instant;

use elmem_bench::exp::{cluster_preset, Preset};
use elmem_bench::sweep;
use elmem_cluster::CacheTier;
use elmem_core::migration::{migrate_scale_in, MigrationCosts};
use elmem_core::{choose_retiring, plan_scale_in_shipments, Shipment};
use elmem_store::ImportMode;
use elmem_util::{KeyId, SimTime};
use elmem_workload::Keyspace;

const RESULT_PATH: &str = "results/BENCH_migration.json";
const SCHEMA: &str = "elmem-migrate-perf-v1";

/// A warmed laptop-scale tier: `keys` keys spread over `nodes` nodes by
/// the ring, set with Keyspace-drawn value sizes and strictly increasing
/// timestamps, then a re-touch pass over every 7th key — a serving-warm
/// steady state whose MRU lists are hotness-sorted, like the real system
/// just before a scale-in.
fn warmed_tier(nodes: u32, keys: u64) -> CacheTier {
    let ks = Keyspace::new(keys, 11);
    let mut tier = CacheTier::new(cluster_preset(Preset::from_cli(), nodes));
    for k in 0..keys {
        let key = KeyId(k);
        let owner = tier.node_for_key(key).expect("non-empty membership");
        let t = SimTime::from_nanos(1_000_000_000 + k * 1_000);
        let _ = tier
            .node_mut(owner)
            .expect("member is provisioned")
            .store
            .set(key, ks.value_size(key), t);
    }
    for k in (0..keys).step_by(7) {
        let key = KeyId(k);
        let owner = tier.node_for_key(key).expect("non-empty membership");
        let t = SimTime::from_nanos(10_000_000_000_000 + k * 1_000);
        let _ = tier
            .node_mut(owner)
            .expect("member is provisioned")
            .store
            .get(key, t);
    }
    tier
}

/// FNV-1a digest over every byte of the plan that phase 3 would ship:
/// (source, target, class) routing plus each chosen item's key and
/// timestamp. Two plans with equal digests shipped the same items in the
/// same order.
fn plan_digest(plan: &[Shipment]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mix = |h: &mut u64, v: u64| {
        *h ^= v;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for s in plan {
        mix(&mut h, u64::from(s.source.0));
        mix(&mut h, u64::from(s.target.0));
        mix(&mut h, u64::from(s.class.0));
        mix(&mut h, s.len() as u64);
        for item in s.items() {
            mix(&mut h, item.key.0);
            mix(&mut h, item.last_access.as_nanos());
        }
    }
    h
}

/// The previously committed baselines, if the results file already records
/// them — and only from a *full*-mode record: smoke runs measure a smaller
/// tier whose numbers are not comparable.
fn read_baseline(field: &str) -> Option<f64> {
    let text = std::fs::read_to_string(RESULT_PATH).ok()?;
    if !text.contains("\"mode\":\"full\"") {
        return None;
    }
    let start = text.find(field)? + field.len();
    let rest = &text[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let rebaseline = args.iter().any(|a| a == "--rebaseline");
    let jobs = sweep::jobs_from_cli();
    let cores = rayon::current_num_threads();
    println!(
        "== tab_migrate_perf: migration data-plane wall-clock{} ==",
        if smoke { " [smoke]" } else { "" }
    );
    println!("cores={cores} jobs={jobs}\n");

    let nodes = 4u32;
    let keys: u64 = if smoke { 120_000 } else { 500_000 };
    let now = SimTime::from_secs(100_000);
    let costs = MigrationCosts::default();

    let t0 = Instant::now();
    let tier = warmed_tier(nodes, keys);
    println!(
        "warmed tier: {nodes} nodes, {} resident items ({:.2}s to build)",
        tier.membership()
            .members()
            .iter()
            .map(|&id| tier.node(id).unwrap().store.len())
            .sum::<u64>(),
        t0.elapsed().as_secs_f64()
    );

    // -- 1. Scoring rounds: the §III-C crawl the Master runs per decision. --
    let rounds = if smoke { 10 } else { 40 };
    let t0 = Instant::now();
    let mut victims = Vec::new();
    for _ in 0..rounds {
        victims = std::hint::black_box(choose_retiring(&tier, 1).unwrap().0);
    }
    let scoring_wall = t0.elapsed().as_secs_f64();
    println!(
        "scoring: {rounds} choose_retiring rounds in {:.3}s ({:.1} ms/round), victim {:?}",
        scoring_wall,
        scoring_wall * 1000.0 / rounds as f64,
        victims
    );

    // -- 2. End-to-end migration: best of N reps on cloned tiers. ----------
    let reps = if smoke { 1 } else { 3 };
    let mut best_wall = f64::INFINITY;
    let mut report = None;
    for rep in 0..reps {
        let mut t = tier.clone();
        let t0 = Instant::now();
        let r = migrate_scale_in(&mut t, &victims, now, &costs, ImportMode::Merge)
            .expect("migration succeeds");
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "migrate rep {rep}: {} considered, {} migrated in {:.3}s",
            r.items_considered, r.items_migrated, wall
        );
        if wall < best_wall {
            best_wall = wall;
            report = Some(r);
        }
    }
    let report = report.expect("at least one repetition ran");
    let items_per_sec = report.items_considered as f64 / best_wall;

    // The pre-PR baselines ride along in the committed JSON; a smoke run
    // measures a different tier, so it never compares against (or
    // overwrites) the full run's baselines.
    let migrate_wall_ms = best_wall * 1000.0;
    let scoring_wall_ms = scoring_wall * 1000.0;
    let baseline_migrate_ms = if smoke || rebaseline {
        migrate_wall_ms
    } else {
        read_baseline("\"baseline_migrate_wall_ms\":").unwrap_or(migrate_wall_ms)
    };
    let baseline_scoring_ms = if smoke || rebaseline {
        scoring_wall_ms
    } else {
        read_baseline("\"baseline_scoring_wall_ms\":").unwrap_or(scoring_wall_ms)
    };
    let migrate_improvement_pct = (baseline_migrate_ms / migrate_wall_ms - 1.0) * 100.0;
    let scoring_improvement_pct = (baseline_scoring_ms / scoring_wall_ms - 1.0) * 100.0;
    println!(
        "migrate: {migrate_wall_ms:.0} ms (baseline {baseline_migrate_ms:.0} ms, \
         {migrate_improvement_pct:+.1}%), {items_per_sec:.0} items/s considered"
    );
    println!(
        "scoring: {scoring_wall_ms:.0} ms (baseline {baseline_scoring_ms:.0} ms, \
         {scoring_improvement_pct:+.1}%)\n"
    );

    // -- 3. Plan construction: serial vs parallel, byte-identity, speedup. --
    let plan_reps = if smoke { 3 } else { 5 };
    let t0 = Instant::now();
    let mut serial = None;
    for _ in 0..plan_reps {
        serial = Some(std::hint::black_box(
            plan_scale_in_shipments(&tier, &victims, 1).expect("serial planning succeeds"),
        ));
    }
    let plan_serial_wall = t0.elapsed().as_secs_f64() / plan_reps as f64;
    let (serial_plan, serial_stats) = serial.expect("at least one repetition ran");
    let t0 = Instant::now();
    let mut parallel = None;
    for _ in 0..plan_reps {
        parallel = Some(std::hint::black_box(
            plan_scale_in_shipments(&tier, &victims, jobs).expect("parallel planning succeeds"),
        ));
    }
    let plan_parallel_wall = t0.elapsed().as_secs_f64() / plan_reps as f64;
    let (parallel_plan, parallel_stats) = parallel.expect("at least one repetition ran");
    // The determinism contract this benchmark exists to enforce: the
    // parallel plan is byte-identical to the serial one, always.
    assert_eq!(
        serial_plan, parallel_plan,
        "parallel plan must be byte-identical to serial"
    );
    assert_eq!(serial_stats, parallel_stats, "plan stats must match");
    let digest = plan_digest(&serial_plan);
    let plan_speedup = plan_serial_wall / plan_parallel_wall;
    let plan_items_per_sec = serial_stats.items_considered as f64 / plan_parallel_wall;
    println!(
        "plan: serial {:.1} ms, parallel(jobs={jobs}) {:.1} ms, speedup {plan_speedup:.2}x, \
         {} cells, {} comparisons, digest {digest:016x}, plans identical",
        plan_serial_wall * 1000.0,
        plan_parallel_wall * 1000.0,
        serial_stats.cells,
        serial_stats.comparisons,
    );
    if cores >= 4 && jobs >= 4 {
        assert!(
            plan_speedup >= 1.5,
            "parallel planning speedup {plan_speedup:.2}x below 1.5x with \
             {cores} cores and {jobs} jobs"
        );
    } else {
        println!("(speedup floor not asserted: cores={cores}, jobs={jobs})");
    }
    println!();

    // -- 4. Emit results/BENCH_migration.json. ------------------------------
    let mut doc = String::new();
    let _ = write!(
        doc,
        "{{\"schema\":\"{SCHEMA}\",\"mode\":\"{}\",\"jobs\":{jobs},\"cores\":{cores},\
         \"tier\":{{\"nodes\":{nodes},\"keys\":{keys}}},\
         \"migrate\":{{\"wall_ms\":{migrate_wall_ms:.1},\
         \"baseline_migrate_wall_ms\":{baseline_migrate_ms:.1},\
         \"improvement_pct\":{migrate_improvement_pct:.1},\
         \"items_considered\":{},\"items_migrated\":{},\"items_per_sec\":{items_per_sec:.0}}},\
         \"scoring\":{{\"rounds\":{rounds},\"wall_ms\":{scoring_wall_ms:.1},\
         \"baseline_scoring_wall_ms\":{baseline_scoring_ms:.1},\
         \"improvement_pct\":{scoring_improvement_pct:.1}}},\
         \"plan\":{{\"reps\":{plan_reps},\"serial_wall_ms\":{:.1},\
         \"parallel_wall_ms\":{:.1},\"speedup\":{plan_speedup:.2},\
         \"identical\":true,\"digest\":\"{digest:016x}\",\
         \"cells\":{},\"comparisons\":{},\
         \"items_per_sec\":{plan_items_per_sec:.0}}}}}",
        if smoke { "smoke" } else { "full" },
        report.items_considered,
        report.items_migrated,
        plan_serial_wall * 1000.0,
        plan_parallel_wall * 1000.0,
        serial_stats.cells,
        serial_stats.comparisons,
    );
    // A smoke run never clobbers a committed full-run record: the tracked
    // baseline lives in the full-mode file, and CI's artifact should carry
    // the real trajectory, not a smoke sample from a smaller tier.
    let keep_full = smoke
        && std::fs::read_to_string(RESULT_PATH)
            .map(|t| t.contains("\"mode\":\"full\""))
            .unwrap_or(false);
    if keep_full {
        println!("keeping existing full-mode {RESULT_PATH} (smoke run not recorded)");
    } else {
        std::fs::create_dir_all("results").expect("create results/");
        std::fs::write(RESULT_PATH, &doc).expect("write BENCH_migration.json");
        println!("wrote {RESULT_PATH}");
    }
}
