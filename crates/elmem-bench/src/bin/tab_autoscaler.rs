//! **E9 / §III-B** — AutoScaler sizing accuracy.
//!
//! Part 1: feeds a Zipf window into the stack-distance engine and prints
//! the memory required for each target hit rate (the paper's
//! "memory required for every integer hit rate percentage").
//!
//! Part 2: runs the AutoScaler end-to-end on a demand drop and checks that
//! the post-scaling hit rate stays at or above `p_min` from Eq. (1) — i.e.
//! the database never sees more than `r_DB` misses per second for long.

use elmem_bench::exp::{cluster_preset, workload_preset, Preset};
use elmem_bench::sweep;
use elmem_core::migration::MigrationCosts;
use elmem_core::{
    run_experiment, AutoScaler, AutoScalerConfig, ExperimentConfig, FaultPlan, MigrationPolicy,
};
use elmem_store::item::item_footprint;
use elmem_util::{ByteSize, DetRng, SimTime};
use elmem_workload::{DemandTrace, TraceKind, ZipfPopularity};

fn main() {
    println!("== Tab (SS III-B): AutoScaler sizing ==\n");

    // Part 1 — memory-for-hit-rate table from a sampled window.
    let keyspace = elmem_workload::Keyspace::new(100_000, 5);
    let zipf = ZipfPopularity::new(keyspace.n_keys(), 1.0, 5);
    let mut rng = DetRng::seed(5);
    let mut scaler = AutoScaler::new(AutoScalerConfig::new(125.0, ByteSize::from_mib(64)));
    for _ in 0..500_000 {
        let key = zipf.sample(&mut rng);
        scaler.observe(key, item_footprint(keyspace.value_size(key)));
    }
    println!(
        "observed {} lookups, {} warm ({:.1}%)",
        scaler.observed(),
        scaler.warm(),
        scaler.warm() as f64 / scaler.observed() as f64 * 100.0
    );
    println!("target WARM hit rate -> required memory (nodes of 64 MiB)");
    for pct in [50u32, 70, 80, 90, 95, 97, 99] {
        match scaler.memory_for(f64::from(pct) / 100.0) {
            Some(mem) => println!(
                "{pct:>3}% -> {:>12} ({} nodes)",
                mem.to_string(),
                mem.as_u64().div_ceil(ByteSize::from_mib(64).as_u64())
            ),
            None => println!("{pct:>3}% -> no warm accesses observed"),
        }
    }
    println!(
        "\nEq. (1) p_min examples (r_DB = 125/s): r=200 -> {:.2}, r=500 -> {:.2}, r=4000 -> {:.3}",
        scaler.p_min(200.0),
        scaler.p_min(500.0),
        scaler.p_min(4000.0)
    );

    // Part 2 — end-to-end: demand drops 1.0 -> 0.3; the AutoScaler should
    // scale in while keeping misses under r_DB.
    //
    // This run uses a larger database (r_DB = 500/s) than the figure
    // experiments: Eq. (1) then asks for p_min ≈ 0.88 at peak, a quantile
    // the stack-distance estimator resolves from minutes of history. The
    // figure experiments' r_DB = 167/s implies p_min ≈ 0.96 — sizing that
    // far into the reuse tail needs hours of observation, which is why the
    // paper (and we) treat the autoscaling policy as a pluggable module
    // and drive the degradation experiments with scripted actions.
    println!("\n== end-to-end autoscaled run (demand 1.0 -> 0.3) ==\n");
    let preset = Preset::from_cli();
    let mut cluster = cluster_preset(preset, preset.scale_nodes(10));
    cluster.db_servers *= 3; // laptop: r_DB = 500/s
    let mut scaler_cfg = AutoScalerConfig::new(cluster.r_db(), cluster.node_memory);
    scaler_cfg.epoch = SimTime::from_secs(60);
    scaler_cfg.max_nodes = preset.scale_nodes(12);
    scaler_cfg.min_observations = 2_000_000;
    let mut workload = workload_preset(preset, TraceKind::FacebookEtc, 5);
    workload.trace = DemandTrace::new(
        vec![
            1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3,
        ],
        SimTime::from_secs(120),
    );
    let r_db = cluster.r_db();
    // One end-to-end cell, run through the sweep harness like every other
    // fig/tab binary.
    let cells = [ExperimentConfig {
        cluster,
        workload,
        policy: MigrationPolicy::elmem(),
        autoscaler: Some(scaler_cfg.into()),
        scheduled: vec![],
        prefill_top_ranks: preset.prefill_ranks(),
        costs: MigrationCosts::default(),
        faults: FaultPlan::new(),
        healing: None,
        master: Default::default(),
        seed: 5,
    }];
    let result = sweep::run_cells(sweep::jobs_from_cli(), &cells, |_, cfg| {
        run_experiment(cfg.clone())
    })
    .pop()
    .expect("autoscaler cell ran");

    println!("scaling events:");
    for ev in &result.events {
        println!(
            "  t={} {} -> {} nodes (committed t={})",
            ev.decided_at, ev.from_nodes, ev.to_nodes, ev.committed_at
        );
    }
    println!("final members: {}", result.final_members);

    // Post-settling miss throughput vs r_DB.
    if let Some(last) = result.events.last() {
        let settle = last.committed_at.as_secs() + 120;
        let late: Vec<_> = result
            .timeline
            .iter()
            .filter(|p| p.second >= settle && p.requests > 0)
            .collect();
        if !late.is_empty() {
            let lookups_per_sec =
                late.iter().map(|p| p.requests * 5).sum::<u64>() as f64 / late.len() as f64;
            let miss = 1.0 - late.iter().map(|p| p.hit_rate).sum::<f64>() / late.len() as f64;
            let misses_per_sec = miss * lookups_per_sec;
            println!(
                "steady-state misses/s after scaling: {misses_per_sec:.0} (r_DB = {r_db:.0}/s) -> {}",
                if misses_per_sec <= r_db {
                    "within capacity"
                } else if misses_per_sec <= r_db * 1.25 {
                    "at the Eq. (1) knee (by design)"
                } else {
                    "OVER capacity"
                }
            );
        }
    }
}
