//! **Chaos sweep** — seeded randomized fault/scaling schedules with
//! end-to-end integrity invariants.
//!
//! Each cell generates a [`ChaosPlan`] from its seed — crashes, link
//! degradations, partitions, shipment-drop probabilities, overlapping
//! scripted scale-ins/outs, **Master crashes mid-migration** (restart +
//! journal resume), optionally the autoscaler and the self-healing
//! pipeline — runs it, and checks the invariant suite of
//! `elmem_core::chaos` (DESIGN.md §12–13): store conservation audits,
//! content fidelity, no stale serves, breaker/detector state-machine
//! legality, telemetry ordering, migration phase pairing, healing
//! convergence, and journal coherence (no shipment lost, none applied
//! twice).
//!
//! A failing seed is automatically **shrunk** to a minimal reproducing
//! plan and written to `results/chaos_failing_<seed>.json`, with the
//! minimal run's migration journal next to it as
//! `results/chaos_journal_<seed>.json` (CI uploads both), then the
//! process exits non-zero.
//!
//! `--replay <path>` re-runs one committed reproduction (a
//! `chaos_failing_<seed>.json`) directly instead of sweeping.
//! `--smoke` sweeps 64 seeds (the CI gate); the full run sweeps 256.
//! `--jobs N` bounds the worker threads; results are byte-identical at
//! any worker count.

use elmem_bench::sweep;
use elmem_core::chaos::run_chaos;
use elmem_sim::chaos::ChaosPlan;
use elmem_sim::fault::FaultKind;

fn fault_label(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::NodeCrash { .. } => "crash",
        FaultKind::LinkSlowdown { .. } => "slow_link",
        FaultKind::LinkPartition { .. } => "partition",
    }
}

fn replay(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let plan = ChaosPlan::parse_json(text.trim_end()).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    });
    println!("== Tab (chaos): replaying {path} ==\n");
    let report = run_chaos(&plan);
    println!(
        "seed={} nodes={} keys={} dur={}s faults={} actions={} master_crashes={} \
         reqs={} members={}",
        plan.seed,
        plan.nodes,
        plan.keys,
        plan.duration_secs,
        plan.faults.scheduled().len(),
        plan.actions.len(),
        plan.master_crashes.len(),
        report.result.total_requests,
        report.result.final_members,
    );
    if report.passed() {
        println!("\nreplay passed every invariant");
        std::process::exit(0);
    }
    for v in &report.violations {
        println!("violation: {v}");
    }
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--replay") {
        match args.get(i + 1) {
            Some(path) => replay(path),
            None => {
                eprintln!("--replay requires a path to a chaos plan JSON");
                std::process::exit(2);
            }
        }
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let seeds: Vec<u64> = if smoke {
        (0..64).collect()
    } else {
        (0..256).collect()
    };
    println!(
        "== Tab (chaos): {} seeded schedules, end-to-end invariants{} ==\n",
        seeds.len(),
        if smoke { " [smoke]" } else { "" }
    );

    let reports = sweep::run_cells(sweep::jobs_from_cli(), &seeds, |_, &seed| {
        let plan = ChaosPlan::generate(seed);
        let report = run_chaos(&plan);
        (plan, report)
    });

    let mut failing: Vec<(u64, ChaosPlan)> = Vec::new();
    let mut fault_counts = std::collections::BTreeMap::new();
    let mut action_total = 0usize;
    let mut master_crash_total = 0usize;
    let mut runs_with_healing = 0usize;
    let mut runs_with_autoscaler = 0usize;
    for (plan, report) in &reports {
        for f in plan.faults.scheduled() {
            *fault_counts.entry(fault_label(&f.kind)).or_insert(0usize) += 1;
        }
        action_total += plan.actions.len();
        master_crash_total += plan.master_crashes.len();
        runs_with_healing += usize::from(plan.healing);
        runs_with_autoscaler += usize::from(plan.autoscaler);
        let status = if report.passed() {
            "ok".to_string()
        } else {
            format!("FAIL ({})", report.violations.len())
        };
        println!(
            "seed={:<4} nodes={} keys={:<6} dur={:<4}s faults={} actions={} mcrash={} heal={} \
             scaler={} reqs={:<6} members={} -> {status}",
            plan.seed,
            plan.nodes,
            plan.keys,
            plan.duration_secs,
            plan.faults.scheduled().len(),
            plan.actions.len(),
            plan.master_crashes.len(),
            u8::from(plan.healing),
            u8::from(plan.autoscaler),
            report.result.total_requests,
            report.result.final_members,
        );
        for v in &report.violations {
            println!("    violation: {v}");
        }
        if !report.passed() {
            failing.push((plan.seed, plan.clone()));
        }
    }

    println!(
        "\n{} / {} schedules passed every invariant \
         (faults swept: {:?}; {} scripted actions; {} Master crashes; \
         {} runs with healing, {} with autoscaler)",
        reports.len() - failing.len(),
        reports.len(),
        fault_counts,
        action_total,
        master_crash_total,
        runs_with_healing,
        runs_with_autoscaler,
    );

    if failing.is_empty() {
        return;
    }

    // Shrink each failing schedule to a minimal reproduction and leave it
    // where CI picks artifacts up.
    std::fs::create_dir_all("results").expect("create results/");
    for (seed, plan) in &failing {
        println!("\nshrinking failing seed {seed}...");
        let minimal = elmem_sim::chaos::shrink(plan, |p| !run_chaos(p).passed());
        let report = run_chaos(&minimal);
        let path = format!("results/chaos_failing_{seed}.json");
        std::fs::write(&path, minimal.to_json()).expect("write failing schedule");
        // The minimal run's migration journal, for post-mortem: which
        // migrations started, sealed, acked what, resumed, committed.
        let journal_path = format!("results/chaos_journal_{seed}.json");
        std::fs::write(&journal_path, report.result.journal.to_json())
            .expect("write failing journal");
        println!(
            "  minimal plan ({} faults, {} actions, {} Master crashes) -> {path} \
             (journal: {journal_path})",
            minimal.faults.scheduled().len(),
            minimal.actions.len(),
            minimal.master_crashes.len()
        );
        for v in &report.violations {
            println!("  still violates: {v}");
        }
    }
    std::process::exit(1);
}
