//! **Chaos sweep** — seeded randomized fault/scaling schedules with
//! end-to-end integrity invariants.
//!
//! Each cell generates a [`ChaosPlan`] from its seed — crashes, link
//! degradations, partitions, shipment-drop probabilities, overlapping
//! scripted scale-ins/outs, optionally the autoscaler and the self-healing
//! pipeline — runs it, and checks the invariant suite of
//! `elmem_core::chaos` (DESIGN.md §12): store conservation audits, content
//! fidelity, no stale serves, breaker/detector state-machine legality,
//! telemetry ordering, migration phase pairing, healing convergence.
//!
//! A failing seed is automatically **shrunk** to a minimal reproducing
//! plan and written to `results/chaos_failing_<seed>.json` (CI uploads
//! it), then the process exits non-zero.
//!
//! `--smoke` sweeps 64 seeds (the CI gate); the full run sweeps 256.
//! `--jobs N` bounds the worker threads; results are byte-identical at
//! any worker count.

use elmem_bench::sweep;
use elmem_core::chaos::run_chaos;
use elmem_sim::chaos::ChaosPlan;
use elmem_sim::fault::FaultKind;

fn fault_label(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::NodeCrash { .. } => "crash",
        FaultKind::LinkSlowdown { .. } => "slow_link",
        FaultKind::LinkPartition { .. } => "partition",
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seeds: Vec<u64> = if smoke {
        (0..64).collect()
    } else {
        (0..256).collect()
    };
    println!(
        "== Tab (chaos): {} seeded schedules, end-to-end invariants{} ==\n",
        seeds.len(),
        if smoke { " [smoke]" } else { "" }
    );

    let reports = sweep::run_cells(sweep::jobs_from_cli(), &seeds, |_, &seed| {
        let plan = ChaosPlan::generate(seed);
        let report = run_chaos(&plan);
        (plan, report)
    });

    let mut failing: Vec<(u64, ChaosPlan)> = Vec::new();
    let mut fault_counts = std::collections::BTreeMap::new();
    let mut action_total = 0usize;
    let mut runs_with_healing = 0usize;
    let mut runs_with_autoscaler = 0usize;
    for (plan, report) in &reports {
        for f in plan.faults.scheduled() {
            *fault_counts.entry(fault_label(&f.kind)).or_insert(0usize) += 1;
        }
        action_total += plan.actions.len();
        runs_with_healing += usize::from(plan.healing);
        runs_with_autoscaler += usize::from(plan.autoscaler);
        let status = if report.passed() {
            "ok".to_string()
        } else {
            format!("FAIL ({})", report.violations.len())
        };
        println!(
            "seed={:<4} nodes={} keys={:<6} dur={:<4}s faults={} actions={} heal={} scaler={} \
             reqs={:<6} members={} -> {status}",
            plan.seed,
            plan.nodes,
            plan.keys,
            plan.duration_secs,
            plan.faults.scheduled().len(),
            plan.actions.len(),
            u8::from(plan.healing),
            u8::from(plan.autoscaler),
            report.result.total_requests,
            report.result.final_members,
        );
        for v in &report.violations {
            println!("    violation: {v}");
        }
        if !report.passed() {
            failing.push((plan.seed, plan.clone()));
        }
    }

    println!(
        "\n{} / {} schedules passed every invariant \
         (faults swept: {:?}; {} scripted actions; {} runs with healing, {} with autoscaler)",
        reports.len() - failing.len(),
        reports.len(),
        fault_counts,
        action_total,
        runs_with_healing,
        runs_with_autoscaler,
    );

    if failing.is_empty() {
        return;
    }

    // Shrink each failing schedule to a minimal reproduction and leave it
    // where CI picks artifacts up.
    std::fs::create_dir_all("results").expect("create results/");
    for (seed, plan) in &failing {
        println!("\nshrinking failing seed {seed}...");
        let minimal = elmem_sim::chaos::shrink(plan, |p| !run_chaos(p).passed());
        let report = run_chaos(&minimal);
        let path = format!("results/chaos_failing_{seed}.json");
        std::fs::write(&path, minimal.to_json()).expect("write failing schedule");
        println!(
            "  minimal plan ({} faults, {} actions) -> {path}",
            minimal.faults.scheduled().len(),
            minimal.actions.len()
        );
        for v in &report.violations {
            println!("  still violates: {v}");
        }
    }
    std::process::exit(1);
}
