//! **E6 / Fig. 8** — Comparing ElMem's migration with Naive and CacheScale
//! (§V-B4) on the SYS trace's 10 → 7 scale-in.
//!
//! Expected shape: ElMem's tail RT recovers within its ~migration overhead;
//! Naive and CacheScale keep degrading well past the scaling event. Paper:
//! ~70% tail-RT reduction vs Naive and ~64% vs CacheScale.

use elmem_bench::exp::{
    degradation_reduction, experiment_preset, print_summary_row, print_timeline, Preset,
};
use elmem_bench::sweep;
use elmem_core::{run_experiment, MigrationPolicy, ScaleAction};
use elmem_util::SimTime;
use elmem_workload::TraceKind;

fn main() {
    let preset = Preset::from_cli();
    let nodes = preset.scale_nodes(10);
    println!(
        "== Fig. 8: ElMem vs Naive vs CacheScale (SYS, {nodes} -> {}) ==\n",
        nodes - 3
    );
    let seed = 88;
    let scheduled = vec![(SimTime::from_secs(30 * 60), ScaleAction::In { count: 3 })];

    let cells = [
        MigrationPolicy::elmem(),
        MigrationPolicy::Naive,
        MigrationPolicy::cachescale(),
        MigrationPolicy::Baseline,
    ];
    let mut results = sweep::run_cells(sweep::jobs_from_cli(), &cells, |_, policy| {
        let mut cfg = experiment_preset(
            preset,
            TraceKind::FacebookSys,
            nodes,
            *policy,
            scheduled.clone(),
            seed,
        );
        // A slightly flatter popularity (Zipf 0.95) puts real mass in the
        // mid-tail, where the policies' data-placement quality differs,
        // while keeping the post-scaling steady state inside the database's
        // capacity (the paper's regime).
        cfg.workload.zipf_exponent = 0.95;
        // Few virtual nodes per server → realistic ketama imbalance: nodes
        // differ in both key count and popularity. This is where global
        // hotness comparison (FuseCache) beats Naive's per-node fraction:
        // with symmetric nodes the two keep literally the same item set.
        cfg.cluster.vnodes = 8;
        run_experiment(cfg)
    })
    .into_iter();
    let elmem = results.next().expect("elmem cell ran");
    let naive = results.next().expect("naive cell ran");
    let cachescale = results.next().expect("cachescale cell ran");
    let baseline = results.next().expect("baseline cell ran");

    print_summary_row("elmem", &elmem);
    print_summary_row("naive", &naive);
    print_summary_row("cachescale", &cachescale);
    print_summary_row("baseline", &baseline);

    println!(
        "\nelmem tail-RT reduction vs naive:      {:.1}%  (paper ~70%)",
        degradation_reduction(&naive, &elmem)
    );
    println!(
        "elmem tail-RT reduction vs cachescale: {:.1}%  (paper ~64%)",
        degradation_reduction(&cachescale, &elmem)
    );
    println!(
        "elmem tail-RT reduction vs baseline:   {:.1}%",
        degradation_reduction(&baseline, &elmem)
    );

    // The paper's Fig. 8 zooms into the minutes right after the scaling
    // decision; report the mean p95 over that window too.
    let focus = |r: &elmem_core::ExperimentResult| -> f64 {
        let s0 = r.events[0].decided_at.as_secs();
        let pts: Vec<_> = r
            .timeline
            .iter()
            .filter(|p| p.second >= s0 && p.second < s0 + 300 && p.requests > 0)
            .collect();
        pts.iter().map(|p| p.p95_ms).sum::<f64>() / pts.len().max(1) as f64
    };
    println!("\nmean p95 over the first 5 post-scaling minutes:");
    println!("  elmem      {:>9.2} ms", focus(&elmem));
    println!("  naive      {:>9.2} ms", focus(&naive));
    println!("  cachescale {:>9.2} ms", focus(&cachescale));
    println!("  baseline   {:>9.2} ms", focus(&baseline));

    println!();
    print_timeline("elmem", &elmem.timeline, 60);
    println!();
    print_timeline("naive", &naive.timeline, 60);
    println!();
    print_timeline("cachescale", &cachescale.timeline, 60);
}
