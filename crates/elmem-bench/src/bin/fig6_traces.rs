//! **E3 / Fig. 6(a–e)** — Hit rate and 95%ile RT for ElMem vs baseline on
//! all five traces, with the paper's scaling actions:
//!
//! * (a) SYS: 10 → 7
//! * (b) ETC: 10 → 9 and 9 → 10
//! * (c) SAP: 10 → 9 and 9 → 8
//! * (d) NLANR: 8 → 9 and 9 → 8
//! * (e) Microsoft: 10 → 9 and 9 → 8
//!
//! Expected shape: ElMem reduces the average post-scaling p95 degradation
//! by ~88–97% on scale-in and ~81% on scale-out.

use elmem_bench::exp::{
    degradation_reduction, experiment_preset, post_event_window_p95, print_summary_row, Preset,
};
use elmem_bench::sweep;
use elmem_core::{run_experiment, MigrationPolicy, ScaleAction};
use elmem_util::SimTime;
use elmem_workload::TraceKind;

fn minutes(m: u64) -> SimTime {
    SimTime::from_secs(m * 60)
}

fn main() {
    let preset = Preset::from_cli();
    type Case = (TraceKind, u32, Vec<(SimTime, ScaleAction)>, &'static str);
    let cases: Vec<Case> = vec![
        (
            TraceKind::FacebookSys,
            10,
            vec![(minutes(30), ScaleAction::In { count: 3 })],
            "(a) SYS: 10 -> 7",
        ),
        (
            TraceKind::FacebookEtc,
            10,
            vec![
                (minutes(25), ScaleAction::In { count: 1 }),
                (minutes(45), ScaleAction::Out { count: 1 }),
            ],
            "(b) ETC: 10 -> 9 -> 10",
        ),
        (
            TraceKind::Sap,
            10,
            vec![
                (minutes(18), ScaleAction::In { count: 1 }),
                (minutes(35), ScaleAction::In { count: 1 }),
            ],
            "(c) SAP: 10 -> 9 -> 8",
        ),
        (
            TraceKind::Nlanr,
            8,
            vec![
                (minutes(12), ScaleAction::Out { count: 1 }),
                (minutes(38), ScaleAction::In { count: 1 }),
            ],
            "(d) NLANR: 8 -> 9 -> 8",
        ),
        (
            TraceKind::Microsoft,
            10,
            vec![
                (minutes(20), ScaleAction::In { count: 1 }),
                (minutes(40), ScaleAction::In { count: 1 }),
            ],
            "(e) Microsoft: 10 -> 9 -> 8",
        ),
    ];

    println!("== Fig. 6: ElMem vs baseline across all traces ==");
    // 10 independent cells (5 cases × 2 policies): run them all through the
    // sweep harness, then format per case in order.
    let cells: Vec<(&Case, MigrationPolicy)> = cases
        .iter()
        .flat_map(|case| {
            [
                (case, MigrationPolicy::Baseline),
                (case, MigrationPolicy::elmem()),
            ]
        })
        .collect();
    let mut results = sweep::run_cells(sweep::jobs_from_cli(), &cells, |_, (case, policy)| {
        let (trace, nodes, scheduled, _) = case;
        let seed = 1000 + trace.name().len() as u64;
        run_experiment(experiment_preset(
            preset,
            *trace,
            preset.scale_nodes(*nodes),
            *policy,
            scheduled.clone(),
            seed,
        ))
    })
    .into_iter();
    for (_, _, _, label) in &cases {
        println!("\n-- {label} --");
        let baseline = results.next().expect("baseline cell ran");
        let elmem = results.next().expect("elmem cell ran");
        print_summary_row("baseline", &baseline);
        print_summary_row("elmem", &elmem);
        let mean_hit = |tl: &[elmem_util::stats::TimelinePoint]| -> f64 {
            let pts: Vec<_> = tl.iter().filter(|p| p.requests > 0).collect();
            pts.iter().map(|p| p.hit_rate).sum::<f64>() / pts.len().max(1) as f64
        };
        println!(
            "mean hit rate: baseline {:.3}, elmem {:.3}",
            mean_hit(&baseline.timeline),
            mean_hit(&elmem.timeline)
        );
        println!(
            "post-scaling degradation reduction: {:.1}%",
            degradation_reduction(&baseline, &elmem)
        );
        let wb = post_event_window_p95(&baseline, 600);
        let we = post_event_window_p95(&elmem, 600);
        println!(
            "10-min post-event windows: baseline {wb:.2} ms, elmem {we:.2} ms ({:.1}% reduction)",
            (wb - we) / wb.max(1e-9) * 100.0
        );
    }
    println!("\n(paper: reductions of 88% SYS, 96% ETC, 90% SAP, 92% NLANR, 97% Microsoft)");
}
