//! **Fig. 2 time series** — the post-scaling recovery curve as JSON.
//!
//! Runs the Fig. 2 scale-in scenario under a steady load, baseline
//! (immediate scale-in, cold cache) vs ElMem (FuseCache migration first),
//! and emits the telemetry time series — per-window hit rate, DB load,
//! member count, bytes migrated — as machine-readable JSON under
//! `results/`, alongside the full telemetry dump of the ElMem run.
//!
//! `--smoke` runs a seconds-long small-tier version for CI. The claims the
//! figure is built on are asserted in both modes: the baseline hit rate
//! dips at the scaling commit and recovers afterwards, and two runs with
//! the same seed produce byte-identical telemetry dumps.

use elmem_bench::exp::{experiment_preset, Preset};
use elmem_bench::sweep;
use elmem_cluster::ClusterConfig;
use elmem_core::migration::MigrationCosts;
use elmem_core::{
    run_experiment_with_telemetry, ExperimentConfig, ExperimentResult, FaultPlan, MigrationPolicy,
    ScaleAction, SeriesPoint,
};
use elmem_util::{SimTime, TelemetryConfig};
use elmem_workload::{DemandTrace, Keyspace, TraceKind, WorkloadConfig};
use std::fmt::Write as _;

const SEED: u64 = 42;

/// One scale-in scenario: where the decision lands and how the run is
/// sliced for the dip/recovery assertions.
struct Scenario {
    scale_s: u64,
    /// Tail window `[from, to)` over which recovery is measured.
    tail_from: u64,
    tail_to: u64,
}

fn full_experiment(policy: MigrationPolicy) -> (ExperimentConfig, Scenario) {
    let scenario = Scenario {
        scale_s: 120,
        tail_from: 300,
        tail_to: 420,
    };
    let preset = Preset::from_cli();
    let mut cfg = experiment_preset(
        preset,
        TraceKind::FacebookEtc,
        preset.scale_nodes(10),
        policy,
        vec![(
            SimTime::from_secs(scenario.scale_s),
            ScaleAction::In { count: 1 },
        )],
        SEED,
    );
    // Steady demand: the only event in the run is the scale-in, so the
    // curve isolates the scaling dip from the trace shape.
    cfg.workload.trace = DemandTrace::new(vec![1.0; 7], SimTime::from_secs(60));
    (cfg, scenario)
}

fn smoke_experiment(policy: MigrationPolicy) -> (ExperimentConfig, Scenario) {
    let scenario = Scenario {
        scale_s: 30,
        tail_from: 90,
        tail_to: 130,
    };
    let cfg = ExperimentConfig {
        cluster: ClusterConfig::small_test(),
        workload: WorkloadConfig {
            keyspace: Keyspace::new(30_000, 2),
            zipf_exponent: 1.0,
            items_per_request: 3,
            peak_rate: 250.0,
            trace: DemandTrace::new(vec![1.0; 13], SimTime::from_secs(10)),
        },
        policy,
        autoscaler: None,
        scheduled: vec![(
            SimTime::from_secs(scenario.scale_s),
            ScaleAction::In { count: 1 },
        )],
        prefill_top_ranks: 15_000,
        costs: MigrationCosts::default(),
        faults: FaultPlan::new(),
        healing: None,
        master: Default::default(),
        seed: 2,
    };
    (cfg, scenario)
}

fn run(cfg: ExperimentConfig) -> ExperimentResult {
    run_experiment_with_telemetry(cfg, TelemetryConfig::default())
}

/// Mean hit rate over series windows starting in `[from, to)` seconds,
/// counting only windows that saw lookups.
fn mean_hit(series: &[SeriesPoint], from: u64, to: u64) -> f64 {
    let pts: Vec<_> = series
        .iter()
        .filter(|p| {
            let s = p.window_start.as_secs();
            s >= from && s < to && p.lookups > 0
        })
        .collect();
    pts.iter().map(|p| p.hit_rate()).sum::<f64>() / pts.len().max(1) as f64
}

/// Lowest per-window hit rate over `[from, to)` seconds.
fn min_hit(series: &[SeriesPoint], from: u64, to: u64) -> f64 {
    series
        .iter()
        .filter(|p| {
            let s = p.window_start.as_secs();
            s >= from && s < to && p.lookups > 0
        })
        .map(|p| p.hit_rate())
        .fold(1.0, f64::min)
}

/// One policy's curve as a JSON object: the commit tick plus the telemetry
/// series with the derived per-window hit rate attached.
fn curve_json(label: &str, r: &ExperimentResult) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"policy\":\"{label}\"");
    match r.events.first() {
        Some(ev) => {
            let _ = write!(
                out,
                ",\"decided_at_ns\":{},\"committed_at_ns\":{}",
                ev.decided_at.as_nanos(),
                ev.committed_at.as_nanos()
            );
        }
        None => out.push_str(",\"decided_at_ns\":null,\"committed_at_ns\":null"),
    }
    out.push_str(",\"points\":[");
    for (i, p) in r.telemetry.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Splice the derived hit rate into the canonical point encoding so
        // plotting scripts need no arithmetic.
        let mut point = String::new();
        p.write_json(&mut point);
        let body = point.strip_suffix('}').unwrap_or(&point);
        let _ = write!(out, "{body},\"hit_rate\":{}}}", p.hit_rate());
    }
    out.push_str("]}");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let make = if smoke {
        smoke_experiment
    } else {
        full_experiment
    };
    println!(
        "== Fig. 2 time series: scale-in recovery curves{} ==\n",
        if smoke { " [smoke]" } else { "" }
    );

    let scenario = make(MigrationPolicy::Baseline).1;
    let seed = make(MigrationPolicy::Baseline).0.seed;
    let window_ns = TelemetryConfig::default().sample_every.as_nanos();
    // Three independent cells: baseline, elmem, and a same-seed baseline
    // rerun for the byte-identity check.
    let cells = [
        MigrationPolicy::Baseline,
        MigrationPolicy::elmem(),
        MigrationPolicy::Baseline,
    ];
    let mut results = sweep::run_cells(sweep::jobs_from_cli(), &cells, |_, policy| {
        run(make(*policy).0)
    })
    .into_iter();
    let baseline = results.next().expect("baseline cell ran");
    let elmem = results.next().expect("elmem cell ran");

    // Determinism: the identical config must reproduce the identical
    // telemetry dump, byte for byte.
    let rerun = results.next().expect("rerun cell ran");
    assert_eq!(
        baseline.telemetry.to_json(),
        rerun.telemetry.to_json(),
        "same-seed runs must produce byte-identical telemetry dumps"
    );

    let mut doc = String::new();
    let _ = write!(
        doc,
        "{{\"scenario\":\"scale_in\",\"mode\":\"{}\",\"seed\":{seed},\
         \"scale_tick_ns\":{},\"window_ns\":{window_ns},\"curves\":[{},{}]}}",
        if smoke { "smoke" } else { "full" },
        SimTime::from_secs(scenario.scale_s).as_nanos(),
        curve_json("baseline", &baseline),
        curve_json("elmem", &elmem),
    );
    std::fs::create_dir_all("results").expect("create results/");
    let curve_path = if smoke {
        "results/tab_timeseries_smoke.json"
    } else {
        "results/tab_timeseries.json"
    };
    std::fs::write(curve_path, &doc).expect("write recovery curves");
    let dump_path = if smoke {
        "results/tab_timeseries_telemetry_smoke.json"
    } else {
        "results/tab_timeseries_telemetry.json"
    };
    std::fs::write(dump_path, elmem.telemetry.to_json()).expect("write telemetry dump");

    for (label, r) in [("baseline", &baseline), ("elmem", &elmem)] {
        let commit = r.events.first().expect("scale-in ran").committed_at;
        let pre = mean_hit(&r.telemetry.series, scenario.scale_s / 2, scenario.scale_s);
        let dip = min_hit(&r.telemetry.series, commit.as_secs(), scenario.tail_to);
        let tail = mean_hit(&r.telemetry.series, scenario.tail_from, scenario.tail_to);
        println!(
            "{label:<9} commit={commit:<9}  pre_hit={pre:>6.4}  dip_hit={dip:>6.4}  \
             tail_hit={tail:>6.4}  events={}  bytes_migrated={}",
            r.telemetry.recorded_events,
            r.telemetry
                .series
                .last()
                .map(|p| p.bytes_migrated)
                .unwrap_or(0),
        );
    }
    println!("\nwrote {curve_path} and {dump_path}");

    // The claims the figure is built on, checked on every run (CI runs the
    // smoke version): the baseline's hit rate dips when the cold scale-in
    // commits and climbs back as survivors refill, and the curve carries
    // the scaling decision in its event stream.
    let series = &baseline.telemetry.series;
    let commit = baseline.events.first().expect("scale-in ran").committed_at;
    let pre = mean_hit(series, scenario.scale_s / 2, scenario.scale_s);
    let dip = min_hit(series, commit.as_secs(), scenario.tail_from);
    let tail = mean_hit(series, scenario.tail_from, scenario.tail_to);
    assert!(
        dip < pre - 0.03,
        "baseline hit rate must dip at the scaling tick (pre {pre:.4}, dip {dip:.4})"
    );
    assert!(
        tail > dip + 0.5 * (pre - dip),
        "baseline hit rate must recover from the dip (pre {pre:.4}, dip {dip:.4}, tail {tail:.4})"
    );
    for r in [&baseline, &elmem] {
        assert!(
            r.telemetry
                .events
                .iter()
                .any(|e| e.kind.label() == "scaling_decided"),
            "telemetry event stream must carry the scaling decision"
        );
    }
    // ElMem migrates the retiring node's hot items before the flip, so its
    // worst post-scaling window stays above the baseline's.
    let elmem_commit = elmem.events.first().expect("scale-in ran").committed_at;
    let elmem_dip = min_hit(
        &elmem.telemetry.series,
        elmem_commit.as_secs(),
        scenario.tail_from,
    );
    assert!(
        elmem_dip >= dip,
        "elmem's post-scaling dip ({elmem_dip:.4}) must not undercut the baseline's ({dip:.4})"
    );

    println!(
        "Interpretation: the baseline flips membership at the decision tick \
         with a cold survivor set — every request that hashed to the retired \
         node misses and queues on the database until survivors refill, the \
         Fig. 2 dip. ElMem first migrates the retiring node's hottest items \
         through FuseCache and only then commits, so its curve shows the \
         membership flip without the miss trough."
    );
}
