//! **E4 / §V-B2** — FuseCache/migration overhead breakdown.
//!
//! Runs a real 10 → 9 migration at laptop scale and prints the per-phase
//! wall-clock, then extrapolates each phase to the paper's scale (≈4 M
//! items migrated) using the linear cost model. Paper breakdown: scoring
//! ≈20 s, hash+dump ≈50 s, metadata transfer ≈70 s, FuseCache <2 s, data
//! migration ≈45 s, import ≈80 s — about 2 minutes end to end.

use elmem_bench::exp::{cluster_preset, workload_preset, Preset};
use elmem_bench::sweep;
use elmem_cluster::Cluster;
use elmem_core::migration::{migrate_scale_in, MigrationCosts};
use elmem_core::scoring::choose_retiring;
use elmem_store::ImportMode;
use elmem_util::{DetRng, SimTime};
use elmem_workload::{RequestGenerator, TraceKind};

fn main() {
    println!("== Tab (SS V-B2): migration overhead breakdown ==\n");
    // One cell — the warmup feeds the single migration it measures — run
    // through the sweep harness like every other fig/tab binary.
    let preset = Preset::from_cli();
    let mut cells = sweep::run_cells(sweep::jobs_from_cli(), &[99u64], |_, &seed| {
        let workload = workload_preset(preset, TraceKind::FacebookEtc, seed);
        let rng = DetRng::seed(seed);
        let mut cluster = Cluster::new(
            cluster_preset(preset, preset.scale_nodes(10)),
            workload.keyspace.clone(),
            rng.split("c"),
        );
        let mut gen = RequestGenerator::new(workload, rng.split("w"));
        let zipf = gen.zipf().clone();
        cluster.prefill(
            (1..=preset.prefill_ranks())
                .rev()
                .map(|r| zipf.key_for_rank(r)),
            SimTime::ZERO,
        );
        while let Some(req) = gen.next_request() {
            if req.arrival > SimTime::from_secs(120) {
                break;
            }
            cluster.handle(&req);
        }

        let costs = MigrationCosts::default();
        let (victims, _) = choose_retiring(&cluster.tier, 1).unwrap();
        let wall_start = std::time::Instant::now();
        let report = migrate_scale_in(
            &mut cluster.tier,
            &victims,
            SimTime::from_secs(200),
            &costs,
            ImportMode::Merge,
        )
        .expect("migration succeeds");
        (report, wall_start.elapsed())
    });
    let (report, host_elapsed) = cells.pop().expect("overhead cell ran");

    let p = &report.phases;
    println!("phase                 modeled time   (paper @10x scale)");
    let scale = 4_000_000.0 / report.items_migrated.max(1) as f64;
    let row = |name: &str, t: SimTime, paper: &str| {
        println!(
            "{name:<20} {:>12}   ({paper}; extrapolated {:>8.1}s)",
            t.to_string(),
            t.as_secs_f64() * scale
        );
    };
    row("node scoring", p.scoring, "~20s");
    row("hash + dump", p.dump, "~50s");
    row("metadata transfer", p.metadata_transfer, "~70s");
    row("FuseCache", p.fusecache, "<2s");
    row("data migration", p.data_transfer, "~45s");
    row("batch import", p.import, "~80s");
    println!(
        "{:<20} {:>12}   (paper ~2min)",
        "TOTAL",
        p.total().to_string()
    );
    println!();
    println!(
        "items considered: {}   items migrated: {}   data bytes: {}   metadata bytes: {}",
        report.items_considered,
        report.items_migrated,
        report.bytes_migrated,
        report.metadata_bytes
    );
    println!(
        "(host wall-clock for the whole migration computation: {:.2?})",
        host_elapsed
    );
}
