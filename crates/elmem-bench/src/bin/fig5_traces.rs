//! **E2 / Fig. 5** — The five (normalized) demand traces used in the
//! evaluation: Facebook SYS and ETC, SAP, NLANR, Microsoft.
//!
//! Prints one column per trace, one row per minute, matching the shapes of
//! the paper's Fig. 5 panels.

use elmem_bench::sweep;
use elmem_workload::TraceKind;

fn main() {
    println!("== Fig. 5: normalized request-rate traces ==\n");
    let traces = sweep::run_cells(sweep::jobs_from_cli(), &TraceKind::ALL, |_, k| {
        (k.name(), k.demand_trace())
    });
    print!("{:>4}", "min");
    for (name, _) in &traces {
        print!(" {name:>10}");
    }
    println!();
    for m in 0..60usize {
        print!("{m:>4}");
        for (_, t) in &traces {
            print!(" {:>10.3}", t.samples()[m]);
        }
        println!();
    }
    println!();
    for (name, t) in &traces {
        println!(
            "{name:<10} peak={:.2} trough={:.2} (variation {:.1}x)",
            t.peak(),
            t.trough(),
            t.peak() / t.trough().max(1e-9)
        );
    }
}
