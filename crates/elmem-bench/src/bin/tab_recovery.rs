//! **Robustness** — the self-healing tier after a node crash.
//!
//! Crashes one node of a warm, steady-state tier and compares three
//! operating modes of the same deterministic run:
//!
//! * `no detector`   — the corpse stays in the ring; its keyspace slice
//!   pays the client timeout until the circuit breaker opens, then fails
//!   over fast to the database. Capacity is never restored.
//! * `detect+evict`  — the heartbeat detector confirms the death within
//!   the suspicion window and the Master evicts the corpse; survivors
//!   absorb the slice but total capacity stays down one node.
//! * `detect+warm`   — after eviction a replacement is warmed through the
//!   supervised FuseCache migration before joining the ring: capacity is
//!   restored and the hit rate climbs back to the pre-crash level.
//!
//! A second table (EXPERIMENTS.md E18) crashes the **Master** mid-way
//! through a scheduled scale-in migration on the same seed and compares
//! the two recovery policies: journal **resume** (the restarted Master
//! replays the WAL and continues from the last durable shipment) vs
//! **abort-and-restart** (the journal is abandoned; the scaling commits
//! cold, so the victims' hot data is lost and refills through misses).
//! Resume must recover the hit rate strictly faster.
//!
//! `--smoke` runs a seconds-long small-tier version of the same comparison
//! for CI; the assertions (detection inside the suspicion window, tail
//! hit-rate ordering warm > evict > none, resume beating abort) hold in
//! both modes.

use elmem_bench::exp::{experiment_preset, Preset};
use elmem_bench::sweep;
use elmem_cluster::ClusterConfig;
use elmem_core::migration::MigrationCosts;
use elmem_core::{
    run_experiment, ExperimentConfig, ExperimentResult, FaultPlan, HealingConfig, MasterRecovery,
    MigrationPolicy, ScaleAction,
};
use elmem_util::stats::hit_rate_recovery_secs;
use elmem_util::{NodeId, SimTime};
use elmem_workload::{DemandTrace, Keyspace, TraceKind, WorkloadConfig};

const SEED: u64 = 7;

/// How long the hit rate must hold the target to count as recovered.
const SUSTAIN_SECS: usize = 20;

/// Recovered = back to this fraction of the pre-crash hit rate.
const RECOVERY_FRACTION: f64 = 0.97;

/// One crash scenario: where the crash lands and how the run is sliced.
struct Scenario {
    crash_s: u64,
    /// Tail window `[from, to)` for the steady-state comparison, chosen
    /// after every recovery mode has settled.
    tail_from: u64,
    tail_to: u64,
}

fn full_experiment(healing: Option<HealingConfig>) -> (ExperimentConfig, Scenario) {
    let scenario = Scenario {
        crash_s: 120,
        tail_from: 240,
        tail_to: 420,
    };
    let preset = Preset::from_cli();
    let mut cfg = experiment_preset(
        preset,
        TraceKind::FacebookEtc,
        preset.scale_nodes(10),
        MigrationPolicy::elmem(),
        vec![],
        SEED,
    );
    // Steady demand: the only event in the run is the crash.
    cfg.workload.trace = DemandTrace::new(vec![1.0; 7], SimTime::from_secs(60));
    cfg.faults = FaultPlan::new().crash(SimTime::from_secs(scenario.crash_s), NodeId(3));
    cfg.healing = healing;
    (cfg, scenario)
}

fn smoke_experiment(healing: Option<HealingConfig>) -> (ExperimentConfig, Scenario) {
    let scenario = Scenario {
        crash_s: 30,
        tail_from: 70,
        tail_to: 130,
    };
    let cfg = ExperimentConfig {
        cluster: ClusterConfig::small_test(),
        workload: WorkloadConfig {
            keyspace: Keyspace::new(30_000, 2),
            zipf_exponent: 1.0,
            items_per_request: 3,
            peak_rate: 250.0,
            trace: DemandTrace::new(vec![1.0; 13], SimTime::from_secs(10)),
        },
        policy: MigrationPolicy::elmem(),
        autoscaler: None,
        scheduled: vec![],
        prefill_top_ranks: 15_000,
        costs: MigrationCosts::default(),
        faults: FaultPlan::new().crash(SimTime::from_secs(scenario.crash_s), NodeId(1)),
        healing,
        master: Default::default(),
        seed: 2,
    };
    (cfg, scenario)
}

/// Mean per-second hit rate over `[from, to)`.
fn mean_hit_rate(r: &ExperimentResult, from: u64, to: u64) -> f64 {
    let pts: Vec<_> = r
        .timeline
        .iter()
        .filter(|p| p.second >= from && p.second < to && p.requests > 0)
        .collect();
    pts.iter().map(|p| p.hit_rate).sum::<f64>() / pts.len().max(1) as f64
}

fn row(label: &str, r: &ExperimentResult, s: &Scenario) {
    let (detect, recovered) = match r.recoveries.first() {
        Some(rec) => (
            rec.detection_latency()
                .map(|d| format!("{d}"))
                .unwrap_or_else(|| "-".to_string()),
            format!("{}", rec.recovered_at),
        ),
        None => ("-".to_string(), "-".to_string()),
    };
    let pre = mean_hit_rate(r, s.crash_s / 2, s.crash_s);
    let recovery = hit_rate_recovery_secs(
        &r.timeline,
        s.crash_s,
        pre * RECOVERY_FRACTION,
        SUSTAIN_SECS,
    )
    .map(|v| format!("{v}s"))
    .unwrap_or_else(|| "never".to_string());
    println!(
        "{label:<14} members={}  timeouts={:>6}  fast_fo={:>7}  breaker_flips={:>3}  \
         detect={detect:<9}  recovered_at={recovered:<9}  pre_hit={pre:>6.4}  tail_hit={:>6.4}  \
         hit_restore={recovery}",
        r.final_members,
        r.client_timeouts,
        r.fast_failovers,
        r.breaker_transitions,
        mean_hit_rate(r, s.tail_from, s.tail_to),
    );
}

/// E18: the same scheduled scale-in, same seed, with the Master crashing
/// 200 ms into the migration — once resuming from the journal, once
/// aborting (the scaling commits cold). Returns `(resume, abort, scale_s)`.
fn resume_vs_abort_experiments(smoke: bool) -> (ExperimentConfig, ExperimentConfig, Scenario) {
    let (mut cfg, scenario) = if smoke {
        smoke_experiment(None)
    } else {
        full_experiment(None)
    };
    let scale_s = scenario.crash_s;
    // The only event is the scale-in; the Master crash interrupts its
    // migration rather than any cache node failing. The laptop tier
    // retires three of ten nodes (ElMem picks the *least valuable*
    // victims, so a single-node cold commit barely dents the hit rate);
    // the four-node smoke tier can only spare one.
    let count = if smoke { 1 } else { 3 };
    cfg.faults = FaultPlan::new();
    cfg.scheduled = vec![(SimTime::from_secs(scale_s), ScaleAction::In { count })];
    cfg.master.crashes = vec![SimTime::from_secs(scale_s) + SimTime::from_millis(200)];
    let mut abort = cfg.clone();
    abort.master.recovery = MasterRecovery::Abort;
    (cfg, abort, scenario)
}

fn resume_vs_abort(smoke: bool) {
    let (resume_cfg, abort_cfg, scenario) = resume_vs_abort_experiments(smoke);
    let scale_s = scenario.crash_s;
    let cells = [resume_cfg, abort_cfg];
    let mut results = sweep::run_cells(sweep::jobs_from_cli(), &cells, |_, cfg| {
        run_experiment(cfg.clone())
    })
    .into_iter();
    let resume = results.next().expect("resume cell ran");
    let abort = results.next().expect("abort cell ran");

    // The two runs are byte-identical up to the crash, so the resume run's
    // pre-scaling hit rate is the shared baseline. "Recovered" is measured
    // against the *post-scale* steady state (the resume run's tail) — the
    // smaller tier cannot reach the pre-scale hit rate at all, and the
    // question E18 asks is how long each policy takes to get back to what
    // the shrunk tier can sustain.
    let pre = mean_hit_rate(&resume, scale_s / 2, scale_s);
    let steady = mean_hit_rate(&resume, scenario.tail_from, scenario.tail_to);
    let restore = |r: &ExperimentResult| {
        hit_rate_recovery_secs(
            &r.timeline,
            scale_s,
            steady * RECOVERY_FRACTION,
            SUSTAIN_SECS,
        )
    };
    let show = |v: Option<u64>| {
        v.map(|s| format!("{s}s"))
            .unwrap_or_else(|| "never".to_string())
    };

    println!("\n== E18: Master crash mid-migration — journal resume vs abort-and-restart ==\n");
    for (label, r) in [("resume", &resume), ("abort", &abort)] {
        let replay = r.journal.replay(0);
        println!(
            "{label:<8} members={}  resumes={}  committed={}  aborted={}  pre_hit={pre:>6.4}  \
             steady_hit={steady:>6.4}  hit_restore={}",
            r.final_members,
            replay.resumes,
            replay.committed,
            replay.aborted,
            show(restore(r)),
        );
    }

    // The acceptance claims, checked on every run: the crash really
    // interrupted the migration, resume committed it, abort abandoned it,
    // and resume restored the hit rate strictly faster.
    let rr = resume.journal.replay(0);
    assert!(
        rr.committed && rr.resumes >= 1,
        "resume run must crash and resume"
    );
    let ar = abort.journal.replay(0);
    assert!(ar.aborted, "abort run must abandon the journal");
    assert_eq!(resume.final_members, abort.final_members);
    let (r_restore, a_restore) = (restore(&resume), restore(&abort));
    let r = r_restore.expect("resumed migration restores the hit rate");
    assert!(
        a_restore.is_none_or(|a| r < a),
        "resume must restore the hit rate strictly faster (resume {}, abort {})",
        show(r_restore),
        show(a_restore)
    );

    println!(
        "\nInterpretation: both runs lose the Master 200 ms into the same \
         scale-in migration. The restarted Master that replays its journal \
         resumes shipping from the last durable ack and commits the scaling \
         with the victim's hot items relocated, so the hit rate barely \
         moves. Abort-and-restart abandons the in-flight plan and commits \
         the scaling cold: every key the victims held refills through \
         database misses. Time back to the shrunk tier's steady-state hit \
         rate: {} resumed vs {} aborted.",
        show(r_restore),
        show(a_restore),
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let make = if smoke {
        smoke_experiment
    } else {
        full_experiment
    };
    println!(
        "== Tab (self-healing): crash detection, eviction, warmed replacement{} ==\n",
        if smoke { " [smoke]" } else { "" }
    );

    let scenario = make(None).1;
    let cells = [
        None,
        Some(HealingConfig::evict_only()),
        Some(HealingConfig::warm_replacement()),
    ];
    let mut results = sweep::run_cells(sweep::jobs_from_cli(), &cells, |_, healing| {
        run_experiment(make(*healing).0)
    })
    .into_iter();
    let none = results.next().expect("no-detector cell ran");
    let evict = results.next().expect("evict cell ran");
    let warm = results.next().expect("warm cell ran");

    row("no detector", &none, &scenario);
    row("detect+evict", &evict, &scenario);
    row("detect+warm", &warm, &scenario);

    // The claims the table is built on, checked on every run (CI runs the
    // smoke version): detection lands inside the suspicion window and the
    // tail hit rates order warm > evict > none.
    assert!(none.recoveries.is_empty() && none.probes_sent == 0);
    for r in [&evict, &warm] {
        let rec = r.recoveries.first().expect("crash detected");
        let d = HealingConfig::evict_only().detector;
        let window = (d.probe_interval + d.jitter) * u64::from(d.suspicion_threshold + 1);
        let latency = rec.detection_latency().expect("crash time known");
        assert!(
            latency <= window,
            "detection took {latency}, suspicion window is {window}"
        );
    }
    let tail = |r: &ExperimentResult| mean_hit_rate(r, scenario.tail_from, scenario.tail_to);
    assert!(
        tail(&warm) > tail(&evict) && tail(&evict) > tail(&none),
        "tail hit rates must order warm > evict > none ({:.4} / {:.4} / {:.4})",
        tail(&warm),
        tail(&evict),
        tail(&none)
    );

    println!(
        "\nInterpretation: without a detector the dead node keeps its arc of \
         the ring — every lookup that hashes there pays the client timeout \
         until the breaker opens ({} timeouts, {} fast failovers) and the \
         lost capacity never returns. Detection confirms the crash in \
         {} and eviction stops the timeout bleed, but the tier stays one \
         node short. The warmed replacement refills the hottest keys through \
         FuseCache before joining, so the hit rate is restored toward the \
         pre-crash level while evict-only settles lower and the unhealed \
         tier lower still. The warm-vs-evict gap widens as capacity binds: \
         with a Zipf tail a 10-node tier barely misses one node's worth of \
         mass, while the small smoke tier never reclaims the pre-crash hit \
         rate on eviction alone.",
        none.client_timeouts,
        none.fast_failovers,
        warm.recoveries[0]
            .detection_latency()
            .expect("crash time known"),
    );

    resume_vs_abort(smoke);
}
