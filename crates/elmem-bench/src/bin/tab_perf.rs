//! **E15 / perf baseline** — wall-clock throughput of the simulator's
//! serving loop, plus the parallel-sweep speedup, tracked in
//! `results/BENCH_perf.json` so future PRs have a perf trajectory to
//! regress against.
//!
//! Three measurements (schema v2 adds the third):
//!
//! * **single cell**: one fixed serving-loop-heavy experiment (steady
//!   demand, no scaling), timed over several repetitions; the headline is
//!   simulated requests per wall-clock second. The committed JSON keeps a
//!   `baseline_req_per_sec` field from the first recorded run (the
//!   pre-optimization baseline) so `improvement_pct` tracks hot-path work
//!   across PRs. Pass `--rebaseline` to reset it to the current run.
//! * **multi-cell sweep**: the same cell grid run serially (`jobs = 1`)
//!   and in parallel (`--jobs` / `ELMEM_JOBS`, default all cores); the
//!   per-cell digests — scaling events, counters, and the full golden
//!   telemetry dump — must be **byte-identical** between the two, and the
//!   wall-clock ratio is the reported speedup.
//! * **multi-thread serving**: real OS threads hammer one shared
//!   [`ConcurrentSlabStore`] (8 shards, 90% get / 10% set over a prefilled
//!   keyspace) at 1/2/4/8 threads — the threads-vs-req/s scaling table of
//!   the sharded store itself (E19). The headline is the best rate's
//!   speedup over the same run's 1-thread rate.
//!
//! `--smoke` runs a seconds-long version for CI: it always asserts
//! parallel == serial byte-identity, and additionally asserts sweep
//! speedup ≥ 2× and serving scaling ≥ 5× when at least 4 cores are
//! available. A smoke run never reads from — or overwrites — a full-mode
//! results file; its numbers come from a shorter workload and are not
//! comparable. Absolute throughput numbers are machine-dependent; the
//! schema's machine-agnostic fields are the speedup ratios, the
//! byte-identity bit, and the operation counters.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use elmem_bench::exp::laptop_cluster;
use elmem_bench::sweep;
use elmem_core::migration::MigrationCosts;
use elmem_core::{
    run_experiment_with_telemetry, ExperimentConfig, ExperimentResult, FaultPlan, MigrationPolicy,
    ScaleAction,
};
use elmem_store::{ConcurrentSlabStore, SizeClasses, StoreConfig};
use elmem_util::{ByteSize, DetRng, KeyId, SimTime, TelemetryConfig};
use elmem_workload::{DemandTrace, Keyspace, WorkloadConfig};

const RESULT_PATH: &str = "results/BENCH_perf.json";
const SCHEMA: &str = "elmem-perf-v2";

/// Shards in the serving benchmark's store — the ceiling on non-contending
/// threads, matched to the largest thread count measured.
const MT_SHARDS: usize = 8;

/// Resident keys in the serving benchmark (≈51 MiB of 256 B chunks, far
/// under the store's memory: the measurement is lock/list cost, not
/// eviction).
const MT_KEYS: u64 = 200_000;

/// The fixed single-cell workload: steady demand, no scaling actions, so
/// the run spends its time in the per-request serving loop (frontend →
/// ring → SlabStore) that the hot-path optimizations target.
fn single_cell(smoke: bool) -> ExperimentConfig {
    let secs = if smoke { 40 } else { 240 };
    let mut cluster = laptop_cluster(4);
    cluster.node_memory = ByteSize::from_mib(32);
    ExperimentConfig {
        cluster,
        workload: WorkloadConfig {
            keyspace: Keyspace::new(120_000, 7),
            zipf_exponent: 1.0,
            items_per_request: 5,
            peak_rate: 833.0,
            trace: DemandTrace::new(vec![1.0; 8], SimTime::from_secs(secs / 8)),
        },
        policy: MigrationPolicy::elmem(),
        autoscaler: None,
        scheduled: vec![],
        prefill_top_ranks: 120_000,
        costs: MigrationCosts::default(),
        faults: FaultPlan::new(),
        healing: None,
        master: Default::default(),
        seed: 7,
    }
}

/// One sweep cell: a smaller run *with* a scaling action, so the sweep
/// exercises the migration path too (like the fig/tab binaries it stands
/// in for).
fn sweep_cell(seed: u64, smoke: bool) -> ExperimentConfig {
    let secs = if smoke { 30 } else { 120 };
    let mut cluster = laptop_cluster(4);
    cluster.node_memory = ByteSize::from_mib(16);
    let policy = if seed.is_multiple_of(2) {
        MigrationPolicy::Baseline
    } else {
        MigrationPolicy::elmem()
    };
    ExperimentConfig {
        cluster,
        workload: WorkloadConfig {
            keyspace: Keyspace::new(40_000, seed),
            zipf_exponent: 1.0,
            items_per_request: 4,
            peak_rate: 400.0,
            trace: DemandTrace::new(vec![1.0; 6], SimTime::from_secs(secs / 6)),
        },
        policy,
        autoscaler: None,
        scheduled: vec![(SimTime::from_secs(secs / 3), ScaleAction::In { count: 1 })],
        prefill_top_ranks: 40_000,
        costs: MigrationCosts::default(),
        faults: FaultPlan::new(),
        healing: None,
        master: Default::default(),
        seed,
    }
}

fn run(cfg: ExperimentConfig) -> ExperimentResult {
    run_experiment_with_telemetry(cfg, TelemetryConfig::default())
}

/// One serving-scaling cell: `threads` real OS threads each run
/// `ops_per_thread` operations (90% get / 10% set, uniform keys) against a
/// shared prefilled [`ConcurrentSlabStore`]. Returns requests per
/// wall-clock second. Prefill happens outside the timed region.
fn serving_mt_cell(threads: u64, ops_per_thread: u64) -> f64 {
    let store = Arc::new(ConcurrentSlabStore::new(StoreConfig {
        memory: ByteSize::from_mib(128),
        classes: SizeClasses::new(128, 2.0, 4096),
        shards: MT_SHARDS,
    }));
    for k in 0..MT_KEYS {
        store
            .set(KeyId(k), 100, SimTime::from_millis(k))
            .expect("prefill fits");
    }
    let t0 = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let mut rng = DetRng::seed(0xBE7C).split_index(t);
                for i in 0..ops_per_thread {
                    let key = KeyId(rng.next_below(MT_KEYS));
                    let now = SimTime::from_millis(MT_KEYS + i);
                    if rng.next_below(10) == 0 {
                        let _ = store.set(key, 100, now);
                    } else {
                        let _ = store.get(key, now);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("serving worker");
    }
    let wall = t0.elapsed().as_secs_f64();
    (threads * ops_per_thread) as f64 / wall
}

/// The canonical per-cell digest the byte-identity assertion compares:
/// scaling events, end-state counters, and the full telemetry dump.
fn digest(seed: u64, r: &ExperimentResult) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "cell seed={seed} requests={} members={} events={} timeouts={} ",
        r.total_requests,
        r.final_members,
        r.events.len(),
        r.client_timeouts
    );
    out.push_str(&r.telemetry.to_json());
    out.push('\n');
    out
}

/// Sums the per-node store counters of a run (the allocation-sensitive
/// fingerprint: any behavioural change on the serving path moves these).
fn store_counters(r: &ExperimentResult) -> elmem_store::StoreStats {
    let mut total = elmem_store::StoreStats::default();
    for row in &r.telemetry.nodes {
        total.merge(&row.stats);
    }
    total
}

/// The previously committed baseline throughput, if the results file
/// already records one — and only from a *full*-mode record: smoke runs
/// measure a shorter workload whose numbers are not comparable.
fn read_baseline() -> Option<f64> {
    let text = std::fs::read_to_string(RESULT_PATH).ok()?;
    if !text.contains("\"mode\":\"full\"") {
        return None;
    }
    let field = "\"baseline_req_per_sec\":";
    let start = text.find(field)? + field.len();
    let rest = &text[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let rebaseline = args.iter().any(|a| a == "--rebaseline");
    let jobs = sweep::jobs_from_cli();
    let cores = rayon::current_num_threads();
    println!(
        "== tab_perf: serving-loop throughput + sweep speedup{} ==",
        if smoke { " [smoke]" } else { "" }
    );
    println!("cores={cores} jobs={jobs}\n");

    // -- 1. Single-cell throughput: best of N repetitions. -----------------
    let reps = if smoke { 1 } else { 3 };
    let mut best_wall = f64::INFINITY;
    let mut result = None;
    for rep in 0..reps {
        let t0 = Instant::now();
        let r = run(single_cell(smoke));
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "single-cell rep {rep}: {} requests in {:.3}s ({:.0} req/s)",
            r.total_requests,
            wall,
            r.total_requests as f64 / wall
        );
        if wall < best_wall {
            best_wall = wall;
            result = Some(r);
        }
    }
    let single = result.expect("at least one repetition ran");
    let req_per_sec = single.total_requests as f64 / best_wall;
    let counters = store_counters(&single);

    // The pre-PR baseline rides along in the committed JSON; a smoke run
    // measures a different workload, so it never compares against (or
    // overwrites) the full run's baseline.
    let baseline = if smoke || rebaseline {
        req_per_sec
    } else {
        read_baseline().unwrap_or(req_per_sec)
    };
    let improvement_pct = (req_per_sec / baseline - 1.0) * 100.0;
    println!(
        "single-cell: {:.0} req/s (baseline {:.0}, {:+.1}%)\n",
        req_per_sec, baseline, improvement_pct
    );

    // -- 2. Multi-cell sweep: serial vs parallel, byte-identical. ----------
    let n_cells = if smoke { 6 } else { 8 };
    let cells: Vec<ExperimentConfig> = (1..=n_cells).map(|s| sweep_cell(s, smoke)).collect();

    let t0 = Instant::now();
    let serial: Vec<String> = sweep::run_cells(1, &cells, |_, cfg| {
        let r = run(cfg.clone());
        digest(cfg.seed, &r)
    });
    let serial_wall = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let parallel: Vec<String> = sweep::run_cells(jobs, &cells, |_, cfg| {
        let r = run(cfg.clone());
        digest(cfg.seed, &r)
    });
    let parallel_wall = t0.elapsed().as_secs_f64();

    let byte_identical = serial == parallel;
    let speedup = serial_wall / parallel_wall.max(1e-9);
    println!(
        "sweep ({n_cells} cells): serial {serial_wall:.3}s, parallel {parallel_wall:.3}s \
         (jobs={jobs}, speedup {speedup:.2}x, byte_identical={byte_identical})"
    );

    // -- 3. Multi-thread serving: the sharded store under real threads. ----
    let mt_ops = if smoke { 200_000 } else { 1_000_000 };
    let thread_counts: [u64; 4] = [1, 2, 4, 8];
    let mut mt_rates: Vec<f64> = Vec::new();
    for &t in &thread_counts {
        let rate = serving_mt_cell(t, mt_ops);
        println!(
            "serving {t} thread(s) x {mt_ops} ops ({MT_SHARDS} shards): {:.0} req/s",
            rate
        );
        mt_rates.push(rate);
    }
    let mt_1t = mt_rates[0];
    let mt_best = mt_rates.iter().copied().fold(0.0, f64::max);
    let mt_speedup = mt_best / mt_1t;
    println!(
        "serving scaling: best {:.0} req/s = {:.2}x the 1-thread rate\n",
        mt_best, mt_speedup
    );

    // -- 4. Emit results/BENCH_perf.json. -----------------------------------
    let mut doc = String::new();
    let _ = write!(
        doc,
        "{{\"schema\":\"{SCHEMA}\",\"mode\":\"{}\",\"jobs\":{jobs},\"cores\":{cores},\
         \"single_cell\":{{\"requests\":{},\"wall_ms\":{:.1},\"req_per_sec\":{:.1},\
         \"baseline_req_per_sec\":{:.1},\"improvement_pct\":{:.1}}},\
         \"sweep\":{{\"cells\":{n_cells},\"serial_wall_ms\":{:.1},\"parallel_wall_ms\":{:.1},\
         \"speedup\":{:.3},\"byte_identical\":{byte_identical}}},\
         \"serving_mt\":{{\"shards\":{MT_SHARDS},\"keys\":{MT_KEYS},\"ops_per_thread\":{mt_ops},\
         \"threads\":[{}],\"req_per_sec\":[{}],\"best_req_per_sec\":{:.1},\
         \"speedup_vs_1t\":{:.3}}},\
         \"counters\":{{\"store_hits\":{},\"store_misses\":{},\"store_sets\":{},\
         \"store_evictions\":{},\"recorded_events\":{}}}}}",
        if smoke { "smoke" } else { "full" },
        single.total_requests,
        best_wall * 1000.0,
        req_per_sec,
        baseline,
        improvement_pct,
        serial_wall * 1000.0,
        parallel_wall * 1000.0,
        speedup,
        thread_counts.map(|t| t.to_string()).join(","),
        mt_rates
            .iter()
            .map(|r| format!("{r:.1}"))
            .collect::<Vec<_>>()
            .join(","),
        mt_best,
        mt_speedup,
        counters.hits,
        counters.misses,
        counters.sets,
        counters.evictions,
        single.telemetry.recorded_events,
    );
    // A smoke run never clobbers a committed full-run record: the tracked
    // baseline lives in the full-mode file, and CI's artifact should carry
    // the real trajectory, not a 40-second smoke sample.
    let keep_full = smoke
        && std::fs::read_to_string(RESULT_PATH)
            .map(|t| t.contains("\"mode\":\"full\""))
            .unwrap_or(false);
    if keep_full {
        println!("\nkeeping existing full-mode {RESULT_PATH} (smoke run not recorded)");
    } else {
        std::fs::create_dir_all("results").expect("create results/");
        std::fs::write(RESULT_PATH, &doc).expect("write BENCH_perf.json");
        println!("\nwrote {RESULT_PATH}");
    }

    // -- 5. The claims CI pins. ---------------------------------------------
    assert!(
        byte_identical,
        "parallel sweep output must be byte-identical to serial"
    );
    if smoke && cores >= 4 && jobs >= 4 {
        assert!(
            speedup >= 2.0,
            "sweep speedup {speedup:.2}x below 2x on {cores} cores"
        );
    }
    // The tentpole's serving-scaling claim, guarded like the sweep claim:
    // meaningless on boxes without the cores to run the threads.
    if cores >= 4 {
        assert!(
            mt_speedup >= 5.0,
            "serving scaling {mt_speedup:.2}x below 5x on {cores} cores"
        );
    }
    println!(
        "Interpretation: cells are pure functions of their seed, so the \
         sweep harness can run them on any number of threads and reassemble \
         results in cell order — the digests (including the golden telemetry \
         dumps) match byte for byte. The single-cell number tracks the cost \
         of the per-request serving loop itself."
    );
}
