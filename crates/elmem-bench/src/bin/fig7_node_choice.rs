//! **E5+E10 / Fig. 7** — Choice of which node to scale in (§III-C, §V-B3).
//!
//! Warms a 10-node tier, scores every node by the weighted-median formula,
//! then — for each candidate — measures how many items a 10 → 9 scale-in
//! would migrate if *that* node were retired. Expected shape: nodes sorted
//! by median-hotness score have monotonically growing migration volume;
//! the coldest-median choice moves ~36% fewer items than a random pick and
//! ~45% fewer than the worst pick (paper: 3.97 M best vs 6.23 M random avg
//! vs 7.4 M worst).

use elmem_bench::exp::{cluster_preset, workload_preset, Preset};
use elmem_bench::sweep;
use elmem_cluster::Cluster;
use elmem_core::migration::{migrate_scale_in, MigrationCosts};
use elmem_core::scoring::node_score;
use elmem_store::ImportMode;
use elmem_util::{DetRng, NodeId, SimTime};
use elmem_workload::{RequestGenerator, TraceKind};

fn main() {
    let preset = Preset::from_cli();
    let nodes = preset.scale_nodes(10);
    println!(
        "== Fig. 7: node choice for scaling ({nodes} -> {}) ==\n",
        nodes - 1
    );
    let seed = 77;
    let workload = workload_preset(preset, TraceKind::FacebookEtc, seed);
    let rng = DetRng::seed(seed);
    let mut cluster = Cluster::new(
        cluster_preset(preset, nodes),
        workload.keyspace.clone(),
        rng.split("c"),
    );
    let mut gen = RequestGenerator::new(workload, rng.split("w"));

    // Warm: prefill the hottest ranks, then serve ~3 minutes of traffic so
    // per-node recency actually differs.
    let zipf = gen.zipf().clone();
    cluster.prefill(
        (1..=preset.prefill_ranks())
            .rev()
            .map(|r| zipf.key_for_rank(r)),
        SimTime::ZERO,
    );
    let mut served = 0u64;
    while let Some(req) = gen.next_request() {
        if req.arrival > SimTime::from_secs(600) {
            break;
        }
        cluster.handle(&req);
        served += 1;
    }
    println!("warmed with {served} requests\n");

    // Score all members, then simulate retiring each one.
    let mut scored: Vec<(NodeId, f64)> = cluster
        .tier
        .membership()
        .members()
        .iter()
        .map(|&id| (id, node_score(&cluster.tier.node(id).unwrap().store)))
        .collect();
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    println!(
        "{:>5} {:>14} {:>16} {:>14}",
        "rank", "node", "median score", "items migrated"
    );
    // Each candidate retirement is simulated on its own clone of the warmed
    // tier — independent cells for the sweep harness.
    let migrated: Vec<u64> = sweep::run_cells(sweep::jobs_from_cli(), &scored, |_, (id, _)| {
        let mut trial = cluster.tier.clone();
        migrate_scale_in(
            &mut trial,
            &[*id],
            SimTime::from_secs(200),
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .expect("migration succeeds")
        .items_migrated
    });
    for (rank, ((id, score), items)) in scored.iter().zip(&migrated).enumerate() {
        println!(
            "{:>5} {:>14} {:>16.4} {:>14}",
            rank + 1,
            id.to_string(),
            score,
            items
        );
    }

    let best = migrated[0] as f64;
    let avg = migrated.iter().sum::<u64>() as f64 / migrated.len() as f64;
    let worst = *migrated.iter().max().unwrap() as f64;
    println!(
        "\ncoldest-median choice: {best:.0} items; random average: {avg:.0} (+{:.0}%); worst: {worst:.0} (+{:.0}%)",
        (avg / best - 1.0) * 100.0,
        (worst / best - 1.0) * 100.0
    );
    println!("(paper: 3.97M best, 6.23M random (+57%), 7.4M worst (+86%))");

    // E10: is the scored choice actually optimal (fewest items migrated)?
    let min_items = *migrated.iter().min().unwrap();
    let optimal = migrated[0] == min_items;
    println!(
        "median scoring picked the optimal node: {}",
        if optimal { "yes" } else { "no (near-optimal)" }
    );
}
