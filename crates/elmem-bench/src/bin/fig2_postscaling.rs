//! **E1 / Fig. 2** — Post-scaling performance degradation for Memcached.
//!
//! The paper's Fig. 2: scaling in under the Facebook ETC trace, baseline
//! (immediate scale-in, cold cache) vs ElMem (FuseCache migration first).
//! Expected shape: baseline p95 spikes by an order of magnitude and takes
//! tens of minutes to restore; ElMem's peak is ~an order of magnitude lower
//! and restoration takes about the migration overhead (~2 min at paper
//! scale).

use elmem_bench::exp::{
    degradation_reduction, experiment_preset, print_summary_row, print_timeline, Preset,
};
use elmem_bench::sweep;
use elmem_core::{run_experiment, MigrationPolicy, ScaleAction};
use elmem_util::SimTime;
use elmem_workload::TraceKind;

fn main() {
    let preset = Preset::from_cli();
    let nodes = preset.scale_nodes(10);
    let seed = 42;
    // The ETC dip drives a 10 → 9 scale-in at the 25-minute mark; when
    // demand recovers, a 9 → 10 scale-out follows (the paper's Fig. 6(b)
    // trajectory, from which Fig. 2 is drawn).
    let scheduled = vec![
        (SimTime::from_secs(25 * 60), ScaleAction::In { count: 1 }),
        (SimTime::from_secs(45 * 60), ScaleAction::Out { count: 1 }),
    ];

    println!(
        "== Fig. 2: post-scaling degradation (ETC, {nodes} -> {} nodes) ==\n",
        nodes - 1
    );
    let cells = [MigrationPolicy::Baseline, MigrationPolicy::elmem()];
    let mut results = sweep::run_cells(sweep::jobs_from_cli(), &cells, |_, policy| {
        run_experiment(experiment_preset(
            preset,
            TraceKind::FacebookEtc,
            nodes,
            *policy,
            scheduled.clone(),
            seed,
        ))
    });
    let elmem = results.pop().expect("elmem cell ran");
    let baseline = results.pop().expect("baseline cell ran");

    print_timeline("baseline", &baseline.timeline, 30);
    println!();
    print_timeline("elmem", &elmem.timeline, 30);
    println!();
    print_summary_row("baseline", &baseline);
    print_summary_row("elmem", &elmem);
    println!(
        "\npost-scaling degradation reduction (mean p95): {:.1}%  (paper: ~88-96%)",
        degradation_reduction(&baseline, &elmem)
    );
    if let Some(ev) = elmem.events.first() {
        println!(
            "elmem migration overhead: {} (decided {} -> committed {})",
            ev.committed_at - ev.decided_at,
            ev.decided_at,
            ev.committed_at
        );
    }
}
