//! The parallel sweep harness: runs independent experiment cells
//! concurrently while keeping every observable output byte-identical to a
//! serial run.
//!
//! Every `fig*`/`tab*` binary is a sweep over *cells* — (scenario ×
//! policy × seed) combinations whose runs share no state: each cell's
//! experiment derives its own RNG from its own seed
//! (`DetRng::seed(config.seed)`), so cells can execute in any order, on
//! any thread, without changing a single byte of any result. The harness
//! exploits exactly that:
//!
//! * [`run_cells`] executes cells on up to `jobs` worker threads pulling
//!   indices off a shared queue, collects results *keyed by cell index*,
//!   and returns them in input order — formatting happens afterwards, on
//!   one thread, so parallel output is byte-identical to serial output;
//! * [`jobs_from_cli`] resolves the worker count from `--jobs N` /
//!   `--jobs=N`, then the `ELMEM_JOBS` environment variable, then the
//!   machine's available parallelism.
//!
//! `jobs = 1` (or a single cell) takes a plain serial path with no
//! threads at all — the reference the determinism tests compare against.

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "ELMEM_JOBS";

/// Resolves the worker count from explicit CLI arguments: `--jobs N` or
/// `--jobs=N`. Returns `None` if the flag is absent or malformed.
pub fn jobs_from_args<S: AsRef<str>>(args: &[S]) -> Option<usize> {
    let mut it = args.iter().map(AsRef::as_ref);
    while let Some(arg) = it.next() {
        if arg == "--jobs" {
            return it
                .next()
                .and_then(|v| v.parse().ok())
                .map(|j: usize| j.max(1));
        }
        if let Some(v) = arg.strip_prefix("--jobs=") {
            return v.parse().ok().map(|j: usize| j.max(1));
        }
    }
    None
}

/// Resolves the worker count for this process: `--jobs` from the process
/// arguments, else [`JOBS_ENV`], else the machine's available parallelism.
pub fn jobs_from_cli() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    jobs_from_args(&args)
        .or_else(|| std::env::var(JOBS_ENV).ok().and_then(|v| v.parse().ok()))
        .map(|j: usize| j.max(1))
        .unwrap_or_else(rayon::current_num_threads)
}

/// Runs `run` over every cell, on up to `jobs` worker threads, returning
/// the results in cell order.
///
/// A thin wrapper over [`elmem_util::par::par_map_indexed`] — the shared
/// indexed parallel map that the migration planner also uses. Each cell's
/// run must be a pure function of the cell (the workspace's experiments
/// are: they seed their own `DetRng`); the helper then guarantees the
/// returned vector — and anything formatted from it — is byte-identical
/// whatever `jobs` is.
///
/// # Panics
///
/// Propagates a panic from any cell's run.
pub fn run_cells<T, R, F>(jobs: usize, cells: &[T], run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    elmem_util::par::par_map_indexed(jobs, cells, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmem_util::DetRng;

    #[test]
    fn jobs_flag_space_form() {
        assert_eq!(jobs_from_args(&["--jobs", "4"]), Some(4));
    }

    #[test]
    fn jobs_flag_equals_form() {
        assert_eq!(jobs_from_args(&["--smoke", "--jobs=7"]), Some(7));
    }

    #[test]
    fn jobs_flag_absent_or_malformed() {
        assert_eq!(jobs_from_args(&["--smoke"]), None::<usize>);
        assert_eq!(jobs_from_args(&["--jobs", "many"]), None::<usize>);
        assert_eq!(jobs_from_args::<&str>(&[]), None::<usize>);
    }

    #[test]
    fn jobs_zero_clamps_to_one() {
        assert_eq!(jobs_from_args(&["--jobs", "0"]), Some(1));
        assert_eq!(jobs_from_args(&["--jobs=0"]), Some(1));
    }

    /// A deterministic per-cell computation heavy enough that parallel
    /// scheduling would scramble any order-dependent collection.
    fn cell_value(seed: u64) -> u64 {
        let mut rng = DetRng::seed(seed);
        (0..10_000).fold(0u64, |acc, _| acc.wrapping_add(rng.next_below(u64::MAX)))
    }

    #[test]
    fn parallel_matches_serial_in_order() {
        let cells: Vec<u64> = (0..32).collect();
        let serial = run_cells(1, &cells, |_, &s| cell_value(s));
        for jobs in [2, 3, 8] {
            let parallel = run_cells(jobs, &cells, |_, &s| cell_value(s));
            assert_eq!(serial, parallel, "jobs={jobs} must match serial");
        }
    }

    #[test]
    fn run_gets_matching_index() {
        let cells: Vec<u64> = (100..120).collect();
        let out = run_cells(4, &cells, |i, &c| (i, c));
        for (i, (idx, c)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*c, cells[i]);
        }
    }

    #[test]
    fn empty_and_single_cells() {
        let out: Vec<u64> = run_cells(8, &[], |_, &c: &u64| c);
        assert!(out.is_empty());
        let out = run_cells(8, &[9u64], |_, &c| c * 2);
        assert_eq!(out, vec![18]);
    }
}
