//! Memcached-substrate throughput: get/set/eviction and the two ElMem
//! patches (timestamp dump, batch import). These are the per-item costs
//! behind the §V-B2 overhead model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elmem_store::{ImportMode, ItemMeta, SlabStore, StoreConfig};
use elmem_util::{ByteSize, DetRng, KeyId, SimTime};

fn warmed_store(items: u64) -> SlabStore {
    let mut s = SlabStore::new(StoreConfig::with_memory(ByteSize::from_mib(64)));
    for k in 0..items {
        s.set(KeyId(k), 100, SimTime::from_nanos(k + 1)).unwrap();
    }
    s
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_ops");
    let n = 100_000u64;
    let store = warmed_store(n);
    let mut rng = DetRng::seed(1);
    let keys: Vec<KeyId> = (0..10_000).map(|_| KeyId(rng.next_below(n))).collect();

    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("get_hit", |b| {
        b.iter_batched(
            || store.clone(),
            |mut s| {
                let mut t = 1_000_000u64;
                for &k in &keys {
                    t += 1;
                    let _ = s.get(k, SimTime::from_nanos(t));
                }
                s.stats().hits
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("set_update", |b| {
        b.iter_batched(
            || store.clone(),
            |mut s| {
                let mut t = 1_000_000u64;
                for &k in &keys {
                    t += 1;
                    let _ = s.set(k, 100, SimTime::from_nanos(t));
                }
                s.stats().sets
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("set_with_eviction", |b| {
        b.iter_batched(
            || warmed_store(400_000), // will exceed 64 MiB -> evictions
            |mut s| {
                let mut t = 10_000_000u64;
                for i in 0..10_000u64 {
                    t += 1;
                    let _ = s.set(KeyId(1_000_000 + i), 100, SimTime::from_nanos(t));
                }
                s.stats().evictions
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_dump_and_import(c: &mut Criterion) {
    let mut group = c.benchmark_group("elmem_patches");
    for &n in &[10_000u64, 100_000] {
        let store = warmed_store(n);
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("timestamp_dump", n), &n, |b, _| {
            b.iter(|| store.dump_metadata().total_items())
        });

        let class = store.classes().class_for(100 + 59).unwrap();
        let incoming: Vec<ItemMeta> = (0..n / 10)
            .map(|i| ItemMeta {
                key: KeyId(10_000_000 + i),
                value_size: 100,
                last_access: SimTime::from_secs(100_000 - i),
                expires: SimTime::MAX,
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("batch_import_merge", n), &n, |b, _| {
            b.iter_batched(
                || store.clone(),
                |mut s| s.batch_import(class, &incoming, ImportMode::Merge).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ops, bench_dump_and_import
}
criterion_main!(benches);
