//! **E9 support** — throughput of the stack-distance engines the
//! AutoScaler runs every epoch (§III-B says the computation "takes less
//! than a second"; this bench verifies our engines are comfortably inside
//! that budget for realistic window sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elmem_stackdist::{ExactStackDistance, HitRateCurve, Mimir};
use elmem_util::{DetRng, KeyId};
use elmem_workload::ZipfPopularity;

fn zipf_trace(n_requests: usize, n_keys: u64, seed: u64) -> Vec<KeyId> {
    let zipf = ZipfPopularity::new(n_keys, 1.0, seed);
    let mut rng = DetRng::seed(seed);
    (0..n_requests).map(|_| zipf.sample(&mut rng)).collect()
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("stack_distance");
    for &len in &[10_000usize, 100_000] {
        let trace = zipf_trace(len, 50_000, 3);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("exact_fenwick", len), &len, |b, _| {
            b.iter(|| {
                let mut e = ExactStackDistance::new();
                for &k in &trace {
                    let _ = e.record(k, 100);
                }
                e.accesses()
            })
        });
        group.bench_with_input(BenchmarkId::new("mimir", len), &len, |b, _| {
            b.iter(|| {
                let mut m = Mimir::new(128, 256);
                for &k in &trace {
                    let _ = m.record(k, 100);
                }
                m.tracked_keys()
            })
        });
    }
    group.finish();
}

fn bench_full_epoch_pass(c: &mut Criterion) {
    // The AutoScaler's whole per-epoch job: one pass + the curve queries.
    let trace = zipf_trace(100_000, 50_000, 9);
    c.bench_function("autoscaler_epoch_pass_100k", |b| {
        b.iter(|| {
            let mut e = ExactStackDistance::new();
            let dists: Vec<Option<u64>> = trace.iter().map(|&k| e.record(k, 100)).collect();
            let curve = HitRateCurve::from_distances(&dists);
            curve.memory_per_percent().len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines, bench_full_epoch_pass
}
criterion_main!(benches);
