//! Consistent-hashing throughput: key placement is on the critical path of
//! every cache lookup in the client library.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elmem_hash::HashRing;
use elmem_util::{KeyId, NodeId};

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_lookup");
    for &nodes in &[10u32, 100, 1000] {
        let ring = HashRing::new((0..nodes).map(NodeId), 128);
        group.throughput(Throughput::Elements(10_000));
        group.bench_with_input(BenchmarkId::new("node_for", nodes), &nodes, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for k in 0..10_000u64 {
                    acc ^= u64::from(ring.node_for(KeyId(k)).unwrap().0);
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_build");
    for &nodes in &[10u32, 100] {
        group.bench_with_input(BenchmarkId::new("new", nodes), &nodes, |b, &n| {
            b.iter(|| HashRing::new((0..n).map(NodeId), 128).len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lookup, bench_build
}
criterion_main!(benches);
