//! **E7 / §IV-B** — FuseCache complexity: `O(k·log²n)` vs k-way merge
//! `O(n log k)` vs flatten-and-sort `O(N log N)`.
//!
//! The paper's claim: FuseCache wins increasingly as `n ≫ k`. Expect the
//! FuseCache series to stay near-flat as `n` grows 16× while both
//! baselines grow roughly linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elmem_core::fusecache::{fusecache, kway_top_n, sort_merge_top_n};
use elmem_store::Hotness;
use elmem_util::{DetRng, KeyId, SimTime};

fn make_lists(k: usize, n_per_list: usize, seed: u64) -> Vec<Vec<Hotness>> {
    let mut rng = DetRng::seed(seed);
    let mut key = 0u64;
    (0..k)
        .map(|_| {
            let mut l: Vec<Hotness> = (0..n_per_list)
                .map(|_| {
                    key += 1;
                    Hotness::new(SimTime::from_nanos(rng.next_below(1 << 40)), KeyId(key))
                })
                .collect();
            l.sort_unstable_by(|a, b| b.cmp(a));
            l
        })
        .collect()
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("top_n_selection");
    for &n in &[1_000usize, 10_000, 100_000] {
        let k = 8usize;
        let lists = make_lists(k, n, 42);
        let refs: Vec<&[Hotness]> = lists.iter().map(|l| l.as_slice()).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("fusecache", n), &n, |b, &n| {
            b.iter(|| fusecache(&refs, n))
        });
        group.bench_with_input(BenchmarkId::new("kway_heap", n), &n, |b, &n| {
            b.iter(|| kway_top_n(&refs, n))
        });
        group.bench_with_input(BenchmarkId::new("sort_merge", n), &n, |b, &n| {
            b.iter(|| sort_merge_top_n(&refs, n))
        });
    }
    group.finish();
}

fn bench_scaling_in_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusecache_vs_k");
    let n = 20_000usize;
    for &k in &[2usize, 8, 32, 128] {
        let lists = make_lists(k, n / k, 7);
        let refs: Vec<&[Hotness]> = lists.iter().map(|l| l.as_slice()).collect();
        group.bench_with_input(BenchmarkId::new("fusecache", k), &k, |b, _| {
            b.iter(|| fusecache(&refs, n / 2))
        });
        group.bench_with_input(BenchmarkId::new("kway_heap", k), &k, |b, _| {
            b.iter(|| kway_top_n(&refs, n / 2))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_selection, bench_scaling_in_k
}
criterion_main!(benches);
