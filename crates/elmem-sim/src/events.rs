//! A deterministic time-ordered event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use elmem_util::SimTime;

/// A priority queue of `(time, event)` pairs popped in time order.
///
/// Ties are broken by insertion order (FIFO), which keeps runs fully
/// deterministic regardless of the event payload type.
///
/// # Example
///
/// ```
/// use elmem_sim::EventQueue;
/// use elmem_util::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(1), "a");
/// q.schedule(SimTime::from_secs(1), "b"); // same time: FIFO
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "b")));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "z");
        q.schedule(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_secs(5), "m");
        assert_eq!(q.pop().unwrap().1, "m");
        assert_eq!(q.pop().unwrap().1, "z");
        assert!(q.is_empty());
    }
}
