//! A deterministic time-ordered event queue, arena-backed.
//!
//! Events live in a slab arena (`Vec<Option<E>>` slots recycled through a
//! free list) and the heap itself holds only small `Copy` entries
//! `(time, seq, slot)` — so sift operations move 24-byte records instead
//! of whole event payloads, and cancelled events free their slot
//! immediately while their heap entry is *lazily deleted*: it stays in
//! the heap until it surfaces, where a sequence-number mismatch against
//! the slot identifies it as stale and it is discarded. At cluster scale
//! (hundreds of thousands of control events) this keeps `schedule`/`pop`
//! allocation-free in the steady state and makes cancellation O(1).

use elmem_util::SimTime;

/// Handle to a scheduled event, returned by [`EventQueue::schedule`] and
/// accepted by [`EventQueue::cancel`]. The embedded sequence number makes
/// handles single-use: once the event fires or is cancelled, the handle
/// is dead and cancelling it again is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventKey {
    slot: u32,
    seq: u64,
}

/// A priority queue of `(time, event)` pairs popped in time order.
///
/// Ties are broken by insertion order (FIFO), which keeps runs fully
/// deterministic regardless of the event payload type.
///
/// # Example
///
/// ```
/// use elmem_sim::EventQueue;
/// use elmem_util::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(1), "a");
/// q.schedule(SimTime::from_secs(1), "b"); // same time: FIFO
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "b")));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Slab arena. `slots[i].1` is the sequence number of the entry
    /// currently (or last) occupying slot `i`; a heap entry whose `seq`
    /// differs is stale.
    slots: Vec<(Option<E>, u64)>,
    /// Recycled slot indices.
    free: Vec<u32>,
    /// Min-heap ordered by `(time, seq)`.
    heap: Vec<HeapEntry>,
    seq: u64,
    /// Live (scheduled, not cancelled) events.
    live: usize,
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            heap: Vec::new(),
            seq: 0,
            live: 0,
        }
    }

    /// Schedules `event` at `time`, returning a handle that can later be
    /// passed to [`Self::cancel`].
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventKey {
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = (Some(event), seq);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("event arena exceeds u32 slots");
                self.slots.push((Some(event), seq));
                idx
            }
        };
        self.heap.push(HeapEntry { time, seq, slot });
        self.sift_up(self.heap.len() - 1);
        self.live += 1;
        EventKey { slot, seq }
    }

    /// Cancels a previously scheduled event, returning its payload if it
    /// was still pending. The slot is recycled immediately; the stale heap
    /// entry is discarded lazily when it reaches the top.
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        let cell = self.slots.get_mut(key.slot as usize)?;
        if cell.1 != key.seq {
            return None;
        }
        let event = cell.0.take()?;
        self.free.push(key.slot);
        self.live -= 1;
        Some(event)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let top = *self.heap.first()?;
            self.pop_heap_top();
            let cell = &mut self.slots[top.slot as usize];
            if cell.1 != top.seq {
                continue; // stale: slot was cancelled and re-used
            }
            let Some(event) = cell.0.take() else {
                continue; // stale: slot was cancelled, not yet re-used
            };
            self.free.push(top.slot);
            self.live -= 1;
            return Some((top.time, event));
        }
    }

    /// The time of the earliest event without removing it.
    ///
    /// Takes `&mut self` because stale (cancelled) heap entries are purged
    /// from the top on the way to the answer.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let top = *self.heap.first()?;
            let cell = &self.slots[top.slot as usize];
            if cell.1 == top.seq && cell.0.is_some() {
                return Some(top.time);
            }
            self.pop_heap_top();
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Removes the heap root, restoring the heap property.
    fn pop_heap_top(&mut self) {
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].key() < self.heap[parent].key() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < n && self.heap[l].key() < self.heap[smallest].key() {
                smallest = l;
            }
            if r < n && self.heap[r].key() < self.heap[smallest].key() {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "z");
        q.schedule(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_secs(5), "m");
        assert_eq!(q.pop().unwrap().1, "m");
        assert_eq!(q.pop().unwrap().1, "z");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_removes_pending_event() {
        let mut q = EventQueue::new();
        let _a = q.schedule(SimTime::from_secs(1), "a");
        let b = q.schedule(SimTime::from_secs(2), "b");
        let _c = q.schedule(SimTime::from_secs(3), "c");
        assert_eq!(q.cancel(b), Some("b"));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_is_single_use() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_secs(1), 1);
        assert_eq!(q.cancel(k), Some(1));
        assert_eq!(q.cancel(k), None);
        // Slot re-use must not resurrect the old handle.
        let k2 = q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.cancel(k), None);
        assert_eq!(q.cancel(k2), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn cancelled_head_is_skipped_by_peek_and_pop() {
        let mut q = EventQueue::new();
        let head = q.schedule(SimTime::from_secs(1), "dead");
        q.schedule(SimTime::from_secs(9), "live");
        assert_eq!(q.cancel(head), Some("dead"));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(9), "live")));
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            let k = q.schedule(SimTime::from_nanos(round), round);
            if round % 2 == 0 {
                assert_eq!(q.cancel(k), Some(round));
            } else {
                assert_eq!(q.pop().unwrap().1, round);
            }
        }
        // One slot serves all 100 events: free-list reuse keeps the arena flat.
        assert_eq!(q.slots.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn matches_reference_heap_under_heavy_interleaving() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut q = EventQueue::new();
        let mut reference: BinaryHeap<Reverse<(SimTime, u64, u64)>> = BinaryHeap::new();
        let mut keys = Vec::new();
        let mut seq = 0u64;
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for step in 0..5000u64 {
            match next() % 4 {
                0 | 1 => {
                    let t = SimTime::from_nanos(next() % 64);
                    let k = q.schedule(t, step);
                    reference.push(Reverse((t, seq, step)));
                    keys.push((k, t, seq, step));
                    seq += 1;
                }
                2 => {
                    let got = q.pop();
                    let want = reference.pop().map(|Reverse((t, _, v))| (t, v));
                    assert_eq!(got, want);
                    if let Some((_, v)) = got {
                        keys.retain(|&(_, _, _, val)| val != v);
                    }
                }
                _ => {
                    if !keys.is_empty() {
                        let i = (next() % keys.len() as u64) as usize;
                        let (k, t, s, v) = keys.swap_remove(i);
                        assert_eq!(q.cancel(k), Some(v));
                        // Rebuild the reference heap without the cancelled entry.
                        let mut items: Vec<_> = std::mem::take(&mut reference).into_vec();
                        items.retain(|Reverse(e)| *e != (t, s, v));
                        reference = items.into_iter().collect();
                    }
                }
            }
            assert_eq!(q.len(), reference.len());
        }
        while let Some(Reverse((t, _, v))) = reference.pop() {
            assert_eq!(q.pop(), Some((t, v)));
        }
        assert!(q.is_empty());
    }
}
