//! Deterministic fault injection.
//!
//! The paper's testbed never loses a VM mid-migration; a real elastic tier
//! does. This module lets an experiment script failures against the
//! simulated deployment — node crashes, NIC slowdowns and partitions, and
//! probabilistic drops of the migration control/data streams — while
//! keeping runs bit-reproducible: every probabilistic decision is drawn
//! from a [`DetRng`] stream owned by the [`FaultInjector`], so two runs
//! with the same seed and the same [`FaultPlan`] produce identical
//! timelines.
//!
//! The plan is *declarative* (times and kinds); the [`FaultInjector`]
//! turns it into ordered, atomic [`FaultAction`]s for the driver to apply
//! (`LinkSlowdown` expands into an apply/restore pair, for example) and
//! answers analytic queries such as [`FaultInjector::crash_time`], which
//! the migration supervisor uses to detect that a source or destination
//! dies inside a computed phase window.
//!
//! # Example
//!
//! ```
//! use elmem_sim::fault::{FaultAction, FaultInjector, FaultPlan};
//! use elmem_util::{DetRng, NodeId, SimTime};
//!
//! let plan = FaultPlan::new()
//!     .crash(SimTime::from_secs(30), NodeId(2))
//!     .slow_link(SimTime::from_secs(10), NodeId(1), 4.0, SimTime::from_secs(5));
//! let mut inj = FaultInjector::new(plan, DetRng::seed(7).split("faults"));
//! assert_eq!(inj.crash_time(NodeId(2)), Some(SimTime::from_secs(30)));
//! let due = inj.due(SimTime::from_secs(15));
//! // Slowdown applied at 10 s, restored at 15 s; the crash is still pending.
//! assert_eq!(due.len(), 2);
//! assert!(matches!(due[0].1, FaultAction::SlowLink(NodeId(1), _)));
//! assert!(matches!(due[1].1, FaultAction::RestoreLink(NodeId(1))));
//! ```

use elmem_util::json::JsonValue;
use elmem_util::{DetRng, NodeId, SimTime};

/// One scheduled failure in a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node loses power at the scheduled time: its DRAM contents are
    /// gone, and every request routed to it misses until the membership
    /// excludes it.
    NodeCrash {
        /// The crashing node.
        node: NodeId,
    },
    /// The node's NIC degrades to `1/factor` of its bandwidth for
    /// `duration` (a congested or flapping uplink).
    LinkSlowdown {
        /// The affected node.
        node: NodeId,
        /// Bandwidth divisor (≥ 1).
        factor: f64,
        /// How long the slowdown lasts.
        duration: SimTime,
    },
    /// The node's NIC passes no traffic for `duration`; transfers queued
    /// meanwhile start only after the partition heals.
    LinkPartition {
        /// The affected node.
        node: NodeId,
        /// How long the partition lasts.
        duration: SimTime,
    },
}

/// A [`FaultKind`] pinned to its injection time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledFault {
    /// When the fault strikes.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A declarative failure schedule for one experiment.
///
/// Built fluently; an empty plan (the default) injects nothing, so every
/// existing experiment runs unchanged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    scheduled: Vec<ScheduledFault>,
    /// Probability that one source's metadata shipment (migration phase 1)
    /// is dropped in transit and must be retried.
    pub metadata_drop_prob: f64,
    /// Probability that one source's data shipment (migration phase 3) is
    /// dropped in transit and must be retried.
    pub transfer_drop_prob: f64,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.scheduled.is_empty()
            && self.metadata_drop_prob == 0.0
            && self.transfer_drop_prob == 0.0
    }

    /// The scheduled faults, in insertion order.
    pub fn scheduled(&self) -> &[ScheduledFault] {
        &self.scheduled
    }

    /// Schedules a node crash.
    pub fn crash(mut self, at: SimTime, node: NodeId) -> Self {
        self.scheduled.push(ScheduledFault {
            at,
            kind: FaultKind::NodeCrash { node },
        });
        self
    }

    /// Schedules a NIC slowdown (`factor` ≥ 1 divides the bandwidth).
    pub fn slow_link(mut self, at: SimTime, node: NodeId, factor: f64, duration: SimTime) -> Self {
        self.scheduled.push(ScheduledFault {
            at,
            kind: FaultKind::LinkSlowdown {
                node,
                factor,
                duration,
            },
        });
        self
    }

    /// Schedules a NIC partition.
    pub fn partition(mut self, at: SimTime, node: NodeId, duration: SimTime) -> Self {
        self.scheduled.push(ScheduledFault {
            at,
            kind: FaultKind::LinkPartition { node, duration },
        });
        self
    }

    /// Sets the phase-1 metadata-shipment drop probability.
    pub fn drop_metadata_with_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.metadata_drop_prob = p;
        self
    }

    /// Sets the phase-3 data-shipment drop probability.
    pub fn drop_transfers_with_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.transfer_drop_prob = p;
        self
    }

    /// Rebuilds a plan from its parts (the chaos shrinker edits schedules
    /// wholesale rather than through the fluent builders).
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn from_parts(
        scheduled: Vec<ScheduledFault>,
        metadata_drop_prob: f64,
        transfer_drop_prob: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&metadata_drop_prob),
            "probability out of range"
        );
        assert!(
            (0.0..=1.0).contains(&transfer_drop_prob),
            "probability out of range"
        );
        FaultPlan {
            scheduled,
            metadata_drop_prob,
            transfer_drop_prob,
        }
    }

    /// Appends the plan's canonical JSON encoding to `out`.
    ///
    /// The encoding is byte-stable: field order is fixed, times are integer
    /// nanoseconds, and floats use Rust's shortest-round-trip formatting,
    /// so parse → reserialize reproduces the input byte for byte.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(
            out,
            "{{\"metadata_drop_prob\":{},\"transfer_drop_prob\":{},\"scheduled\":[",
            self.metadata_drop_prob, self.transfer_drop_prob
        );
        for (i, fault) in self.scheduled.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"at_ns\":{}", fault.at.as_nanos());
            match fault.kind {
                FaultKind::NodeCrash { node } => {
                    let _ = write!(out, ",\"kind\":\"crash\",\"node\":{}", node.0);
                }
                FaultKind::LinkSlowdown {
                    node,
                    factor,
                    duration,
                } => {
                    let _ = write!(
                        out,
                        ",\"kind\":\"slow_link\",\"node\":{},\"factor\":{},\"duration_ns\":{}",
                        node.0,
                        factor,
                        duration.as_nanos()
                    );
                }
                FaultKind::LinkPartition { node, duration } => {
                    let _ = write!(
                        out,
                        ",\"kind\":\"partition\",\"node\":{},\"duration_ns\":{}",
                        node.0,
                        duration.as_nanos()
                    );
                }
            }
            out.push('}');
        }
        out.push_str("]}");
    }

    /// The plan's canonical JSON encoding.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// Reconstructs a plan from a value produced by [`Self::write_json`].
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(value: &JsonValue) -> Result<FaultPlan, String> {
        let prob = |key: &str| -> Result<f64, String> {
            let p = value
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("fault plan missing '{key}'"))?;
            if (0.0..=1.0).contains(&p) {
                Ok(p)
            } else {
                Err(format!("'{key}' out of range: {p}"))
            }
        };
        let metadata_drop_prob = prob("metadata_drop_prob")?;
        let transfer_drop_prob = prob("transfer_drop_prob")?;
        let entries = value
            .get("scheduled")
            .and_then(JsonValue::as_array)
            .ok_or("fault plan missing 'scheduled'")?;
        let mut scheduled = Vec::with_capacity(entries.len());
        for entry in entries {
            let field_u64 = |key: &str| -> Result<u64, String> {
                entry
                    .get(key)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("scheduled fault missing '{key}'"))
            };
            let at = SimTime::from_nanos(field_u64("at_ns")?);
            let node = NodeId(field_u64("node")? as u32);
            let kind = match entry.get("kind").and_then(JsonValue::as_str) {
                Some("crash") => FaultKind::NodeCrash { node },
                Some("slow_link") => {
                    let factor = entry
                        .get("factor")
                        .and_then(JsonValue::as_f64)
                        .ok_or("scheduled fault missing 'factor'")?;
                    if !(factor >= 1.0 && factor.is_finite()) {
                        return Err(format!("invalid slowdown factor {factor}"));
                    }
                    FaultKind::LinkSlowdown {
                        node,
                        factor,
                        duration: SimTime::from_nanos(field_u64("duration_ns")?),
                    }
                }
                Some("partition") => FaultKind::LinkPartition {
                    node,
                    duration: SimTime::from_nanos(field_u64("duration_ns")?),
                },
                other => return Err(format!("unknown fault kind {other:?}")),
            };
            scheduled.push(ScheduledFault { at, kind });
        }
        Ok(FaultPlan {
            scheduled,
            metadata_drop_prob,
            transfer_drop_prob,
        })
    }
}

/// An atomic state change the driver applies to the tier at a given time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Power the node off, losing its contents.
    Crash(NodeId),
    /// Divide the node's NIC bandwidth by the factor.
    SlowLink(NodeId, f64),
    /// Restore the node's NIC to its base bandwidth.
    RestoreLink(NodeId),
    /// Block the node's NIC until the instant.
    PartitionLink(NodeId, SimTime),
}

/// Replays a [`FaultPlan`] deterministically.
///
/// Durationed faults are expanded into apply/restore action pairs at
/// construction, sorted by time (ties broken by plan order), and handed
/// out by [`due`](FaultInjector::due) as simulated time advances.
/// Probabilistic message drops are sampled from the injector's own
/// [`DetRng`] stream in call order, which the supervised migration fixes
/// deterministically.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    actions: Vec<(SimTime, FaultAction)>,
    cursor: usize,
    metadata_drop_prob: f64,
    transfer_drop_prob: f64,
    rng: DetRng,
}

impl FaultInjector {
    /// Compiles `plan` into an injector drawing randomness from `rng`.
    pub fn new(plan: FaultPlan, rng: DetRng) -> Self {
        let mut actions: Vec<(SimTime, FaultAction)> = Vec::new();
        for fault in &plan.scheduled {
            match fault.kind {
                FaultKind::NodeCrash { node } => {
                    actions.push((fault.at, FaultAction::Crash(node)));
                }
                FaultKind::LinkSlowdown {
                    node,
                    factor,
                    duration,
                } => {
                    assert!(
                        factor >= 1.0 && factor.is_finite(),
                        "invalid slowdown factor"
                    );
                    actions.push((fault.at, FaultAction::SlowLink(node, factor)));
                    actions.push((fault.at + duration, FaultAction::RestoreLink(node)));
                }
                FaultKind::LinkPartition { node, duration } => {
                    actions.push((
                        fault.at,
                        FaultAction::PartitionLink(node, fault.at + duration),
                    ));
                }
            }
        }
        // Stable sort: simultaneous faults keep their plan order.
        actions.sort_by_key(|(at, _)| *at);
        FaultInjector {
            actions,
            cursor: 0,
            metadata_drop_prob: plan.metadata_drop_prob,
            transfer_drop_prob: plan.transfer_drop_prob,
            rng,
        }
    }

    /// Actions whose time has come (at ≤ `now`), in order; each is
    /// returned exactly once.
    pub fn due(&mut self, now: SimTime) -> Vec<(SimTime, FaultAction)> {
        let start = self.cursor;
        while self.cursor < self.actions.len() && self.actions[self.cursor].0 <= now {
            self.cursor += 1;
        }
        self.actions[start..self.cursor].to_vec()
    }

    /// When `node` is scheduled to crash, if ever. Pure query — does not
    /// consume the action; the migration supervisor peeks at this to
    /// detect crashes landing inside computed phase windows while the
    /// driver still applies the crash at its scheduled time.
    pub fn crash_time(&self, node: NodeId) -> Option<SimTime> {
        self.actions.iter().find_map(|(at, action)| match action {
            FaultAction::Crash(n) if *n == node => Some(*at),
            _ => None,
        })
    }

    /// Time of the next pending action, if any (the driver merges fault
    /// application with its control events in time order).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.actions.get(self.cursor).map(|(at, _)| *at)
    }

    /// Whether any fault remains to be applied.
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.actions.len()
    }

    /// Samples whether one phase-1 metadata shipment is dropped.
    pub fn sample_metadata_drop(&mut self) -> bool {
        self.metadata_drop_prob > 0.0 && self.rng.next_f64() < self.metadata_drop_prob
    }

    /// Samples whether one phase-3 data shipment is dropped.
    pub fn sample_transfer_drop(&mut self) -> bool {
        self.transfer_drop_prob > 0.0 && self.rng.next_f64() < self.transfer_drop_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let mut inj = FaultInjector::new(plan, DetRng::seed(1));
        assert!(inj.due(secs(1_000_000)).is_empty());
        assert!(inj.exhausted());
        assert!(!inj.sample_metadata_drop());
        assert!(!inj.sample_transfer_drop());
    }

    #[test]
    fn due_returns_each_action_once_in_order() {
        let plan = FaultPlan::new()
            .crash(secs(20), NodeId(3))
            .crash(secs(10), NodeId(1));
        let mut inj = FaultInjector::new(plan, DetRng::seed(1));
        let first = inj.due(secs(15));
        assert_eq!(first, vec![(secs(10), FaultAction::Crash(NodeId(1)))]);
        assert!(inj.due(secs(15)).is_empty(), "not re-delivered");
        let second = inj.due(secs(100));
        assert_eq!(second, vec![(secs(20), FaultAction::Crash(NodeId(3)))]);
        assert!(inj.exhausted());
    }

    #[test]
    fn slowdown_expands_to_apply_restore_pair() {
        let plan = FaultPlan::new().slow_link(secs(5), NodeId(0), 2.0, secs(3));
        let mut inj = FaultInjector::new(plan, DetRng::seed(1));
        let due = inj.due(secs(100));
        assert_eq!(
            due,
            vec![
                (secs(5), FaultAction::SlowLink(NodeId(0), 2.0)),
                (secs(8), FaultAction::RestoreLink(NodeId(0))),
            ]
        );
    }

    #[test]
    fn partition_carries_heal_time() {
        let plan = FaultPlan::new().partition(secs(4), NodeId(2), secs(6));
        let mut inj = FaultInjector::new(plan, DetRng::seed(1));
        assert_eq!(
            inj.due(secs(4)),
            vec![(secs(4), FaultAction::PartitionLink(NodeId(2), secs(10)))]
        );
    }

    #[test]
    fn crash_time_peeks_without_consuming() {
        let plan = FaultPlan::new().crash(secs(42), NodeId(7));
        let mut inj = FaultInjector::new(plan, DetRng::seed(1));
        assert_eq!(inj.crash_time(NodeId(7)), Some(secs(42)));
        assert_eq!(inj.crash_time(NodeId(8)), None);
        // Peeking did not consume the action.
        assert_eq!(inj.due(secs(50)).len(), 1);
    }

    #[test]
    fn drop_sampling_is_deterministic_per_seed() {
        let plan = || FaultPlan::new().drop_transfers_with_prob(0.5);
        let mut a = FaultInjector::new(plan(), DetRng::seed(9));
        let mut b = FaultInjector::new(plan(), DetRng::seed(9));
        let sa: Vec<bool> = (0..64).map(|_| a.sample_transfer_drop()).collect();
        let sb: Vec<bool> = (0..64).map(|_| b.sample_transfer_drop()).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&d| d) && sa.iter().any(|&d| !d));
    }

    #[test]
    #[should_panic]
    fn slowdown_factor_below_one_rejected() {
        let plan = FaultPlan::new().slow_link(secs(1), NodeId(0), 0.5, secs(1));
        let _ = FaultInjector::new(plan, DetRng::seed(1));
    }

    #[test]
    #[should_panic]
    fn drop_probability_out_of_range_rejected() {
        let _ = FaultPlan::new().drop_metadata_with_prob(1.5);
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let plan = FaultPlan::new()
            .crash(secs(30), NodeId(2))
            .slow_link(secs(10), NodeId(1), 4.0, secs(5))
            .partition(SimTime::from_millis(1500), NodeId(0), secs(6))
            .drop_metadata_with_prob(0.25)
            .drop_transfers_with_prob(0.1);
        let json = plan.to_json();
        let parsed = FaultPlan::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed, plan);
        assert_eq!(parsed.to_json(), json, "reserialization is byte-identical");
    }

    #[test]
    fn json_rejects_malformed_plans() {
        let bad = |s: &str| FaultPlan::from_json(&JsonValue::parse(s).unwrap()).is_err();
        assert!(bad("{}"));
        assert!(bad(
            "{\"metadata_drop_prob\":2.0,\"transfer_drop_prob\":0,\"scheduled\":[]}"
        ));
        assert!(bad(concat!(
            "{\"metadata_drop_prob\":0,\"transfer_drop_prob\":0,",
            "\"scheduled\":[{\"at_ns\":1,\"kind\":\"melt\",\"node\":0}]}"
        )));
        assert!(bad(concat!(
            "{\"metadata_drop_prob\":0,\"transfer_drop_prob\":0,\"scheduled\":",
            "[{\"at_ns\":1,\"kind\":\"slow_link\",\"node\":0,\"factor\":0.5,\"duration_ns\":1}]}"
        )));
    }
}
