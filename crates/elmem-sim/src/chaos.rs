//! Deterministic chaos schedules: seeded generation and failing-schedule
//! shrinking.
//!
//! A [`ChaosPlan`] bundles everything one adversarial experiment needs —
//! tier shape, workload size, a [`FaultPlan`] drawn from the existing fault
//! vocabulary, and a schedule of concurrent scaling actions — all derived
//! from a single seed. The driver (in `elmem-core`) turns a plan into an
//! experiment and checks the integrity invariants; this module stays
//! dependency-free so plans can be generated, serialized, and shrunk
//! without pulling in the control plane.
//!
//! Two runs of [`ChaosPlan::generate`] with the same seed produce the same
//! plan, two runs of the same plan produce the same simulation (DESIGN.md
//! §12), and [`shrink`] is a greedy deterministic fixpoint — so a failing
//! seed minimizes to the *same* smallest plan on every machine and at any
//! worker count.
//!
//! # Example
//!
//! ```
//! use elmem_sim::chaos::ChaosPlan;
//!
//! let plan = ChaosPlan::generate(7);
//! assert_eq!(plan, ChaosPlan::generate(7));
//! let json = plan.to_json();
//! let back = ChaosPlan::parse_json(&json).unwrap();
//! assert_eq!(back, plan);
//! assert_eq!(back.to_json(), json);
//! ```

use std::fmt::Write;

use elmem_util::json::JsonValue;
use elmem_util::{DetRng, NodeId, SimTime};

use crate::fault::{FaultKind, FaultPlan, ScheduledFault};

/// One scaling decision in a chaos schedule.
///
/// Counts are requests, not guarantees: the driver clamps them against the
/// live membership at execution time, exactly as an operator's request
/// would be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Retire this many nodes (ElMem 3-phase migration off the victims).
    ScaleIn {
        /// Requested number of nodes to remove.
        count: u32,
    },
    /// Provision this many new nodes (warm-up migration onto them).
    ScaleOut {
        /// Requested number of nodes to add.
        count: u32,
    },
}

/// A [`ChaosAction`] pinned to its decision time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledChaosAction {
    /// When the Master is asked to act.
    pub at: SimTime,
    /// What is requested.
    pub action: ChaosAction,
}

/// A complete seeded chaos schedule.
///
/// Every field that shapes the run is explicit so a serialized plan replays
/// byte-identically even if the generator's sampling changes later.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Seed for every RNG stream of the run (workload, faults, latencies).
    pub seed: u64,
    /// Initial tier size.
    pub nodes: u32,
    /// Keyspace size.
    pub keys: u64,
    /// Simulated run length.
    pub duration_secs: u64,
    /// Whether the self-healing pipeline (detector + recovery) is active.
    pub healing: bool,
    /// Whether the reactive autoscaler may issue its own decisions on top
    /// of the scripted ones.
    pub autoscaler: bool,
    /// The fault schedule.
    pub faults: FaultPlan,
    /// Scripted scaling actions, in generation order.
    pub actions: Vec<ScheduledChaosAction>,
    /// Scheduled Master crash instants. Each lands shortly after some
    /// scripted action so it interrupts the migration that action
    /// triggered; the Master restarts and resumes from its journal.
    pub master_crashes: Vec<SimTime>,
}

/// Bounds for [`ChaosPlan::generate`]'s sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosLimits {
    /// Smallest initial tier (inclusive).
    pub min_nodes: u32,
    /// Largest initial tier (inclusive).
    pub max_nodes: u32,
    /// Smallest keyspace (inclusive).
    pub min_keys: u64,
    /// Largest keyspace (inclusive).
    pub max_keys: u64,
    /// Shortest run in seconds (inclusive).
    pub min_duration_secs: u64,
    /// Longest run in seconds (inclusive).
    pub max_duration_secs: u64,
    /// Most scheduled faults per plan.
    pub max_faults: usize,
    /// Most scripted scaling actions per plan.
    pub max_actions: usize,
    /// Most scheduled Master crashes per plan.
    pub max_master_crashes: usize,
}

impl Default for ChaosLimits {
    fn default() -> Self {
        ChaosLimits {
            min_nodes: 4,
            max_nodes: 8,
            min_keys: 6_000,
            max_keys: 20_000,
            min_duration_secs: 60,
            max_duration_secs: 150,
            max_faults: 4,
            max_actions: 3,
            max_master_crashes: 2,
        }
    }
}

impl ChaosPlan {
    /// Generates the plan for `seed` under the default [`ChaosLimits`].
    pub fn generate(seed: u64) -> ChaosPlan {
        ChaosPlan::generate_with(seed, &ChaosLimits::default())
    }

    /// Generates the plan for `seed` under explicit bounds.
    ///
    /// Deterministic: the plan is a pure function of `(seed, limits)`. The
    /// sampler keeps at least two nodes crash-free so the tier always has
    /// a survivor to serve from and a recovery quorum to heal toward.
    pub fn generate_with(seed: u64, limits: &ChaosLimits) -> ChaosPlan {
        let mut rng = DetRng::seed(seed).split("chaos-gen");
        let nodes = limits.min_nodes
            + rng.next_below(u64::from(limits.max_nodes - limits.min_nodes) + 1) as u32;
        let keys = limits.min_keys + rng.next_below(limits.max_keys - limits.min_keys + 1);
        let duration_secs = limits.min_duration_secs
            + rng.next_below(limits.max_duration_secs - limits.min_duration_secs + 1);
        let healing = rng.next_below(2) == 1;
        let autoscaler = rng.next_below(4) == 0;

        // Faults land in the middle of the run so migrations and recoveries
        // they trigger still fit before the drain window.
        let fault_window = duration_secs.saturating_sub(30).max(1);
        let n_faults = rng.next_below(limits.max_faults as u64 + 1) as usize;
        let mut plan = FaultPlan::new();
        let mut crashed: Vec<u32> = Vec::new();
        // Keep at least two nodes unscathed: one to serve, one to heal from.
        let crash_budget = nodes.saturating_sub(2);
        for _ in 0..n_faults {
            let at = SimTime::from_secs(10 + rng.next_below(fault_window));
            let node = NodeId(rng.next_below(u64::from(nodes)) as u32);
            let kind = rng.next_below(3);
            let wants_crash = kind == 0;
            if wants_crash && !crashed.contains(&node.0) && (crashed.len() as u32) < crash_budget {
                crashed.push(node.0);
                plan = plan.crash(at, node);
            } else if kind <= 1 {
                // Flapping or congested uplink.
                let factor = 2.0 + rng.next_f64() * 6.0;
                let duration = SimTime::from_secs(2 + rng.next_below(15));
                plan = plan.slow_link(at, node, factor, duration);
            } else {
                let duration = SimTime::from_secs(2 + rng.next_below(12));
                plan = plan.partition(at, node, duration);
            }
        }
        if rng.next_below(3) == 0 {
            plan = plan.drop_metadata_with_prob(rng.next_below(25) as f64 / 100.0);
        }
        if rng.next_below(3) == 0 {
            plan = plan.drop_transfers_with_prob(rng.next_below(30) as f64 / 100.0);
        }

        // Scripted scalings overlap the fault window on purpose.
        let action_window = duration_secs.saturating_sub(40).max(1);
        let n_actions = 1 + rng.next_below(limits.max_actions as u64) as usize;
        let mut actions = Vec::with_capacity(n_actions);
        for _ in 0..n_actions {
            let at = SimTime::from_secs(5 + rng.next_below(action_window));
            let count = 1 + rng.next_below(2) as u32;
            let action = if rng.next_below(2) == 0 {
                ChaosAction::ScaleIn { count }
            } else {
                ChaosAction::ScaleOut { count }
            };
            actions.push(ScheduledChaosAction { at, action });
        }

        // Master crashes land shortly after some scripted action's decision
        // time, so they tend to interrupt the migration it triggered and
        // exercise the journal's restart-and-resume path.
        let n_crashes = rng.next_below(limits.max_master_crashes as u64 + 1) as usize;
        let mut master_crashes = Vec::with_capacity(n_crashes);
        for _ in 0..n_crashes {
            let idx = rng.next_below(actions.len() as u64) as usize;
            let offset = SimTime::from_millis(500 + rng.next_below(30_000));
            master_crashes.push(actions[idx].at + offset);
        }

        ChaosPlan {
            seed,
            nodes,
            keys,
            duration_secs,
            healing,
            autoscaler,
            faults: plan,
            actions,
            master_crashes,
        }
    }

    /// A rough size measure used to report shrink progress: scheduled
    /// faults + actions + active knobs.
    pub fn weight(&self) -> usize {
        self.faults.scheduled().len()
            + self.actions.len()
            + self.master_crashes.len()
            + usize::from(self.faults.metadata_drop_prob > 0.0)
            + usize::from(self.faults.transfer_drop_prob > 0.0)
            + usize::from(self.healing)
            + usize::from(self.autoscaler)
    }

    /// Appends the plan's canonical JSON encoding to `out`.
    ///
    /// Byte-stable for the same reasons as [`FaultPlan::write_json`].
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"seed\":{},\"nodes\":{},\"keys\":{},\"duration_secs\":{},\"healing\":{},\"autoscaler\":{},\"faults\":",
            self.seed, self.nodes, self.keys, self.duration_secs, self.healing, self.autoscaler
        );
        self.faults.write_json(out);
        out.push_str(",\"actions\":[");
        for (i, scheduled) in self.actions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (kind, count) = match scheduled.action {
                ChaosAction::ScaleIn { count } => ("scale_in", count),
                ChaosAction::ScaleOut { count } => ("scale_out", count),
            };
            let _ = write!(
                out,
                "{{\"at_ns\":{},\"kind\":\"{kind}\",\"count\":{count}}}",
                scheduled.at.as_nanos()
            );
        }
        out.push_str("],\"master_crashes\":[");
        for (i, at) in self.master_crashes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", at.as_nanos());
        }
        out.push_str("]}");
    }

    /// The plan's canonical JSON encoding.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// Reconstructs a plan from a parsed JSON value.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(value: &JsonValue) -> Result<ChaosPlan, String> {
        let field_u64 = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("chaos plan missing '{key}'"))
        };
        let field_bool = |key: &str| -> Result<bool, String> {
            value
                .get(key)
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| format!("chaos plan missing '{key}'"))
        };
        let faults =
            FaultPlan::from_json(value.get("faults").ok_or("chaos plan missing 'faults'")?)?;
        let entries = value
            .get("actions")
            .and_then(JsonValue::as_array)
            .ok_or("chaos plan missing 'actions'")?;
        let mut actions = Vec::with_capacity(entries.len());
        for entry in entries {
            let sub_u64 = |key: &str| -> Result<u64, String> {
                entry
                    .get(key)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("chaos action missing '{key}'"))
            };
            let at = SimTime::from_nanos(sub_u64("at_ns")?);
            let count = sub_u64("count")? as u32;
            let action = match entry.get("kind").and_then(JsonValue::as_str) {
                Some("scale_in") => ChaosAction::ScaleIn { count },
                Some("scale_out") => ChaosAction::ScaleOut { count },
                other => return Err(format!("unknown chaos action kind {other:?}")),
            };
            actions.push(ScheduledChaosAction { at, action });
        }
        // Absent in plans serialized before the journal existed: an old
        // committed reproduction still parses (and crashes no Master).
        let master_crashes = match value.get("master_crashes").and_then(JsonValue::as_array) {
            Some(entries) => entries
                .iter()
                .map(|entry| {
                    entry
                        .as_u64()
                        .map(SimTime::from_nanos)
                        .ok_or_else(|| "malformed 'master_crashes' entry".to_string())
                })
                .collect::<Result<Vec<SimTime>, String>>()?,
            None => Vec::new(),
        };
        Ok(ChaosPlan {
            seed: field_u64("seed")?,
            nodes: field_u64("nodes")? as u32,
            keys: field_u64("keys")?,
            duration_secs: field_u64("duration_secs")?,
            healing: field_bool("healing")?,
            autoscaler: field_bool("autoscaler")?,
            faults,
            actions,
            master_crashes,
        })
    }

    /// Convenience: parse a JSON document straight into a plan.
    ///
    /// # Errors
    ///
    /// Propagates JSON syntax errors and schema mismatches.
    pub fn parse_json(text: &str) -> Result<ChaosPlan, String> {
        ChaosPlan::from_json(&JsonValue::parse(text)?)
    }
}

/// Minimizes a failing chaos plan.
///
/// `still_failing` must return `true` when the candidate plan still
/// reproduces the failure. The shrinker walks a fixed list of candidate
/// edits — drop one fault, drop one action, zero a drop probability,
/// disable healing or the autoscaler, halve a fault duration, halve the
/// run length, remove a node, halve the keyspace — accepting the first
/// edit that keeps the plan failing and restarting from the top, until a
/// full pass accepts nothing (a greedy delta-debugging fixpoint).
///
/// Every accepted edit strictly shrinks the plan under a well-founded
/// measure, so the loop terminates; and because the candidate order is
/// fixed and `still_failing` is expected to be deterministic (it replays
/// the simulation), the minimized plan is the same on every run.
pub fn shrink<F>(plan: &ChaosPlan, mut still_failing: F) -> ChaosPlan
where
    F: FnMut(&ChaosPlan) -> bool,
{
    let mut current = plan.clone();
    loop {
        let mut accepted = false;
        for candidate in candidates(&current) {
            if still_failing(&candidate) {
                current = candidate;
                accepted = true;
                break;
            }
        }
        if !accepted {
            return current;
        }
    }
}

/// The ordered candidate edits for one shrink step. Structural removals
/// come before parameter reductions so the minimized plan is small before
/// it is short.
fn candidates(plan: &ChaosPlan) -> Vec<ChaosPlan> {
    let mut out = Vec::new();
    let scheduled = plan.faults.scheduled();

    // 1. Drop one scheduled fault.
    for drop_at in 0..scheduled.len() {
        let kept: Vec<ScheduledFault> = scheduled
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop_at)
            .map(|(_, f)| *f)
            .collect();
        let mut candidate = plan.clone();
        candidate.faults = FaultPlan::from_parts(
            kept,
            plan.faults.metadata_drop_prob,
            plan.faults.transfer_drop_prob,
        );
        out.push(candidate);
    }

    // 2. Drop one scripted action.
    for drop_at in 0..plan.actions.len() {
        let mut candidate = plan.clone();
        candidate.actions.remove(drop_at);
        out.push(candidate);
    }

    // 2b. Drop one Master crash.
    for drop_at in 0..plan.master_crashes.len() {
        let mut candidate = plan.clone();
        candidate.master_crashes.remove(drop_at);
        out.push(candidate);
    }

    // 3. Zero the probabilistic drops.
    if plan.faults.metadata_drop_prob > 0.0 {
        let mut candidate = plan.clone();
        candidate.faults =
            FaultPlan::from_parts(scheduled.to_vec(), 0.0, plan.faults.transfer_drop_prob);
        out.push(candidate);
    }
    if plan.faults.transfer_drop_prob > 0.0 {
        let mut candidate = plan.clone();
        candidate.faults =
            FaultPlan::from_parts(scheduled.to_vec(), plan.faults.metadata_drop_prob, 0.0);
        out.push(candidate);
    }

    // 4. Turn off whole subsystems.
    if plan.healing {
        let mut candidate = plan.clone();
        candidate.healing = false;
        out.push(candidate);
    }
    if plan.autoscaler {
        let mut candidate = plan.clone();
        candidate.autoscaler = false;
        out.push(candidate);
    }

    // 5. Halve one fault's duration (only when it actually shrinks).
    for (i, fault) in scheduled.iter().enumerate() {
        let halved = match fault.kind {
            FaultKind::LinkSlowdown {
                node,
                factor,
                duration,
            } if duration.as_nanos() >= 2 => Some(FaultKind::LinkSlowdown {
                node,
                factor,
                duration: SimTime::from_nanos(duration.as_nanos() / 2),
            }),
            FaultKind::LinkPartition { node, duration } if duration.as_nanos() >= 2 => {
                Some(FaultKind::LinkPartition {
                    node,
                    duration: SimTime::from_nanos(duration.as_nanos() / 2),
                })
            }
            _ => None,
        };
        if let Some(kind) = halved {
            let mut kept = scheduled.to_vec();
            kept[i] = ScheduledFault { at: fault.at, kind };
            let mut candidate = plan.clone();
            candidate.faults = FaultPlan::from_parts(
                kept,
                plan.faults.metadata_drop_prob,
                plan.faults.transfer_drop_prob,
            );
            out.push(candidate);
        }
    }

    // 6. Shorten the run.
    if plan.duration_secs >= 40 {
        let mut candidate = plan.clone();
        candidate.duration_secs = plan.duration_secs / 2;
        out.push(candidate);
    }

    // 7. Shrink the tier.
    if plan.nodes > 3 {
        let mut candidate = plan.clone();
        candidate.nodes = plan.nodes - 1;
        out.push(candidate);
    }

    // 8. Shrink the keyspace.
    if plan.keys >= 2_000 {
        let mut candidate = plan.clone();
        candidate.keys = plan.keys / 2;
        out.push(candidate);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for seed in 0..32 {
            assert_eq!(ChaosPlan::generate(seed), ChaosPlan::generate(seed));
        }
        assert_ne!(ChaosPlan::generate(1), ChaosPlan::generate(2));
    }

    #[test]
    fn generation_respects_limits() {
        let limits = ChaosLimits::default();
        for seed in 0..64 {
            let plan = ChaosPlan::generate(seed);
            assert!((limits.min_nodes..=limits.max_nodes).contains(&plan.nodes));
            assert!((limits.min_keys..=limits.max_keys).contains(&plan.keys));
            assert!(
                (limits.min_duration_secs..=limits.max_duration_secs).contains(&plan.duration_secs)
            );
            assert!(plan.faults.scheduled().len() <= limits.max_faults);
            assert!(!plan.actions.is_empty() && plan.actions.len() <= limits.max_actions);
            assert!(plan.master_crashes.len() <= limits.max_master_crashes);
            // At least two nodes stay crash-free.
            let crashes = plan
                .faults
                .scheduled()
                .iter()
                .filter(|f| matches!(f.kind, FaultKind::NodeCrash { .. }))
                .count();
            assert!(crashes as u32 <= plan.nodes - 2, "seed {seed}");
        }
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        for seed in 0..64 {
            let plan = ChaosPlan::generate(seed);
            let json = plan.to_json();
            let back = ChaosPlan::parse_json(&json).unwrap();
            assert_eq!(back, plan, "seed {seed}");
            assert_eq!(back.to_json(), json, "seed {seed}");
        }
    }

    #[test]
    fn shrink_reaches_fixpoint_and_keeps_failure() {
        // Failure: "the plan contains a crash of node 1". The minimal
        // reproduction keeps exactly that crash and nothing else.
        let fails = |p: &ChaosPlan| {
            p.faults
                .scheduled()
                .iter()
                .any(|f| matches!(f.kind, FaultKind::NodeCrash { node } if node == NodeId(1)))
        };
        let mut seed_plan = None;
        for seed in 0..256 {
            let p = ChaosPlan::generate(seed);
            if fails(&p) && p.weight() > 2 {
                seed_plan = Some(p);
                break;
            }
        }
        let plan = seed_plan.expect("some seed crashes node 1");
        let small = shrink(&plan, fails);
        assert!(fails(&small), "shrunk plan still fails");
        assert_eq!(small.faults.scheduled().len(), 1, "only the crash remains");
        assert!(small.actions.is_empty());
        assert!(small.master_crashes.is_empty());
        assert!(!small.healing && !small.autoscaler);
        assert_eq!(small.faults.metadata_drop_prob, 0.0);
        assert_eq!(small.faults.transfer_drop_prob, 0.0);
        assert_eq!(small.nodes, 3);
        assert!(small.keys < 2_000);
        assert!(small.duration_secs < 40);
        // Deterministic: shrinking again yields the identical plan.
        assert_eq!(shrink(&plan, fails), small);
        // And a shrunk plan is already a fixpoint.
        assert_eq!(shrink(&small, fails), small);
    }

    #[test]
    fn shrink_of_passing_plan_is_identity_only_if_it_fails() {
        // If the predicate never fires, shrink returns the input unchanged
        // (no candidate is ever accepted).
        let plan = ChaosPlan::generate(3);
        let same = shrink(&plan, |_| false);
        assert_eq!(same, plan);
    }
}
