//! Discrete-event simulation substrate.
//!
//! The paper evaluates ElMem on a 10-VM OpenStack testbed; this crate is the
//! substitute substrate (see DESIGN.md §2): a deterministic virtual clock
//! with an [`events::EventQueue`], a bandwidth/latency [`network::Link`]
//! model for migration traffic, and a multi-server FIFO
//! [`queueing::ServerPool`] used to model the database bottleneck.
//!
//! Everything is deterministic: same seed, same event order, same results.
//!
//! # Example
//!
//! ```
//! use elmem_sim::events::EventQueue;
//! use elmem_util::SimTime;
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(SimTime::from_secs(2), "later");
//! q.schedule(SimTime::from_secs(1), "sooner");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t, e), (SimTime::from_secs(1), "sooner"));
//! ```

pub mod chaos;
pub mod events;
pub mod fault;
pub mod network;
pub mod queueing;

pub use chaos::{ChaosAction, ChaosLimits, ChaosPlan, ScheduledChaosAction};
pub use events::{EventKey, EventQueue};
pub use fault::{FaultAction, FaultInjector, FaultKind, FaultPlan, ScheduledFault};
pub use network::Link;
pub use queueing::ServerPool;
