//! Network links: latency + serialized bandwidth.
//!
//! ElMem "regulates data movement over the network" (§I); migration phases
//! pipe tarballs of metadata and KV pairs between nodes over ssh (§III-D1).
//! We model each node's NIC as a [`Link`]: transfers are serialized FIFO
//! behind earlier transfers on the same link and take
//! `latency + bytes/bandwidth`.

use elmem_util::{ByteSize, SimTime};

/// A serialized network link (one per node NIC, or one per flow as needed).
///
/// # Example
///
/// ```
/// use elmem_sim::Link;
/// use elmem_util::{ByteSize, SimTime};
///
/// // 1 Gbit/s ≈ 125 MB/s, 0.1 ms latency.
/// let mut link = Link::new(125_000_000.0, SimTime::from_micros(100));
/// let done = link.schedule_transfer(SimTime::ZERO, ByteSize::from_mib(125));
/// // ~1.05 s (125 MiB is a bit more than 125 MB).
/// assert!(done > SimTime::from_secs(1));
/// assert!(done < SimTime::from_millis(1100));
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    /// Bytes per second currently achievable (base divided by any active
    /// slowdown).
    bandwidth: f64,
    /// Nominal bytes per second, restored when a slowdown heals.
    base_bandwidth: f64,
    /// Per-transfer propagation/setup latency.
    latency: SimTime,
    /// The instant the link frees up.
    busy_until: SimTime,
    /// The instant an injected partition heals (`ZERO` when none active).
    partitioned_until: SimTime,
    /// Total bytes ever scheduled.
    bytes_sent: u64,
}

impl Link {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bytes_per_sec` is not strictly positive/finite.
    pub fn new(bandwidth_bytes_per_sec: f64, latency: SimTime) -> Self {
        assert!(
            bandwidth_bytes_per_sec > 0.0 && bandwidth_bytes_per_sec.is_finite(),
            "invalid bandwidth"
        );
        Link {
            bandwidth: bandwidth_bytes_per_sec,
            base_bandwidth: bandwidth_bytes_per_sec,
            latency,
            busy_until: SimTime::ZERO,
            partitioned_until: SimTime::ZERO,
            bytes_sent: 0,
        }
    }

    /// A 1 Gbit/s link with 0.1 ms latency (a typical cloud-VM NIC, matching
    /// the paper's OpenStack setup scale).
    pub fn gigabit() -> Self {
        Link::new(125_000_000.0, SimTime::from_micros(100))
    }

    /// Schedules a FIFO transfer starting no earlier than `now`; returns its
    /// completion time and advances the link's busy horizon.
    pub fn schedule_transfer(&mut self, now: SimTime, bytes: ByteSize) -> SimTime {
        let start = self.busy_until.max(now);
        let duration = SimTime::from_secs_f64(bytes.as_f64() / self.bandwidth) + self.latency;
        self.busy_until = start + duration;
        self.bytes_sent += bytes.as_u64();
        self.busy_until
    }

    /// Pure query: transfer duration for `bytes` on an idle link.
    pub fn transfer_time(&self, bytes: ByteSize) -> SimTime {
        SimTime::from_secs_f64(bytes.as_f64() / self.bandwidth) + self.latency
    }

    /// When the link next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total bytes scheduled on this link.
    pub fn bytes_sent(&self) -> ByteSize {
        ByteSize(self.bytes_sent)
    }

    /// Link bandwidth, bytes/s (current, reflecting any active slowdown).
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Per-transfer propagation/setup latency.
    pub fn latency(&self) -> SimTime {
        self.latency
    }

    /// Active slowdown factor: 1.0 on a healthy link, > 1 while degraded.
    pub fn slowdown_factor(&self) -> f64 {
        self.base_bandwidth / self.bandwidth
    }

    /// Whether the link is inside an injected partition window at `now`.
    /// While partitioned, no traffic passes: the node is unreachable on
    /// the serving path, and queued transfers wait for the heal instant.
    pub fn is_partitioned(&self, now: SimTime) -> bool {
        now < self.partitioned_until
    }

    /// The instant the current partition heals (`SimTime::ZERO` when no
    /// partition was ever injected).
    pub fn partitioned_until(&self) -> SimTime {
        self.partitioned_until
    }

    /// Degrades the link to `1/factor` of its *base* bandwidth (fault
    /// injection: a congested or flapping uplink). Repeated slowdowns
    /// replace rather than compound each other.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not ≥ 1 and finite.
    pub fn apply_slowdown(&mut self, factor: f64) {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "invalid slowdown factor"
        );
        self.bandwidth = self.base_bandwidth / factor;
    }

    /// Heals any active slowdown, restoring the base bandwidth.
    pub fn restore_bandwidth(&mut self) {
        self.bandwidth = self.base_bandwidth;
    }

    /// Blocks the link until `until` (fault injection: a partition).
    /// Transfers scheduled meanwhile queue behind the heal instant, and
    /// [`Link::is_partitioned`] reports the window to the serving path.
    pub fn partition_until(&mut self, until: SimTime) {
        self.busy_until = self.busy_until.max(until);
        self.partitioned_until = self.partitioned_until.max(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let link = Link::new(1000.0, SimTime::ZERO);
        assert_eq!(link.transfer_time(ByteSize(500)), SimTime::from_millis(500));
        assert_eq!(link.transfer_time(ByteSize(2000)), SimTime::from_secs(2));
    }

    #[test]
    fn transfers_serialize_fifo() {
        let mut link = Link::new(1000.0, SimTime::ZERO);
        let first = link.schedule_transfer(SimTime::ZERO, ByteSize(1000));
        assert_eq!(first, SimTime::from_secs(1));
        // Second transfer submitted at t=0 must wait for the first.
        let second = link.schedule_transfer(SimTime::ZERO, ByteSize(1000));
        assert_eq!(second, SimTime::from_secs(2));
    }

    #[test]
    fn idle_gap_is_not_accumulated() {
        let mut link = Link::new(1000.0, SimTime::ZERO);
        link.schedule_transfer(SimTime::ZERO, ByteSize(1000));
        // Submit long after the link idles: starts at `now`.
        let done = link.schedule_transfer(SimTime::from_secs(10), ByteSize(1000));
        assert_eq!(done, SimTime::from_secs(11));
    }

    #[test]
    fn latency_added_per_transfer() {
        let mut link = Link::new(1_000_000.0, SimTime::from_millis(5));
        let done = link.schedule_transfer(SimTime::ZERO, ByteSize(0));
        assert_eq!(done, SimTime::from_millis(5));
    }

    #[test]
    fn accounting_tracks_bytes() {
        let mut link = Link::gigabit();
        link.schedule_transfer(SimTime::ZERO, ByteSize(123));
        link.schedule_transfer(SimTime::ZERO, ByteSize(877));
        assert_eq!(link.bytes_sent(), ByteSize(1000));
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        let _ = Link::new(0.0, SimTime::ZERO);
    }

    #[test]
    fn slowdown_scales_transfer_time_and_heals() {
        let mut link = Link::new(1000.0, SimTime::ZERO);
        link.apply_slowdown(4.0);
        assert_eq!(link.transfer_time(ByteSize(1000)), SimTime::from_secs(4));
        // A second slowdown replaces (not compounds) the first.
        link.apply_slowdown(2.0);
        assert_eq!(link.transfer_time(ByteSize(1000)), SimTime::from_secs(2));
        link.restore_bandwidth();
        assert_eq!(link.transfer_time(ByteSize(1000)), SimTime::from_secs(1));
    }

    #[test]
    fn partition_delays_queued_transfers() {
        let mut link = Link::new(1000.0, SimTime::ZERO);
        link.partition_until(SimTime::from_secs(10));
        let done = link.schedule_transfer(SimTime::ZERO, ByteSize(1000));
        assert_eq!(done, SimTime::from_secs(11));
        // Healing is implicit: after the partition instant, new transfers
        // queue normally.
        let later = link.schedule_transfer(SimTime::from_secs(20), ByteSize(1000));
        assert_eq!(later, SimTime::from_secs(21));
    }

    #[test]
    fn partition_window_is_visible_to_the_serving_path() {
        let mut link = Link::gigabit();
        assert!(!link.is_partitioned(SimTime::ZERO));
        link.partition_until(SimTime::from_secs(10));
        assert!(link.is_partitioned(SimTime::from_secs(5)));
        assert!(!link.is_partitioned(SimTime::from_secs(10)), "heal instant");
        assert_eq!(link.partitioned_until(), SimTime::from_secs(10));
    }

    #[test]
    fn slowdown_factor_tracks_degradation() {
        let mut link = Link::gigabit();
        assert_eq!(link.slowdown_factor(), 1.0);
        link.apply_slowdown(8.0);
        assert_eq!(link.slowdown_factor(), 8.0);
        link.restore_bandwidth();
        assert_eq!(link.slowdown_factor(), 1.0);
    }

    #[test]
    #[should_panic]
    fn slowdown_below_one_rejected() {
        let mut link = Link::gigabit();
        link.apply_slowdown(0.9);
    }
}
