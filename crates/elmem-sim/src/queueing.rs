//! Multi-server FIFO queueing (the database model).
//!
//! The paper's database "can handle a peak request rate of about 4,000
//! req/s before the latency rises abruptly" (§V-A) — the signature of a
//! server pool saturating. [`ServerPool`] models exactly that: `c` servers,
//! FIFO dispatch to the earliest-free server; below capacity, waiting is
//! near zero; past it, the backlog (and hence latency) grows without bound
//! until load drops — which is what produces the paper's post-scaling
//! latency spikes and multi-minute restoration times.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use elmem_util::SimTime;

/// A pool of identical servers with a shared FIFO queue.
///
/// # Example
///
/// ```
/// use elmem_sim::ServerPool;
/// use elmem_util::SimTime;
///
/// let mut pool = ServerPool::new(1);
/// let s = SimTime::from_millis(10);
/// assert_eq!(pool.submit(SimTime::ZERO, s), SimTime::from_millis(10));
/// // Second job at t=0 queues behind the first.
/// assert_eq!(pool.submit(SimTime::ZERO, s), SimTime::from_millis(20));
/// ```
#[derive(Debug, Clone)]
pub struct ServerPool {
    /// Earliest-free times, one per server (min-heap).
    free_at: BinaryHeap<Reverse<SimTime>>,
    servers: usize,
    completed: u64,
    busy_time: SimTime,
}

impl ServerPool {
    /// Creates a pool of `servers` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(Reverse(SimTime::ZERO));
        }
        ServerPool {
            free_at,
            servers,
            completed: 0,
            busy_time: SimTime::ZERO,
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Submits a job arriving at `now` needing `service` time; returns its
    /// completion instant (FIFO, earliest-free-server dispatch).
    pub fn submit(&mut self, now: SimTime, service: SimTime) -> SimTime {
        let Reverse(free) = self.free_at.pop().expect("pool nonempty");
        let start = free.max(now);
        let done = start + service;
        self.free_at.push(Reverse(done));
        self.completed += 1;
        self.busy_time += service;
        done
    }

    /// Current backlog delay an arrival at `now` would see before service
    /// begins (0 when a server is idle).
    pub fn queue_delay(&self, now: SimTime) -> SimTime {
        match self.free_at.peek() {
            Some(Reverse(free)) => free.saturating_sub(now),
            None => SimTime::ZERO,
        }
    }

    /// Jobs submitted so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Total service time dispensed (for utilization accounting).
    pub fn busy_time(&self) -> SimTime {
        self.busy_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_servers_run_concurrently() {
        let mut pool = ServerPool::new(2);
        let s = SimTime::from_secs(1);
        assert_eq!(pool.submit(SimTime::ZERO, s), SimTime::from_secs(1));
        assert_eq!(pool.submit(SimTime::ZERO, s), SimTime::from_secs(1));
        // Third queues behind whichever frees first.
        assert_eq!(pool.submit(SimTime::ZERO, s), SimTime::from_secs(2));
    }

    #[test]
    fn idle_pool_serves_immediately() {
        let mut pool = ServerPool::new(4);
        let done = pool.submit(SimTime::from_secs(100), SimTime::from_millis(5));
        assert_eq!(done, SimTime::from_secs(100) + SimTime::from_millis(5));
    }

    #[test]
    fn queue_delay_grows_under_overload() {
        let mut pool = ServerPool::new(1);
        let s = SimTime::from_millis(100);
        // Submit 10 jobs at t=0: 1s of backlog builds.
        for _ in 0..10 {
            pool.submit(SimTime::ZERO, s);
        }
        assert_eq!(pool.queue_delay(SimTime::ZERO), SimTime::from_secs(1));
        // After the backlog drains, delay is zero.
        assert_eq!(pool.queue_delay(SimTime::from_secs(2)), SimTime::ZERO);
    }

    #[test]
    fn overload_latency_rises_abruptly_past_capacity() {
        // 4 servers, 1 ms service → capacity 4000 req/s (the paper's r_DB).
        let service = SimTime::from_millis(1);
        let run = |rate: f64| -> SimTime {
            let mut pool = ServerPool::new(4);
            let mut last_sojourn = SimTime::ZERO;
            let n = 20_000u64;
            for i in 0..n {
                let arrival = SimTime::from_secs_f64(i as f64 / rate);
                let done = pool.submit(arrival, service);
                last_sojourn = done - arrival;
            }
            last_sojourn
        };
        let below = run(3_000.0);
        let above = run(6_000.0);
        assert!(below <= SimTime::from_millis(2), "below: {below}");
        assert!(above > SimTime::from_millis(500), "above: {above}");
    }

    #[test]
    fn busy_time_accumulates() {
        let mut pool = ServerPool::new(2);
        pool.submit(SimTime::ZERO, SimTime::from_millis(3));
        pool.submit(SimTime::ZERO, SimTime::from_millis(7));
        assert_eq!(pool.busy_time(), SimTime::from_millis(10));
        assert_eq!(pool.completed(), 2);
    }

    #[test]
    #[should_panic]
    fn zero_servers_rejected() {
        let _ = ServerPool::new(0);
    }
}
