//! Property-based verification of FuseCache (§IV): on *every* input, the
//! algorithm must return exactly the optimal selection — the same counts
//! as flatten-and-sort and k-way merge — while touching far fewer items.

use elmem_core::fusecache::{fusecache, fusecache_instrumented, kway_top_n, sort_merge_top_n};
use elmem_store::Hotness;
use elmem_util::{KeyId, SimTime};
use proptest::prelude::*;

/// Strategy: up to `k` lists of up to `len` items with timestamps in a
/// narrow range (lots of near-ties) and globally unique keys.
fn lists_strategy(k: usize, len: usize) -> impl Strategy<Value = Vec<Vec<Hotness>>> {
    prop::collection::vec(prop::collection::vec(0u64..50, 0..len), 0..=k).prop_map(|raw| {
        let mut key = 0u64;
        raw.into_iter()
            .map(|ts| {
                let mut l: Vec<Hotness> = ts
                    .into_iter()
                    .map(|t| {
                        key += 1;
                        Hotness::new(SimTime::from_nanos(t), KeyId(key))
                    })
                    .collect();
                l.sort_unstable_by(|a, b| b.cmp(a));
                l
            })
            .collect()
    })
}

fn refs(lists: &[Vec<Hotness>]) -> Vec<&[Hotness]> {
    lists.iter().map(|l| l.as_slice()).collect()
}

proptest! {
    /// FuseCache returns exactly the optimal per-list counts for every
    /// (lists, n) — including heavy ties, empty lists, and n beyond total.
    #[test]
    fn agrees_with_sort_merge(
        lists in lists_strategy(6, 40),
        n in 0usize..300,
    ) {
        let r = refs(&lists);
        prop_assert_eq!(fusecache(&r, n), sort_merge_top_n(&r, n));
    }

    /// All three algorithms agree pairwise.
    #[test]
    fn agrees_with_kway(
        lists in lists_strategy(5, 30),
        n in 0usize..200,
    ) {
        let r = refs(&lists);
        let fc = fusecache(&r, n);
        prop_assert_eq!(&fc, &kway_top_n(&r, n));
        prop_assert_eq!(&fc, &sort_merge_top_n(&r, n));
    }

    /// The picks sum to min(n, total) and never exceed any list's length.
    #[test]
    fn picks_are_feasible(
        lists in lists_strategy(8, 25),
        n in 0usize..400,
    ) {
        let r = refs(&lists);
        let picks = fusecache(&r, n);
        let total: usize = r.iter().map(|l| l.len()).sum();
        prop_assert_eq!(picks.iter().sum::<usize>(), n.min(total));
        for (i, &p) in picks.iter().enumerate() {
            prop_assert!(p <= r[i].len());
        }
    }

    /// Selection optimality stated directly: every selected item is at
    /// least as hot as every rejected item.
    #[test]
    fn selected_dominate_rejected(
        lists in lists_strategy(5, 30),
        n in 1usize..120,
    ) {
        let r = refs(&lists);
        let picks = fusecache(&r, n);
        let coldest_selected = picks
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0)
            .map(|(i, &p)| r[i][p - 1])
            .min();
        let hottest_rejected = picks
            .iter()
            .enumerate()
            .filter(|(i, &p)| p < r[*i].len())
            .map(|(i, &p)| r[i][p])
            .max();
        if let (Some(sel), Some(rej)) = (coldest_selected, hottest_rejected) {
            prop_assert!(sel >= rej, "selected {sel:?} colder than rejected {rej:?}");
        }
    }

    /// Monotonicity: growing n never shrinks any per-list pick.
    #[test]
    fn picks_monotone_in_n(
        lists in lists_strategy(4, 25),
        n in 0usize..80,
    ) {
        let r = refs(&lists);
        let small = fusecache(&r, n);
        let large = fusecache(&r, n + 7);
        for (a, b) in small.iter().zip(&large) {
            prop_assert!(b >= a);
        }
    }

    /// The instrumented variant returns identical picks and round counts
    /// bounded by O(log(total) + n-commit steps).
    #[test]
    fn instrumentation_is_consistent(
        lists in lists_strategy(6, 40),
        n in 0usize..200,
    ) {
        let r = refs(&lists);
        let (picks, stats) = fusecache_instrumented(&r, n);
        prop_assert_eq!(picks, fusecache(&r, n));
        let total: usize = r.iter().map(|l| l.len()).sum();
        if total > 0 && n > 0 {
            // Each round either discards >= 1 item from the windows or
            // commits >= 1 item: rounds <= total is a loose safety bound;
            // typical rounds are O(log) — assert a generous cap.
            prop_assert!(
                stats.rounds as usize <= 4 * (64 - (total as u64).leading_zeros() as usize + 1)
                    + n.min(total),
                "rounds {} for total {total}, n {n}",
                stats.rounds
            );
        }
    }
}
