//! The chaos engine's driver and end-to-end invariant checker.
//!
//! [`ChaosPlan`]s (generated in `elmem-sim` from a seed) describe a full
//! experiment — tier size, workload, fault schedule, scripted scaling
//! actions, and which subsystems run. [`run_chaos`] materializes the plan
//! into an [`ExperimentConfig`], runs it with the captured-cluster driver,
//! and then checks **integrity invariants** that must hold no matter what
//! the schedule did:
//!
//! 1. every surviving store passes its internal [`SlabStore::audit`]
//!    (slot/byte/MRU/index conservation);
//! 2. every resident item's value size matches the keyspace — migrations
//!    and recoveries never corrupt content (shipment checksums catch this
//!    in-flight; this catches it at rest);
//! 3. no stale copy is served: once the control plane goes quiet, only
//!    ring owners receive traffic, so a non-owned replica whose MRU
//!    timestamp postdates the last control-plane event proves a lookup was
//!    answered from a stale copy;
//! 4. circuit breakers only take legal edges (closed→open, open→half-open,
//!    half-open→closed, half-open→open) starting from closed;
//! 5. the failure detector never confirms a death without probe evidence
//!    (a recorded lost probe), and never recovers a node it did not
//!    confirm;
//! 6. the telemetry trace is well-ordered (strict canonical `(time, seq)`
//!    order, globally unique sequence numbers, conserved drop accounting);
//! 7. migration phases pair up: per phase kind, `starts == ends + aborts`;
//! 8. with healing enabled, the run converges — no crashed node is left in
//!    the ring at the end;
//! 9. the migration journal is coherent: every `Started` job reaches
//!    exactly one terminal record, resumes only happen before it, and
//!    shipment acks only after the plan sealed;
//! 10. every durable ack names a sealed shipment, and no shipment is acked
//!     twice;
//! 11. a `Committed` job acked its entire sealed manifest — no shipment
//!     lost across Master crashes;
//! 12. surviving import ledgers reference only sealed shipments, with the
//!     sealed checksums — no duplicate or forged import survived;
//! 13. duplicate-import suppression only occurs when some migration
//!     actually resumed (re-delivery is the only legal duplicate source).
//!
//! A violation is a `String` naming the invariant and the smallest
//! offending key/node, so reports are deterministic even where the
//! underlying maps iterate in arbitrary order.
//!
//! [`SlabStore::audit`]: elmem_store::SlabStore::audit

use crate::autoscaler::AutoScalerConfig;
use crate::elasticity::{
    run_experiment_capture, ExperimentConfig, ExperimentResult, ScaleAction, ScalerConfig,
};
use crate::healing::HealingConfig;
use crate::journal::{JournalRecord, MasterPlan};
use crate::migration::MigrationCosts;
use crate::policies::MigrationPolicy;
use elmem_cluster::{Cluster, ClusterConfig};
use elmem_sim::chaos::{ChaosAction, ChaosPlan};
use elmem_util::telemetry::{BreakerPhase, EventKind, MigrationPhaseKind, ProbeClass};
use elmem_util::{KeyId, NodeId, SimTime, TelemetryConfig};
use elmem_workload::{DemandTrace, Keyspace, WorkloadConfig};

/// Outcome of one chaos run: the violations found (empty = the schedule
/// was survived cleanly) plus the full experiment result for debugging.
#[derive(Debug)]
pub struct ChaosReport {
    /// Human-readable invariant violations, deterministic for a given
    /// plan; empty when every invariant held.
    pub violations: Vec<String>,
    /// The underlying experiment output (telemetry included).
    pub result: ExperimentResult,
}

impl ChaosReport {
    /// True when no invariant was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Chaos runs keep a deep event ring: with faults landing mid-run the
/// serving path emits a timeout/failover event per affected lookup, and
/// the order-sensitive checks (breaker edges, detector legality) need the
/// *complete* stream.
const CHAOS_TRACE_CAPACITY: usize = 1 << 18;

/// Materializes a [`ChaosPlan`] into a runnable experiment. The mapping
/// is fixed (small test cluster, Zipf(1.0) workload at 250 req/s, ElMem
/// migration policy) so that a plan fully determines a run.
pub fn experiment_for_plan(plan: &ChaosPlan) -> ExperimentConfig {
    let mut cluster = ClusterConfig::small_test();
    cluster.initial_nodes = plan.nodes;
    let windows = (plan.duration_secs / 10).max(1) as usize;
    let workload = WorkloadConfig {
        keyspace: Keyspace::new(plan.keys, plan.seed),
        zipf_exponent: 1.0,
        items_per_request: 3,
        peak_rate: 250.0,
        trace: DemandTrace::new(vec![1.0; windows], SimTime::from_secs(10)),
    };
    let autoscaler = plan.autoscaler.then(|| {
        let mut cfg = AutoScalerConfig::new(cluster.r_db(), cluster.node_memory);
        // Chaos runs last minutes, not hours: shorten the epoch and lower
        // the observation floor so the scaler actually acts mid-run.
        cfg.epoch = SimTime::from_secs(20);
        cfg.min_nodes = 2;
        cfg.max_nodes = 12;
        cfg.min_observations = 20_000;
        ScalerConfig::Reactive(cfg)
    });
    let scheduled = plan
        .actions
        .iter()
        .map(|a| {
            let action = match a.action {
                ChaosAction::ScaleIn { count } => ScaleAction::In { count },
                ChaosAction::ScaleOut { count } => ScaleAction::Out { count },
            };
            (a.at, action)
        })
        .collect();
    ExperimentConfig {
        cluster,
        workload,
        policy: MigrationPolicy::elmem(),
        autoscaler,
        scheduled,
        prefill_top_ranks: plan.keys / 2,
        costs: MigrationCosts::default(),
        faults: plan.faults.clone(),
        healing: plan.healing.then(HealingConfig::warm_replacement),
        master: MasterPlan {
            crashes: plan.master_crashes.clone(),
            ..MasterPlan::default()
        },
        seed: plan.seed,
    }
}

/// Runs one chaos schedule end to end and checks every invariant against
/// the final cluster state and the full telemetry trace.
pub fn run_chaos(plan: &ChaosPlan) -> ChaosReport {
    let config = experiment_for_plan(plan);
    let keyspace = config.workload.keyspace.clone();
    let tcfg = TelemetryConfig {
        trace_capacity: CHAOS_TRACE_CAPACITY,
        ..TelemetryConfig::default()
    };
    let (result, cluster) = run_experiment_capture(config, tcfg);
    let violations = check_invariants(plan, &result, &cluster, &keyspace);
    ChaosReport { violations, result }
}

/// Checks every chaos invariant; returns the violations found (empty =
/// clean). Public so tests can aim it at hand-corrupted state.
pub fn check_invariants(
    plan: &ChaosPlan,
    result: &ExperimentResult,
    cluster: &Cluster,
    keyspace: &Keyspace,
) -> Vec<String> {
    let mut v = Vec::new();
    check_store_audits(cluster, &mut v);
    check_content_fidelity(cluster, keyspace, &mut v);
    check_trace_order(result, &mut v);
    // The order-sensitive checks need the complete stream; a dropped
    // prefix is itself a violation (raise CHAOS_TRACE_CAPACITY).
    if result.telemetry.dropped_events == 0 {
        check_no_stale_serves(result, cluster, &mut v);
        check_breaker_edges(result, &mut v);
        check_detector_legality(result, &mut v);
        check_migration_pairing(result, &mut v);
    } else {
        v.push(format!(
            "trace ring overflowed: {} events dropped, order-sensitive checks impossible",
            result.telemetry.dropped_events
        ));
    }
    check_journal(result, cluster, &mut v);
    if plan.healing && result.final_crashed_members > 0 {
        v.push(format!(
            "healing enabled but {} crashed member(s) left in the ring at end of run",
            result.final_crashed_members
        ));
    }
    v
}

/// Invariant 1: every store's internal accounting is conserved.
fn check_store_audits(cluster: &Cluster, v: &mut Vec<String>) {
    let mut nodes: Vec<&elmem_cluster::CacheNode> = cluster.tier.iter_nodes().collect();
    nodes.sort_by_key(|n| n.id());
    for node in nodes {
        if let Err(e) = node.store.audit() {
            v.push(format!("node {}: store audit failed: {e}", node.id().0));
        }
    }
}

/// Invariant 2: resident items carry exactly the keyspace's sizes.
fn check_content_fidelity(cluster: &Cluster, keyspace: &Keyspace, v: &mut Vec<String>) {
    let mut nodes: Vec<&elmem_cluster::CacheNode> = cluster.tier.iter_nodes().collect();
    nodes.sort_by_key(|n| n.id());
    for node in nodes {
        let mut bad = 0u64;
        let mut smallest: Option<KeyId> = None;
        for item in node.store.iter() {
            let ok =
                keyspace.contains(item.key) && item.value_size == keyspace.value_size(item.key);
            if !ok {
                bad += 1;
                if smallest.is_none_or(|k| item.key < k) {
                    smallest = Some(item.key);
                }
            }
        }
        if let Some(key) = smallest {
            v.push(format!(
                "node {}: {bad} item(s) with corrupted content, smallest key {}",
                node.id().0,
                key.0
            ));
        }
    }
}

/// Invariant 3: no stale copy served. Lookups route by the ring, so once
/// the control plane's last event has passed, only ring owners can have
/// their MRU timestamps refreshed. A fresher timestamp on a non-owned
/// replica means a request was answered from a copy that ownership had
/// moved away from.
fn check_no_stale_serves(result: &ExperimentResult, cluster: &Cluster, v: &mut Vec<String>) {
    let bound = result
        .telemetry
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::NodeCrashed
                    | EventKind::LinkDegraded
                    | EventKind::LinkRestored
                    | EventKind::LinkPartitioned
                    | EventKind::ScalingDecided { .. }
                    | EventKind::MembershipCommitted { .. }
                    | EventKind::MigrationPhaseStart { .. }
                    | EventKind::MigrationPhaseEnd { .. }
                    | EventKind::MigrationAborted { .. }
                    | EventKind::NodeSuspected
                    | EventKind::NodeConfirmedDead
                    | EventKind::RecoveryCompleted { .. }
                    | EventKind::MasterCrashed
                    | EventKind::MigrationResumed { .. }
                    | EventKind::ScalingDeferred { .. }
            )
        })
        .map(|e| e.at)
        .max()
        .unwrap_or(SimTime::ZERO);
    let members = cluster.tier.membership().members().to_vec();
    for id in members {
        let Ok(node) = cluster.tier.node(id) else {
            v.push(format!("member node {} missing from tier", id.0));
            continue;
        };
        let mut stale = 0u64;
        let mut smallest: Option<KeyId> = None;
        for item in node.store.iter() {
            let owned = cluster.tier.node_for_key(item.key) == Some(id);
            if !owned && item.last_access > bound {
                stale += 1;
                if smallest.is_none_or(|k| item.key < k) {
                    smallest = Some(item.key);
                }
            }
        }
        if let Some(key) = smallest {
            v.push(format!(
                "node {}: {stale} non-owned item(s) served after last control-plane \
                 event at {}ns, smallest key {}",
                id.0,
                bound.as_nanos(),
                key.0
            ));
        }
    }
}

/// Invariant 4: breaker state machines only take legal edges.
fn check_breaker_edges(result: &ExperimentResult, v: &mut Vec<String>) {
    use std::collections::BTreeMap;
    let mut phase: BTreeMap<NodeId, BreakerPhase> = BTreeMap::new();
    for e in &result.telemetry.events {
        let EventKind::BreakerTransition { from, to } = e.kind else {
            continue;
        };
        let Some(node) = e.node else {
            v.push(format!(
                "breaker transition without a node at seq {}",
                e.seq
            ));
            continue;
        };
        let current = *phase.entry(node).or_insert(BreakerPhase::Closed);
        if from != current {
            v.push(format!(
                "node {}: breaker claims {} -> {} but tracked state was {} (seq {})",
                node.0,
                from.label(),
                to.label(),
                current.label(),
                e.seq
            ));
        }
        let legal = matches!(
            (from, to),
            (BreakerPhase::Closed, BreakerPhase::Open)
                | (BreakerPhase::Open, BreakerPhase::HalfOpen)
                | (BreakerPhase::HalfOpen, BreakerPhase::Closed)
                | (BreakerPhase::HalfOpen, BreakerPhase::Open)
        );
        if !legal {
            v.push(format!(
                "node {}: illegal breaker edge {} -> {} (seq {})",
                node.0,
                from.label(),
                to.label(),
                e.seq
            ));
        }
        phase.insert(node, to);
    }
}

/// Invariant 5: a confirmed death needs evidence — at least one recorded
/// `Lost` probe for that node since its last recovery (the detector's
/// death streak is built from lost probes, and every non-ack probe is
/// traced) — and recoveries follow confirmations.
fn check_detector_legality(result: &ExperimentResult, v: &mut Vec<String>) {
    use std::collections::BTreeSet;
    let mut lost_probed: BTreeSet<NodeId> = BTreeSet::new();
    let mut confirmed: BTreeSet<NodeId> = BTreeSet::new();
    for e in &result.telemetry.events {
        match e.kind {
            EventKind::Probe {
                outcome: ProbeClass::Lost,
            } => {
                if let Some(n) = e.node {
                    lost_probed.insert(n);
                }
            }
            EventKind::NodeConfirmedDead => {
                let Some(n) = e.node else { continue };
                if !lost_probed.contains(&n) {
                    v.push(format!(
                        "node {}: confirmed dead without any lost probe (seq {})",
                        n.0, e.seq
                    ));
                }
                confirmed.insert(n);
            }
            EventKind::RecoveryCompleted { .. } => {
                let Some(n) = e.node else { continue };
                if !confirmed.remove(&n) {
                    v.push(format!(
                        "node {}: recovery without prior confirmed death (seq {})",
                        n.0, e.seq
                    ));
                }
                // The slot can die and recover again; a fresh death needs
                // fresh evidence.
                lost_probed.remove(&n);
            }
            _ => {}
        }
    }
}

/// Invariant 6: the trace is in strict canonical `(time, seq)` order,
/// sequence numbers are globally unique, and drop accounting conserves.
/// (Global seq monotonicity is *not* the contract: the migration
/// supervisor back-dates phase events to their reconstructed span times,
/// so a high-seq event can legitimately sort before a low-seq one.)
fn check_trace_order(result: &ExperimentResult, v: &mut Vec<String>) {
    let t = &result.telemetry;
    let mut last: Option<(SimTime, u64)> = None;
    for e in &t.events {
        if let Some(prev) = last {
            if (e.at, e.seq) <= prev {
                v.push(format!(
                    "trace not in strict (time, seq) order: ({}ns, {}) after ({}ns, {})",
                    e.at.as_nanos(),
                    e.seq,
                    prev.0.as_nanos(),
                    prev.1
                ));
            }
        }
        last = Some((e.at, e.seq));
    }
    let mut seqs: Vec<u64> = t.events.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    if seqs.windows(2).any(|w| w[0] == w[1]) {
        v.push("trace contains duplicate sequence numbers".to_string());
    }
    let retained = t.events.len() as u64;
    if t.recorded_events != retained + t.dropped_events {
        v.push(format!(
            "trace accounting broken: recorded {} != retained {} + dropped {}",
            t.recorded_events, retained, t.dropped_events
        ));
    }
}

/// Invariant 7: per phase kind, every started migration phase either
/// ended or was aborted inside it.
fn check_migration_pairing(result: &ExperimentResult, v: &mut Vec<String>) {
    let kinds = [
        MigrationPhaseKind::MetadataTransfer,
        MigrationPhaseKind::HotnessComparison,
        MigrationPhaseKind::DataMigration,
    ];
    for kind in kinds {
        let mut starts = 0u64;
        let mut ends = 0u64;
        let mut aborts = 0u64;
        for e in &result.telemetry.events {
            match e.kind {
                EventKind::MigrationPhaseStart { phase } if phase == kind => starts += 1,
                EventKind::MigrationPhaseEnd { phase } if phase == kind => ends += 1,
                EventKind::MigrationAborted { phase, .. } if phase == kind => aborts += 1,
                _ => {}
            }
        }
        if starts != ends + aborts {
            v.push(format!(
                "{} phases unbalanced: {starts} starts != {ends} ends + {aborts} aborts",
                kind.label()
            ));
        }
    }
}

/// Invariants 9–13: the migration journal tells a coherent, loss-free
/// story (DESIGN.md §13). Every `Started` job reaches exactly one terminal
/// record with resumes strictly before it; acks are post-seal, sealed,
/// and unique; a committed job lost no shipment; the surviving Agents'
/// import ledgers carry only sealed shipments with sealed checksums; and
/// duplicate suppression implies a resume happened.
fn check_journal(result: &ExperimentResult, cluster: &Cluster, v: &mut Vec<String>) {
    use std::collections::{BTreeMap, BTreeSet};
    let entries = result.journal.entries();

    let mut ids: Vec<u64> = entries.iter().map(|e| e.record.id()).collect();
    ids.sort_unstable();
    ids.dedup();
    for id in &ids {
        let id = *id;
        let st = result.journal.replay(id);
        if st.kind.is_none() {
            v.push(format!("journal job {id}: records without a started"));
            continue;
        }
        let terminals = entries
            .iter()
            .filter(|e| {
                e.record.id() == id
                    && matches!(
                        e.record,
                        JournalRecord::Committed { .. } | JournalRecord::Aborted { .. }
                    )
            })
            .count();
        if terminals != 1 {
            v.push(format!(
                "journal job {id}: {terminals} terminal record(s), want exactly 1"
            ));
        }
        let mut sealed = false;
        let mut terminal_seen = false;
        let mut acked_seqs: BTreeSet<u64> = BTreeSet::new();
        for e in entries.iter().filter(|e| e.record.id() == id) {
            match &e.record {
                JournalRecord::PlanSealed { .. } => sealed = true,
                JournalRecord::ShipmentAcked { seq, .. } => {
                    if !sealed {
                        v.push(format!(
                            "journal job {id}: shipment {seq} acked before the plan sealed"
                        ));
                    }
                    if !acked_seqs.insert(*seq) {
                        v.push(format!("journal job {id}: shipment {seq} acked twice"));
                    }
                }
                JournalRecord::Resumed { .. } if terminal_seen => {
                    v.push(format!(
                        "journal job {id}: resumed after its terminal record"
                    ));
                }
                JournalRecord::Committed { .. } | JournalRecord::Aborted { .. } => {
                    terminal_seen = true;
                }
                _ => {}
            }
        }
        match &st.manifest {
            Some(manifest) => {
                let sealed_seqs: BTreeSet<u64> = manifest.iter().map(|m| m.seq).collect();
                for seq in &st.acked {
                    if !sealed_seqs.contains(seq) {
                        v.push(format!(
                            "journal job {id}: acked shipment {seq} absent from the sealed manifest"
                        ));
                    }
                }
                if st.committed && st.acked != sealed_seqs {
                    v.push(format!(
                        "journal job {id}: committed with {} of {} sealed shipment(s) acked",
                        st.acked.len(),
                        sealed_seqs.len()
                    ));
                }
            }
            None if !st.acked.is_empty() => {
                v.push(format!(
                    "journal job {id}: {} ack(s) without a sealed manifest",
                    st.acked.len()
                ));
            }
            None => {}
        }
    }

    let mut sealed: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for e in entries {
        if let JournalRecord::PlanSealed { id, manifest, .. } = &e.record {
            for m in manifest {
                sealed.insert((*id, m.seq), m.checksum);
            }
        }
    }
    let any_resume = entries
        .iter()
        .any(|e| matches!(e.record, JournalRecord::Resumed { .. }));
    let mut nodes: Vec<&elmem_cluster::CacheNode> = cluster.tier.iter_nodes().collect();
    nodes.sort_by_key(|n| n.id());
    let mut suppressed = 0u64;
    for node in nodes {
        suppressed += node.import_ledger().duplicates_suppressed();
        for (mid, seq, sum) in node.import_ledger().entries() {
            match sealed.get(&(mid, seq)) {
                None => v.push(format!(
                    "node {}: ledger holds shipment (migration {mid}, seq {seq}) \
                     the journal never sealed",
                    node.id().0
                )),
                Some(&expected) if expected != sum => v.push(format!(
                    "node {}: ledger checksum {sum:#018x} != sealed {expected:#018x} \
                     for (migration {mid}, seq {seq})",
                    node.id().0
                )),
                Some(_) => {}
            }
        }
    }
    if suppressed > 0 && !any_resume {
        v.push(format!(
            "{suppressed} duplicate import(s) suppressed but no migration ever resumed"
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmem_sim::chaos::{ChaosLimits, ScheduledChaosAction};

    #[test]
    fn quiet_plan_passes_all_invariants() {
        // A schedule with no faults and no actions must trivially pass.
        let plan = ChaosPlan {
            seed: 7,
            nodes: 4,
            keys: 6_000,
            duration_secs: 60,
            healing: false,
            autoscaler: false,
            faults: elmem_sim::FaultPlan::new(),
            actions: Vec::new(),
            master_crashes: Vec::new(),
        };
        let report = run_chaos(&plan);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.result.total_requests > 0);
    }

    #[test]
    fn master_crash_during_scripted_scaling_resumes_clean() {
        let scale_at = SimTime::from_secs(20);
        let plan = ChaosPlan {
            seed: 19,
            nodes: 4,
            keys: 6_000,
            duration_secs: 60,
            healing: false,
            autoscaler: false,
            faults: elmem_sim::FaultPlan::new(),
            actions: vec![ScheduledChaosAction {
                at: scale_at,
                action: ChaosAction::ScaleIn { count: 1 },
            }],
            master_crashes: vec![scale_at + SimTime::from_millis(200)],
        };
        let report = run_chaos(&plan);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(
            report
                .result
                .journal
                .entries()
                .iter()
                .any(|e| e.record.label() == "resumed"),
            "the crash should interrupt the migration and the journal should resume it"
        );
    }

    #[test]
    fn generated_plan_runs_clean() {
        let plan = ChaosPlan::generate_with(42, &ChaosLimits::default());
        let report = run_chaos(&plan);
        assert!(report.passed(), "violations: {:?}", report.violations);
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let plan = ChaosPlan::generate(3);
        let a = run_chaos(&plan);
        let b = run_chaos(&plan);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.result.total_requests, b.result.total_requests);
        assert_eq!(
            a.result.telemetry.to_json(),
            b.result.telemetry.to_json(),
            "same plan must produce a byte-identical telemetry dump"
        );
    }

    #[test]
    fn checker_flags_corrupted_store() {
        let plan = ChaosPlan {
            seed: 11,
            nodes: 4,
            keys: 6_000,
            duration_secs: 60,
            healing: false,
            autoscaler: false,
            faults: elmem_sim::FaultPlan::new(),
            actions: Vec::new(),
            master_crashes: Vec::new(),
        };
        let config = experiment_for_plan(&plan);
        let keyspace = config.workload.keyspace.clone();
        let (result, mut cluster) = run_experiment_capture(
            config,
            TelemetryConfig {
                trace_capacity: CHAOS_TRACE_CAPACITY,
                ..TelemetryConfig::default()
            },
        );
        // Hand-corrupt one store's byte accounting; the audit must see it.
        let id = cluster.tier.membership().members()[0];
        cluster
            .tier
            .node_mut(id)
            .unwrap()
            .store
            .corrupt_bytes_used_for_tests();
        let violations = check_invariants(&plan, &result, &cluster, &keyspace);
        assert!(
            violations.iter().any(|m| m.contains("store audit failed")),
            "violations: {violations:?}"
        );
    }
}
