//! Failure detection and automatic recovery (the self-healing tier).
//!
//! The paper's Master assumes its Memcached VMs stay up; a real elastic
//! tier loses them. This module gives the Master a heartbeat *failure
//! detector* and a *recovery* policy:
//!
//! * [`FailureDetector`] probes every member on a configurable interval
//!   (jittered from a dedicated `DetRng` stream, so runs stay
//!   bit-reproducible). A probe returns a [`ProbeOutcome`]: `Ack` from a
//!   healthy node, `Degraded` from a node behind a partitioned or badly
//!   slowed NIC (the simulated partition *queues* traffic rather than
//!   dropping it, so the ack arrives — late), and `Lost` only from a node
//!   that is actually gone (crashed or powered off).
//! * Suspicion is graded: consecutive non-acks make a node
//!   [`NodeState::Suspected`], but only a streak of `Lost` probes reaches
//!   [`NodeState::ConfirmedDead`]. A partitioned or slow-linked node flaps
//!   between `Alive` and `Suspected` and is **never** confirmed dead — the
//!   safety property the property tests pin down.
//! * On confirmation the driver asks the Master to recover
//!   ([`crate::Master::recover_supervised`]): evict the corpse from the
//!   membership, optionally admit a replacement, and — when
//!   [`HealingConfig::warmup`] is set — fill the replacement with the
//!   FuseCache-selected hottest items from the survivors before the
//!   membership flip, exactly like a supervised scale-out.
//!
//! Everything here is driven by the simulated clock; there is no
//! wall-clock time and no hidden randomness.

use std::collections::BTreeMap;

use elmem_cluster::Cluster;
use elmem_util::{DetRng, NodeId, SimTime};

/// Heartbeat failure-detector parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Time between probe rounds.
    pub probe_interval: SimTime,
    /// Round-trip budget for one probe; a reachable node whose link would
    /// stretch the ack past this is counted as degraded, not dead.
    pub probe_timeout: SimTime,
    /// Consecutive `Lost` probes before a node is confirmed dead (and
    /// consecutive non-acks before it is suspected).
    pub suspicion_threshold: u32,
    /// Maximum deterministic jitter added to each round's schedule (avoids
    /// probes synchronizing with other periodic events).
    pub jitter: SimTime,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            probe_interval: SimTime::from_secs(1),
            probe_timeout: SimTime::from_millis(100),
            suspicion_threshold: 3,
            jitter: SimTime::from_millis(50),
        }
    }
}

/// What one heartbeat probe observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The node answered within the probe budget.
    Ack,
    /// The node is reachable in principle but the ack blew the budget
    /// (partitioned NIC queueing the probe, or a heavy slowdown). Counts
    /// toward suspicion, never toward death.
    Degraded,
    /// Nothing came back at all: the node is crashed or powered off.
    Lost,
}

/// The detector's opinion of one member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Answering probes.
    Alive,
    /// Missing probes (degraded or lost) but not yet past the death
    /// threshold, or degraded-only (which can never pass it).
    Suspected,
    /// A full threshold of consecutive lost probes: the node is gone.
    ConfirmedDead,
}

#[derive(Debug, Clone, Copy)]
struct MemberTrack {
    state: NodeState,
    /// Consecutive probes that were not `Ack`.
    missed: u32,
    /// Consecutive probes that were `Lost` (subset of `missed`).
    lost: u32,
    /// When the current non-ack streak started.
    first_miss_at: SimTime,
    /// State changes so far (flap metric).
    transitions: u64,
}

impl MemberTrack {
    fn new() -> Self {
        MemberTrack {
            state: NodeState::Alive,
            missed: 0,
            lost: 0,
            first_miss_at: SimTime::ZERO,
            transitions: 0,
        }
    }

    fn set_state(&mut self, state: NodeState) {
        if self.state != state {
            self.state = state;
            self.transitions += 1;
        }
    }
}

/// A newly confirmed death, as reported by one probe round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfirmedDeath {
    /// The dead member.
    pub node: NodeId,
    /// When its final non-ack streak began (first missed probe).
    pub suspected_at: SimTime,
    /// When the threshold was crossed (this probe round).
    pub confirmed_at: SimTime,
}

/// What one probe in a round saw and what it did to the detector's
/// opinion — returned to the driver so it can trace probe outcomes and
/// suspicion/death edges without holding a borrow on the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeObservation {
    /// The probed member.
    pub node: NodeId,
    /// What the probe saw.
    pub outcome: ProbeOutcome,
    /// The detector's opinion before this probe.
    pub before: NodeState,
    /// The detector's opinion after this probe.
    pub after: NodeState,
}

/// The Master's heartbeat failure detector.
///
/// Tracks every *member* of the client-visible ring; nodes that leave the
/// membership (scale-in, eviction) are forgotten and start fresh if they
/// ever rejoin.
#[derive(Debug)]
pub struct FailureDetector {
    config: DetectorConfig,
    rng: DetRng,
    tracks: BTreeMap<NodeId, MemberTrack>,
    probes_sent: u64,
}

impl FailureDetector {
    /// A detector with its own jitter stream (split from the experiment
    /// RNG as `"heartbeat"` by the driver).
    pub fn new(config: DetectorConfig, rng: DetRng) -> Self {
        FailureDetector {
            config,
            rng,
            tracks: BTreeMap::new(),
            probes_sent: 0,
        }
    }

    /// The detector's parameters.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// When the round after one at `now` should run: interval plus a
    /// deterministic jitter draw.
    pub fn next_round_after(&mut self, now: SimTime) -> SimTime {
        let jitter = self.config.jitter.mul_f64(self.rng.next_f64());
        now + self.config.probe_interval + jitter
    }

    /// What a probe of `node` observes at `now`. Pure: no state update.
    pub fn probe(&self, cluster: &Cluster, node: NodeId, now: SimTime) -> ProbeOutcome {
        let Ok(n) = cluster.tier.node(node) else {
            return ProbeOutcome::Lost;
        };
        if !n.is_online() {
            // Crashed or powered off: no NIC, no ack, ever.
            return ProbeOutcome::Lost;
        }
        if n.link.is_partitioned(now) {
            // The sim's partition queues traffic behind the heal instant:
            // the ack arrives, late. The node is wedged, not dead.
            return ProbeOutcome::Degraded;
        }
        // Round trip over a possibly degraded link vs the probe budget.
        let rtt = (n.link.latency() * 2).mul_f64(n.link.slowdown_factor());
        if rtt > self.config.probe_timeout {
            ProbeOutcome::Degraded
        } else {
            ProbeOutcome::Ack
        }
    }

    /// Probes every current member at `now` and returns the deaths this
    /// round confirmed. Tracks for departed members are dropped.
    pub fn probe_round(&mut self, cluster: &Cluster, now: SimTime) -> Vec<ConfirmedDeath> {
        self.probe_round_observed(cluster, now).0
    }

    /// [`Self::probe_round`], additionally reporting what every probe saw
    /// and how it moved the detector's opinion (for the event trace).
    pub fn probe_round_observed(
        &mut self,
        cluster: &Cluster,
        now: SimTime,
    ) -> (Vec<ConfirmedDeath>, Vec<ProbeObservation>) {
        let members = cluster.tier.membership().members().to_vec();
        self.tracks.retain(|id, _| members.contains(id));
        // Probing is pure per member, so a large tier's round fans out over
        // worker threads; outcomes come back in member order and the track
        // updates below stay serial, so the round is byte-identical to the
        // all-serial path at any worker count.
        let jobs = elmem_util::par::par_jobs();
        let outcomes: Vec<ProbeOutcome> = if jobs > 1 && members.len() >= 64 {
            let detector: &FailureDetector = self;
            elmem_util::par::par_map_indexed(jobs, &members, |_, &id| {
                detector.probe(cluster, id, now)
            })
        } else {
            members
                .iter()
                .map(|&id| self.probe(cluster, id, now))
                .collect()
        };
        let mut confirmed = Vec::new();
        let mut observations = Vec::with_capacity(members.len());
        for (&id, outcome) in members.iter().zip(outcomes) {
            self.probes_sent += 1;
            let track = self.tracks.entry(id).or_insert_with(MemberTrack::new);
            let before = track.state;
            match outcome {
                ProbeOutcome::Ack => {
                    track.missed = 0;
                    track.lost = 0;
                    track.set_state(NodeState::Alive);
                }
                ProbeOutcome::Degraded | ProbeOutcome::Lost => {
                    if track.missed == 0 {
                        track.first_miss_at = now;
                    }
                    track.missed += 1;
                    if outcome == ProbeOutcome::Lost {
                        track.lost += 1;
                    } else {
                        // A late ack proves the node is alive: the death
                        // streak restarts, only suspicion persists.
                        track.lost = 0;
                    }
                    if track.lost >= self.config.suspicion_threshold {
                        if track.state != NodeState::ConfirmedDead {
                            track.set_state(NodeState::ConfirmedDead);
                            confirmed.push(ConfirmedDeath {
                                node: id,
                                suspected_at: track.first_miss_at,
                                confirmed_at: now,
                            });
                        }
                    } else if track.missed >= self.config.suspicion_threshold {
                        track.set_state(NodeState::Suspected);
                    }
                }
            }
            observations.push(ProbeObservation {
                node: id,
                outcome,
                before,
                after: track.state,
            });
        }
        (confirmed, observations)
    }

    /// The detector's current opinion of a member (None if untracked).
    pub fn state(&self, node: NodeId) -> Option<NodeState> {
        self.tracks.get(&node).map(|t| t.state)
    }

    /// Total probes sent (a cost metric).
    pub fn probes_sent(&self) -> u64 {
        self.probes_sent
    }

    /// Total detector state transitions across all members (flap metric).
    pub fn transitions(&self) -> u64 {
        self.tracks.values().map(|t| t.transitions).sum()
    }
}

/// What to do with the hole a dead node leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict only: the tier shrinks by one per death.
    None,
    /// Provision one replacement per evicted node.
    OneForOne,
}

/// Self-healing configuration: detector parameters plus the recovery
/// policy applied when a death is confirmed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealingConfig {
    /// Heartbeat detector parameters.
    pub detector: DetectorConfig,
    /// Whether confirmed deaths are replaced.
    pub replacement: ReplacementPolicy,
    /// Fill replacements with FuseCache-selected hot items from the
    /// survivors before the membership flip (a supervised scale-out);
    /// `false` admits them cold.
    pub warmup: bool,
}

impl HealingConfig {
    /// Detect and evict, no replacement: the tier shrinks on every death.
    pub fn evict_only() -> Self {
        HealingConfig {
            detector: DetectorConfig::default(),
            replacement: ReplacementPolicy::None,
            warmup: false,
        }
    }

    /// Detect, evict, and admit a cold replacement immediately.
    pub fn cold_replacement() -> Self {
        HealingConfig {
            detector: DetectorConfig::default(),
            replacement: ReplacementPolicy::OneForOne,
            warmup: false,
        }
    }

    /// The full self-healing loop: detect, evict, and admit a replacement
    /// warmed via FuseCache before it joins the ring.
    pub fn warm_replacement() -> Self {
        HealingConfig {
            detector: DetectorConfig::default(),
            replacement: ReplacementPolicy::OneForOne,
            warmup: true,
        }
    }
}

/// One completed recovery, as recorded by the experiment driver.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// The node that died.
    pub node: NodeId,
    /// When the fault plan actually crashed it (None when the death came
    /// from something other than a scheduled crash).
    pub crashed_at: Option<SimTime>,
    /// When the detector first missed it.
    pub suspected_at: SimTime,
    /// When the detector confirmed the death.
    pub confirmed_at: SimTime,
    /// The replacement admitted for it, if the policy admits one.
    pub replacement: Option<NodeId>,
    /// When recovery finished: the eviction for evict-only, the
    /// replacement's membership commit otherwise.
    pub recovered_at: SimTime,
    /// Whether the replacement was warmed before the flip.
    pub warmed: bool,
}

impl RecoveryEvent {
    /// Crash-to-confirmation latency, when the crash time is known.
    pub fn detection_latency(&self) -> Option<SimTime> {
        self.crashed_at.map(|t| self.confirmed_at.saturating_sub(t))
    }

    /// Confirmation-to-recovered latency.
    pub fn recovery_latency(&self) -> SimTime {
        self.recovered_at.saturating_sub(self.confirmed_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmem_cluster::ClusterConfig;
    use elmem_workload::Keyspace;

    fn cluster() -> Cluster {
        Cluster::new(
            ClusterConfig::small_test(),
            Keyspace::new(10_000, 0),
            DetRng::seed(1),
        )
    }

    fn detector() -> FailureDetector {
        FailureDetector::new(
            DetectorConfig::default(),
            DetRng::seed(2).split("heartbeat"),
        )
    }

    #[test]
    fn healthy_members_stay_alive() {
        let c = cluster();
        let mut d = detector();
        for s in 0..10 {
            let confirmed = d.probe_round(&c, SimTime::from_secs(s));
            assert!(confirmed.is_empty());
        }
        for &m in c.tier.membership().members() {
            assert_eq!(d.state(m), Some(NodeState::Alive));
        }
        assert_eq!(d.transitions(), 0);
    }

    #[test]
    fn crash_is_confirmed_after_threshold_lost_probes() {
        let mut c = cluster();
        let mut d = detector();
        d.probe_round(&c, SimTime::from_secs(0));
        c.tier.crash(NodeId(1)).unwrap();
        let mut confirmed_at = None;
        for s in 1..=5 {
            let confirmed = d.probe_round(&c, SimTime::from_secs(s));
            if let Some(death) = confirmed.first() {
                assert_eq!(death.node, NodeId(1));
                confirmed_at = Some(death.confirmed_at);
            }
        }
        // Threshold 3: rounds at 1,2,3 s miss; confirmation on round 3.
        assert_eq!(confirmed_at, Some(SimTime::from_secs(3)));
        assert_eq!(d.state(NodeId(1)), Some(NodeState::ConfirmedDead));
        // Confirmed once, not re-reported every round.
        assert!(d.probe_round(&c, SimTime::from_secs(6)).is_empty());
    }

    #[test]
    fn partition_suspects_but_never_confirms() {
        let mut c = cluster();
        let mut d = detector();
        c.tier
            .node_mut(NodeId(2))
            .unwrap()
            .link
            .partition_until(SimTime::from_secs(100));
        for s in 0..50 {
            let confirmed = d.probe_round(&c, SimTime::from_secs(s));
            assert!(confirmed.is_empty(), "a partition must never confirm death");
        }
        assert_eq!(d.state(NodeId(2)), Some(NodeState::Suspected));
        // Heal: the node flaps back to alive.
        d.probe_round(&c, SimTime::from_secs(100));
        assert_eq!(d.state(NodeId(2)), Some(NodeState::Alive));
        assert!(d.transitions() >= 2, "suspected then cleared");
    }

    #[test]
    fn slow_link_within_budget_still_acks() {
        let mut c = cluster();
        let mut d = detector();
        // 2x slowdown: rtt 2 * 100 µs * 2 = 400 µs, well under 100 ms.
        c.tier.node_mut(NodeId(0)).unwrap().link.apply_slowdown(2.0);
        d.probe_round(&c, SimTime::from_secs(1));
        assert_eq!(d.state(NodeId(0)), Some(NodeState::Alive));
        // 1000x slowdown blows the budget: degraded, hence suspicion only.
        c.tier
            .node_mut(NodeId(0))
            .unwrap()
            .link
            .apply_slowdown(1000.0);
        for s in 2..10 {
            assert!(d.probe_round(&c, SimTime::from_secs(s)).is_empty());
        }
        assert_eq!(d.state(NodeId(0)), Some(NodeState::Suspected));
    }

    #[test]
    fn partition_before_crash_needs_a_fresh_lost_streak() {
        let mut c = cluster();
        let mut d = detector();
        // Long-suspected behind a partition: missed count is high...
        c.tier
            .node_mut(NodeId(3))
            .unwrap()
            .link
            .partition_until(SimTime::from_secs(100));
        for s in 0..10 {
            assert!(d.probe_round(&c, SimTime::from_secs(s)).is_empty());
        }
        assert_eq!(d.state(NodeId(3)), Some(NodeState::Suspected));
        // ...but when the node then actually dies, confirmation still
        // takes a full threshold of *lost* probes: degraded probes never
        // pre-paid the death streak.
        c.tier.crash(NodeId(3)).unwrap();
        assert!(d.probe_round(&c, SimTime::from_secs(10)).is_empty());
        assert!(d.probe_round(&c, SimTime::from_secs(11)).is_empty());
        let confirmed = d.probe_round(&c, SimTime::from_secs(12));
        assert_eq!(confirmed.len(), 1);
        assert_eq!(confirmed[0].node, NodeId(3));
    }

    #[test]
    fn probe_round_observed_reports_outcomes_and_edges() {
        let mut c = cluster();
        let mut d = detector();
        c.tier.crash(NodeId(1)).unwrap();
        let (confirmed, obs) = d.probe_round_observed(&c, SimTime::from_secs(1));
        assert!(confirmed.is_empty());
        assert_eq!(obs.len(), c.tier.membership().len());
        let dead = obs.iter().find(|o| o.node == NodeId(1)).unwrap();
        assert_eq!(dead.outcome, ProbeOutcome::Lost);
        assert_eq!(dead.after, NodeState::Alive, "one lost probe is not death");
        d.probe_round(&c, SimTime::from_secs(2));
        // The third lost probe crosses the threshold: the edge is visible
        // in the observation, not just in the confirmation list.
        let (confirmed, obs) = d.probe_round_observed(&c, SimTime::from_secs(3));
        assert_eq!(confirmed.len(), 1);
        let dead = obs.iter().find(|o| o.node == NodeId(1)).unwrap();
        assert_ne!(dead.before, NodeState::ConfirmedDead);
        assert_eq!(dead.after, NodeState::ConfirmedDead);
        let alive = obs.iter().find(|o| o.node == NodeId(0)).unwrap();
        assert_eq!(alive.outcome, ProbeOutcome::Ack);
        assert_eq!(alive.before, alive.after);
    }

    #[test]
    fn departed_members_are_forgotten() {
        let mut c = cluster();
        let mut d = detector();
        c.tier.crash(NodeId(1)).unwrap();
        for s in 1..=3 {
            d.probe_round(&c, SimTime::from_secs(s));
        }
        assert_eq!(d.state(NodeId(1)), Some(NodeState::ConfirmedDead));
        // Evict: the track disappears with the membership entry.
        let evicted = c.tier.evict_crashed();
        assert_eq!(evicted, vec![NodeId(1)]);
        d.probe_round(&c, SimTime::from_secs(4));
        assert_eq!(d.state(NodeId(1)), None);
    }

    #[test]
    fn probe_schedule_is_jittered_and_deterministic() {
        let mut a = detector();
        let mut b = detector();
        let mut t_a = SimTime::ZERO;
        let mut t_b = SimTime::ZERO;
        for _ in 0..5 {
            t_a = a.next_round_after(t_a);
            t_b = b.next_round_after(t_b);
        }
        assert_eq!(t_a, t_b, "same seed, same schedule");
        assert!(t_a > SimTime::from_secs(5), "interval plus jitter");
        assert!(t_a < SimTime::from_secs(6), "jitter bounded");
    }
}
