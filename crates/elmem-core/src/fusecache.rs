//! The FuseCache algorithm (§IV) and its comparison baselines.
//!
//! **Problem.** Given `k` lists of item hotnesses, each sorted hottest-first
//! (the per-slab MRU dumps of the retained node and the metadata shipped by
//! retiring nodes), pick how many items to take from the top of each list so
//! that together they are the `n` globally hottest items.
//!
//! **FuseCache** solves this in `O(k·(log n)²)` by recursive
//! median-of-medians: each round computes the median of the active window of
//! every list, takes the median-of-medians (MOM), counts via binary search
//! how many items are strictly hotter than the MOM (`countX`), and then
//! either discards everything at-or-colder than the MOM (`countX > n`) or
//! commits the entire hotter-than-MOM set (`countX ≤ n`). The paper shows
//! the theoretical lower bound is `O(k·log n)`, a single `log n` factor
//! away.
//!
//! The baselines it beats (§IV): flatten-and-sort `O(N log N)` and k-way
//! heap merge `O(n log k)`.

use std::collections::BinaryHeap;

use elmem_store::Hotness;
use serde::{Deserialize, Serialize};

/// Instrumentation counters from a FuseCache run (for the complexity
/// experiment E7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionStats {
    /// Median-of-medians rounds executed.
    pub rounds: u64,
    /// Hotness comparisons performed (binary searches + medians).
    pub comparisons: u64,
}

/// Selects the `n` hottest items across `k` hottest-first sorted lists.
///
/// Returns `to_pick[i]`: how many items to take from the front of list `i`;
/// the counts sum to `min(n, total_items)`.
///
/// # Panics
///
/// Panics in debug builds if any list is not sorted hottest-first.
///
/// # Example
///
/// ```
/// use elmem_core::fusecache::fusecache;
/// use elmem_store::Hotness;
/// use elmem_util::{KeyId, SimTime};
///
/// let h = |s: u64, k: u64| Hotness::new(SimTime::from_secs(s), KeyId(k));
/// let a = vec![h(10, 0), h(4, 1)];
/// let b = vec![h(7, 2), h(6, 3), h(5, 4)];
/// assert_eq!(fusecache(&[&a, &b], 4), vec![1, 3]);
/// ```
pub fn fusecache(lists: &[&[Hotness]], n: usize) -> Vec<usize> {
    fusecache_instrumented(lists, n).0
}

/// [`fusecache`] with instrumentation counters.
pub fn fusecache_instrumented(lists: &[&[Hotness]], n: usize) -> (Vec<usize>, SelectionStats) {
    let k = lists.len();
    let mut stats = SelectionStats::default();
    let mut picks = vec![0usize; k];
    if k == 0 || n == 0 {
        return (picks, stats);
    }
    #[cfg(debug_assertions)]
    for list in lists {
        debug_assert!(
            list.windows(2).all(|w| w[0] >= w[1]),
            "FuseCache input list not sorted hottest-first"
        );
    }

    let total: usize = lists.iter().map(|l| l.len()).sum();
    let mut remaining = n.min(total);
    // Active windows: [start, end) per list; items before `start` are
    // committed to the answer, items at/after `end` are discarded.
    let mut start = vec![0usize; k];
    let mut end: Vec<usize> = lists.iter().map(|l| l.len()).collect();

    // Scratch buffers reused across rounds: a selection runs O(log N)
    // rounds, and reallocating the per-round medians and insertion-point
    // vectors each time dominated the (otherwise tiny) round cost.
    let mut medians: Vec<Hotness> = Vec::with_capacity(k);
    let mut ins = vec![0usize; k];
    while remaining > 0 {
        // Medians of nonempty windows.
        medians.clear();
        for i in 0..k {
            if start[i] < end[i] {
                medians.push(lists[i][(start[i] + end[i]) / 2]);
            }
        }
        debug_assert!(
            !medians.is_empty(),
            "windows exhausted with {remaining} still to pick"
        );
        stats.rounds += 1;
        stats.comparisons += (medians.len() as f64 * (medians.len() as f64).log2().max(1.0)) as u64;
        medians.sort_unstable_by_key(|h| std::cmp::Reverse(*h));
        let mom = medians[medians.len() / 2];

        // Insertion points: count of window items strictly hotter than MOM.
        let mut count_x = 0usize;
        for i in 0..k {
            let window = &lists[i][start[i]..end[i]];
            // Hottest-first: strictly-hotter items form a prefix.
            let p = window.partition_point(|h| *h > mom);
            stats.comparisons += (window.len().max(1) as f64).log2().ceil() as u64 + 1;
            ins[i] = p;
            count_x += p;
        }

        if count_x > remaining {
            // The answer lies inside X: discard everything at/colder than
            // the MOM. Strictly shrinks the windows (MOM itself goes).
            for i in 0..k {
                end[i] = start[i] + ins[i];
            }
        } else {
            // Commit all of X.
            for i in 0..k {
                picks[i] += ins[i];
                start[i] += ins[i];
            }
            remaining -= count_x;
            if count_x == 0 {
                // MOM is the hottest remaining item; commit it directly to
                // guarantee progress (it sits at the front of its window).
                let j = (0..k)
                    .find(|&i| start[i] < end[i] && lists[i][start[i]] == mom)
                    .expect("MOM fronts one window when countX is 0");
                picks[j] += 1;
                start[j] += 1;
                remaining -= 1;
            }
        }
    }
    (picks, stats)
}

/// Baseline: flatten all lists, sort descending, take the top `n`
/// (`O(N log N)`, §IV's "naive way").
pub fn sort_merge_top_n(lists: &[&[Hotness]], n: usize) -> Vec<usize> {
    let mut all: Vec<(Hotness, usize)> = Vec::new();
    for (i, list) in lists.iter().enumerate() {
        all.extend(list.iter().map(|&h| (h, i)));
    }
    all.sort_unstable_by_key(|&(h, _)| std::cmp::Reverse(h));
    let mut picks = vec![0usize; lists.len()];
    for &(_, i) in all.iter().take(n) {
        picks[i] += 1;
    }
    picks
}

/// Baseline: k-way merge with a heap, popping the hottest `n` times
/// (`O(n log k)`, §IV's "arguably better algorithm").
pub fn kway_top_n(lists: &[&[Hotness]], n: usize) -> Vec<usize> {
    let mut picks = vec![0usize; lists.len()];
    let mut heap: BinaryHeap<(Hotness, usize)> = lists
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.is_empty())
        .map(|(i, l)| (l[0], i))
        .collect();
    let mut taken = 0usize;
    while taken < n {
        let Some((_, i)) = heap.pop() else { break };
        picks[i] += 1;
        taken += 1;
        let next_idx = picks[i];
        if next_idx < lists[i].len() {
            heap.push((lists[i][next_idx], i));
        }
    }
    picks
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmem_util::{DetRng, KeyId, SimTime};

    fn h(s: u64, k: u64) -> Hotness {
        Hotness::new(SimTime::from_nanos(s), KeyId(k))
    }

    /// Builds `k` random sorted lists with unique tie-breaks.
    fn random_lists(rng: &mut DetRng, k: usize, max_len: usize) -> Vec<Vec<Hotness>> {
        let mut key = 0u64;
        (0..k)
            .map(|_| {
                let len = rng.next_below(max_len as u64 + 1) as usize;
                let mut l: Vec<Hotness> = (0..len)
                    .map(|_| {
                        key += 1;
                        h(rng.next_below(1000), key)
                    })
                    .collect();
                l.sort_unstable_by(|a, b| b.cmp(a));
                l
            })
            .collect()
    }

    fn as_refs(lists: &[Vec<Hotness>]) -> Vec<&[Hotness]> {
        lists.iter().map(|l| l.as_slice()).collect()
    }

    /// The canonical correctness check: picks must select exactly the
    /// multiset of the n hottest items.
    fn check_optimal(lists: &[Vec<Hotness>], picks: &[usize], n: usize) {
        let refs = as_refs(lists);
        let expected = sort_merge_top_n(&refs, n);
        // Compare the *hotness multisets*, not the counts: with a total
        // order they coincide, so counts must match.
        assert_eq!(picks, expected.as_slice());
    }

    #[test]
    fn simple_two_lists() {
        let a = vec![h(9, 1), h(5, 2), h(1, 3)];
        let b = vec![h(8, 4), h(2, 5)];
        assert_eq!(fusecache(&[&a, &b], 3), vec![2, 1]);
    }

    #[test]
    fn instrumentation_counters_are_stable() {
        // Pins SelectionStats on a fixed input: the scratch-buffer reuse in
        // the round loop must not change the rounds/comparisons arithmetic.
        let mut rng = DetRng::seed(99);
        let lists = random_lists(&mut rng, 8, 200);
        let refs = as_refs(&lists);
        let total: usize = lists.iter().map(|l| l.len()).sum();
        let n = total / 3;
        let (picks, stats) = fusecache_instrumented(&refs, n);
        check_optimal(&lists, &picks, n);
        let (picks2, stats2) = fusecache_instrumented(&refs, n);
        assert_eq!(picks, picks2);
        assert_eq!(stats.rounds, stats2.rounds);
        assert_eq!(stats.comparisons, stats2.comparisons);
        // O(k log^2 N) regime, not the O(N log N) of sort-merge.
        assert!(stats.rounds > 0);
        assert!(
            (stats.comparisons as usize) < total,
            "comparisons {} should undercut total items {total}",
            stats.comparisons
        );
    }

    #[test]
    fn n_zero_picks_nothing() {
        let a = vec![h(1, 1)];
        assert_eq!(fusecache(&[&a], 0), vec![0]);
    }

    #[test]
    fn n_exceeding_total_takes_all() {
        let a = vec![h(3, 1), h(2, 2)];
        let b = vec![h(1, 3)];
        assert_eq!(fusecache(&[&a, &b], 100), vec![2, 1]);
    }

    #[test]
    fn empty_lists_ok() {
        let a: Vec<Hotness> = vec![];
        let b = vec![h(5, 1)];
        assert_eq!(fusecache(&[&a, &b], 1), vec![0, 1]);
        assert_eq!(fusecache(&[], 5), Vec::<usize>::new());
    }

    #[test]
    fn single_list_takes_prefix() {
        let a: Vec<Hotness> = (0..100).map(|i| h(1000 - i, i)).collect();
        assert_eq!(fusecache(&[&a], 37), vec![37]);
    }

    #[test]
    fn all_items_in_one_hot_list() {
        let a: Vec<Hotness> = (0..50).map(|i| h(10_000 - i, i)).collect();
        let b: Vec<Hotness> = (0..50).map(|i| h(100 - i, 1000 + i)).collect();
        assert_eq!(fusecache(&[&a, &b], 50), vec![50, 0]);
    }

    #[test]
    fn interleaved_lists() {
        // a = 10, 8, 6, ...; b = 9, 7, 5, ...
        let a: Vec<Hotness> = (0..50).map(|i| h(1000 - 2 * i, i)).collect();
        let b: Vec<Hotness> = (0..50).map(|i| h(999 - 2 * i, 100 + i)).collect();
        assert_eq!(fusecache(&[&a, &b], 10), vec![5, 5]);
    }

    #[test]
    fn agrees_with_baselines_randomized() {
        let mut rng = DetRng::seed(42);
        for trial in 0..200 {
            let k = 1 + rng.next_below(8) as usize;
            let lists = random_lists(&mut rng, k, 60);
            let total: usize = lists.iter().map(|l| l.len()).sum();
            let n = rng.next_below(total as u64 + 2) as usize;
            let refs = as_refs(&lists);
            let fc = fusecache(&refs, n);
            let km = kway_top_n(&refs, n);
            assert_eq!(fc, km, "trial {trial}: fusecache != kway (n={n})");
            check_optimal(&lists, &fc, n);
            assert_eq!(fc.iter().sum::<usize>(), n.min(total));
        }
    }

    #[test]
    fn large_skewed_instance() {
        // One big retained list (n items) + small incoming lists, the
        // paper's actual shape: s_i < n for i < k.
        let mut rng = DetRng::seed(7);
        let mut key = 0u64;
        let mut mk = |len: usize| -> Vec<Hotness> {
            let mut l: Vec<Hotness> = (0..len)
                .map(|_| {
                    key += 1;
                    h(rng.next_below(1_000_000), key)
                })
                .collect();
            l.sort_unstable_by(|a, b| b.cmp(a));
            l
        };
        let retained = mk(10_000);
        let in1 = mk(900);
        let in2 = mk(1_200);
        let in3 = mk(400);
        let lists = vec![retained, in1, in2, in3];
        let refs = as_refs(&lists);
        let n = 10_000;
        let fc = fusecache(&refs, n);
        assert_eq!(fc, sort_merge_top_n(&refs, n));
        assert_eq!(fc.iter().sum::<usize>(), n);
    }

    #[test]
    fn instrumented_rounds_scale_logarithmically() {
        let mut key = 0u64;
        let mk = |len: usize, key: &mut u64| -> Vec<Hotness> {
            let l: Vec<Hotness> = (0..len)
                .map(|i| {
                    *key += 1;
                    h((len - i) as u64, *key)
                })
                .collect();
            l
        };
        let small: Vec<Vec<Hotness>> = (0..4).map(|_| mk(1 << 8, &mut key)).collect();
        let large: Vec<Vec<Hotness>> = (0..4).map(|_| mk(1 << 14, &mut key)).collect();
        let (_, s_small) = fusecache_instrumented(&as_refs(&small), 1 << 8);
        let (_, s_large) = fusecache_instrumented(&as_refs(&large), 1 << 14);
        // 64x more items should cost far fewer than 64x the rounds.
        assert!(
            s_large.rounds < s_small.rounds * 8,
            "rounds {} vs {}",
            s_large.rounds,
            s_small.rounds
        );
    }

    #[test]
    fn kway_handles_short_lists() {
        let a = vec![h(5, 1)];
        let b = vec![h(9, 2), h(8, 3), h(7, 4)];
        assert_eq!(kway_top_n(&[&a, &b], 3), vec![0, 3]);
        assert_eq!(kway_top_n(&[&a, &b], 10), vec![1, 3]);
    }

    #[test]
    fn sort_merge_ties_broken_consistently() {
        // Identical timestamps, distinct keys: tiebreak decides, and all
        // three algorithms agree because the order is total.
        let mut a = vec![h(5, 1), h(5, 2)];
        let mut b = vec![h(5, 3), h(5, 4)];
        a.sort_unstable_by(|x, y| y.cmp(x));
        b.sort_unstable_by(|x, y| y.cmp(x));
        let refs: Vec<&[Hotness]> = vec![&a, &b];
        let n = 2;
        assert_eq!(fusecache(&refs, n), sort_merge_top_n(&refs, n));
        assert_eq!(fusecache(&refs, n), kway_top_n(&refs, n));
    }
}
