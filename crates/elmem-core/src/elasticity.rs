//! End-to-end elastic experiments: the driver that ties the workload, the
//! serving stack (`elmem-cluster`) and the scaling control plane together.
//!
//! This is the programmatic equivalent of the paper's testbed runs
//! (Figs. 2, 6, 8): a request stream is served while the AutoScaler (or a
//! scheduled script) triggers scaling actions executed under a chosen
//! [`MigrationPolicy`]; the result is the per-second hit-rate / p95-RT
//! timeline plus a log of scaling events with their migration reports.

use elmem_cluster::{Cluster, ClusterConfig};
use elmem_sim::fault::{FaultAction, FaultInjector, FaultPlan};
use elmem_sim::EventQueue;
use elmem_util::stats::{TimelinePoint, TimelineRecorder};
use elmem_util::telemetry::EventKind;
use elmem_util::{DetRng, NodeId, SimTime, TelemetryConfig};
use elmem_workload::{RequestGenerator, WebRequest, WorkloadConfig};

use crate::autoscaler::{AutoScaler, AutoScalerConfig, ScalingHint};
use crate::healing::{
    ConfirmedDeath, FailureDetector, HealingConfig, NodeState, ProbeOutcome, RecoveryEvent,
};
use crate::journal::{MasterPlan, MigrationJournal};
use crate::master::{Admission, DeferredKind, JobKind, Master};
use crate::migration::{MigrationCosts, MigrationReport, Supervision};
use crate::policies::MigrationPolicy;
use crate::predictive::{PredictiveAutoScaler, PredictiveConfig};
use crate::telemetry::{
    probe_class, record_migration_events, SeriesRecorder, TelemetryDump, TierSnapshot,
};

/// A scripted scaling action (used when experiments pin the scaling moment
/// instead of running the AutoScaler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Remove `count` nodes.
    In {
        /// Number of nodes to retire.
        count: u32,
    },
    /// Add `count` nodes.
    Out {
        /// Number of nodes to add.
        count: u32,
    },
}

/// One scaling event as executed.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingEvent {
    /// When the decision was made (migration starts here).
    pub decided_at: SimTime,
    /// When the membership actually flipped.
    pub committed_at: SimTime,
    /// Member count before.
    pub from_nodes: u32,
    /// Member count after.
    pub to_nodes: u32,
    /// Nodes retired (scale-in) or added (scale-out).
    pub nodes: Vec<NodeId>,
    /// The migration report, when the policy migrates.
    pub report: Option<MigrationReport>,
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Deployment parameters.
    pub cluster: ClusterConfig,
    /// Workload parameters.
    pub workload: WorkloadConfig,
    /// How scaling actions move data (Q3).
    pub policy: MigrationPolicy,
    /// Q1 automation; `None` runs only the scripted actions.
    pub autoscaler: Option<ScalerConfig>,
    /// Scripted actions (applied at the given times), in addition to or
    /// instead of the AutoScaler.
    pub scheduled: Vec<(SimTime, ScaleAction)>,
    /// Pre-fill the caches with the top-`prefill_top_ranks` most popular
    /// keys before the run (0 = start cold).
    pub prefill_top_ranks: u64,
    /// Migration cost model.
    pub costs: MigrationCosts,
    /// Faults to inject (crashes, link degradation, shipment drops);
    /// [`FaultPlan::new`] injects nothing.
    pub faults: FaultPlan,
    /// Self-healing: heartbeat failure detection plus automatic recovery.
    /// `None` leaves crashed nodes in the ring (every lookup against them
    /// pays the client timeout until the breaker opens).
    pub healing: Option<HealingConfig>,
    /// Scheduled Master crashes plus the restart/recovery policy applied
    /// to journaled scalings (DESIGN.md §13). [`MasterPlan::default`]
    /// never crashes.
    pub master: MasterPlan,
    /// Master seed.
    pub seed: u64,
}

/// Experiment output.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Per-second hit rate and tail RT (the paper's Fig. 6 panels).
    pub timeline: Vec<TimelinePoint>,
    /// Scaling events in execution order.
    pub events: Vec<ScalingEvent>,
    /// Member count at the end.
    pub final_members: u32,
    /// Members still crashed-but-in-the-ring at the end (0 whenever the
    /// self-healing loop ran and converged).
    pub final_crashed_members: u32,
    /// Web requests served.
    pub total_requests: u64,
    /// Recoveries executed by the self-healing loop, in confirmation order.
    pub recoveries: Vec<RecoveryEvent>,
    /// Lookups that paid the full client timeout against an unreachable
    /// node.
    pub client_timeouts: u64,
    /// Lookups that failed over to the database immediately on an open
    /// breaker.
    pub fast_failovers: u64,
    /// Circuit-breaker state transitions across all nodes.
    pub breaker_transitions: u64,
    /// Heartbeat probes the failure detector sent (0 without healing).
    pub probes_sent: u64,
    /// Failure-detector state transitions (flap metric; 0 without healing).
    pub detector_transitions: u64,
    /// Distinct keys the autoscaler's stack-distance engine still tracked
    /// when the run ended (0 without an autoscaler). The adaptive engine
    /// caps this at the exact→MIMIR switch threshold (MIMIR evicts as its
    /// buckets retire); the preserved legacy engine grows it with every
    /// distinct key ever observed — `tab_scale`'s bounded-memory
    /// assertion compares the two.
    pub profiler_tracked_keys: usize,
    /// The run's full telemetry story: event trace, latency histograms,
    /// counter time series, per-node rows. Byte-identical (via
    /// [`TelemetryDump::to_json`]) across same-seed runs.
    pub telemetry: TelemetryDump,
    /// The Master's migration journal at the end of the run: every durable
    /// record the journaled scalings wrote, in append order. Empty when no
    /// scaling migrated under the journal.
    pub journal: MigrationJournal,
}

impl ExperimentResult {
    /// The second of the first membership flip, if any (the reference point
    /// for post-scaling degradation summaries).
    pub fn first_commit_second(&self) -> Option<u64> {
        self.events.iter().map(|e| e.committed_at.as_secs()).min()
    }
}

/// Which Q1 (when/how much) module drives the run — §III-B's "pluggable
/// module".
#[derive(Debug, Clone)]
pub enum ScalerConfig {
    /// The paper's reactive Eq. (1) + stack-distance sizing.
    Reactive(AutoScalerConfig),
    /// A Holt linear-trend forecaster wrapped around the reactive sizing.
    Predictive(PredictiveConfig),
}

impl From<AutoScalerConfig> for ScalerConfig {
    fn from(cfg: AutoScalerConfig) -> Self {
        ScalerConfig::Reactive(cfg)
    }
}

impl From<PredictiveConfig> for ScalerConfig {
    fn from(cfg: PredictiveConfig) -> Self {
        ScalerConfig::Predictive(cfg)
    }
}

#[derive(Debug)]
enum ScalerInstance {
    Reactive(AutoScaler),
    Predictive(PredictiveAutoScaler),
}

impl ScalerInstance {
    fn new(config: &ScalerConfig) -> Self {
        match config {
            ScalerConfig::Reactive(c) => ScalerInstance::Reactive(AutoScaler::new(c.clone())),
            ScalerConfig::Predictive(c) => {
                ScalerInstance::Predictive(PredictiveAutoScaler::new(c.clone()))
            }
        }
    }

    fn observe(&mut self, key: elmem_util::KeyId, footprint: u64) {
        match self {
            ScalerInstance::Reactive(a) => a.observe(key, footprint),
            ScalerInstance::Predictive(p) => p.observe(key, footprint),
        }
    }

    fn epoch_elapsed(&self, now: SimTime) -> bool {
        match self {
            ScalerInstance::Reactive(a) => a.epoch_elapsed(now),
            ScalerInstance::Predictive(p) => p.epoch_elapsed(now),
        }
    }

    fn decide(&mut self, now: SimTime, rate: f64, current: u32) -> Option<ScalingHint> {
        match self {
            ScalerInstance::Reactive(a) => a.decide(now, rate, current),
            ScalerInstance::Predictive(p) => p.decide(now, rate, current),
        }
    }

    fn profiler_tracked_keys(&self) -> usize {
        match self {
            ScalerInstance::Reactive(a) => a.profiler_tracked_keys(),
            ScalerInstance::Predictive(p) => p.profiler_tracked_keys(),
        }
    }
}

/// An event on the driver's control queue: a deferred Master action, a
/// heartbeat round of the failure detector, or a scaling the admission
/// check deferred behind a conflicting in-flight job (retried when that
/// job's commit window closes).
#[derive(Debug, Clone)]
enum ControlEvent {
    Deferred(DeferredKind),
    Heartbeat,
    RetryScaling(ScaleAction),
}

/// Runs any recovery owed for confirmed deaths, unless the Master is mid
/// scaling — a recovery never races an in-flight supervised migration; it
/// waits for the next control tick after `busy_until`. (A crash *inside*
/// such a migration is already handled by the migration's own abort path.)
#[allow(clippy::too_many_arguments)]
fn try_recover(
    cluster: &mut Cluster,
    master: &mut Master,
    healing: &HealingConfig,
    pending: &mut Vec<ConfirmedDeath>,
    now: SimTime,
    control: &mut EventQueue<ControlEvent>,
    recoveries: &mut Vec<RecoveryEvent>,
    injector: &mut FaultInjector,
    bytes_migrated: &mut u64,
) {
    if pending.is_empty() || !master.is_idle(now) {
        return;
    }
    let deaths = std::mem::take(pending);
    let dead: Vec<NodeId> = deaths.iter().map(|d| d.node).collect();
    let members_before = cluster.tier.membership().len() as u32;
    let mut supervision = Supervision::with_faults(injector);
    let orch = match master.recover_supervised(cluster, &dead, now, healing, &mut supervision) {
        Ok(orch) => orch,
        // Recovery could not admit replacements (e.g. nothing left to
        // migrate from); the eviction still happened, record it as such.
        Err(_) => crate::master::Orchestration {
            nodes: vec![],
            report: None,
            deferred: vec![],
            committed_at: now,
        },
    };
    // The eviction flips the membership inline; replacements join later
    // via deferred commits (traced when they land).
    let members_now = cluster.tier.membership().len() as u32;
    if members_now != members_before {
        cluster.telemetry_mut().trace.record(
            now,
            None,
            EventKind::MembershipCommitted {
                members: members_now,
            },
        );
    }
    if let Some(report) = &orch.report {
        *bytes_migrated += report.bytes_migrated.as_u64();
        record_migration_events(&mut cluster.telemetry_mut().trace, report);
    }
    for deferred in &orch.deferred {
        control.schedule(deferred.at, ControlEvent::Deferred(deferred.kind.clone()));
    }
    // One replacement per death, paired in order (empty for evict-only).
    for (i, death) in deaths.iter().enumerate() {
        let replacement = orch.nodes.get(i).copied();
        let warmed = healing.warmup && replacement.is_some();
        cluster.telemetry_mut().trace.record(
            orch.committed_at,
            Some(death.node),
            EventKind::RecoveryCompleted {
                replacement,
                warmed,
            },
        );
        recoveries.push(RecoveryEvent {
            node: death.node,
            crashed_at: injector.crash_time(death.node),
            suspected_at: death.suspected_at,
            confirmed_at: death.confirmed_at,
            replacement,
            recovered_at: orch.committed_at,
            warmed,
        });
    }
}

/// Traces one heartbeat round's observations: every non-ack probe outcome,
/// plus the suspicion/death edges it caused.
fn record_probe_observations(
    cluster: &mut Cluster,
    at: SimTime,
    observations: &[crate::healing::ProbeObservation],
) {
    for obs in observations {
        let trace = &mut cluster.telemetry_mut().trace;
        if obs.outcome != ProbeOutcome::Ack {
            trace.record(
                at,
                Some(obs.node),
                EventKind::Probe {
                    outcome: probe_class(obs.outcome),
                },
            );
        }
        if obs.before != obs.after {
            match obs.after {
                NodeState::Suspected => trace.record(at, Some(obs.node), EventKind::NodeSuspected),
                NodeState::ConfirmedDead => {
                    trace.record(at, Some(obs.node), EventKind::NodeConfirmedDead)
                }
                NodeState::Alive => {}
            }
        }
    }
}

/// Runs one experiment to completion. Deterministic in `config.seed`.
/// Telemetry runs with [`TelemetryConfig::default`] (event tracing on,
/// per-request events off, 1 s series windows).
pub fn run_experiment(config: ExperimentConfig) -> ExperimentResult {
    run_experiment_with_telemetry(config, TelemetryConfig::default())
}

/// [`run_experiment`] with explicit telemetry knobs (trace capacity,
/// per-request events, series window).
pub fn run_experiment_with_telemetry(
    config: ExperimentConfig,
    tcfg: TelemetryConfig,
) -> ExperimentResult {
    run_experiment_capture(config, tcfg).0
}

/// [`run_experiment_with_telemetry`], additionally returning the final
/// [`Cluster`] so callers can audit end-of-run state — the chaos engine's
/// post-run invariant checker inspects every surviving store directly
/// instead of trusting the aggregated telemetry.
pub fn run_experiment_capture(
    config: ExperimentConfig,
    tcfg: TelemetryConfig,
) -> (ExperimentResult, Cluster) {
    let rng = DetRng::seed(config.seed);
    let mut cluster = Cluster::new(
        config.cluster.clone(),
        config.workload.keyspace.clone(),
        rng.split("cluster"),
    );
    cluster.set_telemetry_config(&tcfg);
    let mut gen = RequestGenerator::new(config.workload.clone(), rng.split("workload"));
    let mut master = Master::new(config.policy, config.costs, config.seed);

    // Pre-fill hottest keys, coldest rank first so rank 1 ends up hottest.
    if config.prefill_top_ranks > 0 {
        let ranks = config.prefill_top_ranks.min(gen.config().keyspace.n_keys());
        let zipf = gen.zipf().clone();
        cluster.prefill(
            (1..=ranks).rev().map(|r| zipf.key_for_rank(r)),
            SimTime::ZERO,
        );
    }

    let mut autoscaler = config.autoscaler.as_ref().map(ScalerInstance::new);
    let mut injector = FaultInjector::new(config.faults.clone(), rng.split("faults"));
    let mut control: EventQueue<ControlEvent> = EventQueue::new();
    let mut scheduled = config.scheduled.clone();
    scheduled.sort_by_key(|(t, _)| *t);
    let mut scheduled_idx = 0usize;

    let mut detector = config
        .healing
        .as_ref()
        .map(|h| FailureDetector::new(h.detector, rng.split("heartbeat")));
    if let Some(det) = detector.as_mut() {
        control.schedule(det.next_round_after(SimTime::ZERO), ControlEvent::Heartbeat);
    }
    let mut pending_dead: Vec<ConfirmedDeath> = Vec::new();
    let mut recoveries: Vec<RecoveryEvent> = Vec::new();

    let mut recorder = TimelineRecorder::new();
    let mut series = SeriesRecorder::new(tcfg.sample_every);
    let mut bytes_migrated = 0u64;
    let mut events: Vec<ScalingEvent> = Vec::new();
    let mut lookups_since = 0u64;
    let mut rate_anchor = SimTime::ZERO;
    let mut last_now = SimTime::ZERO;

    // One scratch request reused across the whole run: the generator
    // refills its key buffer in place instead of allocating a fresh
    // multi-get vector per request (the loop below runs hundreds of
    // thousands of times per experiment).
    let mut req = WebRequest {
        arrival: SimTime::ZERO,
        keys: Vec::with_capacity(config.workload.items_per_request),
    };
    while gen.next_request_into(&mut req) {
        let now = req.arrival;
        last_now = now;

        // 1. Advance the control plane to `now`: injected faults, deferred
        // Master actions, and heartbeat rounds interleave in time order.
        // A fault due at the same instant as a control event lands first —
        // a crash beats the commit (or the probe) racing it.
        loop {
            let fault_t = injector.peek_time().filter(|&t| t <= now);
            let control_t = control.peek_time().filter(|&t| t <= now);
            match (fault_t, control_t) {
                (None, None) => break,
                (Some(tf), tc) if tc.is_none_or(|tc| tf <= tc) => {
                    for (_, action) in injector.due(tf) {
                        apply_fault(&mut cluster, &action, tf);
                    }
                }
                _ => {
                    // The peek above guarantees an event is due; an empty
                    // queue here just ends the control drain (no panic on
                    // a driver-invariant slip).
                    let Some((at, ev)) = control.pop() else { break };
                    match ev {
                        ControlEvent::Deferred(kind) => {
                            apply_deferred(&mut cluster, &kind, at);
                        }
                        ControlEvent::RetryScaling(action) => {
                            trigger(
                                &mut cluster,
                                &mut master,
                                &config.master,
                                action,
                                at,
                                &mut control,
                                &mut events,
                                &mut injector,
                                &mut bytes_migrated,
                            );
                        }
                        ControlEvent::Heartbeat => {
                            // Heartbeats are only ever scheduled alongside a
                            // detector + healing config; a stray one is
                            // dropped rather than unwrapped into a panic.
                            let (Some(det), Some(healing)) =
                                (detector.as_mut(), config.healing.as_ref())
                            else {
                                continue;
                            };
                            let (confirmed, observed) = det.probe_round_observed(&cluster, at);
                            pending_dead.extend(confirmed);
                            record_probe_observations(&mut cluster, at, &observed);
                            control.schedule(det.next_round_after(at), ControlEvent::Heartbeat);
                            try_recover(
                                &mut cluster,
                                &mut master,
                                healing,
                                &mut pending_dead,
                                at,
                                &mut control,
                                &mut recoveries,
                                &mut injector,
                                &mut bytes_migrated,
                            );
                        }
                    }
                }
            }
        }

        // 2. Scripted actions.
        while scheduled_idx < scheduled.len() && scheduled[scheduled_idx].0 <= now {
            let (at, action) = scheduled[scheduled_idx];
            scheduled_idx += 1;
            trigger(
                &mut cluster,
                &mut master,
                &config.master,
                action,
                at.max(now),
                &mut control,
                &mut events,
                &mut injector,
                &mut bytes_migrated,
            );
        }

        // 3. AutoScaler decision (when idle and an epoch has elapsed).
        if let Some(scaler) = autoscaler.as_mut() {
            if scaler.epoch_elapsed(now) && master.is_idle(now) {
                let elapsed = now.saturating_sub(rate_anchor).as_secs_f64();
                let rate = if elapsed > 0.0 {
                    lookups_since as f64 / elapsed
                } else {
                    0.0
                };
                let members = cluster.tier.membership().len() as u32;
                if let Some(hint) = scaler.decide(now, rate, members) {
                    let action = if hint.target_nodes < members {
                        ScaleAction::In {
                            count: hint.scale_in_count(),
                        }
                    } else {
                        ScaleAction::Out {
                            count: hint.scale_out_count(),
                        }
                    };
                    trigger(
                        &mut cluster,
                        &mut master,
                        &config.master,
                        action,
                        now,
                        &mut control,
                        &mut events,
                        &mut injector,
                        &mut bytes_migrated,
                    );
                }
                lookups_since = 0;
                rate_anchor = now;
            }
        }

        // 4. Serve the request.
        let snap = TierSnapshot::take(&cluster, bytes_migrated);
        series.advance(now, &snap);
        let outcome = cluster.handle(&req);
        series.record_request(outcome.hits, outcome.lookups);
        if let Some(scaler) = autoscaler.as_mut() {
            for &key in &req.keys {
                let footprint =
                    elmem_store::item::item_footprint(cluster.keyspace().value_size(key));
                scaler.observe(key, footprint);
            }
        }
        lookups_since += outcome.lookups;
        recorder.record_request(
            outcome.completion,
            outcome.rt_ms(),
            outcome.hits,
            outcome.lookups,
        );
    }

    // Drain remaining control events so membership reflects every decision
    // (faults scheduled before the last commit must land first). With
    // healing, the detector keeps probing for a bounded settle window past
    // the last request, so a crash near the end is still confirmed and
    // recovered rather than left as a corpse in the final membership.
    let settle_until = match &detector {
        Some(det) => {
            let d = det.config();
            last_now + (d.probe_interval + d.jitter) * u64::from(d.suspicion_threshold + 2)
        }
        None => last_now,
    };
    let mut drain_end = last_now;
    while let Some((at, ev)) = control.pop() {
        drain_end = drain_end.max(at);
        for (_, action) in injector.due(at) {
            apply_fault(&mut cluster, &action, at);
        }
        match ev {
            ControlEvent::Deferred(kind) => apply_deferred(&mut cluster, &kind, at),
            ControlEvent::RetryScaling(action) => trigger(
                &mut cluster,
                &mut master,
                &config.master,
                action,
                at,
                &mut control,
                &mut events,
                &mut injector,
                &mut bytes_migrated,
            ),
            ControlEvent::Heartbeat if at <= settle_until => {
                let (Some(det), Some(healing)) = (detector.as_mut(), config.healing.as_ref())
                else {
                    continue;
                };
                let (confirmed, observed) = det.probe_round_observed(&cluster, at);
                pending_dead.extend(confirmed);
                record_probe_observations(&mut cluster, at, &observed);
                control.schedule(det.next_round_after(at), ControlEvent::Heartbeat);
                try_recover(
                    &mut cluster,
                    &mut master,
                    healing,
                    &mut pending_dead,
                    at,
                    &mut control,
                    &mut recoveries,
                    &mut injector,
                    &mut bytes_migrated,
                );
            }
            ControlEvent::Heartbeat => {}
        }
    }
    if let Some(healing) = config.healing.as_ref() {
        // Deaths confirmed but still queued behind a busy Master when the
        // run ended: finish the recovery so the final membership is clean.
        let at = master.busy_until().max(drain_end);
        drain_end = drain_end.max(at);
        try_recover(
            &mut cluster,
            &mut master,
            healing,
            &mut pending_dead,
            at,
            &mut control,
            &mut recoveries,
            &mut injector,
            &mut bytes_migrated,
        );
        while let Some((at, ev)) = control.pop() {
            if let ControlEvent::Deferred(kind) = ev {
                drain_end = drain_end.max(at);
                apply_deferred(&mut cluster, &kind, at);
            }
        }
    }

    let final_crashed_members = cluster
        .tier
        .membership()
        .members()
        .iter()
        .filter(|&&id| {
            cluster
                .tier
                .node(id)
                .map(|n| n.is_crashed())
                .unwrap_or(false)
        })
        .count() as u32;

    let final_snap = TierSnapshot::take(&cluster, bytes_migrated);
    let series = series.finish(drain_end.max(last_now), &final_snap);
    let telemetry = TelemetryDump::assemble(config.seed, &tcfg, &cluster, series);

    let result = ExperimentResult {
        timeline: recorder.finish(),
        events,
        final_members: cluster.tier.membership().len() as u32,
        final_crashed_members,
        total_requests: gen.generated(),
        recoveries,
        client_timeouts: cluster.client_timeouts(),
        fast_failovers: cluster.fast_failovers(),
        breaker_transitions: cluster.breaker_transitions(),
        probes_sent: detector.as_ref().map_or(0, |d| d.probes_sent()),
        detector_transitions: detector.as_ref().map_or(0, |d| d.transitions()),
        profiler_tracked_keys: autoscaler.as_ref().map_or(0, |s| s.profiler_tracked_keys()),
        telemetry,
        journal: master.journal().clone(),
    };
    (result, cluster)
}

/// Applies one deferred Master action and traces the membership flip it
/// causes (if any).
fn apply_deferred(cluster: &mut Cluster, kind: &DeferredKind, at: SimTime) {
    let before = cluster.tier.membership().len() as u32;
    Master::apply(cluster, kind);
    let after = cluster.tier.membership().len() as u32;
    if after != before {
        cluster.telemetry_mut().trace.record(
            at,
            None,
            EventKind::MembershipCommitted { members: after },
        );
    }
}

/// Applies one fault action to the serving stack, tracing faults that
/// landed. Actions against a node that has already left the tier are
/// ignored (and not traced).
fn apply_fault(cluster: &mut Cluster, action: &FaultAction, at: SimTime) {
    match *action {
        FaultAction::Crash(n) => {
            if cluster.tier.crash(n).is_ok() {
                cluster
                    .telemetry_mut()
                    .trace
                    .record(at, Some(n), EventKind::NodeCrashed);
            }
        }
        FaultAction::SlowLink(n, factor) => {
            if let Ok(node) = cluster.tier.node_mut(n) {
                node.link.apply_slowdown(factor);
                cluster
                    .telemetry_mut()
                    .trace
                    .record(at, Some(n), EventKind::LinkDegraded);
            }
        }
        FaultAction::RestoreLink(n) => {
            if let Ok(node) = cluster.tier.node_mut(n) {
                node.link.restore_bandwidth();
                cluster
                    .telemetry_mut()
                    .trace
                    .record(at, Some(n), EventKind::LinkRestored);
            }
        }
        FaultAction::PartitionLink(n, until) => {
            if let Ok(node) = cluster.tier.node_mut(n) {
                node.link.partition_until(until);
                cluster
                    .telemetry_mut()
                    .trace
                    .record(at, Some(n), EventKind::LinkPartitioned);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn trigger(
    cluster: &mut Cluster,
    master: &mut Master,
    master_plan: &MasterPlan,
    action: ScaleAction,
    now: SimTime,
    control: &mut EventQueue<ControlEvent>,
    events: &mut Vec<ScalingEvent>,
    injector: &mut FaultInjector,
    bytes_migrated: &mut u64,
) {
    // Per-job admission (DESIGN.md §13): a fill may overlap a drain, but a
    // job conflicting with one still in flight is deferred — re-enqueued
    // for when the conflicting commit window closes — not dropped.
    let kind = match action {
        ScaleAction::In { .. } => JobKind::ScaleIn,
        ScaleAction::Out { .. } => JobKind::ScaleOut,
    };
    if let Admission::Deferred { until, .. } = master.admit(kind, now) {
        cluster
            .telemetry_mut()
            .trace
            .record(now, None, EventKind::ScalingDeferred { until });
        control.schedule(until, ControlEvent::RetryScaling(action));
        return;
    }
    let members = cluster.tier.membership().len() as u32;
    let mut supervision = Supervision::with_faults(injector);
    supervision.master = master_plan.clone();
    let orch = match action {
        ScaleAction::In { count } => {
            let count = count.min(members.saturating_sub(1));
            if count == 0 {
                return;
            }
            match master.scale_in_supervised(cluster, count, now, &mut supervision) {
                Ok(orch) => orch,
                Err(_) => return,
            }
        }
        ScaleAction::Out { count } => {
            if count == 0 {
                return;
            }
            match master.scale_out_supervised(cluster, count, now, &mut supervision) {
                Ok(orch) => orch,
                Err(_) => return,
            }
        }
    };
    for deferred in &orch.deferred {
        control.schedule(deferred.at, ControlEvent::Deferred(deferred.kind.clone()));
    }
    // Member count after every deferred action lands. Inline policies have
    // already flipped the membership; deferred removals/evictions only
    // count for nodes still in it (an evicted scale-out node never joined).
    let membership = cluster.tier.membership().members().to_vec();
    let delta: i64 = orch
        .deferred
        .iter()
        .map(|d| match &d.kind {
            DeferredKind::CommitRemove(v) | DeferredKind::EvictCrashed(v) => {
                -(v.iter().filter(|id| membership.contains(id)).count() as i64)
            }
            DeferredKind::CommitAdd(v) => {
                v.iter().filter(|id| !membership.contains(id)).count() as i64
            }
            DeferredKind::DiscardSecondary(_) => 0,
        })
        .sum();
    let to_nodes = (membership.len() as i64 + delta).max(1) as u32;
    {
        let trace = &mut cluster.telemetry_mut().trace;
        trace.record(
            now,
            None,
            EventKind::ScalingDecided {
                from_nodes: members,
                to_nodes,
            },
        );
        if let Some(report) = &orch.report {
            *bytes_migrated += report.bytes_migrated.as_u64();
            record_migration_events(trace, report);
        }
        // Inline policies flip membership inside the scale call itself;
        // deferred commits are traced when they land.
        if delta == 0 && membership.len() as u32 != members {
            trace.record(
                orch.committed_at,
                None,
                EventKind::MembershipCommitted {
                    members: membership.len() as u32,
                },
            );
        }
    }
    events.push(ScalingEvent {
        decided_at: now,
        committed_at: orch.committed_at,
        from_nodes: members,
        to_nodes,
        nodes: orch.nodes,
        report: orch.report,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmem_workload::{Keyspace, TraceKind};

    fn base_config(policy: MigrationPolicy) -> ExperimentConfig {
        ExperimentConfig {
            cluster: ClusterConfig::small_test(),
            workload: WorkloadConfig {
                keyspace: Keyspace::new(20_000, 1),
                zipf_exponent: 1.0,
                items_per_request: 3,
                peak_rate: 300.0,
                trace: elmem_workload::DemandTrace::new(vec![1.0; 7], SimTime::from_secs(10)),
            },
            policy,
            autoscaler: None,
            scheduled: vec![(SimTime::from_secs(30), ScaleAction::In { count: 1 })],
            prefill_top_ranks: 10_000,
            costs: MigrationCosts::default(),
            faults: FaultPlan::new(),
            healing: None,
            master: MasterPlan::default(),
            seed: 7,
        }
    }

    #[test]
    fn baseline_commits_immediately() {
        let result = run_experiment(base_config(MigrationPolicy::Baseline));
        assert_eq!(result.events.len(), 1);
        let ev = &result.events[0];
        assert_eq!(ev.decided_at, ev.committed_at);
        assert!(ev.report.is_none());
        assert_eq!(result.final_members, 3);
        assert!(result.total_requests > 1000);
    }

    #[test]
    fn elmem_commits_after_migration() {
        let result = run_experiment(base_config(MigrationPolicy::elmem()));
        assert_eq!(result.events.len(), 1);
        let ev = &result.events[0];
        assert!(ev.committed_at > ev.decided_at);
        let report = ev.report.as_ref().expect("elmem migrates");
        assert!(report.items_migrated > 0);
        assert_eq!(result.final_members, 3);
    }

    #[test]
    fn elmem_degrades_less_than_baseline() {
        let base = run_experiment(base_config(MigrationPolicy::Baseline));
        let elmem = run_experiment(base_config(MigrationPolicy::elmem()));
        let commit_b = base.events[0].committed_at.as_secs();
        let commit_e = elmem.events[0].committed_at.as_secs();
        let post_miss = |tl: &[TimelinePoint], s: u64| -> f64 {
            let pts: Vec<&TimelinePoint> = tl
                .iter()
                .filter(|p| p.second >= s && p.requests > 0)
                .collect();
            1.0 - pts.iter().map(|p| p.hit_rate).sum::<f64>() / pts.len().max(1) as f64
        };
        let miss_b = post_miss(&base.timeline, commit_b);
        let miss_e = post_miss(&elmem.timeline, commit_e);
        assert!(
            miss_e < miss_b,
            "elmem post-scaling miss {miss_e} should beat baseline {miss_b}"
        );
    }

    #[test]
    fn naive_runs_and_commits() {
        let result = run_experiment(base_config(MigrationPolicy::Naive));
        assert_eq!(result.events.len(), 1);
        assert!(result.events[0].report.is_some());
        assert_eq!(result.final_members, 3);
    }

    #[test]
    fn cachescale_discards_secondary() {
        let mut cfg = base_config(MigrationPolicy::CacheScale {
            window: SimTime::from_secs(10),
        });
        cfg.scheduled = vec![(SimTime::from_secs(20), ScaleAction::In { count: 1 })];
        let result = run_experiment(cfg);
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.final_members, 3);
    }

    #[test]
    fn scale_out_grows_membership() {
        let mut cfg = base_config(MigrationPolicy::elmem());
        cfg.scheduled = vec![(SimTime::from_secs(30), ScaleAction::Out { count: 2 })];
        let result = run_experiment(cfg);
        assert_eq!(result.final_members, 6);
        assert!(result.events[0].report.is_some());
    }

    #[test]
    fn fill_overlaps_in_flight_drain() {
        let mut cfg = base_config(MigrationPolicy::elmem());
        cfg.scheduled = vec![
            (SimTime::from_secs(30), ScaleAction::In { count: 1 }),
            (SimTime::from_secs(30), ScaleAction::Out { count: 1 }),
        ];
        let result = run_experiment(cfg);
        // Both admitted at the same instant: a fill does not conflict with
        // a drain, so the scale-out starts while the scale-in's commit
        // window is still open.
        assert_eq!(result.events.len(), 2);
        assert_eq!(result.events[0].decided_at, result.events[1].decided_at);
        assert!(!result.telemetry.to_json().contains("scaling_deferred"));
        assert_eq!(result.final_members, 4);
    }

    #[test]
    fn conflicting_drains_defer_then_retry() {
        let mut cfg = base_config(MigrationPolicy::elmem());
        cfg.scheduled = vec![
            (SimTime::from_secs(30), ScaleAction::In { count: 1 }),
            (SimTime::from_secs(30), ScaleAction::In { count: 1 }),
        ];
        let result = run_experiment(cfg);
        // The second drain conflicts with the first; it is deferred to the
        // first's commit and retried there, not dropped.
        assert_eq!(result.events.len(), 2);
        assert!(
            result.events[1].decided_at >= result.events[0].committed_at,
            "deferred drain must wait out the first's commit window"
        );
        assert!(result.telemetry.to_json().contains("scaling_deferred"));
        assert_eq!(result.final_members, 2);
    }

    #[test]
    fn master_crash_mid_migration_resumes_and_journals() {
        let mut cfg = base_config(MigrationPolicy::elmem());
        cfg.master.crashes = vec![SimTime::from_secs(30) + SimTime::from_millis(200)];
        let result = run_experiment(cfg);
        assert_eq!(result.events.len(), 1);
        let report = result.events[0].report.as_ref().expect("elmem migrates");
        assert_eq!(report.resumes.len(), 1, "the crash interrupted the run");
        assert!(report.items_migrated > 0);
        assert_eq!(result.final_members, 3);
        let labels: Vec<&str> = result
            .journal
            .entries()
            .iter()
            .map(|e| e.record.label())
            .collect();
        assert!(labels.contains(&"resumed"));
        assert_eq!(labels.last(), Some(&"committed"));
        assert!(result.telemetry.to_json().contains("migration_resumed"));
    }

    #[test]
    fn deterministic_runs() {
        let a = run_experiment(base_config(MigrationPolicy::elmem()));
        let b = run_experiment(base_config(MigrationPolicy::elmem()));
        assert_eq!(a.timeline, b.timeline);
        assert_eq!(a.total_requests, b.total_requests);
        assert_eq!(a.events.len(), b.events.len());
    }

    #[test]
    fn autoscaler_scales_in_on_demand_drop() {
        let mut cfg = base_config(MigrationPolicy::Baseline);
        cfg.scheduled = vec![];
        // Demand drops to near zero halfway.
        cfg.workload.trace = elmem_workload::DemandTrace::new(
            vec![1.0, 1.0, 1.0, 0.05, 0.05, 0.05, 0.05],
            SimTime::from_secs(30),
        );
        cfg.workload.peak_rate = 400.0;
        cfg.autoscaler = Some({
            let mut a = AutoScalerConfig::new(cfg.cluster.r_db(), cfg.cluster.node_memory);
            a.epoch = SimTime::from_secs(30);
            a.max_nodes = 4;
            a.min_observations = 5_000;
            a.into()
        });
        let result = run_experiment(cfg);
        assert!(
            !result.events.is_empty(),
            "autoscaler should have scaled in"
        );
        assert!(result.final_members < 4);
    }

    #[test]
    fn trace_kinds_run_end_to_end() {
        // Smoke: a short slice of a real trace shape with the autoscaler.
        let mut cfg = base_config(MigrationPolicy::elmem());
        cfg.scheduled = vec![];
        cfg.workload.trace = TraceKind::FacebookSys.demand_trace();
        cfg.workload.peak_rate = 120.0;
        let result = run_experiment(cfg);
        assert!(result.total_requests > 1000);
        assert!(!result.timeline.is_empty());
    }
}
