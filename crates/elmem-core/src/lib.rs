//! ElMem: the elastic Memcached control plane (the paper's contribution).
//!
//! * [`mod@fusecache`] — the FuseCache algorithm (§IV): select the hottest `n`
//!   items across `k` MRU-sorted lists in `O(k·log²n)` via recursive
//!   median-of-medians, plus the k-way-merge and sort-merge baselines it is
//!   compared against;
//! * [`scoring`] — which node(s) to retire (§III-C): weighted median-hotness
//!   scores;
//! * [`autoscaler`] — when and how much to scale (§III-B): Eq. (1)
//!   `p_min > 1 − r_DB/r` plus stack-distance memory sizing;
//! * [`migration`] — the 3-phase migration (§III-D): metadata transfer,
//!   hotness comparison (FuseCache), data migration, with modeled network
//!   and CPU costs producing the paper's ~2-minute overhead breakdown —
//!   runnable under [`migration::Supervision`] (per-phase deadlines,
//!   shipment-drop retries, crash aborts) against an
//!   `elmem_sim::FaultPlan`;
//! * [`policies`] — the comparators of §V: `baseline` (no migration),
//!   `Naive`, and `CacheScale`;
//! * [`elasticity`] — the end-to-end driver tying the control plane to the
//!   serving stack in `elmem-cluster`.
//!
//! # Example
//!
//! ```
//! use elmem_core::fusecache::{fusecache, sort_merge_top_n};
//! use elmem_store::Hotness;
//! use elmem_util::{KeyId, SimTime};
//!
//! let h = |s: u64, k: u64| Hotness::new(SimTime::from_secs(s), KeyId(k));
//! let a = vec![h(9, 1), h(5, 2), h(1, 3)];
//! let b = vec![h(8, 4), h(2, 5)];
//! let picks = fusecache(&[&a, &b], 3);
//! assert_eq!(picks, vec![2, 1]); // 9,5 from a; 8 from b
//! assert_eq!(picks, sort_merge_top_n(&[&a, &b], 3));
//! ```

pub mod autoscaler;
pub mod chaos;
pub mod elasticity;
pub mod fusecache;
pub mod healing;
pub mod journal;
pub mod master;
pub mod migration;
pub mod policies;
pub mod predictive;
pub mod scoring;
pub mod telemetry;

pub use autoscaler::{AutoScaler, AutoScalerConfig, ScalingHint};
pub use chaos::{check_invariants, experiment_for_plan, run_chaos, ChaosReport};
pub use elasticity::{
    run_experiment, run_experiment_capture, run_experiment_with_telemetry, ExperimentConfig,
    ExperimentResult, ScaleAction, ScalerConfig, ScalingEvent,
};
pub use fusecache::{
    fusecache, fusecache_instrumented, kway_top_n, sort_merge_top_n, SelectionStats,
};
pub use healing::{
    ConfirmedDeath, DetectorConfig, FailureDetector, HealingConfig, NodeState, ProbeObservation,
    ProbeOutcome, RecoveryEvent, ReplacementPolicy,
};
pub use journal::{
    JournalRecord, MasterPlan, MasterRecovery, MigrationJournal, MigrationKind, ReplayState,
    ShipmentManifest, ACK_DURABILITY_LAG,
};
pub use master::{Admission, DeferredAction, DeferredKind, JobKind, Master, Orchestration};
pub use migration::{
    migrate_scale_in, migrate_scale_in_journaled, migrate_scale_in_supervised, migrate_scale_out,
    migrate_scale_out_journaled, plan_scale_in_shipments, set_planning_jobs, AbortCause,
    MigrationCosts, MigrationOutcome, MigrationPhase, MigrationReport, PhaseBreakdown,
    PhaseDeadlines, PlanStats, ResumePoint, RetryPolicy, Shipment, Supervision, MIGRATION_JOBS_ENV,
};
pub use predictive::{PredictiveAutoScaler, PredictiveConfig};
pub use telemetry::{
    record_migration_events, NodeDumpRow, SeriesPoint, SeriesRecorder, TelemetryDump, TierSnapshot,
};
// Re-exported so experiment configs can name their fault plan without
// depending on `elmem-sim` directly.
pub use elmem_sim::fault::{FaultKind, FaultPlan, ScheduledFault};
pub use policies::MigrationPolicy;
pub use scoring::{choose_retiring, node_score};
