//! Crash-recoverable migration control plane: the Master's simulated
//! durable write-ahead journal (DESIGN.md §13).
//!
//! The Master appends a [`JournalRecord`] at every phase boundary, when a
//! migration plan is sealed, and per shipment ack. Each record carries the
//! simulated instant it became *durable*; a Master crash at time `t`
//! truncates everything not yet durable ([`MigrationJournal::discard_after`])
//! and the restarted Master [`replays`](MigrationJournal::replay) the
//! surviving prefix to resume the migration from the last durable point
//! instead of aborting it.
//!
//! Determinism: the journal is an append-only vector mutated only by the
//! (deterministic) migration executors, serialized with the same
//! hand-rolled fixed-field-order JSON the fault and chaos plans use, so
//! same-seed runs produce byte-identical journal dumps.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use elmem_store::ClassId;
use elmem_util::json::JsonValue;
use elmem_util::{NodeId, SimTime};

use crate::migration::MigrationPhase;

/// Simulated lag between a shipment's import applying on the destination
/// and its ack record becoming durable in the Master's journal. A Master
/// crash inside this window loses the ack but not the import — the resumed
/// migration re-delivers the shipment and the destination's
/// [`import ledger`](elmem_cluster::ImportLedger) suppresses the duplicate.
pub const ACK_DURABILITY_LAG: SimTime = SimTime::from_millis(10);

/// What kind of migration a journaled job is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationKind {
    /// Retiring nodes drain into the retained membership (§III-D1–3).
    ScaleIn,
    /// Existing members fill freshly provisioned nodes (§III-D4).
    ScaleOut,
}

impl MigrationKind {
    /// Stable lowercase label used in JSON dumps.
    pub fn label(self) -> &'static str {
        match self {
            MigrationKind::ScaleIn => "scale_in",
            MigrationKind::ScaleOut => "scale_out",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "scale_in" => Ok(MigrationKind::ScaleIn),
            "scale_out" => Ok(MigrationKind::ScaleOut),
            other => Err(format!("unknown migration kind {other:?}")),
        }
    }
}

/// Stable lowercase label for a migration phase in journal dumps (matches
/// the trace vocabulary's `MigrationPhaseKind` labels).
pub fn phase_label(phase: MigrationPhase) -> &'static str {
    match phase {
        MigrationPhase::MetadataTransfer => "metadata_transfer",
        MigrationPhase::HotnessComparison => "hotness_comparison",
        MigrationPhase::DataMigration => "data_migration",
    }
}

fn parse_phase(s: &str) -> Result<MigrationPhase, String> {
    match s {
        "metadata_transfer" => Ok(MigrationPhase::MetadataTransfer),
        "hotness_comparison" => Ok(MigrationPhase::HotnessComparison),
        "data_migration" => Ok(MigrationPhase::DataMigration),
        other => Err(format!("unknown migration phase {other:?}")),
    }
}

/// Phase progress order, for replay ("the furthest phase completed").
fn phase_rank(phase: MigrationPhase) -> u8 {
    match phase {
        MigrationPhase::MetadataTransfer => 0,
        MigrationPhase::HotnessComparison => 1,
        MigrationPhase::DataMigration => 2,
    }
}

/// One sealed shipment, as the journal records it: enough to reconstruct
/// the shipment from a fresh source dump (the `take`-prefix of what the
/// source routes to `(target, class)`) and to verify the reconstruction
/// byte-for-byte against the FNV-1a content checksum sealed at plan time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShipmentManifest {
    /// Monotone sequence number within the migration.
    pub seq: u64,
    /// The node shipping the items.
    pub source: NodeId,
    /// The node importing them.
    pub target: NodeId,
    /// The slab class they belong to.
    pub class: ClassId,
    /// How many items of the routed (hotness-ordered) list are shipped.
    pub take: usize,
    /// FNV-1a content checksum over the chosen prefix.
    pub checksum: u64,
}

impl ShipmentManifest {
    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"seq\":{},\"source\":{},\"target\":{},\"class\":{},\"take\":{},\"checksum\":{}}}",
            self.seq, self.source.0, self.target.0, self.class.0, self.take, self.checksum
        );
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("manifest entry missing {k:?}"))
        };
        Ok(ShipmentManifest {
            seq: field("seq")?,
            source: NodeId(field("source")? as u32),
            target: NodeId(field("target")? as u32),
            class: ClassId(field("class")? as u16),
            take: field("take")? as usize,
            checksum: field("checksum")?,
        })
    }
}

/// One durable journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A migration job was admitted and started.
    Started {
        /// Job id (monotone per Master).
        id: u64,
        /// Scale-in or scale-out.
        kind: MigrationKind,
        /// The retiring (scale-in) or joining (scale-out) nodes.
        nodes: Vec<NodeId>,
        /// When it started.
        at: SimTime,
    },
    /// A migration phase ran to its boundary.
    PhaseDone {
        /// The job.
        id: u64,
        /// The phase that finished.
        phase: MigrationPhase,
        /// The boundary instant.
        at: SimTime,
    },
    /// The shipment plan was sealed: from here on the migration is
    /// manifest-driven and a resume reconstructs shipments instead of
    /// replanning (partial imports have already mutated the destinations).
    PlanSealed {
        /// The job.
        id: u64,
        /// When the plan sealed.
        at: SimTime,
        /// Every planned shipment, in sequence order.
        manifest: Vec<ShipmentManifest>,
    },
    /// A shipment was imported on its destination and acknowledged.
    ShipmentAcked {
        /// The job.
        id: u64,
        /// The shipment.
        seq: u64,
        /// When the import applied (the record is durable
        /// [`ACK_DURABILITY_LAG`] later).
        at: SimTime,
    },
    /// A restarted Master replayed the journal and resumed the job.
    Resumed {
        /// The job.
        id: u64,
        /// When the resumed attempt started.
        at: SimTime,
        /// The phase the crash interrupted.
        phase: MigrationPhase,
    },
    /// The migration completed; the scaling may commit.
    Committed {
        /// The job.
        id: u64,
        /// Completion instant.
        at: SimTime,
    },
    /// The migration was abandoned (fault abort, or a Master restart
    /// configured to abort instead of resume).
    Aborted {
        /// The job.
        id: u64,
        /// When the Master gave up.
        at: SimTime,
    },
}

impl JournalRecord {
    /// The job the record belongs to.
    pub fn id(&self) -> u64 {
        match *self {
            JournalRecord::Started { id, .. }
            | JournalRecord::PhaseDone { id, .. }
            | JournalRecord::PlanSealed { id, .. }
            | JournalRecord::ShipmentAcked { id, .. }
            | JournalRecord::Resumed { id, .. }
            | JournalRecord::Committed { id, .. }
            | JournalRecord::Aborted { id, .. } => id,
        }
    }

    /// Stable lowercase label used in JSON dumps.
    pub fn label(&self) -> &'static str {
        match self {
            JournalRecord::Started { .. } => "started",
            JournalRecord::PhaseDone { .. } => "phase_done",
            JournalRecord::PlanSealed { .. } => "plan_sealed",
            JournalRecord::ShipmentAcked { .. } => "shipment_acked",
            JournalRecord::Resumed { .. } => "resumed",
            JournalRecord::Committed { .. } => "committed",
            JournalRecord::Aborted { .. } => "aborted",
        }
    }
}

/// One journal entry: a record plus the instant it became durable.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// When the record hit stable storage. A Master crash before this
    /// instant loses the record.
    pub durable_at: SimTime,
    /// The record.
    pub record: JournalRecord,
}

/// What a journal replay recovers about one migration job.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayState {
    /// The job's kind, if a `Started` record survived.
    pub kind: Option<MigrationKind>,
    /// The furthest phase with a durable `PhaseDone`.
    pub last_phase: Option<MigrationPhase>,
    /// The sealed shipment manifest, when the plan sealed durably.
    pub manifest: Option<Vec<ShipmentManifest>>,
    /// Sequence numbers with durable acks: these shipments are complete
    /// and must not be re-delivered.
    pub acked: BTreeSet<u64>,
    /// Durable `Resumed` records seen (how often the job already resumed).
    pub resumes: u32,
    /// Whether a `Committed` record survived.
    pub committed: bool,
    /// Whether an `Aborted` record survived.
    pub aborted: bool,
}

/// The Master's append-only migration journal (simulated durable WAL).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MigrationJournal {
    entries: Vec<JournalEntry>,
}

impl MigrationJournal {
    /// An empty journal.
    pub fn new() -> Self {
        MigrationJournal::default()
    }

    /// Appends a record that becomes durable at `durable_at`.
    pub fn append(&mut self, durable_at: SimTime, record: JournalRecord) {
        self.entries.push(JournalEntry { durable_at, record });
    }

    /// Simulates a Master crash at `t`: every record not yet durable is
    /// lost. Returns how many records were dropped.
    pub fn discard_after(&mut self, t: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.durable_at <= t);
        before - self.entries.len()
    }

    /// The surviving entries, in append order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Number of surviving records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Replays the journal for one job: the state a restarted Master
    /// reconstructs before resuming.
    pub fn replay(&self, id: u64) -> ReplayState {
        let mut st = ReplayState::default();
        for entry in &self.entries {
            match &entry.record {
                JournalRecord::Started { id: i, kind, .. } if *i == id => {
                    st.kind = Some(*kind);
                }
                JournalRecord::PhaseDone { id: i, phase, .. }
                    if *i == id
                        && st
                            .last_phase
                            .is_none_or(|p| phase_rank(*phase) > phase_rank(p)) =>
                {
                    st.last_phase = Some(*phase);
                }
                JournalRecord::PlanSealed {
                    id: i, manifest, ..
                } if *i == id => {
                    st.manifest = Some(manifest.clone());
                }
                JournalRecord::ShipmentAcked { id: i, seq, .. } if *i == id => {
                    st.acked.insert(*seq);
                }
                JournalRecord::Resumed { id: i, .. } if *i == id => {
                    st.resumes += 1;
                }
                JournalRecord::Committed { id: i, .. } if *i == id => {
                    st.committed = true;
                }
                JournalRecord::Aborted { id: i, .. } if *i == id => {
                    st.aborted = true;
                }
                _ => {}
            }
        }
        st
    }

    /// Appends the canonical JSON encoding: fixed field order,
    /// byte-identical for equal journals.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"records\":[");
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"durable_at_ns\":{},\"type\":\"{}\",\"id\":{}",
                entry.durable_at.as_nanos(),
                entry.record.label(),
                entry.record.id()
            );
            match &entry.record {
                JournalRecord::Started {
                    kind, nodes, at, ..
                } => {
                    let _ = write!(out, ",\"kind\":\"{}\",\"nodes\":[", kind.label());
                    for (j, n) in nodes.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{}", n.0);
                    }
                    let _ = write!(out, "],\"at_ns\":{}", at.as_nanos());
                }
                JournalRecord::PhaseDone { phase, at, .. } => {
                    let _ = write!(
                        out,
                        ",\"phase\":\"{}\",\"at_ns\":{}",
                        phase_label(*phase),
                        at.as_nanos()
                    );
                }
                JournalRecord::PlanSealed { at, manifest, .. } => {
                    let _ = write!(out, ",\"at_ns\":{},\"manifest\":[", at.as_nanos());
                    for (j, m) in manifest.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        m.write_json(out);
                    }
                    out.push(']');
                }
                JournalRecord::ShipmentAcked { seq, at, .. } => {
                    let _ = write!(out, ",\"seq\":{},\"at_ns\":{}", seq, at.as_nanos());
                }
                JournalRecord::Resumed { at, phase, .. } => {
                    let _ = write!(
                        out,
                        ",\"at_ns\":{},\"phase\":\"{}\"",
                        at.as_nanos(),
                        phase_label(*phase)
                    );
                }
                JournalRecord::Committed { at, .. } | JournalRecord::Aborted { at, .. } => {
                    let _ = write!(out, ",\"at_ns\":{}", at.as_nanos());
                }
            }
            out.push('}');
        }
        out.push_str("]}");
    }

    /// The canonical JSON encoding as a string.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        self.write_json(&mut s);
        s
    }

    /// Parses a journal back from its canonical JSON.
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn parse_json(text: &str) -> Result<Self, String> {
        let v = JsonValue::parse(text)?;
        Self::from_json(&v)
    }

    /// Converts a parsed [`JsonValue`] into a journal.
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        let records = v
            .get("records")
            .and_then(|r| r.as_array())
            .ok_or("journal missing records array")?;
        let mut journal = MigrationJournal::new();
        for rec in records {
            let field = |k: &str| -> Result<u64, String> {
                rec.get(k)
                    .and_then(|x| x.as_u64())
                    .ok_or_else(|| format!("journal record missing {k:?}"))
            };
            let str_field = |k: &str| -> Result<&str, String> {
                rec.get(k)
                    .and_then(|x| x.as_str())
                    .ok_or_else(|| format!("journal record missing {k:?}"))
            };
            let durable_at = SimTime::from_nanos(field("durable_at_ns")?);
            let id = field("id")?;
            let at = SimTime::from_nanos(field("at_ns")?);
            let record = match str_field("type")? {
                "started" => {
                    let nodes = rec
                        .get("nodes")
                        .and_then(|n| n.as_array())
                        .ok_or("started record missing nodes")?
                        .iter()
                        .map(|n| {
                            n.as_u64()
                                .map(|v| NodeId(v as u32))
                                .ok_or_else(|| "non-numeric node id".to_string())
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    JournalRecord::Started {
                        id,
                        kind: MigrationKind::parse(str_field("kind")?)?,
                        nodes,
                        at,
                    }
                }
                "phase_done" => JournalRecord::PhaseDone {
                    id,
                    phase: parse_phase(str_field("phase")?)?,
                    at,
                },
                "plan_sealed" => {
                    let manifest = rec
                        .get("manifest")
                        .and_then(|m| m.as_array())
                        .ok_or("plan_sealed record missing manifest")?
                        .iter()
                        .map(ShipmentManifest::from_json)
                        .collect::<Result<Vec<_>, _>>()?;
                    JournalRecord::PlanSealed { id, at, manifest }
                }
                "shipment_acked" => JournalRecord::ShipmentAcked {
                    id,
                    seq: field("seq")?,
                    at,
                },
                "resumed" => JournalRecord::Resumed {
                    id,
                    at,
                    phase: parse_phase(str_field("phase")?)?,
                },
                "committed" => JournalRecord::Committed { id, at },
                "aborted" => JournalRecord::Aborted { id, at },
                other => return Err(format!("unknown journal record type {other:?}")),
            };
            journal.append(durable_at, record);
        }
        Ok(journal)
    }
}

/// How a restarted Master treats an interrupted migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MasterRecovery {
    /// Replay the journal and resume from the last durable point (the
    /// crash-recoverable control plane this module exists for).
    #[default]
    Resume,
    /// Abandon the migration and fall back to committing the scaling
    /// without it — the pre-journal behavior, kept as the baseline the
    /// downtime experiments (EXPERIMENTS.md E18) compare against.
    Abort,
}

/// Scheduled Master failures for one experiment: when the Master process
/// crashes, how long its failover/restart takes, and whether the restarted
/// Master resumes or aborts interrupted migrations.
#[derive(Debug, Clone, PartialEq)]
pub struct MasterPlan {
    /// Absolute instants the Master crashes. A crash only matters while a
    /// migration is in flight — an idle Master restarts invisibly.
    pub crashes: Vec<SimTime>,
    /// Downtime between a crash and the restarted Master taking over.
    pub restart_delay: SimTime,
    /// Resume or abort interrupted migrations.
    pub recovery: MasterRecovery,
}

impl Default for MasterPlan {
    fn default() -> Self {
        MasterPlan {
            crashes: Vec::new(),
            restart_delay: SimTime::from_millis(500),
            recovery: MasterRecovery::Resume,
        }
    }
}

impl MasterPlan {
    /// The earliest scheduled crash strictly after `t`, if any.
    pub fn next_crash_after(&self, t: SimTime) -> Option<SimTime> {
        self.crashes.iter().copied().filter(|&c| c > t).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_journal() -> MigrationJournal {
        let mut j = MigrationJournal::new();
        let t = SimTime::from_secs;
        j.append(
            t(1),
            JournalRecord::Started {
                id: 0,
                kind: MigrationKind::ScaleIn,
                nodes: vec![NodeId(3)],
                at: t(1),
            },
        );
        j.append(
            t(2),
            JournalRecord::PhaseDone {
                id: 0,
                phase: MigrationPhase::MetadataTransfer,
                at: t(2),
            },
        );
        j.append(
            t(3),
            JournalRecord::PlanSealed {
                id: 0,
                at: t(3),
                manifest: vec![ShipmentManifest {
                    seq: 0,
                    source: NodeId(3),
                    target: NodeId(1),
                    class: ClassId(2),
                    take: 17,
                    checksum: 0xdeadbeef,
                }],
            },
        );
        j.append(
            t(4) + ACK_DURABILITY_LAG,
            JournalRecord::ShipmentAcked {
                id: 0,
                seq: 0,
                at: t(4),
            },
        );
        j.append(t(5), JournalRecord::Committed { id: 0, at: t(5) });
        j
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let j = sample_journal();
        let json = j.to_json();
        let back = MigrationJournal::parse_json(&json).expect("parses");
        assert_eq!(back, j);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn discard_after_truncates_not_yet_durable_records() {
        let mut j = sample_journal();
        // Crash just after the plan sealed: the ack (durable at 4 s + lag)
        // and the commit are lost.
        let dropped = j.discard_after(SimTime::from_secs(3));
        assert_eq!(dropped, 2);
        let st = j.replay(0);
        assert!(st.manifest.is_some());
        assert!(st.acked.is_empty());
        assert!(!st.committed);
    }

    #[test]
    fn replay_reconstructs_job_state() {
        let st = sample_journal().replay(0);
        assert_eq!(st.kind, Some(MigrationKind::ScaleIn));
        assert_eq!(st.last_phase, Some(MigrationPhase::MetadataTransfer));
        assert_eq!(st.manifest.as_ref().map(|m| m.len()), Some(1));
        assert!(st.acked.contains(&0));
        assert!(st.committed);
        assert!(!st.aborted);
        assert_eq!(st.resumes, 0);
        // Replay of an unknown job is empty.
        assert_eq!(sample_journal().replay(9), ReplayState::default());
    }

    #[test]
    fn ack_durability_lag_window_loses_the_ack_but_not_earlier_records() {
        let mut j = sample_journal();
        // Crash inside (done, done + lag): the import applied but the ack
        // never became durable.
        j.discard_after(SimTime::from_secs(4) + SimTime::from_millis(5));
        let st = j.replay(0);
        assert!(st.manifest.is_some());
        assert!(st.acked.is_empty(), "ack inside the lag window is lost");
    }

    #[test]
    fn next_crash_after_is_strict() {
        let plan = MasterPlan {
            crashes: vec![SimTime::from_secs(10), SimTime::from_secs(5)],
            ..MasterPlan::default()
        };
        assert_eq!(
            plan.next_crash_after(SimTime::ZERO),
            Some(SimTime::from_secs(5))
        );
        assert_eq!(
            plan.next_crash_after(SimTime::from_secs(5)),
            Some(SimTime::from_secs(10))
        );
        assert_eq!(plan.next_crash_after(SimTime::from_secs(10)), None);
    }
}
