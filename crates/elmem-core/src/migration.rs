//! The 3-phase migration (§III-D): metadata transfer, hotness comparison
//! (FuseCache), and data migration, with the per-phase cost model that
//! reproduces the paper's ~2-minute overhead breakdown (§V-B2).
//!
//! Scale-in: every retiring Agent hashes its keys against the *retained*
//! membership and ships `(key, timestamp)` metadata to the target nodes;
//! each retained Agent runs FuseCache per slab class over its own MRU dump
//! plus the incoming lists; the Master then directs the retiring nodes to
//! ship exactly the chosen KV pairs, which the retained nodes batch-import
//! (prepending/merging at the MRU head, evicting strictly colder items).
//!
//! Scale-out (§III-D4): each existing node ships the keys that hash to the
//! new nodes (≈ `1/(k+1)` of its keys); FuseCache is only needed if the
//! shipped set exceeds the new node's capacity.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};

use elmem_cluster::{CacheNode, CacheTier};
use elmem_hash::HashRing;
use elmem_sim::fault::FaultInjector;
use elmem_store::{
    ClassDump, ClassId, Hotness, ImportMode, ItemMeta, MetadataDump, KEY_BYTES, TIMESTAMP_BYTES,
};
use elmem_util::par::par_map_indexed;
use elmem_util::{ByteSize, ElmemError, NodeId, SimTime};
use serde::{Deserialize, Serialize};

use crate::fusecache::fusecache_instrumented;
use crate::journal::{
    JournalRecord, MasterPlan, MasterRecovery, MigrationJournal, MigrationKind, ReplayState,
    ShipmentManifest, ACK_DURABILITY_LAG,
};

/// Per-(target, class) inbound metadata lists, keyed by source node.
type InboundMap = HashMap<(NodeId, ClassId), Vec<(NodeId, Vec<ItemMeta>)>>;

/// CPU-side cost constants of the migration pipeline, calibrated so the
/// paper-scale deployment (≈4 M items migrated) lands on the §V-B2
/// breakdown: score ≈20 s, hash+dump ≈50 s, metadata transfer ≈70 s,
/// FuseCache <2 s, data transfer ≈45 s, import ≈80 s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationCosts {
    /// Nanoseconds to score one slab (median probe + message), per node.
    pub score_ns_per_slab: u64,
    /// Nanoseconds to hash + dump one item's metadata on a retiring node.
    pub dump_ns_per_item: u64,
    /// Nanoseconds of serialization pipeline (tar + ssh) per item during
    /// the metadata transfer, on top of the wire time.
    pub metadata_ns_per_item: u64,
    /// Nanoseconds per hotness comparison inside FuseCache.
    pub fusecache_ns_per_comparison: u64,
    /// Nanoseconds of serialization pipeline per item during the data
    /// transfer, on top of the wire time.
    pub data_ns_per_item: u64,
    /// Nanoseconds to set one migrated item into Memcached on the target.
    pub import_ns_per_item: u64,
}

impl Default for MigrationCosts {
    fn default() -> Self {
        // Calibrated against the §V-B2 breakdown at ≈4 M items migrated:
        // dump 50 s → 12.5 µs/item; metadata transfer 70 s → ~17 µs/item
        // (tar/ssh pipeline dominates the 21 B/item wire cost); data
        // migration 45 s → ~8 µs/item + wire; import 80 s → 20 µs/item;
        // scoring 20 s across ~40 slabs.
        MigrationCosts {
            score_ns_per_slab: 50_000_000, // 50 ms per slab (crawler pass)
            dump_ns_per_item: 12_500,
            metadata_ns_per_item: 17_000,
            fusecache_ns_per_comparison: 100,
            data_ns_per_item: 8_000,
            import_ns_per_item: 20_000,
        }
    }
}

/// Wall-clock breakdown of one migration, mirroring §V-B2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Scoring the nodes from their slab medians (§III-C).
    pub scoring: SimTime,
    /// Hashing keys + dumping timestamps on the sources (§III-D1).
    pub dump: SimTime,
    /// Shipping `(key, timestamp)` metadata over the network (§III-D1).
    pub metadata_transfer: SimTime,
    /// Running FuseCache on the destinations (§III-D2).
    pub fusecache: SimTime,
    /// Shipping the chosen KV pairs (§III-D3).
    pub data_transfer: SimTime,
    /// Batch-importing them into Memcached (§III-D3).
    pub import: SimTime,
}

impl PhaseBreakdown {
    /// Total migration wall-clock (phases are sequential, per §III-D).
    pub fn total(&self) -> SimTime {
        self.scoring
            + self.dump
            + self.metadata_transfer
            + self.fusecache
            + self.data_transfer
            + self.import
    }
}

/// Outcome of a migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationReport {
    /// When the migration started.
    pub started: SimTime,
    /// When the last phase finished (= when the Master may flip membership).
    pub completed: SimTime,
    /// Per-phase wall-clock.
    pub phases: PhaseBreakdown,
    /// Items moved to retained/new nodes.
    pub items_migrated: u64,
    /// Bytes of KV data moved in phase 3.
    pub bytes_migrated: ByteSize,
    /// Bytes of metadata moved in phase 1.
    pub metadata_bytes: ByteSize,
    /// Items considered (dumped) on the sources.
    pub items_considered: u64,
    /// How the migration ended: ran to completion, or aborted by the
    /// supervisor on a fault or deadline.
    pub outcome: MigrationOutcome,
    /// Shipment attempts beyond the first (metadata + data phases),
    /// consumed from the [`RetryPolicy`] budget by injected drops.
    ///
    /// Database sheds during the post-commit refill storm do **not**
    /// count here — see `elmem_cluster::DbFetch::Shed`.
    pub transfer_retries: u32,
    /// Master crash/resume cycles the migration survived, in order
    /// (empty without Master faults). When non-empty, `completed` is
    /// **not** `started + phases.total()`: `phases` describes the final
    /// attempt only and the timeline includes restart downtime.
    pub resumes: Vec<ResumePoint>,
}

/// One Master crash the migration survived: when the Master died, when its
/// replacement took over, and the phase the crash interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResumePoint {
    /// When the Master crashed.
    pub crashed_at: SimTime,
    /// When the restarted Master finished replaying the journal and
    /// resumed the migration.
    pub resumed_at: SimTime,
    /// The phase the crash landed in.
    pub phase: MigrationPhase,
}

/// The three migration phases of §III-D, as the supervisor attributes
/// faults to them. The preliminary scoring + dump work is folded into
/// [`MigrationPhase::MetadataTransfer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationPhase {
    /// §III-D1: dumping `(key, timestamp)` metadata and shipping it.
    MetadataTransfer,
    /// §III-D2: FuseCache on the destinations.
    HotnessComparison,
    /// §III-D3: shipping and importing the chosen KV pairs.
    DataMigration,
}

/// Why the supervisor aborted a migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbortCause {
    /// A retiring source died mid-flight.
    SourceCrashed(NodeId),
    /// A retained (or newly provisioned) destination died mid-flight.
    DestinationCrashed(NodeId),
    /// A phase overran its [`PhaseDeadlines`] budget.
    DeadlineExceeded,
    /// A shipment kept dropping until the retry budget ran out.
    TransferRetriesExhausted {
        /// The source whose shipment would not go through.
        source: NodeId,
        /// Attempts beyond the first that were made.
        attempts: u32,
    },
    /// The Master crashed mid-migration and its restart policy was
    /// [`MasterRecovery::Abort`] — the journal was abandoned instead of
    /// replayed.
    MasterCrashed,
}

impl AbortCause {
    /// The node whose crash caused the abort, if any.
    pub fn crashed_node(&self) -> Option<NodeId> {
        match self {
            AbortCause::SourceCrashed(n) | AbortCause::DestinationCrashed(n) => Some(*n),
            _ => None,
        }
    }
}

/// How a migration ended.
///
/// Aborting is a *handled* outcome, not an error: the report's `completed`
/// instant is when the Master gave up, partial phase-3 imports are kept
/// (they are strictly-hotter data already in place on healthy nodes), and
/// the Master falls back to committing the scaling without further
/// migration — excluding any crashed node from the retained membership.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MigrationOutcome {
    /// All three phases ran to the end.
    Completed,
    /// The supervisor aborted in `phase` because of `cause`.
    Aborted {
        /// The phase the fault landed in.
        phase: MigrationPhase,
        /// What went wrong.
        cause: AbortCause,
    },
}

impl MigrationOutcome {
    /// Whether the migration ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, MigrationOutcome::Completed)
    }

    /// The crashed node behind an abort, if that was the cause.
    pub fn crashed_node(&self) -> Option<NodeId> {
        match self {
            MigrationOutcome::Completed => None,
            MigrationOutcome::Aborted { cause, .. } => cause.crashed_node(),
        }
    }
}

/// Per-phase wall-clock budgets. `None` disables the check for that
/// phase; [`PhaseDeadlines::none`] (the default) supervises nothing, so
/// unsupervised migrations behave exactly as before.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseDeadlines {
    /// Budget for the metadata-transfer duration (excluding scoring+dump).
    pub metadata: Option<SimTime>,
    /// Budget for the FuseCache duration.
    pub hotness: Option<SimTime>,
    /// Budget for data transfer + import combined.
    pub data: Option<SimTime>,
}

impl PhaseDeadlines {
    /// No deadlines.
    pub fn none() -> Self {
        PhaseDeadlines::default()
    }
}

/// Bounded-exponential-backoff retry budget for dropped shipments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries allowed per shipment before aborting (beyond the first
    /// attempt).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry.
    pub backoff_base: SimTime,
    /// Backoff ceiling.
    pub backoff_cap: SimTime,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: SimTime::from_millis(500),
            backoff_cap: SimTime::from_secs(8),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based): `base · 2^(a-1)`,
    /// capped.
    pub fn backoff(&self, attempt: u32) -> SimTime {
        let exp = attempt.saturating_sub(1).min(32);
        let ns = self
            .backoff_base
            .as_nanos()
            .saturating_mul(1u64 << exp)
            .min(self.backoff_cap.as_nanos());
        SimTime::from_nanos(ns)
    }
}

/// Supervision context for a migration: deadlines, the retry budget, and
/// (optionally) the fault injector whose scheduled crashes and sampled
/// drops the supervisor consults. [`Supervision::none`] supervises
/// nothing — the unsupervised entry points use it.
#[derive(Debug)]
pub struct Supervision<'a> {
    /// Per-phase wall-clock budgets.
    pub deadlines: PhaseDeadlines,
    /// Retry budget for dropped shipments.
    pub retry: RetryPolicy,
    /// The experiment's fault injector, when faults are being injected.
    pub faults: Option<&'a mut FaultInjector>,
    /// Scheduled Master crashes and the restart/recovery policy. Only the
    /// journaled entry points consult it; the default plan never crashes.
    pub master: MasterPlan,
}

impl Supervision<'static> {
    /// No deadlines, default retries, no faults.
    pub fn none() -> Self {
        Supervision {
            deadlines: PhaseDeadlines::none(),
            retry: RetryPolicy::default(),
            faults: None,
            master: MasterPlan::default(),
        }
    }
}

impl<'a> Supervision<'a> {
    /// Supervision against `injector` with default deadlines/retries.
    pub fn with_faults(injector: &'a mut FaultInjector) -> Self {
        Supervision {
            deadlines: PhaseDeadlines::none(),
            retry: RetryPolicy::default(),
            faults: Some(injector),
            master: MasterPlan::default(),
        }
    }

    /// When `node` crashes strictly before `end`, if ever.
    pub(crate) fn crash_before(&self, node: NodeId, end: SimTime) -> Option<SimTime> {
        self.faults
            .as_ref()
            .and_then(|f| f.crash_time(node))
            .filter(|&t| t < end)
    }

    fn sample_metadata_drop(&mut self) -> bool {
        self.faults
            .as_mut()
            .is_some_and(|f| f.sample_metadata_drop())
    }

    fn sample_transfer_drop(&mut self) -> bool {
        self.faults
            .as_mut()
            .is_some_and(|f| f.sample_transfer_drop())
    }
}

/// How the destination merges migrated items (ElMem uses `Merge`; the
/// Naive comparator uses `Prepend` — see `policies`).
pub use elmem_store::ImportMode as MigrationImportMode;

// ---------------------------------------------------------------------------
// Planning fast path
//
// The migration *plan* — which items each retiring source ships to which
// (destination, class) cell — is a pure function of the tier: dump + route
// per source, then one FuseCache selection per cell. Both stages fan out
// over `elmem_util::par::par_map_indexed` and reassemble in input order
// (sources in retiring order, cells in sorted (target, class) order), so
// the plan is byte-identical to a serial pass whatever the worker count.
// The serial per-source link scheduling / fault sampling stays in the
// supervised executor: link state and drop sampling are order-sensitive.
// ---------------------------------------------------------------------------

/// Worker threads used by the migration planner; 0 = resolve automatically.
static PLANNING_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Environment variable overriding the automatic planner worker count.
pub const MIGRATION_JOBS_ENV: &str = "ELMEM_MIGRATION_JOBS";

/// Sets the planner's worker-thread count process-wide (0 = automatic:
/// [`MIGRATION_JOBS_ENV`], else all cores). The plan is byte-identical
/// whatever the count — this knob trades threads for wall-clock only.
pub fn set_planning_jobs(jobs: usize) {
    PLANNING_JOBS.store(jobs, Ordering::Relaxed);
}

fn auto_planning_jobs() -> usize {
    match PLANNING_JOBS.load(Ordering::Relaxed) {
        0 => std::env::var(MIGRATION_JOBS_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&j: &usize| j >= 1)
            .unwrap_or_else(rayon::current_num_threads),
        n => n,
    }
}

/// Below this many items an automatically-parallelized stage stays on the
/// no-thread serial path: the tiers in unit tests and small sweep cells
/// migrate faster than worker threads spawn.
const PAR_MIN_ITEMS: u64 = 32_768;

/// One planned phase-3 shipment: the `take` hottest of the items a source
/// routed to one (target, class) cell.
///
/// The items vector is *moved* out of the phase-1 routing result and the
/// chosen subset exposed as a prefix borrow — the plan holds index ranges
/// into the dump rather than cloned sub-vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Shipment {
    /// Monotone sequence number within the migration's sealed plan — the
    /// identity the journal acks and the destination's import ledger
    /// dedups on.
    pub seq: u64,
    /// The retiring node shipping the items.
    pub source: NodeId,
    /// The retained node importing them.
    pub target: NodeId,
    /// The slab class they belong to.
    pub class: ClassId,
    items: Vec<ItemMeta>,
    take: usize,
    /// Content checksum over the chosen items, sealed at plan time.
    checksum: u64,
}

impl Shipment {
    /// Seals a whole item list as one shipment (`take` = everything) —
    /// the scale-out path, where no FuseCache prefix is chosen.
    pub(crate) fn sealed(
        seq: u64,
        source: NodeId,
        target: NodeId,
        class: ClassId,
        items: Vec<ItemMeta>,
    ) -> Self {
        let take = items.len();
        let checksum = shipment_checksum(&items);
        Shipment {
            seq,
            source,
            target,
            class,
            items,
            take,
            checksum,
        }
    }

    /// The journal's durable description of this shipment: enough to
    /// reconstruct and verify it from a fresh source dump on resume.
    pub fn manifest(&self) -> ShipmentManifest {
        ShipmentManifest {
            seq: self.seq,
            source: self.source,
            target: self.target,
            class: self.class,
            take: self.take,
            checksum: self.checksum,
        }
    }

    /// The chosen items (hottest-first prefix of the routed list).
    pub fn items(&self) -> &[ItemMeta] {
        &self.items[..self.take]
    }

    /// Number of chosen items.
    pub fn len(&self) -> usize {
        self.take
    }

    /// Whether nothing was chosen.
    pub fn is_empty(&self) -> bool {
        self.take == 0
    }

    /// The content checksum sealed when the shipment was planned.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Recomputes the checksum over the current contents and compares it
    /// against the sealed one — the end-to-end integrity check the chaos
    /// engine runs at import time (DESIGN.md §12). Any mutation of the
    /// item prefix between planning and import is caught here.
    ///
    /// # Errors
    ///
    /// [`ElmemError::InvariantViolation`] on mismatch.
    pub fn verify_content(&self) -> Result<(), ElmemError> {
        let fresh = shipment_checksum(self.items());
        if fresh != self.checksum {
            return Err(ElmemError::InvariantViolation(format!(
                "shipment {}→{} {}: content checksum {fresh:#018x} != sealed {:#018x}",
                self.source, self.target, self.class, self.checksum
            )));
        }
        Ok(())
    }
}

/// FNV-1a over every field of every item, in shipment order. Pure content
/// hash: two shipments with the same items in the same order collide by
/// construction.
pub fn shipment_checksum(items: &[ItemMeta]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for item in items {
        mix(item.key.0);
        mix(u64::from(item.value_size));
        mix(item.last_access.as_nanos());
        mix(item.expires.as_nanos());
    }
    h
}

/// Statistics from a [`plan_scale_in_shipments`] planning pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Items dumped on the retiring sources (phase-1 metadata volume).
    pub items_considered: u64,
    /// (destination, class) FuseCache cells compared.
    pub cells: usize,
    /// Hotness comparisons FuseCache performed across all cells.
    pub comparisons: u64,
}

/// Phase-1 routing result for one retiring source: its metadata dump
/// hashed against the retained ring.
struct RoutedSource {
    n_items: u64,
    per_target: HashMap<(NodeId, ClassId), Vec<ItemMeta>>,
}

/// Dumps every retiring source and hashes each item against the retained
/// ring — the pure part of phase 1 (§III-D1). The dump fan-out is
/// per-(source, **shard**), not per-source: a handful of large retiring
/// nodes still saturate every job, and the per-shard dumps are merged
/// back into each source's canonical dump (byte-identical to an unsharded
/// `dump_metadata`, DESIGN.md §14) before routing, so the plan is
/// invariant in both the shard count and the job count.
fn route_sources(
    tier: &CacheTier,
    retiring: &[NodeId],
    retained_ring: &HashRing,
    jobs: usize,
) -> Result<Vec<RoutedSource>, ElmemError> {
    // Phase 1a: one dump job per (retiring source, shard).
    let mut shard_jobs: Vec<(NodeId, usize)> = Vec::new();
    for &src in retiring {
        for si in 0..live_node(tier, src)?.store.shard_count() {
            shard_jobs.push((src, si));
        }
    }
    let parts: Vec<Vec<ClassDump>> = par_map_indexed(jobs, &shard_jobs, |_, &(src, si)| {
        Ok(live_node(tier, src)?.store.dump_shard_classes(si))
    })
    .into_iter()
    .collect::<Result<_, ElmemError>>()?;
    // Phase 1b: reassemble each source's canonical dump from its shard
    // slices, then hash it against the retained ring, parallel over
    // sources.
    let mut dumps: Vec<MetadataDump> = Vec::with_capacity(retiring.len());
    let mut cursor = 0;
    for &src in retiring {
        let store = &live_node(tier, src)?.store;
        let n = store.shard_count();
        dumps.push(store.merge_shard_dumps(&parts[cursor..cursor + n]));
        cursor += n;
    }
    par_map_indexed(jobs, &dumps, |_, dump| {
        let n_items = dump.total_items();
        let mut per_target: HashMap<(NodeId, ClassId), Vec<ItemMeta>> = HashMap::new();
        for class_dump in &dump.classes {
            for item in &class_dump.items {
                let target = retained_ring.node_for(item.key).ok_or_else(|| {
                    ElmemError::InconsistentMigration("retained ring is empty".to_string())
                })?;
                per_target
                    .entry((target, class_dump.class))
                    .or_default()
                    .push(*item);
            }
        }
        Ok(RoutedSource {
            n_items,
            per_target,
        })
    })
    .into_iter()
    .collect()
}

/// One FuseCache work unit: the inbound source lists one (target, class)
/// destination cell compares against its own MRU list.
struct PlanCell {
    target: NodeId,
    class: ClassId,
    sources: Vec<(NodeId, Vec<ItemMeta>)>,
}

/// Runs one cell's FuseCache selection (§III-D2): how many items the
/// destination accepts from each source. Pure: reads the tier only.
fn fuse_cell(tier: &CacheTier, cell: &PlanCell) -> Result<(Vec<usize>, u64), ElmemError> {
    let dest_store = &live_node(tier, cell.target)?.store;
    // Capacity for this class on the destination, in items: the retained
    // node's own list length n (FuseCache picks the top n across its own
    // list + incoming, per §IV-A).
    let own: Vec<Hotness> = dest_store
        .dump_class(cell.class)
        .items
        .iter()
        .map(|i| i.hotness())
        .collect();
    let n = own.len().max(
        // An empty class on the destination can still grow: allow as
        // many items as one page of chunks as a floor.
        dest_store.classes().chunks_per_page(cell.class) as usize,
    );
    let mut lists: Vec<Vec<Hotness>> = Vec::with_capacity(cell.sources.len() + 1);
    lists.push(own);
    for (_, items) in &cell.sources {
        lists.push(items.iter().map(|i| i.hotness()).collect());
    }
    let refs: Vec<&[Hotness]> = lists.iter().map(|l| l.as_slice()).collect();
    let (picks, stats) = fusecache_instrumented(&refs, n);
    Ok((picks, stats.comparisons))
}

/// The phase-2 output: the shipment plan plus the comparison counts the
/// cost model charges per destination.
struct CellOutcome {
    plan: Vec<Shipment>,
    per_dest_comparisons: HashMap<NodeId, u64>,
    comparisons: u64,
}

/// Converts routed inbound lists into the phase-3 shipment plan: one
/// FuseCache selection per (target, class) cell, fanned out over `jobs`
/// workers, results reassembled in `dest_keys` (sorted) order so the plan
/// is byte-identical to a serial pass. Each cell's chosen items are moved
/// — not cloned — into the plan.
fn build_shipments(
    tier: &CacheTier,
    dest_keys: &[(NodeId, ClassId)],
    mut inbound: InboundMap,
    jobs: usize,
) -> Result<CellOutcome, ElmemError> {
    let cells: Vec<PlanCell> = dest_keys
        .iter()
        .map(|&(target, class)| {
            let sources = inbound.remove(&(target, class)).ok_or_else(|| {
                ElmemError::InconsistentMigration(format!(
                    "no inbound lists for destination cell ({target}, {class})"
                ))
            })?;
            Ok(PlanCell {
                target,
                class,
                sources,
            })
        })
        .collect::<Result<_, ElmemError>>()?;
    let picks = par_map_indexed(jobs, &cells, |_, cell| fuse_cell(tier, cell));
    let mut outcome = CellOutcome {
        plan: Vec::new(),
        per_dest_comparisons: HashMap::new(),
        comparisons: 0,
    };
    // Reassembly: cells in sorted (target, class) order, sources within a
    // cell in retiring order — the exact order the serial code produced.
    for (cell, result) in cells.into_iter().zip(picks) {
        let (picks, comparisons) = result?;
        *outcome.per_dest_comparisons.entry(cell.target).or_default() += comparisons;
        outcome.comparisons += comparisons;
        // picks[0] is the destination's own list; picks[1..] map to sources.
        for (si, (source, items)) in cell.sources.into_iter().enumerate() {
            let pick = picks.get(si + 1).copied().ok_or_else(|| {
                ElmemError::InconsistentMigration(format!(
                    "FuseCache returned {} picks for {} source lists on ({}, {})",
                    picks.len(),
                    si + 1,
                    cell.target,
                    cell.class
                ))
            })?;
            let take = pick.min(items.len());
            if take > 0 {
                let checksum = shipment_checksum(&items[..take]);
                outcome.plan.push(Shipment {
                    seq: outcome.plan.len() as u64,
                    source,
                    target: cell.target,
                    class: cell.class,
                    items,
                    take,
                    checksum,
                });
            }
        }
    }
    Ok(outcome)
}

/// The migration *planning* pipeline alone — §III-D1's dump + routing and
/// §III-D2's FuseCache selection — without mutating the tier, charging
/// simulated time, or shipping anything: the pure function the data-plane
/// benchmark times and whose parallel/serial byte-identity the tests pin.
///
/// `jobs` is the worker-thread count for both stages; `0` resolves
/// automatically ([`set_planning_jobs`], else [`MIGRATION_JOBS_ENV`], else
/// all cores) and applies a work-size threshold so tiny migrations stay on
/// the no-thread serial path. The returned plan is byte-identical
/// whatever `jobs` is.
///
/// # Errors
///
/// Same validation as [`migrate_scale_in`].
pub fn plan_scale_in_shipments(
    tier: &CacheTier,
    retiring: &[NodeId],
    jobs: usize,
) -> Result<(Vec<Shipment>, PlanStats), ElmemError> {
    validate_retiring(tier.membership().members(), retiring)?;
    let retained_ring = tier.membership().ring().without(retiring);
    let auto = jobs == 0;
    let jobs = if auto { auto_planning_jobs() } else { jobs };
    let retiring_items: u64 = retiring
        .iter()
        .filter_map(|&id| tier.node(id).ok())
        .map(|n| n.store.len())
        .sum();
    let route_jobs = if auto && retiring_items < PAR_MIN_ITEMS {
        1
    } else {
        jobs
    };
    let routed = route_sources(tier, retiring, &retained_ring, route_jobs)?;
    let mut items_considered = 0u64;
    let mut inbound: InboundMap = HashMap::new();
    for (&src, routed_src) in retiring.iter().zip(routed) {
        items_considered += routed_src.n_items;
        for ((target, class), items) in routed_src.per_target {
            inbound
                .entry((target, class))
                .or_default()
                .push((src, items));
        }
    }
    let mut dest_keys: Vec<(NodeId, ClassId)> = inbound.keys().copied().collect();
    dest_keys.sort_unstable();
    let fuse_jobs = if auto && items_considered < PAR_MIN_ITEMS {
        1
    } else {
        jobs
    };
    let outcome = build_shipments(tier, &dest_keys, inbound, fuse_jobs)?;
    Ok((
        outcome.plan,
        PlanStats {
            items_considered,
            cells: dest_keys.len(),
            comparisons: outcome.comparisons,
        },
    ))
}

/// Executes the 3-phase scale-in migration: moves the globally hottest
/// subset of each retiring node's data to the retained nodes.
///
/// Does **not** flip the membership — the caller commits the scaling at
/// `report.completed` (requests keep being served by the old membership
/// during the migration, exactly as in the paper).
///
/// # Errors
///
/// * [`ElmemError::InvalidScaling`] if `retiring` is empty or would empty
///   the membership;
/// * [`ElmemError::UnknownNode`] if a retiring id is not a member.
pub fn migrate_scale_in(
    tier: &mut CacheTier,
    retiring: &[NodeId],
    now: SimTime,
    costs: &MigrationCosts,
    import_mode: ImportMode,
) -> Result<MigrationReport, ElmemError> {
    migrate_scale_in_supervised(
        tier,
        retiring,
        now,
        costs,
        import_mode,
        &mut Supervision::none(),
    )
}

/// Typed node access during migration: a member that cannot be reached
/// mid-flight surfaces as [`ElmemError::NodeUnavailable`] instead of a
/// panic.
fn live_node(tier: &CacheTier, id: NodeId) -> Result<&CacheNode, ElmemError> {
    tier.node(id).map_err(|_| ElmemError::NodeUnavailable(id.0))
}

fn live_node_mut(tier: &mut CacheTier, id: NodeId) -> Result<&mut CacheNode, ElmemError> {
    tier.node_mut(id)
        .map_err(|_| ElmemError::NodeUnavailable(id.0))
}

/// Builds the terminal outcome for an aborted migration attempt:
/// `completed` is the abort instant (never before `started`).
#[allow(clippy::too_many_arguments)]
fn aborted(
    started: SimTime,
    at: SimTime,
    phases: PhaseBreakdown,
    phase: MigrationPhase,
    cause: AbortCause,
    items_migrated: u64,
    bytes_migrated: ByteSize,
    metadata_bytes: ByteSize,
    items_considered: u64,
    transfer_retries: u32,
) -> ExecOutcome {
    ExecOutcome::Done(MigrationReport {
        started,
        completed: at.max(started),
        phases,
        items_migrated,
        bytes_migrated,
        metadata_bytes,
        items_considered,
        outcome: MigrationOutcome::Aborted { phase, cause },
        transfer_retries,
        resumes: Vec::new(),
    })
}

// ---------------------------------------------------------------------------
// Crash-recoverable execution (DESIGN.md §13)
//
// The executors below run one *attempt* of a migration. Under an [`ExecCtl`]
// with a scheduled Master crash they stop at the first boundary the crash
// precedes and return [`ExecOutcome::Interrupted`]; the journaled runner
// ([`run_journaled`]) then truncates the journal to what was durable at the
// crash instant, replays it, and launches the next attempt — resuming from
// the sealed manifest when the crash landed after phase 2, or replanning
// from scratch when it landed earlier (phases 1–2 never mutate any store,
// so a pre-seal replan reproduces the identical plan from the unmutated
// sources).
// ---------------------------------------------------------------------------

/// Per-attempt execution control for the journaled runner: the next
/// scheduled Master crash, the journal to append durable records to, and
/// the replayed state when this attempt is a resume.
struct ExecCtl<'j> {
    /// Next Master crash strictly after the attempt's start, if any.
    master_crash: Option<SimTime>,
    /// The journal and this migration's job id, when journaling.
    journal: Option<(&'j mut MigrationJournal, u64)>,
    /// Replayed journal state when resuming an interrupted migration.
    resume: Option<ReplayState>,
}

impl ExecCtl<'static> {
    /// No Master crashes, no journal: the legacy single-attempt path.
    fn none() -> Self {
        ExecCtl {
            master_crash: None,
            journal: None,
            resume: None,
        }
    }
}

impl ExecCtl<'_> {
    /// The Master crash preempting work that completes at `boundary`, if
    /// one is scheduled strictly before it.
    fn interrupted(&self, boundary: SimTime) -> Option<SimTime> {
        self.master_crash.filter(|&c| c < boundary)
    }

    /// The journaled job id, when journaling.
    fn id(&self) -> Option<u64> {
        self.journal.as_ref().map(|(_, id)| *id)
    }

    /// Appends a record (built from the job id) that becomes durable at
    /// `durable_at`. No-op without a journal.
    fn log(&mut self, durable_at: SimTime, record: impl FnOnce(u64) -> JournalRecord) {
        if let Some((journal, id)) = self.journal.as_mut() {
            journal.append(durable_at, record(*id));
        }
    }
}

/// How one migration attempt ended.
enum ExecOutcome {
    /// The attempt ran to a terminal report (completed or fault-aborted).
    Done(MigrationReport),
    /// A Master crash at `at` interrupted the attempt inside `phase`.
    Interrupted { at: SimTime, phase: MigrationPhase },
}

/// Which phase a fault time falls in, given the phase boundaries.
fn phase_of(t: SimTime, phase1_end: SimTime, phase2_end: SimTime) -> MigrationPhase {
    if t < phase1_end {
        MigrationPhase::MetadataTransfer
    } else if t < phase2_end {
        MigrationPhase::HotnessComparison
    } else {
        MigrationPhase::DataMigration
    }
}

/// Rebuilds a sealed shipment plan from freshly routed source dumps.
///
/// Sources are never mutated before the scale-in commits, so re-routing
/// their dumps reproduces the exact item lists FuseCache chose prefixes
/// from; each sealed `take` prefix must then hash to the sealed checksum.
/// Any divergence means the world changed under the journal — an
/// [`ElmemError::InconsistentMigration`], never a silent re-plan.
fn reconstruct_shipments(
    mut inbound: InboundMap,
    manifest: &[ShipmentManifest],
) -> Result<Vec<Shipment>, ElmemError> {
    // Index the routed lists by the manifest's identity triple.
    let mut routed: HashMap<(NodeId, NodeId, ClassId), Vec<ItemMeta>> = HashMap::new();
    for ((target, class), lists) in inbound.drain() {
        for (source, items) in lists {
            routed.insert((source, target, class), items);
        }
    }
    let mut plan = Vec::with_capacity(manifest.len());
    for m in manifest {
        let items = routed
            .remove(&(m.source, m.target, m.class))
            .ok_or_else(|| {
                ElmemError::InconsistentMigration(format!(
                    "resume: no routed items for sealed shipment seq {} ({}→{} {})",
                    m.seq, m.source, m.target, m.class
                ))
            })?;
        if m.take > items.len() {
            return Err(ElmemError::InconsistentMigration(format!(
                "resume: sealed shipment seq {} takes {} of only {} routed items",
                m.seq,
                m.take,
                items.len()
            )));
        }
        let shipment = Shipment {
            seq: m.seq,
            source: m.source,
            target: m.target,
            class: m.class,
            items,
            take: m.take,
            checksum: m.checksum,
        };
        shipment.verify_content()?;
        plan.push(shipment);
    }
    Ok(plan)
}

/// [`migrate_scale_in`] under supervision: per-phase deadlines, bounded
/// exponential-backoff retries for dropped shipments, and clean aborts
/// when a source or destination crashes mid-flight.
///
/// On an abort the function still returns `Ok`: the report's `outcome` is
/// [`MigrationOutcome::Aborted`] with the phase the fault landed in and
/// its cause, `completed` is the abort instant, and any phase-3 imports
/// already applied are **kept** (they are strictly-hotter data already on
/// healthy retained nodes). The caller — the Master — decides the
/// fallback: commit the scaling without further migration, excluding
/// crashed nodes from the retained membership.
///
/// # Errors
///
/// Same validation as [`migrate_scale_in`];
/// [`ElmemError::NodeUnavailable`] if a node vanishes from the tier
/// mid-computation.
pub fn migrate_scale_in_supervised(
    tier: &mut CacheTier,
    retiring: &[NodeId],
    now: SimTime,
    costs: &MigrationCosts,
    import_mode: ImportMode,
    supervision: &mut Supervision<'_>,
) -> Result<MigrationReport, ElmemError> {
    match exec_scale_in(
        tier,
        retiring,
        now,
        costs,
        import_mode,
        supervision,
        ExecCtl::none(),
    )? {
        ExecOutcome::Done(report) => Ok(report),
        ExecOutcome::Interrupted { .. } => Err(ElmemError::InconsistentMigration(
            "unjournaled migration cannot be interrupted by a Master crash".to_string(),
        )),
    }
}

/// One attempt of the supervised scale-in migration, interruptible by a
/// scheduled Master crash and resumable from replayed journal state (see
/// [`migrate_scale_in_supervised`] for the fault semantics of a single
/// uninterrupted attempt).
fn exec_scale_in(
    tier: &mut CacheTier,
    retiring: &[NodeId],
    now: SimTime,
    costs: &MigrationCosts,
    import_mode: ImportMode,
    supervision: &mut Supervision<'_>,
    mut ctl: ExecCtl<'_>,
) -> Result<ExecOutcome, ElmemError> {
    validate_retiring(tier.membership().members(), retiring)?;
    let retained_ring = tier.membership().ring().without(retiring);

    // A resume after the plan sealed is manifest-driven: partial imports
    // have already mutated the destinations, so FuseCache must not re-run.
    // The shipments are instead reconstructed from a fresh source dump
    // (sources are never mutated before the commit) and verified against
    // the sealed checksums. A resume *before* the seal replans from
    // scratch — nothing was imported yet, so the replan is identical. A
    // post-seal attempt also skips drop sampling in phase 1: the retry
    // RNG draws belong to shipping, and a resumed pull re-reads the dump
    // rather than re-racing the injector.
    let resume = ctl.resume.take();
    let sealed: Option<Vec<ShipmentManifest>> = resume.as_ref().and_then(|st| st.manifest.clone());
    let acked: BTreeSet<u64> = resume.map(|st| st.acked).unwrap_or_default();

    let mut phases = PhaseBreakdown::default();
    let mut transfer_retries = 0u32;

    // §III-C scoring cost: every member node crawls its slabs for medians
    // (done in parallel across nodes; take the max = any node's cost).
    let mut max_slabs = 0u64;
    for &id in tier.membership().members() {
        let store = &live_node(tier, id)?.store;
        let slabs = store
            .classes()
            .ids()
            .filter(|&c| store.len_of_class(c) > 0)
            .count() as u64;
        max_slabs = max_slabs.max(slabs);
    }
    phases.scoring = SimTime::from_nanos(max_slabs * costs.score_ns_per_slab);

    // Phase 1 — dump + hash on each retiring node (§III-D1 already runs
    // the sources in parallel; here worker threads fan the routing out
    // when the volume warrants it, reassembled in retiring order so the
    // result is byte-identical to a serial pass), then ship metadata to
    // targets (per-source link, serialized, in retiring order — link
    // scheduling and drop sampling are order-sensitive, so shipping stays
    // serial). A dropped shipment is retried after a backoff; the retry
    // budget covers only these injected drops (not database sheds).
    let jobs = auto_planning_jobs();
    let retiring_items: u64 = retiring
        .iter()
        .filter_map(|&id| tier.node(id).ok())
        .map(|n| n.store.len())
        .sum();
    let route_jobs = if retiring.len() >= 2 && retiring_items >= PAR_MIN_ITEMS {
        jobs
    } else {
        1
    };
    let routed = route_sources(tier, retiring, &retained_ring, route_jobs)?;
    let mut items_considered = 0u64;
    let mut metadata_bytes = ByteSize::ZERO;
    let mut dump_max = SimTime::ZERO;
    // (target, class) → (source, items) lists.
    let mut inbound: InboundMap = HashMap::new();
    let mut transfer_done = now;
    for (&src, routed_src) in retiring.iter().zip(routed) {
        let n_items = routed_src.n_items;
        items_considered += n_items;
        dump_max = dump_max.max(SimTime::from_nanos(n_items * costs.dump_ns_per_item));
        // Ship metadata over the source's NIC (tarball over ssh: one
        // serialized stream per source; the pipeline's per-item CPU cost
        // dominates the 21 B/item wire cost). Dump totals accumulate
        // source-by-source in this loop so an abort's partial report is
        // the same as when routing ran inline here.
        let bytes = ByteSize((KEY_BYTES + TIMESTAMP_BYTES) * n_items);
        metadata_bytes += bytes;
        let pipeline = SimTime::from_nanos(n_items * costs.metadata_ns_per_item);
        let mut attempt = 0u32;
        let mut submit_at = now;
        let done = loop {
            let completion = live_node_mut(tier, src)?
                .link
                .schedule_transfer(submit_at, bytes)
                + pipeline;
            if sealed.is_some() || !supervision.sample_metadata_drop() {
                break completion;
            }
            attempt += 1;
            transfer_retries += 1;
            if attempt >= supervision.retry.max_attempts {
                phases.dump = dump_max;
                phases.metadata_transfer = completion.saturating_sub(now);
                return Ok(aborted(
                    now,
                    completion,
                    phases,
                    MigrationPhase::MetadataTransfer,
                    AbortCause::TransferRetriesExhausted {
                        source: src,
                        attempts: attempt,
                    },
                    0,
                    ByteSize::ZERO,
                    metadata_bytes,
                    items_considered,
                    transfer_retries,
                ));
            }
            submit_at = completion + supervision.retry.backoff(attempt);
        };
        transfer_done = transfer_done.max(done);
        for ((target, class), items) in routed_src.per_target {
            inbound
                .entry((target, class))
                .or_default()
                .push((src, items));
        }
    }
    phases.dump = dump_max;
    phases.metadata_transfer = transfer_done.saturating_sub(now);
    let phase1_end = now + phases.scoring + phases.dump + phases.metadata_transfer;

    // Master-crash gate: a crash inside phase 1 interrupts the attempt
    // before this boundary's journal record ever becomes durable.
    if let Some(t) = ctl.interrupted(phase1_end) {
        return Ok(ExecOutcome::Interrupted {
            at: t,
            phase: MigrationPhase::MetadataTransfer,
        });
    }
    ctl.log(phase1_end, |id| JournalRecord::PhaseDone {
        id,
        phase: MigrationPhase::MetadataTransfer,
        at: phase1_end,
    });

    // Destinations, deterministic order (needed for crash checks below
    // and the FuseCache pass).
    let mut dest_keys: Vec<(NodeId, ClassId)> = inbound.keys().copied().collect();
    dest_keys.sort_unstable();
    let mut dests: Vec<NodeId> = dest_keys.iter().map(|&(t, _)| t).collect();
    dests.dedup();

    // A source or destination that dies before the metadata lands aborts
    // the migration in phase 1: its stream breaks and the Master gives up
    // at the crash instant.
    for &src in retiring {
        if let Some(t) = supervision.crash_before(src, phase1_end) {
            return Ok(aborted(
                now,
                t,
                phases,
                MigrationPhase::MetadataTransfer,
                AbortCause::SourceCrashed(src),
                0,
                ByteSize::ZERO,
                metadata_bytes,
                items_considered,
                transfer_retries,
            ));
        }
    }
    for &dest in &dests {
        if let Some(t) = supervision.crash_before(dest, phase1_end) {
            return Ok(aborted(
                now,
                t,
                phases,
                MigrationPhase::MetadataTransfer,
                AbortCause::DestinationCrashed(dest),
                0,
                ByteSize::ZERO,
                metadata_bytes,
                items_considered,
                transfer_retries,
            ));
        }
    }
    if let Some(budget) = supervision.deadlines.metadata {
        if phases.metadata_transfer > budget {
            return Ok(aborted(
                now,
                now + phases.scoring + phases.dump + budget,
                phases,
                MigrationPhase::MetadataTransfer,
                AbortCause::DeadlineExceeded,
                0,
                ByteSize::ZERO,
                metadata_bytes,
                items_considered,
                transfer_retries,
            ));
        }
    }

    // Phase 2 — FuseCache on each retained node, per class: how many items
    // to accept from each source. Runs in parallel across destinations
    // (worker threads too, when the volume warrants it); cost = max per
    // destination. The chosen items are moved out of the routed lists into
    // the plan — no cloning. On a manifest-driven resume FuseCache is
    // skipped entirely (the destinations already absorbed partial imports,
    // so re-comparing would pick a different plan): the sealed plan is
    // reconstructed from the freshly routed lists and checksum-verified.
    let (plan, phase2_end) = match &sealed {
        Some(manifest) => (reconstruct_shipments(inbound, manifest)?, phase1_end),
        None => {
            let fuse_jobs = if items_considered >= PAR_MIN_ITEMS {
                jobs
            } else {
                1
            };
            let outcome = build_shipments(tier, &dest_keys, inbound, fuse_jobs)?;
            phases.fusecache = SimTime::from_nanos(
                outcome
                    .per_dest_comparisons
                    .values()
                    .map(|&c| c * costs.fusecache_ns_per_comparison)
                    .max()
                    .unwrap_or(0),
            );
            (outcome.plan, phase1_end + phases.fusecache)
        }
    };

    // Master-crash gate at the phase-2 boundary: a crash here loses the
    // plan (it only seals at the boundary), so the resumed attempt
    // replans from scratch.
    if let Some(t) = ctl.interrupted(phase2_end) {
        return Ok(ExecOutcome::Interrupted {
            at: t,
            phase: MigrationPhase::HotnessComparison,
        });
    }
    if sealed.is_none() {
        ctl.log(phase2_end, |id| JournalRecord::PlanSealed {
            id,
            at: phase2_end,
            manifest: plan.iter().map(Shipment::manifest).collect(),
        });
        ctl.log(phase2_end, |id| JournalRecord::PhaseDone {
            id,
            phase: MigrationPhase::HotnessComparison,
            at: phase2_end,
        });
    }

    // A destination dying during the comparison aborts in phase 2
    // (crashes before phase 1's end already returned above).
    for &dest in &dests {
        if let Some(t) = supervision.crash_before(dest, phase2_end) {
            return Ok(aborted(
                now,
                t,
                phases,
                MigrationPhase::HotnessComparison,
                AbortCause::DestinationCrashed(dest),
                0,
                ByteSize::ZERO,
                metadata_bytes,
                items_considered,
                transfer_retries,
            ));
        }
    }
    if let Some(budget) = supervision.deadlines.hotness {
        if phases.fusecache > budget {
            return Ok(aborted(
                now,
                phase1_end + budget,
                phases,
                MigrationPhase::HotnessComparison,
                AbortCause::DeadlineExceeded,
                0,
                ByteSize::ZERO,
                metadata_bytes,
                items_considered,
                transfer_retries,
            ));
        }
    }

    // Phase 3 — ship the chosen KV pairs (source links, serialized) and
    // batch-import on the destinations. Imports applied before an abort
    // are kept: they are strictly-hotter data already in place.
    let data_start = phase2_end;
    let mut items_migrated = 0u64;
    let mut bytes_migrated = ByteSize::ZERO;
    let mut data_done = data_start;
    let mut import_ns: HashMap<NodeId, u64> = HashMap::new();
    for shipment in plan {
        let bytes = ByteSize(shipment.items().iter().map(|i| i.footprint()).sum());
        if acked.contains(&shipment.seq) {
            // Durably acked before the crash: the import already applied
            // on its destination. Count it toward the totals (so a
            // resumed report matches the uninterrupted one) but ship
            // nothing and charge no transfer or import time.
            bytes_migrated += bytes;
            items_migrated += shipment.len() as u64;
            continue;
        }
        let (src, target) = (shipment.source, shipment.target);
        let pipeline = SimTime::from_nanos(shipment.len() as u64 * costs.data_ns_per_item);
        let mut attempt = 0u32;
        let mut submit_at = data_start;
        let done = loop {
            let completion = live_node_mut(tier, src)?
                .link
                .schedule_transfer(submit_at, bytes)
                + pipeline;
            if !supervision.sample_transfer_drop() {
                break completion;
            }
            attempt += 1;
            transfer_retries += 1;
            if attempt >= supervision.retry.max_attempts {
                phases.data_transfer = completion.saturating_sub(data_start);
                phases.import = SimTime::from_nanos(import_ns.values().copied().max().unwrap_or(0));
                return Ok(aborted(
                    now,
                    completion,
                    phases,
                    MigrationPhase::DataMigration,
                    AbortCause::TransferRetriesExhausted {
                        source: src,
                        attempts: attempt,
                    },
                    items_migrated,
                    bytes_migrated,
                    metadata_bytes,
                    items_considered,
                    transfer_retries,
                ));
            }
            submit_at = completion + supervision.retry.backoff(attempt);
        };
        // Master-crash gate: the Master dies before this shipment lands,
        // so it never ships. Everything already imported stays (the
        // journaled runner resumes; the unjournaled path never sees a
        // Master crash).
        if let Some(t) = ctl.interrupted(done) {
            return Ok(ExecOutcome::Interrupted {
                at: t,
                phase: phase_of(t, phase1_end, phase2_end),
            });
        }
        // A source or destination dying before this shipment lands aborts
        // here, keeping everything already imported. The phase is the one
        // the crash time falls in (a node may die while idle in an
        // earlier window and only be detected at its next shipment).
        let crashed = supervision
            .crash_before(src, done)
            .map(|t| (t, AbortCause::SourceCrashed(src)))
            .or_else(|| {
                supervision
                    .crash_before(target, done)
                    .map(|t| (t, AbortCause::DestinationCrashed(target)))
            });
        if let Some((t, cause)) = crashed {
            phases.data_transfer = t.max(data_start).saturating_sub(data_start);
            phases.import = SimTime::from_nanos(import_ns.values().copied().max().unwrap_or(0));
            return Ok(aborted(
                now,
                t,
                phases,
                phase_of(t, phase1_end, phase2_end),
                cause,
                items_migrated,
                bytes_migrated,
                metadata_bytes,
                items_considered,
                transfer_retries,
            ));
        }
        data_done = data_done.max(done);
        // Apply the import (items are hottest-first within each source's
        // class list; the store re-sorts/merges as configured). The sealed
        // checksum proves the shipment arrives exactly as planned. The
        // journaled path goes through the destination's import ledger,
        // which suppresses a re-delivered shipment whose import already
        // applied before a Master crash ate its ack.
        shipment.verify_content()?;
        let node = live_node_mut(tier, target)?;
        let applied = match ctl.id() {
            Some(id) => node.import_shipment(
                id,
                shipment.seq,
                shipment.checksum(),
                shipment.class,
                shipment.items(),
                import_mode,
            )?,
            None => {
                node.store
                    .batch_import(shipment.class, shipment.items(), import_mode)?;
                true
            }
        };
        if applied {
            *import_ns.entry(target).or_default() +=
                shipment.len() as u64 * costs.import_ns_per_item;
        }
        // The ack becomes durable only after the WAL flush lag: a Master
        // crash inside the window re-delivers this shipment on resume and
        // the ledger suppresses the duplicate import.
        ctl.log(done + ACK_DURABILITY_LAG, |id| {
            JournalRecord::ShipmentAcked {
                id,
                seq: shipment.seq,
                at: done,
            }
        });
        bytes_migrated += bytes;
        items_migrated += shipment.len() as u64;
    }
    phases.data_transfer = data_done.saturating_sub(data_start);
    phases.import = SimTime::from_nanos(import_ns.values().copied().max().unwrap_or(0));

    // Master-crash gate at the final boundary: all data landed, but the
    // Master dies before recording completion — the resumed attempt
    // re-delivers only what the journal never durably acked.
    let completed = now + phases.total();
    if let Some(t) = ctl.interrupted(completed) {
        return Ok(ExecOutcome::Interrupted {
            at: t,
            phase: MigrationPhase::DataMigration,
        });
    }

    if let Some(budget) = supervision.deadlines.data {
        if phases.data_transfer + phases.import > budget {
            return Ok(aborted(
                now,
                data_start + budget,
                phases,
                MigrationPhase::DataMigration,
                AbortCause::DeadlineExceeded,
                items_migrated,
                bytes_migrated,
                metadata_bytes,
                items_considered,
                transfer_retries,
            ));
        }
    }

    ctl.log(completed, |id| JournalRecord::PhaseDone {
        id,
        phase: MigrationPhase::DataMigration,
        at: completed,
    });
    Ok(ExecOutcome::Done(MigrationReport {
        started: now,
        completed,
        phases,
        items_migrated,
        bytes_migrated,
        metadata_bytes,
        items_considered,
        outcome: MigrationOutcome::Completed,
        transfer_retries,
        resumes: Vec::new(),
    }))
}

/// Executes the scale-out migration (§III-D4): each existing member ships
/// the keys that hash to the `new_nodes` under the expanded membership.
///
/// Does **not** flip the membership; the caller commits at
/// `report.completed`. The new nodes must already be provisioned (online,
/// outside the membership).
///
/// # Errors
///
/// [`ElmemError::InvalidScaling`] if `new_nodes` is empty or contains a
/// current member.
pub fn migrate_scale_out(
    tier: &mut CacheTier,
    new_nodes: &[NodeId],
    now: SimTime,
    costs: &MigrationCosts,
) -> Result<MigrationReport, ElmemError> {
    match exec_scale_out(tier, new_nodes, now, costs, ExecCtl::none())? {
        ExecOutcome::Done(report) => Ok(report),
        ExecOutcome::Interrupted { .. } => Err(ElmemError::InconsistentMigration(
            "unjournaled migration cannot be interrupted by a Master crash".to_string(),
        )),
    }
}

/// Validates a scale-out request: the new nodes must be non-empty,
/// provisioned, and outside the current membership.
fn validate_scale_out(tier: &CacheTier, new_nodes: &[NodeId]) -> Result<(), ElmemError> {
    if new_nodes.is_empty() {
        return Err(ElmemError::InvalidScaling("no new nodes".to_string()));
    }
    let members = tier.membership().members();
    for id in new_nodes {
        if members.contains(id) {
            return Err(ElmemError::InvalidScaling(format!(
                "{id} is already a member"
            )));
        }
        tier.node(*id)?; // must be provisioned
    }
    Ok(())
}

/// One attempt of the scale-out migration, interruptible by a scheduled
/// Master crash and resumable from replayed journal state (see
/// [`migrate_scale_out`]).
fn exec_scale_out(
    tier: &mut CacheTier,
    new_nodes: &[NodeId],
    now: SimTime,
    costs: &MigrationCosts,
    mut ctl: ExecCtl<'_>,
) -> Result<ExecOutcome, ElmemError> {
    validate_scale_out(tier, new_nodes)?;
    let expanded_ring = tier.membership().ring().with(new_nodes);

    // Re-dumping on resume is safe for scale-out too: imports land only
    // on the provisioned-but-not-yet-member new nodes, so the members'
    // dumps are untouched by a partially-executed plan. The re-derived
    // plan must still match the sealed manifest exactly.
    let resume = ctl.resume.take();
    let sealed: Option<Vec<ShipmentManifest>> = resume.as_ref().and_then(|st| st.manifest.clone());
    let acked: BTreeSet<u64> = resume.map(|st| st.acked).unwrap_or_default();

    let mut phases = PhaseBreakdown::default();
    let mut items_considered = 0u64;
    let mut items_migrated = 0u64;
    let mut bytes_migrated = ByteSize::ZERO;
    let mut dump_max = SimTime::ZERO;
    let mut transfer_done = now;
    let mut import_ns: HashMap<NodeId, u64> = HashMap::new();

    // Each existing member hashes its keys against the expanded membership
    // and ships whatever lands on a new node. Under consistent hashing this
    // is ~1/(k+1) of its keys, which typically fits the new node outright.
    let mut moves: Vec<(NodeId, NodeId, ClassId, Vec<ItemMeta>)> = Vec::new();
    for &src in tier.membership().members() {
        let dump = live_node(tier, src)?.store.dump_metadata();
        items_considered += dump.total_items();
        dump_max = dump_max.max(SimTime::from_nanos(
            dump.total_items() * costs.dump_ns_per_item,
        ));
        for class_dump in &dump.classes {
            let mut per_new: HashMap<NodeId, Vec<ItemMeta>> = HashMap::new();
            for item in &class_dump.items {
                let owner = expanded_ring.node_for(item.key).ok_or_else(|| {
                    ElmemError::InconsistentMigration("expanded ring is empty".to_string())
                })?;
                if new_nodes.contains(&owner) {
                    per_new.entry(owner).or_default().push(*item);
                }
            }
            for (target, items) in per_new {
                moves.push((src, target, class_dump.class, items));
            }
        }
    }
    phases.dump = dump_max;
    let seal_at = now + phases.dump;

    // Master-crash gate before the plan seals: the resumed attempt
    // re-dumps and re-derives the identical plan.
    if let Some(t) = ctl.interrupted(seal_at) {
        return Ok(ExecOutcome::Interrupted {
            at: t,
            phase: MigrationPhase::MetadataTransfer,
        });
    }

    moves.sort_by_key(|(s, t, c, _)| (*s, *t, *c)); // deterministic
    let plan: Vec<Shipment> = moves
        .into_iter()
        .enumerate()
        .map(|(i, (s, t, c, items))| Shipment::sealed(i as u64, s, t, c, items))
        .collect();
    match &sealed {
        Some(manifest) => {
            // The re-derived plan must reproduce the sealed one exactly
            // (same shipments, same contents — checksums included).
            if plan.len() != manifest.len()
                || plan
                    .iter()
                    .zip(manifest.iter())
                    .any(|(s, m)| s.manifest() != *m)
            {
                return Err(ElmemError::InconsistentMigration(
                    "resume: scale-out re-dump diverged from the sealed manifest".to_string(),
                ));
            }
        }
        None => {
            ctl.log(seal_at, |id| JournalRecord::PlanSealed {
                id,
                at: seal_at,
                manifest: plan.iter().map(Shipment::manifest).collect(),
            });
            ctl.log(seal_at, |id| JournalRecord::PhaseDone {
                id,
                phase: MigrationPhase::MetadataTransfer,
                at: seal_at,
            });
        }
    }

    // Ship + import. (In the rare case the shipped set exceeds the new
    // node's capacity, the store's import evicts the coldest overflow —
    // equivalent to the paper's "run FuseCache to determine the top pairs".)
    for shipment in plan {
        let bytes = ByteSize(shipment.items().iter().map(|i| i.footprint()).sum());
        bytes_migrated += bytes;
        items_migrated += shipment.len() as u64;
        if acked.contains(&shipment.seq) {
            // Durably acked before the crash: already imported on the new
            // node; counted above, nothing ships.
            continue;
        }
        let done = live_node_mut(tier, shipment.source)?
            .link
            .schedule_transfer(seal_at, bytes);
        transfer_done = transfer_done.max(done);
        // Master-crash gate: the Master dies before this shipment lands.
        if let Some(t) = ctl.interrupted(done) {
            return Ok(ExecOutcome::Interrupted {
                at: t,
                phase: MigrationPhase::DataMigration,
            });
        }
        let target = shipment.target;
        let node = live_node_mut(tier, target)?;
        let applied = match ctl.id() {
            Some(id) => node.import_shipment(
                id,
                shipment.seq,
                shipment.checksum(),
                shipment.class,
                shipment.items(),
                ImportMode::Merge,
            )?,
            None => {
                node.store
                    .batch_import(shipment.class, shipment.items(), ImportMode::Merge)?;
                true
            }
        };
        if applied {
            *import_ns.entry(target).or_default() +=
                shipment.len() as u64 * costs.import_ns_per_item;
        }
        ctl.log(done + ACK_DURABILITY_LAG, |id| {
            JournalRecord::ShipmentAcked {
                id,
                seq: shipment.seq,
                at: done,
            }
        });
        // The source keeps its copy until the membership flips; after the
        // flip those keys hash to the new node and the stale copies age out
        // of the source's LRU naturally (as in the real system).
    }
    phases.data_transfer = transfer_done.saturating_sub(seal_at);
    phases.import = SimTime::from_nanos(import_ns.values().copied().max().unwrap_or(0));

    let completed = now + phases.total();
    if let Some(t) = ctl.interrupted(completed) {
        return Ok(ExecOutcome::Interrupted {
            at: t,
            phase: MigrationPhase::DataMigration,
        });
    }
    ctl.log(completed, |id| JournalRecord::PhaseDone {
        id,
        phase: MigrationPhase::DataMigration,
        at: completed,
    });
    Ok(ExecOutcome::Done(MigrationReport {
        started: now,
        completed,
        phases,
        items_migrated,
        bytes_migrated,
        metadata_bytes: ByteSize::ZERO,
        items_considered,
        outcome: MigrationOutcome::Completed,
        transfer_retries: 0,
        resumes: Vec::new(),
    }))
}

/// The *Naive* comparator's migration (§V-B4): ships the hottest
/// `fraction` of each retiring node's items (assuming hotness distributions
/// are similar across nodes — no cross-node comparison), and the targets
/// import them through the ordinary `set` path.
///
/// Two deliberate differences from ElMem's migration, mirroring the paper:
///
/// * no FuseCache: the shipped amount ignores what actually fits hotter
///   than the residents;
/// * **recency corruption**: plain `set`s stamp every migrated item with a
///   fresh access time, so cold imports land *above* genuinely warm
///   residents in the MRU order. Until the LRU dynamics wash that out,
///   evictions keep hitting warm residents — which is why the paper's
///   Naive "continues to degrade well after the scaling event". (ElMem's
///   custom batch import preserves original timestamps, §III-D3.)
///
/// # Errors
///
/// Same validation as [`migrate_scale_in`]; also rejects `fraction`
/// outside `[0, 1]`.
pub fn migrate_naive_scale_in(
    tier: &mut CacheTier,
    retiring: &[NodeId],
    fraction: f64,
    now: SimTime,
    costs: &MigrationCosts,
) -> Result<MigrationReport, ElmemError> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(ElmemError::InvalidConfig(format!(
            "naive fraction {fraction} outside [0, 1]"
        )));
    }
    validate_retiring(tier.membership().members(), retiring)?;
    let retained_ring = tier.membership().ring().without(retiring);

    let mut phases = PhaseBreakdown::default();
    let mut items_considered = 0u64;
    let mut items_migrated = 0u64;
    let mut bytes_migrated = ByteSize::ZERO;
    let mut dump_max = SimTime::ZERO;
    let mut transfer_done = now;
    let mut import_ns: HashMap<NodeId, u64> = HashMap::new();

    let mut moves: Vec<(NodeId, NodeId, ClassId, Vec<ItemMeta>)> = Vec::new();
    for &src in retiring {
        let dump = live_node(tier, src)?.store.dump_metadata();
        items_considered += dump.total_items();
        dump_max = dump_max.max(SimTime::from_nanos(
            dump.total_items() * costs.dump_ns_per_item,
        ));
        for class_dump in &dump.classes {
            let take = (class_dump.items.len() as f64 * fraction).ceil() as usize;
            let mut per_target: HashMap<NodeId, Vec<ItemMeta>> = HashMap::new();
            for (i, item) in class_dump.items.iter().take(take).enumerate() {
                let target = retained_ring.node_for(item.key).ok_or_else(|| {
                    ElmemError::InconsistentMigration("retained ring is empty".to_string())
                })?;
                // Plain-`set` semantics: the import gets a fresh access
                // time (preserving only the shipment's internal order).
                let corrupted = ItemMeta {
                    last_access: now + SimTime::from_nanos((take - i) as u64),
                    ..*item
                };
                per_target.entry(target).or_default().push(corrupted);
            }
            for (target, items) in per_target {
                moves.push((src, target, class_dump.class, items));
            }
        }
    }
    phases.dump = dump_max;

    moves.sort_by_key(|(s, t, c, _)| (*s, *t, *c));
    for (src, target, class, items) in moves {
        let bytes = ByteSize(items.iter().map(|i| i.footprint()).sum());
        bytes_migrated += bytes;
        items_migrated += items.len() as u64;
        let done = live_node_mut(tier, src)?
            .link
            .schedule_transfer(now + phases.dump, bytes);
        transfer_done = transfer_done.max(done);
        *import_ns.entry(target).or_default() += items.len() as u64 * costs.import_ns_per_item;
        let node = live_node_mut(tier, target)?;
        node.store
            .batch_import(class, &items, ImportMode::Prepend)?;
    }
    phases.data_transfer = transfer_done.saturating_sub(now + phases.dump);
    phases.import = SimTime::from_nanos(import_ns.values().copied().max().unwrap_or(0));

    Ok(MigrationReport {
        started: now,
        completed: now + phases.total(),
        phases,
        items_migrated,
        bytes_migrated,
        metadata_bytes: ByteSize::ZERO,
        items_considered,
        outcome: MigrationOutcome::Completed,
        transfer_retries: 0,
        resumes: Vec::new(),
    })
}

/// Drives [`exec_scale_in`]/[`exec_scale_out`] attempts under a
/// [`MasterPlan`]: journals `Started`, and on each Master-crash
/// interruption truncates the journal to what was durable at the crash
/// instant, replays it, and (per the recovery policy) either resumes a
/// fresh attempt after the restart delay or gives up with a
/// Master-crashed abort.
#[allow(clippy::too_many_arguments)]
fn run_journaled(
    tier: &mut CacheTier,
    nodes: &[NodeId],
    kind: MigrationKind,
    now: SimTime,
    master: &MasterPlan,
    journal: &mut MigrationJournal,
    id: u64,
    mut exec: impl FnMut(&mut CacheTier, SimTime, ExecCtl<'_>) -> Result<ExecOutcome, ElmemError>,
) -> Result<MigrationReport, ElmemError> {
    journal.append(
        now,
        JournalRecord::Started {
            id,
            kind,
            nodes: nodes.to_vec(),
            at: now,
        },
    );
    let mut resumes: Vec<ResumePoint> = Vec::new();
    let mut resume: Option<ReplayState> = None;
    let mut attempt_start = now;
    loop {
        let ctl = ExecCtl {
            master_crash: master.next_crash_after(attempt_start),
            journal: Some((&mut *journal, id)),
            resume: resume.take(),
        };
        match exec(tier, attempt_start, ctl)? {
            ExecOutcome::Done(mut report) => {
                // The report spans the whole journey: `started` is the
                // original trigger, `phases` the final attempt.
                report.started = now;
                report.resumes = resumes;
                let terminal = match report.outcome {
                    MigrationOutcome::Completed => JournalRecord::Committed {
                        id,
                        at: report.completed,
                    },
                    MigrationOutcome::Aborted { .. } => JournalRecord::Aborted {
                        id,
                        at: report.completed,
                    },
                };
                journal.append(report.completed, terminal);
                return Ok(report);
            }
            ExecOutcome::Interrupted { at, phase } => {
                // The crash eats every record not yet durable at `at`.
                journal.discard_after(at);
                let resumed_at = at + master.restart_delay;
                if master.recovery == MasterRecovery::Abort {
                    journal.append(resumed_at, JournalRecord::Aborted { id, at: resumed_at });
                    resumes.push(ResumePoint {
                        crashed_at: at,
                        resumed_at,
                        phase,
                    });
                    return Ok(MigrationReport {
                        started: now,
                        completed: resumed_at,
                        phases: PhaseBreakdown::default(),
                        items_migrated: 0,
                        bytes_migrated: ByteSize::ZERO,
                        metadata_bytes: ByteSize::ZERO,
                        items_considered: 0,
                        outcome: MigrationOutcome::Aborted {
                            phase,
                            cause: AbortCause::MasterCrashed,
                        },
                        transfer_retries: 0,
                        resumes,
                    });
                }
                let st = journal.replay(id);
                journal.append(
                    resumed_at,
                    JournalRecord::Resumed {
                        id,
                        at: resumed_at,
                        phase,
                    },
                );
                resumes.push(ResumePoint {
                    crashed_at: at,
                    resumed_at,
                    phase,
                });
                resume = Some(st);
                attempt_start = resumed_at;
            }
        }
    }
}

/// [`migrate_scale_in_supervised`] under a crash-recoverable Master: the
/// migration journals its progress into `journal` under job `id`, and a
/// Master crash scheduled in `supervision.master` interrupts the attempt;
/// per the recovery policy the Master then replays the journal and
/// resumes from the last durable point (or aborts). With no scheduled
/// crashes this is byte-for-byte [`migrate_scale_in_supervised`] plus the
/// journal records.
#[allow(clippy::too_many_arguments)]
pub fn migrate_scale_in_journaled(
    tier: &mut CacheTier,
    retiring: &[NodeId],
    now: SimTime,
    costs: &MigrationCosts,
    import_mode: ImportMode,
    supervision: &mut Supervision<'_>,
    journal: &mut MigrationJournal,
    id: u64,
) -> Result<MigrationReport, ElmemError> {
    // Validate before journaling Started: a rejected request never
    // existed as far as the journal is concerned.
    validate_retiring(tier.membership().members(), retiring)?;
    let master = supervision.master.clone();
    run_journaled(
        tier,
        retiring,
        MigrationKind::ScaleIn,
        now,
        &master,
        journal,
        id,
        |tier, at, ctl| exec_scale_in(tier, retiring, at, costs, import_mode, supervision, ctl),
    )
}

/// [`migrate_scale_out`] under a crash-recoverable Master; see
/// [`migrate_scale_in_journaled`] for the journey semantics.
pub fn migrate_scale_out_journaled(
    tier: &mut CacheTier,
    new_nodes: &[NodeId],
    now: SimTime,
    costs: &MigrationCosts,
    master: &MasterPlan,
    journal: &mut MigrationJournal,
    id: u64,
) -> Result<MigrationReport, ElmemError> {
    validate_scale_out(tier, new_nodes)?;
    run_journaled(
        tier,
        new_nodes,
        MigrationKind::ScaleOut,
        now,
        master,
        journal,
        id,
        |tier, at, ctl| exec_scale_out(tier, new_nodes, at, costs, ctl),
    )
}

fn validate_retiring(members: &[NodeId], retiring: &[NodeId]) -> Result<(), ElmemError> {
    if retiring.is_empty() {
        return Err(ElmemError::InvalidScaling("no retiring nodes".to_string()));
    }
    for id in retiring {
        if !members.contains(id) {
            return Err(ElmemError::UnknownNode(id.0));
        }
    }
    if retiring.len() >= members.len() {
        return Err(ElmemError::InvalidScaling(
            "cannot retire the whole tier".to_string(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmem_cluster::ClusterConfig;
    use elmem_util::KeyId;

    /// Tier with node 0 coldest: keys 0..400 spread by ring, all touched;
    /// node 0's items get old timestamps.
    fn warmed_tier() -> (CacheTier, Vec<u64>) {
        let mut tier = CacheTier::new(ClusterConfig::small_test());
        let mut keys_on_0 = Vec::new();
        for k in 0..2000u64 {
            let owner = tier.node_for_key(KeyId(k)).unwrap();
            let t = if owner == NodeId(0) {
                keys_on_0.push(k);
                SimTime::from_secs(100 + k)
            } else {
                SimTime::from_secs(100_000 + k)
            };
            tier.node_mut(owner)
                .unwrap()
                .store
                .set(KeyId(k), 64, t)
                .unwrap();
        }
        (tier, keys_on_0)
    }

    #[test]
    fn scale_in_moves_items_to_correct_targets() {
        let (mut tier, keys_on_0) = warmed_tier();
        let report = migrate_scale_in(
            &mut tier,
            &[NodeId(0)],
            SimTime::from_secs(200_000),
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .unwrap();
        assert!(report.items_migrated > 0);
        assert!(report.completed > report.started);
        // Migrated keys must sit on their retained-ring owner.
        let retained = tier.membership().ring().without(&[NodeId(0)]);
        let mut found = 0;
        for &k in &keys_on_0 {
            let target = retained.node_for(KeyId(k)).unwrap();
            if tier.node(target).unwrap().store.contains(KeyId(k)) {
                found += 1;
            }
        }
        assert!(found > 0, "no migrated key reached its target");
        assert_eq!(found, report.items_migrated);
    }

    #[test]
    fn migration_does_not_flip_membership() {
        let (mut tier, _) = warmed_tier();
        migrate_scale_in(
            &mut tier,
            &[NodeId(0)],
            SimTime::from_secs(200_000),
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .unwrap();
        assert_eq!(tier.membership().len(), 4);
        assert!(tier.node(NodeId(0)).unwrap().is_online());
    }

    #[test]
    fn migrated_items_are_hotter_than_evicted() {
        let (mut tier, _) = warmed_tier();
        // Record pre-migration tail hotness on a retained node.
        let report = migrate_scale_in(
            &mut tier,
            &[NodeId(0)],
            SimTime::from_secs(200_000),
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .unwrap();
        // Every class list on every retained node must still be sorted.
        for &id in tier.membership().members() {
            let store = &tier.node(id).unwrap().store;
            for class in store.classes().ids() {
                let dump = store.dump_class(class);
                for w in dump.items.windows(2) {
                    assert!(w[0].hotness() >= w[1].hotness());
                }
            }
        }
        assert!(report.phases.total() > SimTime::ZERO);
    }

    #[test]
    fn phase_breakdown_sums_to_completion() {
        let (mut tier, _) = warmed_tier();
        let start = SimTime::from_secs(200_000);
        let report = migrate_scale_in(
            &mut tier,
            &[NodeId(0)],
            start,
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .unwrap();
        assert_eq!(report.completed, start + report.phases.total());
        assert!(report.metadata_bytes > ByteSize::ZERO);
        assert!(report.bytes_migrated > ByteSize::ZERO);
        assert!(report.items_considered >= report.items_migrated);
    }

    #[test]
    fn retiring_unknown_node_fails() {
        let (mut tier, _) = warmed_tier();
        assert!(migrate_scale_in(
            &mut tier,
            &[NodeId(77)],
            SimTime::ZERO,
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .is_err());
    }

    #[test]
    fn retiring_everything_fails() {
        let (mut tier, _) = warmed_tier();
        let all: Vec<NodeId> = tier.membership().members().to_vec();
        assert!(migrate_scale_in(
            &mut tier,
            &all,
            SimTime::ZERO,
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .is_err());
    }

    #[test]
    fn scale_out_ships_remapped_keys() {
        let (mut tier, _) = warmed_tier();
        let new = tier.provision_nodes(1);
        let expanded = tier.membership().ring().with(&new);
        let report = migrate_scale_out(
            &mut tier,
            &new,
            SimTime::from_secs(200_000),
            &MigrationCosts::default(),
        )
        .unwrap();
        assert!(report.items_migrated > 0);
        // Every key that remaps to the new node and was cached must now be
        // on the new node.
        let new_store = &tier.node(new[0]).unwrap().store;
        assert_eq!(new_store.len(), report.items_migrated);
        for item in new_store.iter() {
            assert_eq!(expanded.node_for(item.key), Some(new[0]));
        }
        // Roughly 1/(k+1) = 1/5 of the 2000 cached keys.
        let frac = report.items_migrated as f64 / 2000.0;
        assert!((0.1..0.35).contains(&frac), "moved fraction {frac}");
    }

    #[test]
    fn scale_out_rejects_existing_member() {
        let (mut tier, _) = warmed_tier();
        assert!(migrate_scale_out(
            &mut tier,
            &[NodeId(0)],
            SimTime::ZERO,
            &MigrationCosts::default(),
        )
        .is_err());
    }

    #[test]
    fn scale_out_rejects_unprovisioned() {
        let (mut tier, _) = warmed_tier();
        assert!(migrate_scale_out(
            &mut tier,
            &[NodeId(50)],
            SimTime::ZERO,
            &MigrationCosts::default(),
        )
        .is_err());
    }

    #[test]
    fn costs_scale_phase_times() {
        let (mut t1, _) = warmed_tier();
        let (mut t2, _) = warmed_tier();
        let cheap = MigrationCosts::default();
        let costly = MigrationCosts {
            dump_ns_per_item: cheap.dump_ns_per_item * 10,
            ..cheap
        };
        let r1 = migrate_scale_in(
            &mut t1,
            &[NodeId(0)],
            SimTime::from_secs(200_000),
            &cheap,
            ImportMode::Merge,
        )
        .unwrap();
        let r2 = migrate_scale_in(
            &mut t2,
            &[NodeId(0)],
            SimTime::from_secs(200_000),
            &costly,
            ImportMode::Merge,
        )
        .unwrap();
        assert!(r2.phases.dump > r1.phases.dump);
    }

    // ---- supervision -----------------------------------------------------

    use elmem_sim::fault::FaultPlan;
    use elmem_util::DetRng;

    const NOW: SimTime = SimTime::from_secs(200_000);

    fn injector(plan: FaultPlan) -> FaultInjector {
        FaultInjector::new(plan, DetRng::seed(42).split("faults"))
    }

    fn supervised_run(
        tier: &mut CacheTier,
        faults: &mut FaultInjector,
        deadlines: PhaseDeadlines,
    ) -> MigrationReport {
        let mut sup = Supervision::with_faults(faults);
        sup.deadlines = deadlines;
        migrate_scale_in_supervised(
            tier,
            &[NodeId(0)],
            NOW,
            &MigrationCosts::default(),
            ImportMode::Merge,
            &mut sup,
        )
        .unwrap()
    }

    #[test]
    fn unsupervised_outcome_is_completed() {
        let (mut tier, _) = warmed_tier();
        let report = migrate_scale_in(
            &mut tier,
            &[NodeId(0)],
            NOW,
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .unwrap();
        assert!(report.outcome.is_completed());
        assert_eq!(report.transfer_retries, 0);
        assert_eq!(report.outcome.crashed_node(), None);
    }

    #[test]
    fn source_crash_in_phase1_aborts_without_imports() {
        let (mut tier, _) = warmed_tier();
        let crash_at = NOW + SimTime::from_millis(1);
        let mut inj = injector(FaultPlan::new().crash(crash_at, NodeId(0)));
        let report = supervised_run(&mut tier, &mut inj, PhaseDeadlines::none());
        assert_eq!(
            report.outcome,
            MigrationOutcome::Aborted {
                phase: MigrationPhase::MetadataTransfer,
                cause: AbortCause::SourceCrashed(NodeId(0)),
            }
        );
        assert_eq!(report.items_migrated, 0);
        assert_eq!(report.completed, crash_at);
        // The migration mutated no destination store.
        for id in [1u32, 2, 3] {
            let (fresh, _) = warmed_tier();
            assert_eq!(
                tier.node(NodeId(id)).unwrap().store.len(),
                fresh.node(NodeId(id)).unwrap().store.len()
            );
        }
    }

    #[test]
    fn destination_crash_in_phase3_keeps_partial_imports() {
        // Learn the fault-free phase boundaries first.
        let (mut probe, _) = warmed_tier();
        let clean = migrate_scale_in(
            &mut probe,
            &[NodeId(0)],
            NOW,
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .unwrap();
        assert!(clean.phases.data_transfer > SimTime::ZERO);
        let data_start = NOW
            + clean.phases.scoring
            + clean.phases.dump
            + clean.phases.metadata_transfer
            + clean.phases.fusecache;
        // Crash the highest-numbered destination just inside the data
        // window: moves to lower-numbered destinations land first.
        let crash_at = data_start + SimTime::from_nanos(1);
        let (mut tier, _) = warmed_tier();
        let mut inj = injector(FaultPlan::new().crash(crash_at, NodeId(3)));
        let report = supervised_run(&mut tier, &mut inj, PhaseDeadlines::none());
        match report.outcome {
            MigrationOutcome::Aborted { phase, cause } => {
                assert_eq!(phase, MigrationPhase::DataMigration);
                assert_eq!(cause, AbortCause::DestinationCrashed(NodeId(3)));
            }
            other => panic!("expected abort, got {other:?}"),
        }
        assert!(
            report.items_migrated > 0,
            "imports to healthy destinations are kept"
        );
        assert!(report.items_migrated < clean.items_migrated);
        assert_eq!(report.completed, crash_at);
    }

    #[test]
    fn certain_drops_exhaust_retry_budget() {
        let (mut tier, _) = warmed_tier();
        let mut inj = injector(FaultPlan::new().drop_metadata_with_prob(1.0));
        let report = supervised_run(&mut tier, &mut inj, PhaseDeadlines::none());
        match report.outcome {
            MigrationOutcome::Aborted { phase, cause } => {
                assert_eq!(phase, MigrationPhase::MetadataTransfer);
                assert_eq!(
                    cause,
                    AbortCause::TransferRetriesExhausted {
                        source: NodeId(0),
                        attempts: RetryPolicy::default().max_attempts,
                    }
                );
            }
            other => panic!("expected abort, got {other:?}"),
        }
        assert_eq!(report.transfer_retries, RetryPolicy::default().max_attempts);
        assert_eq!(report.items_migrated, 0);
        // Each failed attempt still burned link time.
        assert!(report.completed > NOW);
    }

    #[test]
    fn occasional_drops_retry_and_complete() {
        let (mut tier, _) = warmed_tier();
        let mut inj = injector(
            FaultPlan::new()
                .drop_metadata_with_prob(0.3)
                .drop_transfers_with_prob(0.15),
        );
        let report = supervised_run(&mut tier, &mut inj, PhaseDeadlines::none());
        // With these probabilities and a budget of 4 per shipment, the
        // seeded run completes after some retries.
        assert!(report.outcome.is_completed(), "{:?}", report.outcome);
        assert!(report.transfer_retries > 0);
        // Retries push the timeline out past the fault-free run.
        let (mut clean_tier, _) = warmed_tier();
        let clean = migrate_scale_in(
            &mut clean_tier,
            &[NodeId(0)],
            NOW,
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .unwrap();
        assert!(report.completed > clean.completed);
    }

    #[test]
    fn metadata_deadline_aborts() {
        let (mut tier, _) = warmed_tier();
        let mut inj = injector(FaultPlan::new());
        let deadlines = PhaseDeadlines {
            metadata: Some(SimTime::from_nanos(1)),
            ..PhaseDeadlines::none()
        };
        let report = supervised_run(&mut tier, &mut inj, deadlines);
        assert_eq!(
            report.outcome,
            MigrationOutcome::Aborted {
                phase: MigrationPhase::MetadataTransfer,
                cause: AbortCause::DeadlineExceeded,
            }
        );
    }

    #[test]
    fn supervised_runs_are_deterministic() {
        let run = || {
            let (mut tier, _) = warmed_tier();
            let mut inj = injector(
                FaultPlan::new()
                    .crash(NOW + SimTime::from_secs(3), NodeId(2))
                    .drop_metadata_with_prob(0.4),
            );
            supervised_run(&mut tier, &mut inj, PhaseDeadlines::none())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let retry = RetryPolicy::default();
        assert_eq!(retry.backoff(1), SimTime::from_millis(500));
        assert_eq!(retry.backoff(2), SimTime::from_secs(1));
        assert_eq!(retry.backoff(3), SimTime::from_secs(2));
        assert_eq!(retry.backoff(10), SimTime::from_secs(8));
        assert_eq!(retry.backoff(60), SimTime::from_secs(8));
    }

    // ---- crash-recoverable control plane (DESIGN.md §13) -----------------

    /// Every member's per-class item vectors, in deterministic order — the
    /// byte-level store state the resume invariants compare.
    fn fingerprint(tier: &CacheTier) -> Vec<(NodeId, ClassId, Vec<ItemMeta>)> {
        let mut members: Vec<NodeId> = tier.membership().members().to_vec();
        members.sort_unstable();
        let mut out = Vec::new();
        for id in members {
            let store = &tier.node(id).unwrap().store;
            for class in store.classes().ids() {
                out.push((id, class, store.dump_class(class).items));
            }
        }
        out
    }

    fn journaled_scale_in(
        tier: &mut CacheTier,
        master: MasterPlan,
        journal: &mut MigrationJournal,
    ) -> MigrationReport {
        let mut sup = Supervision::none();
        sup.master = master;
        migrate_scale_in_journaled(
            tier,
            &[NodeId(0)],
            NOW,
            &MigrationCosts::default(),
            ImportMode::Merge,
            &mut sup,
            journal,
            0,
        )
        .unwrap()
    }

    #[test]
    fn journaled_run_without_crashes_matches_supervised() {
        let (mut a, _) = warmed_tier();
        let (mut b, _) = warmed_tier();
        let ra = migrate_scale_in_supervised(
            &mut a,
            &[NodeId(0)],
            NOW,
            &MigrationCosts::default(),
            ImportMode::Merge,
            &mut Supervision::none(),
        )
        .unwrap();
        let mut journal = MigrationJournal::new();
        let rb = journaled_scale_in(&mut b, MasterPlan::default(), &mut journal);
        assert_eq!(ra, rb, "journaling must not perturb the migration");
        assert_eq!(fingerprint(&a), fingerprint(&b));
        // The journal tells the full story and replays to a committed job.
        let st = journal.replay(0);
        assert!(st.committed);
        assert_eq!(st.resumes, 0);
        assert_eq!(
            st.acked.len(),
            st.manifest.as_ref().unwrap().len(),
            "every sealed shipment acked"
        );
    }

    #[test]
    fn scale_in_resumes_byte_identically_at_any_crash_point() {
        let (mut clean, _) = warmed_tier();
        let mut clean_journal = MigrationJournal::new();
        let clean_report =
            journaled_scale_in(&mut clean, MasterPlan::default(), &mut clean_journal);
        let want = fingerprint(&clean);
        let span = clean_report.completed.saturating_sub(NOW).as_nanos();
        assert!(span > 0);

        let mut saw_suppressed_duplicate = false;
        for num in [1u64, 3, 5, 7, 9, 995, 999] {
            let crash = NOW + SimTime::from_nanos(span * num / 1000);
            let (mut tier, _) = warmed_tier();
            let mut journal = MigrationJournal::new();
            let report = journaled_scale_in(
                &mut tier,
                MasterPlan {
                    crashes: vec![crash],
                    ..MasterPlan::default()
                },
                &mut journal,
            );
            assert_eq!(report.outcome, MigrationOutcome::Completed);
            assert_eq!(report.resumes.len(), 1, "crash at {num}/1000");
            assert_eq!(report.resumes[0].crashed_at, crash);
            assert_eq!(report.started, NOW);
            assert_eq!(
                fingerprint(&tier),
                want,
                "resumed store state diverged (crash at {num}/1000)"
            );
            assert_eq!(report.items_migrated, clean_report.items_migrated);
            assert_eq!(report.bytes_migrated, clean_report.bytes_migrated);
            let st = journal.replay(0);
            assert!(st.committed);
            assert_eq!(st.resumes, 1);
            for id in tier.membership().members() {
                if tier
                    .node(*id)
                    .unwrap()
                    .import_ledger()
                    .duplicates_suppressed()
                    > 0
                {
                    saw_suppressed_duplicate = true;
                }
            }
        }
        assert!(
            saw_suppressed_duplicate,
            "no crash point exercised the ack-durability-lag re-delivery"
        );
    }

    #[test]
    fn resume_twice_equals_resume_once() {
        let (mut clean, _) = warmed_tier();
        let clean_report = journaled_scale_in(
            &mut clean,
            MasterPlan::default(),
            &mut MigrationJournal::new(),
        );
        let span = clean_report.completed.saturating_sub(NOW).as_nanos();
        // First crash mid-flight; the second lands inside the *resumed*
        // attempt (which replays the tail after the 500 ms restart).
        let first = NOW + SimTime::from_nanos(span / 2);
        let second = first + SimTime::from_millis(500) + SimTime::from_nanos(span / 4);
        let (mut tier, _) = warmed_tier();
        let mut journal = MigrationJournal::new();
        let report = journaled_scale_in(
            &mut tier,
            MasterPlan {
                crashes: vec![first, second],
                ..MasterPlan::default()
            },
            &mut journal,
        );
        assert_eq!(report.outcome, MigrationOutcome::Completed);
        assert_eq!(report.resumes.len(), 2);
        assert_eq!(fingerprint(&tier), fingerprint(&clean));
        assert_eq!(report.items_migrated, clean_report.items_migrated);
        assert_eq!(journal.replay(0).resumes, 2);
    }

    #[test]
    fn abort_recovery_gives_up_with_master_crashed() {
        let (mut clean, _) = warmed_tier();
        let clean_report = journaled_scale_in(
            &mut clean,
            MasterPlan::default(),
            &mut MigrationJournal::new(),
        );
        let span = clean_report.completed.saturating_sub(NOW).as_nanos();
        let crash = NOW + SimTime::from_nanos(span * 9 / 10);
        let (mut tier, _) = warmed_tier();
        let mut journal = MigrationJournal::new();
        let report = journaled_scale_in(
            &mut tier,
            MasterPlan {
                crashes: vec![crash],
                recovery: MasterRecovery::Abort,
                ..MasterPlan::default()
            },
            &mut journal,
        );
        assert_eq!(
            report.outcome,
            MigrationOutcome::Aborted {
                phase: MigrationPhase::DataMigration,
                cause: AbortCause::MasterCrashed,
            }
        );
        assert_eq!(report.completed, crash + SimTime::from_millis(500));
        assert_eq!(report.resumes.len(), 1);
        let st = journal.replay(0);
        assert!(st.aborted && !st.committed);
    }

    #[test]
    fn scale_out_resumes_byte_identically() {
        let (mut clean, _) = warmed_tier();
        let new_clean = clean.provision_nodes(1);
        let mut clean_journal = MigrationJournal::new();
        let clean_report = migrate_scale_out_journaled(
            &mut clean,
            &new_clean,
            NOW,
            &MigrationCosts::default(),
            &MasterPlan::default(),
            &mut clean_journal,
            0,
        )
        .unwrap();
        let span = clean_report.completed.saturating_sub(NOW).as_nanos();
        for num in [1u64, 500, 999] {
            let crash = NOW + SimTime::from_nanos(span * num / 1000);
            let (mut tier, _) = warmed_tier();
            let new = tier.provision_nodes(1);
            let mut journal = MigrationJournal::new();
            let report = migrate_scale_out_journaled(
                &mut tier,
                &new,
                NOW,
                &MigrationCosts::default(),
                &MasterPlan {
                    crashes: vec![crash],
                    ..MasterPlan::default()
                },
                &mut journal,
                0,
            )
            .unwrap();
            assert_eq!(report.outcome, MigrationOutcome::Completed);
            assert_eq!(report.resumes.len(), 1);
            assert_eq!(
                tier.node(new[0]).unwrap().store.dump_metadata().classes,
                clean
                    .node(new_clean[0])
                    .unwrap()
                    .store
                    .dump_metadata()
                    .classes,
                "new node contents diverged (crash at {num}/1000)"
            );
            assert_eq!(report.items_migrated, clean_report.items_migrated);
        }
    }

    #[test]
    fn journal_records_tell_a_coherent_story() {
        let (mut tier, _) = warmed_tier();
        let mut journal = MigrationJournal::new();
        let report = journaled_scale_in(&mut tier, MasterPlan::default(), &mut journal);
        let labels: Vec<&str> = journal.entries().iter().map(|e| e.record.label()).collect();
        assert_eq!(labels.first(), Some(&"started"));
        assert_eq!(labels.last(), Some(&"committed"));
        assert!(labels.contains(&"plan_sealed"));
        assert!(labels.contains(&"shipment_acked"));
        // Round-trips through the JSON WAL format byte-identically.
        let json = journal.to_json();
        let back = MigrationJournal::parse_json(&json).unwrap();
        assert_eq!(back.to_json(), json);
        assert_eq!(back.replay(0), journal.replay(0));
        assert!(report.resumes.is_empty());
    }
}
