//! The 3-phase migration (§III-D): metadata transfer, hotness comparison
//! (FuseCache), and data migration, with the per-phase cost model that
//! reproduces the paper's ~2-minute overhead breakdown (§V-B2).
//!
//! Scale-in: every retiring Agent hashes its keys against the *retained*
//! membership and ships `(key, timestamp)` metadata to the target nodes;
//! each retained Agent runs FuseCache per slab class over its own MRU dump
//! plus the incoming lists; the Master then directs the retiring nodes to
//! ship exactly the chosen KV pairs, which the retained nodes batch-import
//! (prepending/merging at the MRU head, evicting strictly colder items).
//!
//! Scale-out (§III-D4): each existing node ships the keys that hash to the
//! new nodes (≈ `1/(k+1)` of its keys); FuseCache is only needed if the
//! shipped set exceeds the new node's capacity.

use std::collections::HashMap;

use elmem_cluster::CacheTier;
use elmem_store::{ClassId, Hotness, ImportMode, ItemMeta, KEY_BYTES, TIMESTAMP_BYTES};
use elmem_util::{ByteSize, ElmemError, NodeId, SimTime};
use serde::{Deserialize, Serialize};

use crate::fusecache::fusecache_instrumented;

/// Per-(target, class) inbound metadata lists, keyed by source node.
type InboundMap = HashMap<(NodeId, ClassId), Vec<(NodeId, Vec<ItemMeta>)>>;

/// CPU-side cost constants of the migration pipeline, calibrated so the
/// paper-scale deployment (≈4 M items migrated) lands on the §V-B2
/// breakdown: score ≈20 s, hash+dump ≈50 s, metadata transfer ≈70 s,
/// FuseCache <2 s, data transfer ≈45 s, import ≈80 s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationCosts {
    /// Nanoseconds to score one slab (median probe + message), per node.
    pub score_ns_per_slab: u64,
    /// Nanoseconds to hash + dump one item's metadata on a retiring node.
    pub dump_ns_per_item: u64,
    /// Nanoseconds of serialization pipeline (tar + ssh) per item during
    /// the metadata transfer, on top of the wire time.
    pub metadata_ns_per_item: u64,
    /// Nanoseconds per hotness comparison inside FuseCache.
    pub fusecache_ns_per_comparison: u64,
    /// Nanoseconds of serialization pipeline per item during the data
    /// transfer, on top of the wire time.
    pub data_ns_per_item: u64,
    /// Nanoseconds to set one migrated item into Memcached on the target.
    pub import_ns_per_item: u64,
}

impl Default for MigrationCosts {
    fn default() -> Self {
        // Calibrated against the §V-B2 breakdown at ≈4 M items migrated:
        // dump 50 s → 12.5 µs/item; metadata transfer 70 s → ~17 µs/item
        // (tar/ssh pipeline dominates the 21 B/item wire cost); data
        // migration 45 s → ~8 µs/item + wire; import 80 s → 20 µs/item;
        // scoring 20 s across ~40 slabs.
        MigrationCosts {
            score_ns_per_slab: 50_000_000, // 50 ms per slab (crawler pass)
            dump_ns_per_item: 12_500,
            metadata_ns_per_item: 17_000,
            fusecache_ns_per_comparison: 100,
            data_ns_per_item: 8_000,
            import_ns_per_item: 20_000,
        }
    }
}

/// Wall-clock breakdown of one migration, mirroring §V-B2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Scoring the nodes from their slab medians (§III-C).
    pub scoring: SimTime,
    /// Hashing keys + dumping timestamps on the sources (§III-D1).
    pub dump: SimTime,
    /// Shipping `(key, timestamp)` metadata over the network (§III-D1).
    pub metadata_transfer: SimTime,
    /// Running FuseCache on the destinations (§III-D2).
    pub fusecache: SimTime,
    /// Shipping the chosen KV pairs (§III-D3).
    pub data_transfer: SimTime,
    /// Batch-importing them into Memcached (§III-D3).
    pub import: SimTime,
}

impl PhaseBreakdown {
    /// Total migration wall-clock (phases are sequential, per §III-D).
    pub fn total(&self) -> SimTime {
        self.scoring
            + self.dump
            + self.metadata_transfer
            + self.fusecache
            + self.data_transfer
            + self.import
    }
}

/// Outcome of a migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationReport {
    /// When the migration started.
    pub started: SimTime,
    /// When the last phase finished (= when the Master may flip membership).
    pub completed: SimTime,
    /// Per-phase wall-clock.
    pub phases: PhaseBreakdown,
    /// Items moved to retained/new nodes.
    pub items_migrated: u64,
    /// Bytes of KV data moved in phase 3.
    pub bytes_migrated: ByteSize,
    /// Bytes of metadata moved in phase 1.
    pub metadata_bytes: ByteSize,
    /// Items considered (dumped) on the sources.
    pub items_considered: u64,
}

/// How the destination merges migrated items (ElMem uses `Merge`; the
/// Naive comparator uses `Prepend` — see `policies`).
pub use elmem_store::ImportMode as MigrationImportMode;

/// Executes the 3-phase scale-in migration: moves the globally hottest
/// subset of each retiring node's data to the retained nodes.
///
/// Does **not** flip the membership — the caller commits the scaling at
/// `report.completed` (requests keep being served by the old membership
/// during the migration, exactly as in the paper).
///
/// # Errors
///
/// * [`ElmemError::InvalidScaling`] if `retiring` is empty or would empty
///   the membership;
/// * [`ElmemError::UnknownNode`] if a retiring id is not a member.
pub fn migrate_scale_in(
    tier: &mut CacheTier,
    retiring: &[NodeId],
    now: SimTime,
    costs: &MigrationCosts,
    import_mode: ImportMode,
) -> Result<MigrationReport, ElmemError> {
    let members = tier.membership().members().to_vec();
    validate_retiring(&members, retiring)?;
    let retained_ring = tier.membership().ring().without(retiring);

    let mut phases = PhaseBreakdown::default();

    // §III-C scoring cost: every member node crawls its slabs for medians
    // (done in parallel across nodes; take the max = any node's cost).
    let max_slabs = members
        .iter()
        .map(|&id| {
            let store = &tier.node(id).expect("member exists").store;
            store.classes().ids().filter(|&c| store.len_of_class(c) > 0).count() as u64
        })
        .max()
        .unwrap_or(0);
    phases.scoring = SimTime::from_nanos(max_slabs * costs.score_ns_per_slab);

    // Phase 1 — dump + hash on each retiring node (parallel: take max),
    // then ship metadata to targets (per-source link, serialized).
    let mut items_considered = 0u64;
    let mut metadata_bytes = ByteSize::ZERO;
    let mut dump_max = SimTime::ZERO;
    // (target, class) → (source, items) lists.
    let mut inbound: InboundMap = HashMap::new();
    let mut transfer_done = now;
    for &src in retiring {
        let dump = tier.node(src).expect("validated above").store.dump_metadata();
        let n_items: u64 = dump.total_items();
        items_considered += n_items;
        dump_max = dump_max.max(SimTime::from_nanos(n_items * costs.dump_ns_per_item));
        // Hash each item against the retained membership.
        let mut per_target: HashMap<(NodeId, ClassId), Vec<ItemMeta>> = HashMap::new();
        for class_dump in &dump.classes {
            for item in &class_dump.items {
                let target = retained_ring
                    .node_for(item.key)
                    .expect("retained ring nonempty");
                per_target
                    .entry((target, class_dump.class))
                    .or_default()
                    .push(*item);
            }
        }
        // Ship metadata over the source's NIC (tarball over ssh: one
        // serialized stream per source; the pipeline's per-item CPU cost
        // dominates the 21 B/item wire cost).
        let bytes = ByteSize((KEY_BYTES + TIMESTAMP_BYTES) * n_items);
        metadata_bytes += bytes;
        let pipeline = SimTime::from_nanos(n_items * costs.metadata_ns_per_item);
        let done = tier
            .node_mut(src)
            .expect("validated above")
            .link
            .schedule_transfer(now, bytes)
            + pipeline;
        transfer_done = transfer_done.max(done);
        for ((target, class), items) in per_target {
            inbound.entry((target, class)).or_default().push((src, items));
        }
    }
    phases.dump = dump_max;
    phases.metadata_transfer = transfer_done.saturating_sub(now);

    // Phase 2 — FuseCache on each retained node, per class: how many items
    // to accept from each source. Runs in parallel across destinations;
    // cost = max per destination.
    let mut fusecache_ns_max = 0u64;
    // (source, target, class) → items to actually migrate.
    let mut plan: Vec<(NodeId, NodeId, ClassId, Vec<ItemMeta>)> = Vec::new();
    let mut dest_keys: Vec<(NodeId, ClassId)> = inbound.keys().copied().collect();
    dest_keys.sort_unstable(); // deterministic order
    let mut per_dest_ns: HashMap<NodeId, u64> = HashMap::new();
    for (target, class) in dest_keys {
        let sources = inbound.remove(&(target, class)).expect("key exists");
        let dest_store = &tier.node(target).expect("retained member").store;
        // Capacity for this class on the destination, in items:
        // the retained node's own list length n (FuseCache picks the top
        // n across its own list + incoming, per §IV-A).
        let own: Vec<Hotness> = dest_store
            .dump_class(class)
            .items
            .iter()
            .map(|i| i.hotness())
            .collect();
        let n = own.len().max(
            // An empty class on the destination can still grow: allow as
            // many items as one page of chunks as a floor.
            dest_store.classes().chunks_per_page(class) as usize,
        );
        let mut lists: Vec<Vec<Hotness>> = Vec::with_capacity(sources.len() + 1);
        lists.push(own);
        for (_, items) in &sources {
            lists.push(items.iter().map(|i| i.hotness()).collect());
        }
        let refs: Vec<&[Hotness]> = lists.iter().map(|l| l.as_slice()).collect();
        let (picks, stats) = fusecache_instrumented(&refs, n);
        *per_dest_ns.entry(target).or_default() +=
            stats.comparisons * costs.fusecache_ns_per_comparison;
        // picks[0] is the destination's own list; picks[1..] map to sources.
        for (si, (src, items)) in sources.into_iter().enumerate() {
            let take = picks[si + 1].min(items.len());
            if take > 0 {
                plan.push((src, target, class, items[..take].to_vec()));
            }
        }
    }
    fusecache_ns_max = fusecache_ns_max.max(per_dest_ns.values().copied().max().unwrap_or(0));
    phases.fusecache = SimTime::from_nanos(fusecache_ns_max);

    // Phase 3 — ship the chosen KV pairs (source links, serialized) and
    // batch-import on the destinations.
    let data_start = now + phases.scoring + phases.dump + phases.metadata_transfer + phases.fusecache;
    let mut items_migrated = 0u64;
    let mut bytes_migrated = ByteSize::ZERO;
    let mut data_done = data_start;
    let mut import_ns: HashMap<NodeId, u64> = HashMap::new();
    for (src, target, class, items) in plan {
        let bytes = ByteSize(items.iter().map(|i| i.footprint()).sum());
        bytes_migrated += bytes;
        items_migrated += items.len() as u64;
        let pipeline = SimTime::from_nanos(items.len() as u64 * costs.data_ns_per_item);
        let done = tier
            .node_mut(src)
            .expect("validated above")
            .link
            .schedule_transfer(data_start, bytes)
            + pipeline;
        data_done = data_done.max(done);
        *import_ns.entry(target).or_default() +=
            items.len() as u64 * costs.import_ns_per_item;
        // Apply the import (items are hottest-first within each source's
        // class list; the store re-sorts/merges as configured).
        let node = tier.node_mut(target).expect("retained member");
        node.store.batch_import(class, &items, import_mode)?;
    }
    phases.data_transfer = data_done.saturating_sub(data_start);
    phases.import = SimTime::from_nanos(import_ns.values().copied().max().unwrap_or(0));

    Ok(MigrationReport {
        started: now,
        completed: now + phases.total(),
        phases,
        items_migrated,
        bytes_migrated,
        metadata_bytes,
        items_considered,
    })
}

/// Executes the scale-out migration (§III-D4): each existing member ships
/// the keys that hash to the `new_nodes` under the expanded membership.
///
/// Does **not** flip the membership; the caller commits at
/// `report.completed`. The new nodes must already be provisioned (online,
/// outside the membership).
///
/// # Errors
///
/// [`ElmemError::InvalidScaling`] if `new_nodes` is empty or contains a
/// current member.
pub fn migrate_scale_out(
    tier: &mut CacheTier,
    new_nodes: &[NodeId],
    now: SimTime,
    costs: &MigrationCosts,
) -> Result<MigrationReport, ElmemError> {
    if new_nodes.is_empty() {
        return Err(ElmemError::InvalidScaling("no new nodes".to_string()));
    }
    let members = tier.membership().members().to_vec();
    for id in new_nodes {
        if members.contains(id) {
            return Err(ElmemError::InvalidScaling(format!(
                "{id} is already a member"
            )));
        }
        tier.node(*id)?; // must be provisioned
    }
    let expanded_ring = tier.membership().ring().with(new_nodes);

    let mut phases = PhaseBreakdown::default();
    let mut items_considered = 0u64;
    let mut items_migrated = 0u64;
    let mut bytes_migrated = ByteSize::ZERO;
    let mut dump_max = SimTime::ZERO;
    let mut transfer_done = now;
    let mut import_ns: HashMap<NodeId, u64> = HashMap::new();

    // Each existing member hashes its keys against the expanded membership
    // and ships whatever lands on a new node. Under consistent hashing this
    // is ~1/(k+1) of its keys, which typically fits the new node outright.
    let mut moves: Vec<(NodeId, NodeId, ClassId, Vec<ItemMeta>)> = Vec::new();
    for &src in &members {
        let dump = tier.node(src).expect("member exists").store.dump_metadata();
        items_considered += dump.total_items();
        dump_max = dump_max.max(SimTime::from_nanos(
            dump.total_items() * costs.dump_ns_per_item,
        ));
        for class_dump in &dump.classes {
            let mut per_new: HashMap<NodeId, Vec<ItemMeta>> = HashMap::new();
            for item in &class_dump.items {
                let owner = expanded_ring.node_for(item.key).expect("ring nonempty");
                if new_nodes.contains(&owner) {
                    per_new.entry(owner).or_default().push(*item);
                }
            }
            for (target, items) in per_new {
                moves.push((src, target, class_dump.class, items));
            }
        }
    }
    phases.dump = dump_max;

    // Ship + import. (In the rare case the shipped set exceeds the new
    // node's capacity, the store's import evicts the coldest overflow —
    // equivalent to the paper's "run FuseCache to determine the top pairs".)
    moves.sort_by_key(|(s, t, c, _)| (*s, *t, *c)); // deterministic
    for (src, target, class, items) in moves {
        let bytes = ByteSize(items.iter().map(|i| i.footprint()).sum());
        bytes_migrated += bytes;
        items_migrated += items.len() as u64;
        let done = tier
            .node_mut(src)
            .expect("member exists")
            .link
            .schedule_transfer(now + phases.dump, bytes);
        transfer_done = transfer_done.max(done);
        *import_ns.entry(target).or_default() +=
            items.len() as u64 * costs.import_ns_per_item;
        let node = tier.node_mut(target).expect("provisioned node");
        node.store.batch_import(class, &items, ImportMode::Merge)?;
        // The source keeps its copy until the membership flips; after the
        // flip those keys hash to the new node and the stale copies age out
        // of the source's LRU naturally (as in the real system).
    }
    phases.data_transfer = transfer_done.saturating_sub(now + phases.dump);
    phases.import = SimTime::from_nanos(import_ns.values().copied().max().unwrap_or(0));

    Ok(MigrationReport {
        started: now,
        completed: now + phases.total(),
        phases,
        items_migrated,
        bytes_migrated,
        metadata_bytes: ByteSize::ZERO,
        items_considered,
    })
}

/// The *Naive* comparator's migration (§V-B4): ships the hottest
/// `fraction` of each retiring node's items (assuming hotness distributions
/// are similar across nodes — no cross-node comparison), and the targets
/// import them through the ordinary `set` path.
///
/// Two deliberate differences from ElMem's migration, mirroring the paper:
///
/// * no FuseCache: the shipped amount ignores what actually fits hotter
///   than the residents;
/// * **recency corruption**: plain `set`s stamp every migrated item with a
///   fresh access time, so cold imports land *above* genuinely warm
///   residents in the MRU order. Until the LRU dynamics wash that out,
///   evictions keep hitting warm residents — which is why the paper's
///   Naive "continues to degrade well after the scaling event". (ElMem's
///   custom batch import preserves original timestamps, §III-D3.)
///
/// # Errors
///
/// Same validation as [`migrate_scale_in`]; also rejects `fraction`
/// outside `[0, 1]`.
pub fn migrate_naive_scale_in(
    tier: &mut CacheTier,
    retiring: &[NodeId],
    fraction: f64,
    now: SimTime,
    costs: &MigrationCosts,
) -> Result<MigrationReport, ElmemError> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(ElmemError::InvalidConfig(format!(
            "naive fraction {fraction} outside [0, 1]"
        )));
    }
    let members = tier.membership().members().to_vec();
    validate_retiring(&members, retiring)?;
    let retained_ring = tier.membership().ring().without(retiring);

    let mut phases = PhaseBreakdown::default();
    let mut items_considered = 0u64;
    let mut items_migrated = 0u64;
    let mut bytes_migrated = ByteSize::ZERO;
    let mut dump_max = SimTime::ZERO;
    let mut transfer_done = now;
    let mut import_ns: HashMap<NodeId, u64> = HashMap::new();

    let mut moves: Vec<(NodeId, NodeId, ClassId, Vec<ItemMeta>)> = Vec::new();
    for &src in retiring {
        let dump = tier.node(src).expect("validated above").store.dump_metadata();
        items_considered += dump.total_items();
        dump_max = dump_max.max(SimTime::from_nanos(
            dump.total_items() * costs.dump_ns_per_item,
        ));
        for class_dump in &dump.classes {
            let take = (class_dump.items.len() as f64 * fraction).ceil() as usize;
            let mut per_target: HashMap<NodeId, Vec<ItemMeta>> = HashMap::new();
            for (i, item) in class_dump.items.iter().take(take).enumerate() {
                let target = retained_ring.node_for(item.key).expect("ring nonempty");
                // Plain-`set` semantics: the import gets a fresh access
                // time (preserving only the shipment's internal order).
                let corrupted = ItemMeta {
                    last_access: now + SimTime::from_nanos((take - i) as u64),
                    ..*item
                };
                per_target.entry(target).or_default().push(corrupted);
            }
            for (target, items) in per_target {
                moves.push((src, target, class_dump.class, items));
            }
        }
    }
    phases.dump = dump_max;

    moves.sort_by_key(|(s, t, c, _)| (*s, *t, *c));
    for (src, target, class, items) in moves {
        let bytes = ByteSize(items.iter().map(|i| i.footprint()).sum());
        bytes_migrated += bytes;
        items_migrated += items.len() as u64;
        let done = tier
            .node_mut(src)
            .expect("validated above")
            .link
            .schedule_transfer(now + phases.dump, bytes);
        transfer_done = transfer_done.max(done);
        *import_ns.entry(target).or_default() +=
            items.len() as u64 * costs.import_ns_per_item;
        let node = tier.node_mut(target).expect("retained member");
        node.store.batch_import(class, &items, ImportMode::Prepend)?;
    }
    phases.data_transfer = transfer_done.saturating_sub(now + phases.dump);
    phases.import = SimTime::from_nanos(import_ns.values().copied().max().unwrap_or(0));

    Ok(MigrationReport {
        started: now,
        completed: now + phases.total(),
        phases,
        items_migrated,
        bytes_migrated,
        metadata_bytes: ByteSize::ZERO,
        items_considered,
    })
}

fn validate_retiring(members: &[NodeId], retiring: &[NodeId]) -> Result<(), ElmemError> {
    if retiring.is_empty() {
        return Err(ElmemError::InvalidScaling("no retiring nodes".to_string()));
    }
    for id in retiring {
        if !members.contains(id) {
            return Err(ElmemError::UnknownNode(id.0));
        }
    }
    if retiring.len() >= members.len() {
        return Err(ElmemError::InvalidScaling(
            "cannot retire the whole tier".to_string(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmem_cluster::ClusterConfig;
    use elmem_util::KeyId;

    /// Tier with node 0 coldest: keys 0..400 spread by ring, all touched;
    /// node 0's items get old timestamps.
    fn warmed_tier() -> (CacheTier, Vec<u64>) {
        let mut tier = CacheTier::new(ClusterConfig::small_test());
        let mut keys_on_0 = Vec::new();
        for k in 0..2000u64 {
            let owner = tier.node_for_key(KeyId(k)).unwrap();
            let t = if owner == NodeId(0) {
                keys_on_0.push(k);
                SimTime::from_secs(100 + k)
            } else {
                SimTime::from_secs(100_000 + k)
            };
            tier.node_mut(owner)
                .unwrap()
                .store
                .set(KeyId(k), 64, t)
                .unwrap();
        }
        (tier, keys_on_0)
    }

    #[test]
    fn scale_in_moves_items_to_correct_targets() {
        let (mut tier, keys_on_0) = warmed_tier();
        let report = migrate_scale_in(
            &mut tier,
            &[NodeId(0)],
            SimTime::from_secs(200_000),
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .unwrap();
        assert!(report.items_migrated > 0);
        assert!(report.completed > report.started);
        // Migrated keys must sit on their retained-ring owner.
        let retained = tier.membership().ring().without(&[NodeId(0)]);
        let mut found = 0;
        for &k in &keys_on_0 {
            let target = retained.node_for(KeyId(k)).unwrap();
            if tier.node(target).unwrap().store.contains(KeyId(k)) {
                found += 1;
            }
        }
        assert!(found > 0, "no migrated key reached its target");
        assert_eq!(found, report.items_migrated);
    }

    #[test]
    fn migration_does_not_flip_membership() {
        let (mut tier, _) = warmed_tier();
        migrate_scale_in(
            &mut tier,
            &[NodeId(0)],
            SimTime::from_secs(200_000),
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .unwrap();
        assert_eq!(tier.membership().len(), 4);
        assert!(tier.node(NodeId(0)).unwrap().is_online());
    }

    #[test]
    fn migrated_items_are_hotter_than_evicted() {
        let (mut tier, _) = warmed_tier();
        // Record pre-migration tail hotness on a retained node.
        let report = migrate_scale_in(
            &mut tier,
            &[NodeId(0)],
            SimTime::from_secs(200_000),
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .unwrap();
        // Every class list on every retained node must still be sorted.
        for &id in tier.membership().members() {
            let store = &tier.node(id).unwrap().store;
            for class in store.classes().ids() {
                let dump = store.dump_class(class);
                for w in dump.items.windows(2) {
                    assert!(w[0].hotness() >= w[1].hotness());
                }
            }
        }
        assert!(report.phases.total() > SimTime::ZERO);
    }

    #[test]
    fn phase_breakdown_sums_to_completion() {
        let (mut tier, _) = warmed_tier();
        let start = SimTime::from_secs(200_000);
        let report = migrate_scale_in(
            &mut tier,
            &[NodeId(0)],
            start,
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .unwrap();
        assert_eq!(report.completed, start + report.phases.total());
        assert!(report.metadata_bytes > ByteSize::ZERO);
        assert!(report.bytes_migrated > ByteSize::ZERO);
        assert!(report.items_considered >= report.items_migrated);
    }

    #[test]
    fn retiring_unknown_node_fails() {
        let (mut tier, _) = warmed_tier();
        assert!(migrate_scale_in(
            &mut tier,
            &[NodeId(77)],
            SimTime::ZERO,
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .is_err());
    }

    #[test]
    fn retiring_everything_fails() {
        let (mut tier, _) = warmed_tier();
        let all: Vec<NodeId> = tier.membership().members().to_vec();
        assert!(migrate_scale_in(
            &mut tier,
            &all,
            SimTime::ZERO,
            &MigrationCosts::default(),
            ImportMode::Merge,
        )
        .is_err());
    }

    #[test]
    fn scale_out_ships_remapped_keys() {
        let (mut tier, _) = warmed_tier();
        let new = tier.provision_nodes(1);
        let expanded = tier.membership().ring().with(&new);
        let report = migrate_scale_out(
            &mut tier,
            &new,
            SimTime::from_secs(200_000),
            &MigrationCosts::default(),
        )
        .unwrap();
        assert!(report.items_migrated > 0);
        // Every key that remaps to the new node and was cached must now be
        // on the new node.
        let new_store = &tier.node(new[0]).unwrap().store;
        assert_eq!(new_store.len(), report.items_migrated);
        for item in new_store.iter() {
            assert_eq!(expanded.node_for(item.key), Some(new[0]));
        }
        // Roughly 1/(k+1) = 1/5 of the 2000 cached keys.
        let frac = report.items_migrated as f64 / 2000.0;
        assert!((0.1..0.35).contains(&frac), "moved fraction {frac}");
    }

    #[test]
    fn scale_out_rejects_existing_member() {
        let (mut tier, _) = warmed_tier();
        assert!(migrate_scale_out(
            &mut tier,
            &[NodeId(0)],
            SimTime::ZERO,
            &MigrationCosts::default(),
        )
        .is_err());
    }

    #[test]
    fn scale_out_rejects_unprovisioned() {
        let (mut tier, _) = warmed_tier();
        assert!(migrate_scale_out(
            &mut tier,
            &[NodeId(50)],
            SimTime::ZERO,
            &MigrationCosts::default(),
        )
        .is_err());
    }

    #[test]
    fn costs_scale_phase_times() {
        let (mut t1, _) = warmed_tier();
        let (mut t2, _) = warmed_tier();
        let cheap = MigrationCosts::default();
        let costly = MigrationCosts {
            dump_ns_per_item: cheap.dump_ns_per_item * 10,
            ..cheap
        };
        let r1 = migrate_scale_in(
            &mut t1,
            &[NodeId(0)],
            SimTime::from_secs(200_000),
            &cheap,
            ImportMode::Merge,
        )
        .unwrap();
        let r2 = migrate_scale_in(
            &mut t2,
            &[NodeId(0)],
            SimTime::from_secs(200_000),
            &costly,
            ImportMode::Merge,
        )
        .unwrap();
        assert!(r2.phases.dump > r1.phases.dump);
    }
}
