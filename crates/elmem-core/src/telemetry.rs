//! Experiment-level telemetry: the windowed counter time series, the
//! migration-phase event synthesis, and the deterministic dump.
//!
//! The primitives (histograms, the event trace, the event taxonomy) live
//! in [`elmem_util::telemetry`]; the serving-path sink lives in
//! [`elmem_cluster::telemetry`]. This module is the aggregation layer the
//! driver ([`crate::elasticity::run_experiment_with_telemetry`]) uses:
//!
//! * [`SeriesRecorder`] samples tier-wide counters (hit rate, DB load,
//!   timeouts, members, bytes migrated) every
//!   [`TelemetryConfig::sample_every`] into [`SeriesPoint`]s — the data
//!   behind the paper's Fig. 2 recovery curves;
//! * [`record_migration_events`] synthesizes `MigrationPhaseStart` /
//!   `End` / `Aborted` events from a [`MigrationReport`]'s phase
//!   breakdown, so the trace shows *when* each §III-D phase ran;
//! * [`TelemetryDump`] is the whole story — events, histograms, series,
//!   per-node rows — with a canonical JSON encoding that is byte-identical
//!   across same-seed runs (the property the golden tests pin).
//!
//! [`TelemetryConfig::sample_every`]: elmem_util::TelemetryConfig

use std::fmt::Write as _;

use elmem_cluster::telemetry::NodeCounters;
use elmem_cluster::Cluster;
use elmem_store::StoreStats;
use elmem_util::telemetry::{
    write_events_json, AbortClass, Event, EventKind, EventTrace, MigrationPhaseKind, ProbeClass,
};
use elmem_util::{LatencyHistogram, NodeId, SimTime, TelemetryConfig};

use crate::healing::ProbeOutcome;
use crate::migration::{AbortCause, MigrationOutcome, MigrationPhase, MigrationReport};

/// One window of the tier-wide counter time series. Counters are *deltas*
/// over the window (except `members` and `bytes_migrated`, which are the
/// level at the window's close).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SeriesPoint {
    /// Window start.
    pub window_start: SimTime,
    /// Web requests completed in the window.
    pub requests: u64,
    /// Cache lookups in the window.
    pub lookups: u64,
    /// Lookups that hit in the window.
    pub hits: u64,
    /// Database fetches submitted in the window (DB load).
    pub db_fetches: u64,
    /// Client timeouts paid in the window.
    pub client_timeouts: u64,
    /// Instant failovers on open breakers in the window.
    pub fast_failovers: u64,
    /// Client-visible member count when the window closed.
    pub members: u32,
    /// Cumulative bytes moved by migrations up to the window's close.
    pub bytes_migrated: u64,
}

impl SeriesPoint {
    /// Hit rate over the window; 1.0 when no lookups landed (idle windows
    /// should not read as outages).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Appends the canonical JSON encoding (integers only; hit rate is
    /// derived by consumers from `hits`/`lookups`).
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"t_ns\":{},\"requests\":{},\"lookups\":{},\"hits\":{},\
             \"db_fetches\":{},\"client_timeouts\":{},\"fast_failovers\":{},\
             \"members\":{},\"bytes_migrated\":{}}}",
            self.window_start.as_nanos(),
            self.requests,
            self.lookups,
            self.hits,
            self.db_fetches,
            self.client_timeouts,
            self.fast_failovers,
            self.members,
            self.bytes_migrated
        );
    }
}

/// A reading of the tier's cumulative counters, taken by the driver when
/// a series window closes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierSnapshot {
    /// Client-visible member count.
    pub members: u32,
    /// Cumulative database fetches submitted.
    pub db_fetches: u64,
    /// Cumulative client timeouts paid.
    pub client_timeouts: u64,
    /// Cumulative instant failovers on open breakers.
    pub fast_failovers: u64,
    /// Cumulative bytes moved by migrations.
    pub bytes_migrated: u64,
}

impl TierSnapshot {
    /// Reads the tier's cumulative counters off the serving stack.
    pub fn take(cluster: &Cluster, bytes_migrated: u64) -> Self {
        TierSnapshot {
            members: cluster.tier.membership().len() as u32,
            db_fetches: cluster.db.fetches(),
            client_timeouts: cluster.client_timeouts(),
            fast_failovers: cluster.fast_failovers(),
            bytes_migrated,
        }
    }
}

/// Accumulates the tier-wide counter time series in fixed windows.
///
/// The driver calls [`advance`](Self::advance) with the current time and a
/// fresh [`TierSnapshot`] before serving each request (closing any windows
/// the clock has passed — traffic gaps produce explicit zero windows, so
/// the series has no holes), [`record_request`](Self::record_request)
/// after serving it, and [`finish`](Self::finish) once at the end.
#[derive(Debug, Clone)]
pub struct SeriesRecorder {
    window: SimTime,
    window_start: SimTime,
    requests: u64,
    lookups: u64,
    hits: u64,
    last: TierSnapshot,
    points: Vec<SeriesPoint>,
}

impl SeriesRecorder {
    /// A recorder with the given window length (zero-length windows would
    /// never close; they are clamped to 1 ns).
    pub fn new(window: SimTime) -> Self {
        SeriesRecorder {
            window: window.max(SimTime::from_nanos(1)),
            window_start: SimTime::ZERO,
            requests: 0,
            lookups: 0,
            hits: 0,
            last: TierSnapshot::default(),
            points: Vec::new(),
        }
    }

    /// Closes every window that ends at or before `now`. The cumulative
    /// deltas since the previous close land in the first window closed
    /// here; the rest (idle gaps) close empty.
    pub fn advance(&mut self, now: SimTime, snap: &TierSnapshot) {
        while self.window_start + self.window <= now {
            let point = SeriesPoint {
                window_start: self.window_start,
                requests: self.requests,
                lookups: self.lookups,
                hits: self.hits,
                db_fetches: snap.db_fetches - self.last.db_fetches,
                client_timeouts: snap.client_timeouts - self.last.client_timeouts,
                fast_failovers: snap.fast_failovers - self.last.fast_failovers,
                members: snap.members,
                bytes_migrated: snap.bytes_migrated,
            };
            self.points.push(point);
            self.last = *snap;
            self.window_start += self.window;
            self.requests = 0;
            self.lookups = 0;
            self.hits = 0;
        }
    }

    /// Adds one served request's lookups to the open window.
    pub fn record_request(&mut self, hits: u64, lookups: u64) {
        self.requests += 1;
        self.lookups += lookups;
        self.hits += hits;
    }

    /// Closes the final (partial) window and returns the series.
    pub fn finish(mut self, now: SimTime, snap: &TierSnapshot) -> Vec<SeriesPoint> {
        self.advance(now, snap);
        if self.requests > 0
            || snap.db_fetches > self.last.db_fetches
            || snap.client_timeouts > self.last.client_timeouts
        {
            self.points.push(SeriesPoint {
                window_start: self.window_start,
                requests: self.requests,
                lookups: self.lookups,
                hits: self.hits,
                db_fetches: snap.db_fetches - self.last.db_fetches,
                client_timeouts: snap.client_timeouts - self.last.client_timeouts,
                fast_failovers: snap.fast_failovers - self.last.fast_failovers,
                members: snap.members,
                bytes_migrated: snap.bytes_migrated,
            });
        }
        self.points
    }
}

/// Maps the migration module's phase onto the trace vocabulary.
pub fn phase_kind(phase: MigrationPhase) -> MigrationPhaseKind {
    match phase {
        MigrationPhase::MetadataTransfer => MigrationPhaseKind::MetadataTransfer,
        MigrationPhase::HotnessComparison => MigrationPhaseKind::HotnessComparison,
        MigrationPhase::DataMigration => MigrationPhaseKind::DataMigration,
    }
}

/// Maps an abort cause onto the trace vocabulary (the node involved, if
/// any, travels in [`Event::node`]).
pub fn abort_class(cause: &AbortCause) -> AbortClass {
    match cause {
        AbortCause::SourceCrashed(_) => AbortClass::SourceCrashed,
        AbortCause::DestinationCrashed(_) => AbortClass::DestinationCrashed,
        AbortCause::DeadlineExceeded => AbortClass::DeadlineExceeded,
        AbortCause::TransferRetriesExhausted { .. } => AbortClass::RetriesExhausted,
        AbortCause::MasterCrashed => AbortClass::MasterCrashed,
    }
}

/// Maps a probe outcome onto the trace vocabulary.
pub fn probe_class(outcome: ProbeOutcome) -> ProbeClass {
    match outcome {
        ProbeOutcome::Ack => ProbeClass::Ack,
        ProbeOutcome::Degraded => ProbeClass::Degraded,
        ProbeOutcome::Lost => ProbeClass::Lost,
    }
}

/// Synthesizes the §III-D phase events a migration report implies: a
/// `Start`/`End` pair per completed phase (boundaries from the report's
/// sequential [`PhaseBreakdown`](crate::migration::PhaseBreakdown)), and
/// for an aborted run a `Start` for the phase the fault landed in followed
/// by a `MigrationAborted` at the moment the Master gave up.
pub fn record_migration_events(trace: &mut EventTrace, report: &MigrationReport) {
    // Phase spans, in §III-D order. Scoring and dump are preliminaries of
    // the metadata phase, as the supervisor attributes them.
    let spans = [
        (
            MigrationPhaseKind::MetadataTransfer,
            report.phases.scoring + report.phases.dump + report.phases.metadata_transfer,
        ),
        (
            MigrationPhaseKind::HotnessComparison,
            report.phases.fusecache,
        ),
        (
            MigrationPhaseKind::DataMigration,
            report.phases.data_transfer + report.phases.import,
        ),
    ];
    let aborted = match report.outcome {
        MigrationOutcome::Completed => None,
        MigrationOutcome::Aborted { phase, cause } => Some((phase_kind(phase), cause)),
    };
    // A journaled migration the Master crashed out of and resumed: one
    // `MasterCrashed` per crash, one `MigrationResumed` per restart that
    // actually resumed (under an abort-on-crash policy the final restart
    // gave up instead — the `MigrationAborted` below tells that story).
    let gave_up = matches!(
        report.outcome,
        MigrationOutcome::Aborted {
            cause: AbortCause::MasterCrashed,
            ..
        }
    );
    for (i, r) in report.resumes.iter().enumerate() {
        trace.record(r.crashed_at, None, EventKind::MasterCrashed);
        if !(gave_up && i + 1 == report.resumes.len()) {
            trace.record(
                r.resumed_at,
                None,
                EventKind::MigrationResumed {
                    phase: phase_kind(r.phase),
                },
            );
        }
    }
    // The phase spans describe the final attempt, which started at the
    // last resume point (or at the trigger, if the Master never crashed).
    let mut t = report
        .resumes
        .last()
        .map_or(report.started, |r| r.resumed_at);
    for (kind, span) in spans {
        // An aborted run stops inside the failing phase: its Start is
        // real, its End never happened.
        trace.record(
            t.min(report.completed),
            None,
            EventKind::MigrationPhaseStart { phase: kind },
        );
        if aborted.is_some_and(|(failing, _)| failing == kind) {
            break;
        }
        t = (t + span).min(report.completed);
        trace.record(t, None, EventKind::MigrationPhaseEnd { phase: kind });
    }
    if let Some((phase, cause)) = aborted {
        trace.record(
            report.completed,
            cause.crashed_node(),
            EventKind::MigrationAborted {
                phase,
                cause: abort_class(&cause),
            },
        );
    }
}

/// One node's row in the dump: serving counters plus its store's own
/// operation counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeDumpRow {
    /// The node.
    pub node: NodeId,
    /// Serving-path counters (lookups, hits, timeouts, failovers).
    pub counters: NodeCounters,
    /// The slab store's cumulative operation counters.
    pub stats: StoreStats,
}

/// The full telemetry story of one experiment run.
///
/// Two runs with the same [`crate::ExperimentConfig`] produce equal dumps
/// — and equal [`to_json`](Self::to_json) bytes; that guarantee is what
/// `tests/golden_telemetry.rs` locks in.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryDump {
    /// The experiment seed, stamped for fixture self-description.
    pub seed: u64,
    /// The series window length, nanoseconds.
    pub sample_every_ns: u64,
    /// Events ever recorded (retained + dropped by the ring).
    pub recorded_events: u64,
    /// Events the ring dropped (oldest first).
    pub dropped_events: u64,
    /// Retained events in canonical order: by time, then emission order.
    pub events: Vec<Event>,
    /// Response time of whole web requests.
    pub request_rt: LatencyHistogram,
    /// Latency of lookups answered from cache.
    pub get_hit: LatencyHistogram,
    /// Latency of lookups that missed to the database.
    pub get_miss: LatencyHistogram,
    /// Latency of lookups whose owner was unreachable.
    pub timeout_path: LatencyHistogram,
    /// The tier-wide counter time series.
    pub series: Vec<SeriesPoint>,
    /// Per-node rows, in node-id order.
    pub nodes: Vec<NodeDumpRow>,
}

impl TelemetryDump {
    /// Assembles the dump from the cluster's telemetry state and the
    /// driver's series. Events are put into canonical `(time, seq)` order
    /// — emission order already breaks ties deterministically.
    pub fn assemble(
        seed: u64,
        config: &TelemetryConfig,
        cluster: &Cluster,
        series: Vec<SeriesPoint>,
    ) -> Self {
        let telemetry = cluster.telemetry();
        let mut events = telemetry.trace.to_vec();
        events.sort_by_key(|e| (e.at, e.seq));
        let nodes = cluster
            .tier
            .iter_nodes()
            .map(|n| NodeDumpRow {
                node: n.id(),
                counters: telemetry.node_counters(n.id()),
                stats: n.store.stats(),
            })
            .collect();
        TelemetryDump {
            seed,
            sample_every_ns: config.sample_every.as_nanos(),
            recorded_events: telemetry.trace.recorded(),
            dropped_events: telemetry.trace.dropped(),
            events,
            request_rt: telemetry.request_rt.clone(),
            get_hit: telemetry.get_hit.clone(),
            get_miss: telemetry.get_miss.clone(),
            timeout_path: telemetry.timeout_path.clone(),
            series,
            nodes,
        }
    }

    /// The canonical JSON encoding: fixed field order, integers only,
    /// byte-identical for equal dumps.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"seed\":{},\"sample_every_ns\":{},\"recorded_events\":{},\"dropped_events\":{},",
            self.seed, self.sample_every_ns, self.recorded_events, self.dropped_events
        );
        out.push_str("\"events\":");
        write_events_json(&mut out, &self.events);
        out.push_str(",\"histograms\":{\"request_rt\":");
        self.request_rt.write_json(&mut out);
        out.push_str(",\"get_hit\":");
        self.get_hit.write_json(&mut out);
        out.push_str(",\"get_miss\":");
        self.get_miss.write_json(&mut out);
        out.push_str(",\"timeout_path\":");
        self.timeout_path.write_json(&mut out);
        out.push_str("},\"series\":[");
        for (i, p) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            p.write_json(&mut out);
        }
        out.push_str("],\"nodes\":[");
        for (i, row) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"node\":{},\"lookups\":{},\"hits\":{},\"timeouts\":{},\
                 \"fast_failovers\":{},\"store\":{{\"hits\":{},\"misses\":{},\
                 \"sets\":{},\"evictions\":{},\"deletes\":{},\"imported\":{},\
                 \"expired\":{}}}}}",
                row.node.0,
                row.counters.lookups,
                row.counters.hits,
                row.counters.timeouts,
                row.counters.fast_failovers,
                row.stats.hits,
                row.stats.misses,
                row.stats.sets,
                row.stats.evictions,
                row.stats.deletes,
                row.stats.imported,
                row.stats.expired
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::PhaseBreakdown;
    use elmem_util::ByteSize;

    fn snap(members: u32, db: u64, timeouts: u64) -> TierSnapshot {
        TierSnapshot {
            members,
            db_fetches: db,
            client_timeouts: timeouts,
            fast_failovers: 0,
            bytes_migrated: 0,
        }
    }

    #[test]
    fn series_windows_close_in_order_with_gaps_explicit() {
        let mut rec = SeriesRecorder::new(SimTime::from_secs(1));
        rec.advance(SimTime::from_millis(100), &snap(4, 0, 0));
        rec.record_request(2, 3);
        // The clock jumps 3 windows: one carries the traffic, two close
        // empty.
        rec.advance(SimTime::from_millis(3500), &snap(4, 5, 0));
        let points = rec.finish(SimTime::from_millis(3500), &snap(4, 5, 0));
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].requests, 1);
        assert_eq!(points[0].hits, 2);
        assert_eq!(points[0].db_fetches, 5, "delta lands in the first close");
        assert_eq!(points[1].requests, 0);
        assert_eq!(points[1].db_fetches, 0);
        assert_eq!(points[2].window_start, SimTime::from_secs(2));
    }

    #[test]
    fn series_final_partial_window_is_kept() {
        let mut rec = SeriesRecorder::new(SimTime::from_secs(1));
        rec.record_request(1, 1);
        let points = rec.finish(SimTime::from_millis(500), &snap(4, 1, 0));
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].requests, 1);
    }

    #[test]
    fn idle_window_hit_rate_is_one() {
        let p = SeriesPoint::default();
        assert_eq!(p.hit_rate(), 1.0);
    }

    fn report(outcome: MigrationOutcome) -> MigrationReport {
        MigrationReport {
            started: SimTime::from_secs(10),
            completed: SimTime::from_secs(130),
            phases: PhaseBreakdown {
                scoring: SimTime::from_secs(1),
                dump: SimTime::from_secs(4),
                metadata_transfer: SimTime::from_secs(25),
                fusecache: SimTime::from_secs(10),
                data_transfer: SimTime::from_secs(70),
                import: SimTime::from_secs(10),
            },
            items_migrated: 100,
            bytes_migrated: ByteSize::from_mib(64),
            metadata_bytes: ByteSize::from_mib(2),
            items_considered: 500,
            outcome,
            transfer_retries: 0,
            resumes: Vec::new(),
        }
    }

    #[test]
    fn resumed_migration_records_crash_and_resume_events() {
        let mut trace = EventTrace::with_capacity(64);
        let mut report = report(MigrationOutcome::Completed);
        report.resumes = vec![crate::migration::ResumePoint {
            crashed_at: SimTime::from_secs(11),
            resumed_at: SimTime::from_millis(11_500),
            phase: MigrationPhase::DataMigration,
        }];
        record_migration_events(&mut trace, &report);
        let kinds: Vec<&str> = trace.events().map(|e| e.kind.label()).collect();
        assert!(kinds.contains(&"master_crashed"));
        assert!(kinds.contains(&"migration_resumed"));
        // Phase spans replay from the resume point, not the trigger.
        let first_start = trace
            .events()
            .find(|e| matches!(e.kind, EventKind::MigrationPhaseStart { .. }))
            .unwrap();
        assert_eq!(first_start.at, SimTime::from_millis(11_500));
    }

    #[test]
    fn master_crash_abort_skips_the_final_resume_event() {
        let mut trace = EventTrace::with_capacity(64);
        let mut report = report(MigrationOutcome::Aborted {
            phase: MigrationPhase::DataMigration,
            cause: AbortCause::MasterCrashed,
        });
        report.resumes = vec![crate::migration::ResumePoint {
            crashed_at: SimTime::from_secs(11),
            resumed_at: SimTime::from_millis(11_500),
            phase: MigrationPhase::DataMigration,
        }];
        record_migration_events(&mut trace, &report);
        let kinds: Vec<&str> = trace.events().map(|e| e.kind.label()).collect();
        assert!(kinds.contains(&"master_crashed"));
        assert!(
            !kinds.contains(&"migration_resumed"),
            "the give-up restart is not a resume"
        );
        assert!(kinds.contains(&"migration_aborted"));
    }

    #[test]
    fn completed_migration_yields_three_phase_pairs() {
        let mut trace = EventTrace::with_capacity(64);
        record_migration_events(&mut trace, &report(MigrationOutcome::Completed));
        let kinds: Vec<&'static str> = trace.events().map(|e| e.kind.label()).collect();
        assert_eq!(
            kinds,
            vec![
                "migration_phase_start",
                "migration_phase_end",
                "migration_phase_start",
                "migration_phase_end",
                "migration_phase_start",
                "migration_phase_end",
            ]
        );
        let times: Vec<u64> = trace.events().map(|e| e.at.as_secs()).collect();
        assert_eq!(times, vec![10, 40, 40, 50, 50, 130]);
    }

    #[test]
    fn aborted_migration_stops_inside_the_failing_phase() {
        let outcome = MigrationOutcome::Aborted {
            phase: MigrationPhase::DataMigration,
            cause: AbortCause::SourceCrashed(NodeId(2)),
        };
        let mut trace = EventTrace::with_capacity(64);
        let mut r = report(outcome);
        r.completed = SimTime::from_secs(60); // gave up mid-phase-3
        record_migration_events(&mut trace, &r);
        let kinds: Vec<&'static str> = trace.events().map(|e| e.kind.label()).collect();
        assert_eq!(
            kinds,
            vec![
                "migration_phase_start",
                "migration_phase_end",
                "migration_phase_start",
                "migration_phase_end",
                "migration_phase_start",
                "migration_aborted",
            ]
        );
        let last = trace.events().last().unwrap();
        assert_eq!(last.at, SimTime::from_secs(60));
        assert_eq!(last.node, Some(NodeId(2)));
    }

    #[test]
    fn dump_json_is_stable_for_equal_dumps() {
        let a = TelemetryDump::default();
        let b = TelemetryDump::default();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().starts_with("{\"seed\":0,"));
    }
}
