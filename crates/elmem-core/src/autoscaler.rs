//! When and how much to scale (§III-B).
//!
//! The AutoScaler runs on one web server, sampling the keys requested from
//! Memcached. Every epoch (1 minute in the paper) it:
//!
//! 1. derives the minimum hit rate from Eq. (1):
//!    `r·(1 − p_min) < r_DB  ⇒  p_min > 1 − r_DB/r`;
//! 2. uses a continuous stack-distance estimator over the sampled request
//!    stream to find the memory that achieves `p_min`;
//! 3. converts the memory gap to a node count and relays the hint to the
//!    Master.
//!
//! Two deliberate deviations from naive implementations, both required for
//! correct sizing:
//!
//! * **unbounded reuse horizon** — a fixed request window of `W` lookups
//!   can only observe reuse at horizons up to `W` and silently classifies
//!   slower re-references as compulsory misses, wildly under-sizing the
//!   tier. We therefore run a stack-distance engine *continuously* over
//!   the sampled stream (the paper uses MIMIR for this; we run the
//!   [`AdaptiveStackDistance`] engine — exact Fenwick distances while the
//!   sampled population is small (laptop scale, where the pinned golden
//!   traces live), handing off to MIMIR's O(1) buckets past the
//!   cluster-scale key threshold);
//! * **warm-up guard** — right after startup the sampled stream has seen
//!   few re-accesses, so distance quantiles are biased toward the hot
//!   core; the AutoScaler abstains until `min_observations` lookups have
//!   been sampled.

use elmem_stackdist::AdaptiveStackDistance;
use elmem_util::{ByteSize, KeyId, SimTime};
use serde::{Deserialize, Serialize};

/// AutoScaler parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoScalerConfig {
    /// Database capacity r_DB, req/s (obtained by profiling, §III-B).
    pub r_db: f64,
    /// Decision epoch (paper: every minute).
    pub epoch: SimTime,
    /// Memory per cache node.
    pub node_memory: ByteSize,
    /// Never scale below this many nodes.
    pub min_nodes: u32,
    /// Never scale above this many nodes.
    pub max_nodes: u32,
    /// How many recent warm-access distance samples the quantile estimate
    /// is computed over.
    pub distance_samples: usize,
    /// Lookups that must be observed before the first scaling hint (the
    /// warm-up guard; scale-in to `min_nodes` on idle demand is exempt).
    pub min_observations: u64,
    /// Safety headroom multiplied onto the required memory (>1 leaves slack
    /// so the achieved hit rate lands above p_min despite estimation noise).
    pub headroom: f64,
    /// SHARDS-style spatial sampling rate in `(0, 1]`: only keys whose
    /// stable hash falls under this fraction are tracked, and measured
    /// distances are scaled by `1/rate`. Hash-based (spatial) sampling
    /// preserves the reuse-distance distribution — unlike taking 1 of every
    /// N *requests*, which truncates it — at `rate × ` the tracking cost
    /// (SHARDS; cited as \[65\] by the paper).
    pub spatial_sample_rate: f64,
    /// Ratio of slab-chunk bytes to item-footprint bytes: stack distances
    /// measure unique *footprint* bytes, but Memcached stores each item in
    /// a power-ladder chunk (plus page granularity), so the provisioned
    /// memory must be larger by this factor (~1.5 for a growth-2 ladder).
    pub slab_overhead: f64,
}

impl AutoScalerConfig {
    /// Paper-style defaults for a given r_DB and node memory.
    pub fn new(r_db: f64, node_memory: ByteSize) -> Self {
        AutoScalerConfig {
            r_db,
            epoch: SimTime::from_secs(60),
            node_memory,
            min_nodes: 1,
            max_nodes: 64,
            distance_samples: 200_000,
            min_observations: 500_000,
            headroom: 1.1,
            slab_overhead: 1.5,
            spatial_sample_rate: 1.0,
        }
    }
}

/// A scaling hint relayed to the Master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScalingHint {
    /// Desired member count after scaling.
    pub target_nodes: u32,
    /// Current member count when the hint was issued.
    pub current_nodes: u32,
    /// When the hint was issued.
    pub at: SimTime,
}

impl ScalingHint {
    /// Nodes to remove (scale-in) — zero when scaling out.
    pub fn scale_in_count(&self) -> u32 {
        self.current_nodes.saturating_sub(self.target_nodes)
    }

    /// Nodes to add (scale-out) — zero when scaling in.
    pub fn scale_out_count(&self) -> u32 {
        self.target_nodes.saturating_sub(self.current_nodes)
    }
}

/// The AutoScaler: continuous stack-distance sampling + Eq. (1) sizing.
///
/// # Example
///
/// ```
/// use elmem_core::{AutoScaler, AutoScalerConfig};
/// use elmem_util::{ByteSize, KeyId, SimTime};
///
/// let mut a = AutoScaler::new(AutoScalerConfig::new(1000.0, ByteSize::from_mib(64)));
/// for round in 0..3u64 {
///     for k in 0..100u64 {
///         a.observe(KeyId(k), 100);
///     }
///     let _ = round;
/// }
/// // Demand of 500 req/s needs no cache at all (r_DB = 1000):
/// let hint = a.decide(SimTime::from_secs(60), 500.0, 10);
/// assert!(hint.is_some());
/// assert!(hint.unwrap().target_nodes < 10);
/// ```
#[derive(Debug, Clone)]
pub struct AutoScaler {
    config: AutoScalerConfig,
    engine: AdaptiveStackDistance,
    /// Ring buffer of recent warm-access distances (bytes).
    distances: Vec<u64>,
    pos: usize,
    observed: u64,
    warm: u64,
    last_decision: Option<SimTime>,
}

impl AutoScaler {
    /// Creates an AutoScaler.
    ///
    /// # Panics
    ///
    /// Panics if `r_db` or `headroom` are non-positive, the sample buffer
    /// is empty, or `min_nodes > max_nodes` or `min_nodes == 0`.
    pub fn new(config: AutoScalerConfig) -> Self {
        assert!(config.r_db > 0.0 && config.r_db.is_finite(), "invalid r_db");
        assert!(config.headroom > 0.0, "invalid headroom");
        assert!(config.distance_samples > 0, "empty sample buffer");
        assert!(config.min_nodes <= config.max_nodes, "min > max nodes");
        assert!(config.min_nodes >= 1, "min_nodes must be >= 1");
        assert!(
            config.spatial_sample_rate > 0.0 && config.spatial_sample_rate <= 1.0,
            "spatial_sample_rate out of (0, 1]"
        );
        AutoScaler {
            engine: AdaptiveStackDistance::new(),
            distances: Vec::with_capacity(config.distance_samples.min(1 << 20)),
            pos: 0,
            observed: 0,
            warm: 0,
            last_decision: None,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AutoScalerConfig {
        &self.config
    }

    /// Records one sampled cache lookup (key + item footprint bytes).
    ///
    /// With `spatial_sample_rate < 1`, keys outside the sampled hash range
    /// are counted toward the warm-up but not tracked; distances of tracked
    /// keys are scaled by `1/rate` to estimate the full-stream distance.
    pub fn observe(&mut self, key: KeyId, footprint: u64) {
        self.observed += 1;
        let rate = self.config.spatial_sample_rate;
        if rate < 1.0 {
            let threshold = (rate * u64::MAX as f64) as u64;
            if elmem_util::hashutil::mix64(key.0 ^ 0x0005_ca1e_d05a_3b1e) > threshold {
                return;
            }
        }
        if let Some(d) = self.engine.record(key, footprint) {
            self.warm += 1;
            let scaled = (d as f64 / rate) as u64;
            if self.distances.len() < self.config.distance_samples {
                self.distances.push(scaled);
            } else {
                self.distances[self.pos] = scaled;
                self.pos = (self.pos + 1) % self.config.distance_samples;
            }
        }
    }

    /// Lookups observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Observed lookups that were re-accesses (warm).
    pub fn warm(&self) -> u64 {
        self.warm
    }

    /// Distinct keys the stack-distance engine currently tracks. Bounded
    /// by the exact→MIMIR switch threshold for the adaptive engine;
    /// grows with every distinct key ever observed for the legacy one.
    pub fn profiler_tracked_keys(&self) -> usize {
        self.engine.tracked_keys()
    }

    /// Whether the stack-distance engine is still in an exact phase.
    pub fn profiler_is_exact(&self) -> bool {
        self.engine.is_exact()
    }

    /// Eq. (1): the minimum hit rate so that at most r_DB req/s miss.
    pub fn p_min(&self, arrival_rate: f64) -> f64 {
        (1.0 - self.config.r_db / arrival_rate).max(0.0)
    }

    /// Whether an epoch has elapsed since the last decision.
    pub fn epoch_elapsed(&self, now: SimTime) -> bool {
        match self.last_decision {
            Some(last) => now.saturating_sub(last) >= self.config.epoch,
            None => now >= self.config.epoch,
        }
    }

    /// Memory required for a fraction `p` of warm accesses to hit, before
    /// headroom: the `p`-quantile of the recent distance samples.
    /// Cold (first-ever) accesses are compulsory misses that no amount of
    /// memory fixes, so they are excluded from the sizing.
    ///
    /// `None` until at least one warm access has been observed.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn memory_for(&self, p: f64) -> Option<ByteSize> {
        assert!((0.0..=1.0).contains(&p), "hit rate out of range: {p}");
        if self.distances.is_empty() {
            return None;
        }
        let mut sorted = self.distances.clone();
        sorted.sort_unstable();
        let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        Some(ByteSize(sorted[idx]))
    }

    /// Runs the §III-B sizing at `now` for the observed `arrival_rate`
    /// (cache lookups per second) against the current member count.
    /// Returns a hint when the target differs from the current size,
    /// `None` otherwise. Marks the epoch as consumed either way.
    pub fn decide(
        &mut self,
        now: SimTime,
        arrival_rate: f64,
        current_nodes: u32,
    ) -> Option<ScalingHint> {
        self.last_decision = Some(now);
        if arrival_rate <= 0.0 {
            return None;
        }
        let p_min = self.p_min(arrival_rate);
        let required = if p_min == 0.0 {
            // No cache needed at all: safe to act even before warm-up.
            ByteSize::ZERO
        } else {
            if self.observed < self.config.min_observations {
                return None; // warm-up guard
            }
            ByteSize::from_bytes(
                (self.memory_for(p_min)?.as_f64()
                    * self.config.headroom
                    * self.config.slab_overhead) as u64,
            )
        };
        let target = required
            .as_u64()
            .div_ceil(self.config.node_memory.as_u64().max(1))
            .clamp(
                u64::from(self.config.min_nodes),
                u64::from(self.config.max_nodes),
            ) as u32;
        (target != current_nodes).then_some(ScalingHint {
            target_nodes: target,
            current_nodes,
            at: now,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler(r_db: f64) -> AutoScaler {
        let mut cfg = AutoScalerConfig::new(r_db, ByteSize::from_mib(1));
        cfg.min_observations = 100;
        AutoScaler::new(cfg)
    }

    #[test]
    fn p_min_formula() {
        let a = scaler(1000.0);
        assert_eq!(a.p_min(500.0), 0.0); // demand below r_DB
        assert!((a.p_min(2000.0) - 0.5).abs() < 1e-12);
        assert!((a.p_min(10_000.0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn epoch_gating() {
        let mut a = scaler(100.0);
        assert!(!a.epoch_elapsed(SimTime::from_secs(30)));
        assert!(a.epoch_elapsed(SimTime::from_secs(60)));
        a.observe(KeyId(1), 100);
        a.observe(KeyId(1), 100);
        let _ = a.decide(SimTime::from_secs(60), 50.0, 1);
        assert!(!a.epoch_elapsed(SimTime::from_secs(90)));
        assert!(a.epoch_elapsed(SimTime::from_secs(120)));
    }

    #[test]
    fn low_demand_scales_in_to_min() {
        let mut a = scaler(1000.0);
        for round in 0..20u64 {
            for k in 0..50u64 {
                a.observe(KeyId(k), 100);
            }
            let _ = round;
        }
        let hint = a.decide(SimTime::from_secs(60), 200.0, 10).unwrap();
        assert_eq!(hint.target_nodes, 1);
        assert_eq!(hint.scale_in_count(), 9);
        assert_eq!(hint.scale_out_count(), 0);
    }

    #[test]
    fn high_demand_with_reuse_scales_to_fit_working_set() {
        let mut cfg = AutoScalerConfig::new(100.0, ByteSize::from_kib(64));
        cfg.min_observations = 100;
        let mut a = AutoScaler::new(cfg);
        // Working set: 1000 keys × ~1 KB ≈ 1 MB → 16 nodes of 64 KiB.
        for round in 0..10u64 {
            for k in 0..1000u64 {
                a.observe(KeyId(k), 1024);
            }
            let _ = round;
        }
        let hint = a
            .decide(SimTime::from_secs(60), 10_000.0, 4)
            .expect("needs scaling");
        // p_min = 0.99 → needs the whole ~1 MB working set in memory,
        // times slab overhead and headroom: ~16 × 1.65 ≈ 27 nodes.
        assert!(
            (20..=34).contains(&hint.target_nodes),
            "target {}",
            hint.target_nodes
        );
    }

    #[test]
    fn long_horizon_reuse_is_not_mistaken_for_cold() {
        // Keys reused only every 5000 accesses must still contribute their
        // distance — the failure mode of window-based estimators.
        let mut cfg = AutoScalerConfig::new(100.0, ByteSize::from_kib(64));
        cfg.min_observations = 100;
        let mut a = AutoScaler::new(cfg);
        for round in 0..4u64 {
            for k in 0..5000u64 {
                a.observe(KeyId(k), 100);
            }
            let _ = round;
        }
        // 99% of warm accesses need nearly the whole 5000-key set resident.
        let mem = a.memory_for(0.99).unwrap();
        assert!(
            mem.as_u64() > 5000 * 100 / 2,
            "sized {mem} for a 500 KB working set"
        );
    }

    #[test]
    fn no_hint_when_size_already_right() {
        let mut a = scaler(1000.0);
        for k in 0..100u64 {
            a.observe(KeyId(k), 100);
        }
        // Demand below capacity → target = min_nodes = 1; current is 1.
        assert!(a.decide(SimTime::from_secs(60), 100.0, 1).is_none());
    }

    #[test]
    fn cold_only_window_gives_no_memory_estimate() {
        let mut a = scaler(100.0);
        for k in 0..1000u64 {
            a.observe(KeyId(k), 100);
        }
        assert_eq!(a.warm(), 0);
        assert!(a.memory_for(0.9).is_none());
        // And decide() abstains rather than guessing.
        assert!(a.decide(SimTime::from_secs(60), 1_000.0, 3).is_none());
    }

    #[test]
    fn decide_with_zero_rate_is_none() {
        let mut a = scaler(100.0);
        a.observe(KeyId(1), 10);
        assert!(a.decide(SimTime::from_secs(60), 0.0, 3).is_none());
    }

    #[test]
    fn counters_track_observations() {
        let mut a = scaler(100.0);
        a.observe(KeyId(1), 10);
        a.observe(KeyId(1), 10);
        a.observe(KeyId(2), 10);
        assert_eq!(a.observed(), 3);
        assert_eq!(a.warm(), 1);
    }

    #[test]
    fn spatial_sampling_approximates_full_sizing() {
        use elmem_workload::ZipfPopularity;
        let mut full_cfg = AutoScalerConfig::new(100.0, ByteSize::from_kib(64));
        full_cfg.min_observations = 100;
        let mut sampled_cfg = full_cfg.clone();
        sampled_cfg.spatial_sample_rate = 0.25;
        let mut full = AutoScaler::new(full_cfg);
        let mut sampled = AutoScaler::new(sampled_cfg);
        let zipf = ZipfPopularity::new(20_000, 0.9, 3);
        let mut rng = crate::autoscaler::tests::rng_for_sampling();
        for _ in 0..400_000 {
            let key = zipf.sample(&mut rng);
            full.observe(key, 256);
            sampled.observe(key, 256);
        }
        // The sampled tracker sees ~25% of the keys...
        assert!(sampled.warm() < full.warm() / 2);
        // ...but its scaled *tail* quantiles — the ones Eq. (1) sizing
        // uses — land close to the full ones. (Short distances are
        // quantized at ~1/rate granularity and noisier; that is the known
        // SHARDS trade-off and does not affect capacity planning.)
        for p in [0.9, 0.95, 0.99] {
            let f = full.memory_for(p).unwrap().as_f64();
            let s = sampled.memory_for(p).unwrap().as_f64();
            let ratio = s / f;
            assert!(
                (0.7..1.4).contains(&ratio),
                "p={p}: sampled {s} vs full {f} (ratio {ratio})"
            );
        }
    }

    fn rng_for_sampling() -> elmem_util::DetRng {
        elmem_util::DetRng::seed(77)
    }

    #[test]
    #[should_panic]
    fn sample_rate_zero_rejected() {
        let mut cfg = AutoScalerConfig::new(100.0, ByteSize::from_mib(1));
        cfg.spatial_sample_rate = 0.0;
        let _ = AutoScaler::new(cfg);
    }

    #[test]
    #[should_panic]
    fn invalid_r_db_rejected() {
        let _ = AutoScaler::new(AutoScalerConfig::new(0.0, ByteSize::from_mib(1)));
    }

    #[test]
    #[should_panic]
    fn memory_for_out_of_range_panics() {
        let a = scaler(100.0);
        let _ = a.memory_for(1.5);
    }
}
