//! The Master: ElMem's lightweight central controller (§III-A).
//!
//! The Master receives scaling hints from the AutoScaler, chooses which
//! nodes to scale (Q2, via the §III-C scoring), orchestrates the 3-phase
//! migration between Agents (Q3), and only after migration completes
//! informs the web servers of the membership change and directs retiring
//! nodes to power off. This module is the programmatic form of that
//! orchestration: given a cluster and a policy, it mutates the data plane
//! immediately (migration) and returns the *deferred actions* — membership
//! flips and node shutdowns — with the simulated times at which they occur.

use elmem_cluster::Cluster;
use elmem_util::{DetRng, ElmemError, NodeId, SimTime};

use crate::healing::{HealingConfig, ReplacementPolicy};
use crate::journal::MigrationJournal;
use crate::migration::{
    migrate_naive_scale_in, migrate_scale_in_journaled, migrate_scale_out,
    migrate_scale_out_journaled, MigrationCosts, MigrationOutcome, MigrationReport, Supervision,
};
use crate::policies::MigrationPolicy;
use crate::scoring::choose_retiring;

/// A deferred control action the caller must apply when simulated time
/// reaches `at` (the driver schedules these on its event queue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeferredAction {
    /// When the action takes effect.
    pub at: SimTime,
    /// What happens.
    pub kind: DeferredKind,
}

/// The kinds of deferred control-plane actions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeferredKind {
    /// Flip membership to exclude these nodes and power them off.
    CommitRemove(Vec<NodeId>),
    /// Flip membership to include these (already filled) nodes.
    CommitAdd(Vec<NodeId>),
    /// CacheScale: disarm the secondary ring and power these nodes off.
    DiscardSecondary(Vec<NodeId>),
    /// Remove crashed nodes from the membership (abort fallback): mark
    /// them crashed and drop them from the ring. No power-off — they are
    /// already gone.
    EvictCrashed(Vec<NodeId>),
}

/// The direction of a migration job, for conflict detection: two drains
/// contend for the same survivor capacity (as do two fills for the same
/// donor dumps), but a drain and a fill touch disjoint ownership — the
/// drain moves data *onto* the retained ring, the fill *off* it onto
/// nodes that are not yet members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// A scale-in drain (retiring nodes push onto survivors).
    ScaleIn,
    /// A scale-out fill (members push onto not-yet-member nodes).
    ScaleOut,
    /// A healing warm-replacement fill (scale-out shaped).
    Recovery,
}

impl JobKind {
    /// Whether two jobs contend for the same ownership ranges.
    fn conflicts_with(self, other: JobKind) -> bool {
        self.is_drain() == other.is_drain()
    }

    fn is_drain(self) -> bool {
        matches!(self, JobKind::ScaleIn)
    }
}

/// One in-flight migration's state, tracked per job rather than as a
/// single global busy flag so non-conflicting operations can overlap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationJob {
    /// The journal's job id.
    pub id: u64,
    /// Which direction the job moves data.
    pub kind: JobKind,
    /// The nodes being retired or added.
    pub nodes: Vec<NodeId>,
    /// When the job was admitted.
    pub started: SimTime,
    /// When its last deferred commit lands (the job is done after this).
    pub window_end: SimTime,
}

/// The Master's answer to "may this scaling start at `now`?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// No in-flight job conflicts; start immediately.
    Granted,
    /// A conflicting job is draining; retry at `until`.
    Deferred {
        /// Earliest instant the conflict is gone (strictly after now).
        until: SimTime,
        /// Human-readable conflict class, for the trace.
        reason: &'static str,
    },
}

/// What one orchestration call did.
#[derive(Debug, Clone, PartialEq)]
pub struct Orchestration {
    /// Nodes being retired or added.
    pub nodes: Vec<NodeId>,
    /// The migration report, when the policy migrates data.
    pub report: Option<MigrationReport>,
    /// Actions the driver must apply later (possibly empty for policies
    /// that commit immediately).
    pub deferred: Vec<DeferredAction>,
    /// When the scaling is fully committed (now, for immediate policies).
    pub committed_at: SimTime,
}

/// The Master controller.
///
/// # Example
///
/// ```
/// use elmem_core::master::Master;
/// use elmem_core::MigrationPolicy;
/// use elmem_cluster::{Cluster, ClusterConfig};
/// use elmem_util::{DetRng, KeyId, SimTime};
/// use elmem_workload::{GeneralizedPareto, Keyspace};
///
/// let mut cluster = Cluster::new(
///     ClusterConfig::small_test(),
///     Keyspace::with_distribution(1_000, 0, GeneralizedPareto::facebook_etc(), 4_000),
///     DetRng::seed(1),
/// );
/// for k in 0..500u64 {
///     let owner = cluster.tier.node_for_key(KeyId(k)).unwrap();
///     let size = cluster.keyspace().value_size(KeyId(k));
///     cluster.tier.node_mut(owner).unwrap().store
///         .set(KeyId(k), size, SimTime::from_secs(k)).unwrap();
/// }
/// let mut master = Master::new(MigrationPolicy::elmem(), Default::default(), 7);
/// let orch = master
///     .scale_in(&mut cluster, 1, SimTime::from_secs(1_000))
///     .unwrap();
/// assert_eq!(orch.nodes.len(), 1);
/// assert!(orch.report.is_some());
/// ```
#[derive(Debug)]
pub struct Master {
    policy: MigrationPolicy,
    costs: MigrationCosts,
    /// Victim selection randomness for the Naive comparator.
    rng: DetRng,
    /// The Master is busy until this instant (conservative global gate;
    /// [`Master::admit`] offers the finer per-job answer).
    busy_until: SimTime,
    /// The simulated durable WAL every journaled migration writes to
    /// (DESIGN.md §13).
    journal: MigrationJournal,
    /// In-flight (or not-yet-pruned) migration jobs.
    jobs: Vec<MigrationJob>,
    /// Next journal job id.
    next_job_id: u64,
}

impl Master {
    /// Creates a Master executing scalings under `policy` with the given
    /// migration cost model; `seed` feeds the Naive comparator's random
    /// victim choice.
    pub fn new(policy: MigrationPolicy, costs: MigrationCosts, seed: u64) -> Self {
        Master {
            policy,
            costs,
            rng: DetRng::seed(seed).split("naive-victims"),
            busy_until: SimTime::ZERO,
            journal: MigrationJournal::new(),
            jobs: Vec::new(),
            next_job_id: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> MigrationPolicy {
        self.policy
    }

    /// Until when the Master is occupied by an in-flight scaling.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Whether the Master can accept a new scaling decision at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        now >= self.busy_until
    }

    /// The migration journal (every journaled scaling's durable records).
    pub fn journal(&self) -> &MigrationJournal {
        &self.journal
    }

    /// The in-flight migration jobs whose commit windows reach past `now`.
    pub fn jobs_in_flight(&self, now: SimTime) -> impl Iterator<Item = &MigrationJob> {
        self.jobs.iter().filter(move |j| j.window_end > now)
    }

    /// Answers whether a `kind` scaling may start at `now`, per the
    /// overlap rules (DESIGN.md §13): a drain may overlap a fill (they
    /// move disjoint ownership ranges), but two drains — or two fills —
    /// contend and the later one is deferred until the earlier's commit
    /// window closes. Advisory: the driver asks before triggering; the
    /// scale paths themselves stay callable directly (tests, benches).
    pub fn admit(&mut self, kind: JobKind, now: SimTime) -> Admission {
        self.jobs.retain(|j| j.window_end > now);
        let until = self
            .jobs
            .iter()
            .filter(|j| j.kind.conflicts_with(kind))
            .map(|j| j.window_end)
            .max();
        match until {
            Some(until) => Admission::Deferred {
                until,
                reason: if kind.is_drain() {
                    "concurrent drain in flight"
                } else {
                    "concurrent fill in flight"
                },
            },
            None => Admission::Granted,
        }
    }

    /// Allocates the next journal job id.
    fn next_id(&mut self) -> u64 {
        let id = self.next_job_id;
        self.next_job_id += 1;
        id
    }

    /// Records a finished orchestration as a tracked job.
    fn track_job(
        &mut self,
        id: u64,
        kind: JobKind,
        nodes: &[NodeId],
        started: SimTime,
        window_end: SimTime,
    ) {
        self.jobs.push(MigrationJob {
            id,
            kind,
            nodes: nodes.to_vec(),
            started,
            window_end,
        });
    }

    /// Orchestrates a scale-in of `count` nodes at `now`.
    ///
    /// # Errors
    ///
    /// [`ElmemError::InvalidScaling`] if `count` is zero or would empty the
    /// tier; migration errors propagate.
    pub fn scale_in(
        &mut self,
        cluster: &mut Cluster,
        count: u32,
        now: SimTime,
    ) -> Result<Orchestration, ElmemError> {
        self.scale_in_supervised(cluster, count, now, &mut Supervision::none())
    }

    /// [`Master::scale_in`] under supervision: the ElMem migration runs
    /// with deadlines, shipment-drop retries, and crash-abort handling
    /// (the comparators have no supervised path and behave as usual).
    ///
    /// On [`MigrationOutcome::Aborted`] the Master does not panic and does
    /// not roll back: partial imports stay, and the scaling is committed
    /// without further migration at the abort instant. A crashed node —
    /// whether a retiring source or a retained destination — is evicted
    /// from the membership via [`DeferredKind::EvictCrashed`]; the
    /// surviving victims go through the usual
    /// [`DeferredKind::CommitRemove`], which never targets a crashed node.
    ///
    /// # Errors
    ///
    /// Same as [`Master::scale_in`].
    pub fn scale_in_supervised(
        &mut self,
        cluster: &mut Cluster,
        count: u32,
        now: SimTime,
        supervision: &mut Supervision<'_>,
    ) -> Result<Orchestration, ElmemError> {
        let members = cluster.tier.membership().len() as u32;
        if count == 0 || count >= members {
            return Err(ElmemError::InvalidScaling(format!(
                "cannot retire {count} of {members} nodes"
            )));
        }
        let orch = match self.policy {
            MigrationPolicy::Baseline => {
                let (victims, _) = choose_retiring(&cluster.tier, count as usize)?;
                cluster.tier.commit_remove(&victims)?;
                Orchestration {
                    nodes: victims,
                    report: None,
                    deferred: vec![],
                    committed_at: now,
                }
            }
            MigrationPolicy::ElMem { import } => {
                let (victims, _) = choose_retiring(&cluster.tier, count as usize)?;
                let id = self.next_id();
                let report = migrate_scale_in_journaled(
                    &mut cluster.tier,
                    &victims,
                    now,
                    &self.costs,
                    import,
                    supervision,
                    &mut self.journal,
                    id,
                )?;
                let committed_at = report.completed;
                self.track_job(id, JobKind::ScaleIn, &victims, now, committed_at);
                let mut deferred = Vec::new();
                match report.outcome {
                    MigrationOutcome::Completed => deferred.push(DeferredAction {
                        at: committed_at,
                        kind: DeferredKind::CommitRemove(victims.clone()),
                    }),
                    MigrationOutcome::Aborted { .. } => {
                        // Fallback: commit the scaling without further
                        // migration. The crashed node (source or
                        // destination) leaves via eviction, never via
                        // CommitRemove.
                        let crashed = report.outcome.crashed_node();
                        if let Some(x) = crashed {
                            deferred.push(DeferredAction {
                                at: committed_at,
                                kind: DeferredKind::EvictCrashed(vec![x]),
                            });
                        }
                        let survivors: Vec<NodeId> = victims
                            .iter()
                            .copied()
                            .filter(|v| Some(*v) != crashed)
                            .collect();
                        if !survivors.is_empty() {
                            deferred.push(DeferredAction {
                                at: committed_at,
                                kind: DeferredKind::CommitRemove(survivors),
                            });
                        }
                    }
                }
                Orchestration {
                    deferred,
                    nodes: victims,
                    report: Some(report),
                    committed_at,
                }
            }
            MigrationPolicy::Naive => {
                let mut pool = cluster.tier.membership().members().to_vec();
                let mut victims = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let i = self.rng.next_below(pool.len() as u64) as usize;
                    victims.push(pool.swap_remove(i));
                }
                victims.sort_unstable();
                let fraction = f64::from(members - count) / f64::from(members);
                let report = migrate_naive_scale_in(
                    &mut cluster.tier,
                    &victims,
                    fraction,
                    now,
                    &self.costs,
                )?;
                let committed_at = report.completed;
                Orchestration {
                    deferred: vec![DeferredAction {
                        at: committed_at,
                        kind: DeferredKind::CommitRemove(victims.clone()),
                    }],
                    nodes: victims,
                    report: Some(report),
                    committed_at,
                }
            }
            MigrationPolicy::CacheScale { window } => {
                let (victims, _) = choose_retiring(&cluster.tier, count as usize)?;
                let old_ring = cluster.tier.membership().ring().clone();
                cluster.tier.membership_remove_keep_online(&victims)?;
                cluster.arm_secondary(old_ring);
                Orchestration {
                    deferred: vec![DeferredAction {
                        at: now + window,
                        kind: DeferredKind::DiscardSecondary(victims.clone()),
                    }],
                    nodes: victims,
                    report: None,
                    committed_at: now,
                }
            }
        };
        self.busy_until = orch
            .deferred
            .iter()
            .map(|d| d.at)
            .max()
            .unwrap_or(now)
            .max(self.busy_until);
        Ok(orch)
    }

    /// Orchestrates a scale-out of `count` new nodes at `now`.
    ///
    /// # Errors
    ///
    /// [`ElmemError::InvalidScaling`] if `count` is zero; migration errors
    /// propagate.
    pub fn scale_out(
        &mut self,
        cluster: &mut Cluster,
        count: u32,
        now: SimTime,
    ) -> Result<Orchestration, ElmemError> {
        self.scale_out_supervised(cluster, count, now, &mut Supervision::none())
    }

    /// [`Master::scale_out`] under supervision: a freshly provisioned node
    /// that crashes before the membership flip is filtered out of
    /// [`DeferredKind::CommitAdd`] and evicted instead — the cluster never
    /// commits a dead node into the ring.
    ///
    /// # Errors
    ///
    /// Same as [`Master::scale_out`].
    pub fn scale_out_supervised(
        &mut self,
        cluster: &mut Cluster,
        count: u32,
        now: SimTime,
        supervision: &mut Supervision<'_>,
    ) -> Result<Orchestration, ElmemError> {
        if count == 0 {
            return Err(ElmemError::InvalidScaling("zero new nodes".to_string()));
        }
        let ids = cluster.tier.provision_nodes(count as usize);
        let orch = match self.policy {
            MigrationPolicy::ElMem { .. } => {
                let id = self.next_id();
                let master_plan = supervision.master.clone();
                let report = migrate_scale_out_journaled(
                    &mut cluster.tier,
                    &ids,
                    now,
                    &self.costs,
                    &master_plan,
                    &mut self.journal,
                    id,
                )?;
                let committed_at = report.completed;
                self.track_job(id, JobKind::ScaleOut, &ids, now, committed_at);
                let (dead, alive): (Vec<NodeId>, Vec<NodeId>) = ids
                    .iter()
                    .copied()
                    .partition(|&id| supervision.crash_before(id, committed_at).is_some());
                let mut deferred = Vec::new();
                if !dead.is_empty() {
                    deferred.push(DeferredAction {
                        at: committed_at,
                        kind: DeferredKind::EvictCrashed(dead),
                    });
                }
                if !alive.is_empty() {
                    deferred.push(DeferredAction {
                        at: committed_at,
                        kind: DeferredKind::CommitAdd(alive),
                    });
                }
                Orchestration {
                    deferred,
                    nodes: ids,
                    report: Some(report),
                    committed_at,
                }
            }
            // The comparators add cold nodes immediately.
            _ => {
                cluster.tier.commit_add(&ids)?;
                Orchestration {
                    nodes: ids,
                    report: None,
                    deferred: vec![],
                    committed_at: now,
                }
            }
        };
        self.busy_until = orch.committed_at.max(self.busy_until);
        Ok(orch)
    }

    /// Recovers from confirmed node deaths (the self-healing loop's action
    /// arm; see [`crate::healing`]).
    ///
    /// Eviction is immediate: a corpse serves nothing, and every instant it
    /// stays in the ring is client timeouts — so the dead nodes (and any
    /// other crashed members) leave the membership before this returns.
    /// Per [`HealingConfig::replacement`] the Master then admits one
    /// replacement per death: cold (committed immediately) or, with
    /// [`HealingConfig::warmup`], filled via the supervised scale-out path
    /// — FuseCache picks the hottest items off the survivors — before the
    /// deferred [`DeferredKind::CommitAdd`]. Recovery runs regardless of
    /// the experiment's comparator policy: re-admitting capacity is the
    /// control plane's job, not the migration policy's.
    ///
    /// The returned [`Orchestration::nodes`] are the *replacements* (empty
    /// for evict-only). A replacement that itself crashes before its
    /// commit is filtered into [`DeferredKind::EvictCrashed`], like any
    /// supervised scale-out.
    ///
    /// # Errors
    ///
    /// Migration errors propagate; eviction itself cannot fail.
    pub fn recover_supervised(
        &mut self,
        cluster: &mut Cluster,
        dead: &[NodeId],
        now: SimTime,
        healing: &HealingConfig,
        supervision: &mut Supervision<'_>,
    ) -> Result<Orchestration, ElmemError> {
        for &id in dead {
            let _ = cluster.tier.crash(id); // idempotent; confirms the state
        }
        let _ = cluster.tier.evict_crashed();
        // If *every* member was dead, eviction keeps one corpse so clients
        // still have somewhere to hash to; it can only leave once the
        // replacements are in.
        let leftover: Vec<NodeId> = cluster
            .tier
            .membership()
            .members()
            .iter()
            .copied()
            .filter(|&id| {
                cluster
                    .tier
                    .node(id)
                    .map(|n| n.is_crashed())
                    .unwrap_or(false)
            })
            .collect();
        if healing.replacement == ReplacementPolicy::None || dead.is_empty() {
            self.busy_until = now.max(self.busy_until);
            return Ok(Orchestration {
                nodes: vec![],
                report: None,
                deferred: vec![],
                committed_at: now,
            });
        }
        let ids = cluster.tier.provision_nodes(dead.len());
        let orch = if healing.warmup {
            // Healing keeps the unjournaled path: a warm replacement is
            // already the recovery action for a failure, and stacking a
            // Master-crash resume inside it buys nothing — a crashed-out
            // warmup just re-runs (DESIGN.md §13).
            let report = migrate_scale_out(&mut cluster.tier, &ids, now, &self.costs)?;
            let committed_at = report.completed;
            let recovery_id = self.next_id();
            self.track_job(recovery_id, JobKind::Recovery, &ids, now, committed_at);
            let (crashed, alive): (Vec<NodeId>, Vec<NodeId>) = ids
                .iter()
                .copied()
                .partition(|&id| supervision.crash_before(id, committed_at).is_some());
            let mut deferred = Vec::new();
            if !crashed.is_empty() {
                deferred.push(DeferredAction {
                    at: committed_at,
                    kind: DeferredKind::EvictCrashed(crashed),
                });
            }
            if !alive.is_empty() {
                deferred.push(DeferredAction {
                    at: committed_at,
                    kind: DeferredKind::CommitAdd(alive),
                });
                // After the replacements join, the kept corpse can go.
                if !leftover.is_empty() {
                    deferred.push(DeferredAction {
                        at: committed_at,
                        kind: DeferredKind::EvictCrashed(leftover.clone()),
                    });
                }
            }
            Orchestration {
                deferred,
                nodes: ids,
                report: Some(report),
                committed_at,
            }
        } else {
            cluster.tier.commit_add(&ids)?;
            if !leftover.is_empty() {
                let _ = cluster.tier.evict_crashed();
            }
            Orchestration {
                nodes: ids,
                report: None,
                deferred: vec![],
                committed_at: now,
            }
        };
        self.busy_until = orch.committed_at.max(self.busy_until);
        Ok(orch)
    }

    /// Applies a deferred action (the driver calls this when simulated time
    /// reaches `action.at`).
    pub fn apply(cluster: &mut Cluster, kind: &DeferredKind) {
        match kind {
            DeferredKind::CommitRemove(victims) => {
                // A victim that crashed between orchestration and commit
                // (or is no longer a member) cannot be removed cleanly —
                // the evict path owns crashed nodes. CommitRemove never
                // targets them.
                let (live, crashed): (Vec<NodeId>, Vec<NodeId>) = victims
                    .iter()
                    .copied()
                    .filter(|&v| cluster.tier.membership().members().contains(&v))
                    .partition(|&v| {
                        cluster
                            .tier
                            .node(v)
                            .map(|n| !n.is_crashed())
                            .unwrap_or(false)
                    });
                if !live.is_empty() {
                    let _ = cluster.tier.commit_remove(&live);
                }
                // A victim that crashed after migration finished (no abort)
                // still has to leave the membership — via eviction, since
                // the power-off directive cannot reach it.
                if !crashed.is_empty() {
                    let _ = cluster.tier.evict_crashed();
                }
            }
            DeferredKind::CommitAdd(ids) => {
                let _ = cluster.tier.commit_add(ids);
            }
            DeferredKind::DiscardSecondary(victims) => {
                cluster.disarm_secondary();
                // power_off is a per-node no-op for crashed secondaries.
                cluster.tier.power_off(victims);
            }
            DeferredKind::EvictCrashed(ids) => {
                for &id in ids {
                    let _ = cluster.tier.crash(id); // idempotent
                }
                let _ = cluster.tier.evict_crashed();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmem_cluster::ClusterConfig;
    use elmem_util::KeyId;
    use elmem_workload::{GeneralizedPareto, Keyspace};

    fn warmed_cluster() -> Cluster {
        let mut cluster = Cluster::new(
            ClusterConfig::small_test(),
            Keyspace::with_distribution(10_000, 0, GeneralizedPareto::facebook_etc(), 4_000),
            DetRng::seed(5),
        );
        for k in 0..2000u64 {
            let key = KeyId(k);
            let owner = cluster.tier.node_for_key(key).unwrap();
            let size = cluster.keyspace().value_size(key);
            cluster
                .tier
                .node_mut(owner)
                .unwrap()
                .store
                .set(key, size, SimTime::from_secs(1 + k))
                .unwrap();
        }
        cluster
    }

    #[test]
    fn baseline_commits_inline() {
        let mut c = warmed_cluster();
        let mut m = Master::new(MigrationPolicy::Baseline, MigrationCosts::default(), 1);
        let now = SimTime::from_secs(10_000);
        let orch = m.scale_in(&mut c, 1, now).unwrap();
        assert!(orch.deferred.is_empty());
        assert_eq!(orch.committed_at, now);
        assert_eq!(c.tier.membership().len(), 3);
        assert!(m.is_idle(now));
    }

    #[test]
    fn elmem_defers_commit_until_migration_done() {
        let mut c = warmed_cluster();
        let mut m = Master::new(MigrationPolicy::elmem(), MigrationCosts::default(), 1);
        let now = SimTime::from_secs(10_000);
        let orch = m.scale_in(&mut c, 1, now).unwrap();
        assert_eq!(orch.deferred.len(), 1);
        assert!(orch.committed_at > now);
        // Membership unchanged until the deferred action is applied.
        assert_eq!(c.tier.membership().len(), 4);
        assert!(!m.is_idle(now));
        assert!(m.is_idle(orch.committed_at));
        Master::apply(&mut c, &orch.deferred[0].kind);
        assert_eq!(c.tier.membership().len(), 3);
    }

    #[test]
    fn cachescale_defers_discard() {
        let mut c = warmed_cluster();
        let mut m = Master::new(MigrationPolicy::cachescale(), MigrationCosts::default(), 1);
        let now = SimTime::from_secs(10_000);
        let orch = m.scale_in(&mut c, 1, now).unwrap();
        // Membership flipped immediately, secondary armed.
        assert_eq!(c.tier.membership().len(), 3);
        assert!(c.secondary_armed());
        assert_eq!(orch.deferred.len(), 1);
        assert_eq!(orch.deferred[0].at, now + SimTime::from_secs(120));
        Master::apply(&mut c, &orch.deferred[0].kind);
        assert!(!c.secondary_armed());
        assert!(!c.tier.node(orch.nodes[0]).unwrap().is_online());
    }

    #[test]
    fn scale_out_elmem_fills_before_commit() {
        let mut c = warmed_cluster();
        let mut m = Master::new(MigrationPolicy::elmem(), MigrationCosts::default(), 1);
        let now = SimTime::from_secs(10_000);
        let orch = m.scale_out(&mut c, 1, now).unwrap();
        assert_eq!(c.tier.membership().len(), 4, "not yet a member");
        let new_store = &c.tier.node(orch.nodes[0]).unwrap().store;
        assert!(!new_store.is_empty(), "filled before the flip");
        Master::apply(&mut c, &orch.deferred[0].kind);
        assert_eq!(c.tier.membership().len(), 5);
    }

    #[test]
    fn invalid_counts_rejected() {
        let mut c = warmed_cluster();
        let mut m = Master::new(MigrationPolicy::elmem(), MigrationCosts::default(), 1);
        assert!(m.scale_in(&mut c, 0, SimTime::ZERO).is_err());
        assert!(m.scale_in(&mut c, 4, SimTime::ZERO).is_err());
        assert!(m.scale_out(&mut c, 0, SimTime::ZERO).is_err());
    }

    #[test]
    fn crashed_victim_never_in_commit_remove() {
        use crate::migration::{AbortCause, MigrationPhase};
        use elmem_sim::fault::{FaultInjector, FaultPlan};

        let mut c = warmed_cluster();
        let now = SimTime::from_secs(10_000);
        // Learn who the Master will retire, then crash exactly that node
        // early in phase 1.
        let (victims, _) = crate::scoring::choose_retiring(&c.tier, 1).unwrap();
        let victim = victims[0];
        let mut inj = FaultInjector::new(
            FaultPlan::new().crash(now + SimTime::from_millis(1), victim),
            DetRng::seed(3).split("faults"),
        );
        let mut m = Master::new(MigrationPolicy::elmem(), MigrationCosts::default(), 1);
        let orch = m
            .scale_in_supervised(&mut c, 1, now, &mut Supervision::with_faults(&mut inj))
            .unwrap();
        let report = orch.report.as_ref().unwrap();
        assert_eq!(
            report.outcome,
            MigrationOutcome::Aborted {
                phase: MigrationPhase::MetadataTransfer,
                cause: AbortCause::SourceCrashed(victim),
            }
        );
        // The crashed victim leaves via eviction, never via CommitRemove.
        for d in &orch.deferred {
            if let DeferredKind::CommitRemove(targets) = &d.kind {
                assert!(!targets.contains(&victim));
            }
        }
        assert!(orch
            .deferred
            .iter()
            .any(|d| d.kind == DeferredKind::EvictCrashed(vec![victim])));
        // Applying the fallback yields a consistent 3-node membership
        // without the dead node.
        c.tier.crash(victim).unwrap();
        for d in &orch.deferred {
            Master::apply(&mut c, &d.kind);
        }
        assert_eq!(c.tier.membership().len(), 3);
        assert!(!c.tier.membership().members().contains(&victim));
    }

    #[test]
    fn apply_commit_remove_skips_crashed_nodes() {
        let mut c = warmed_cluster();
        let victims = vec![NodeId(0), NodeId(1)];
        c.tier.crash(NodeId(0)).unwrap();
        Master::apply(&mut c, &DeferredKind::CommitRemove(victims));
        // Both victims leave the membership, but through different doors:
        // the healthy one is cleanly removed and powered off, the crashed
        // one is evicted (its power-off would be undeliverable).
        assert!(!c.tier.membership().members().contains(&NodeId(1)));
        assert!(!c.tier.membership().members().contains(&NodeId(0)));
        assert_eq!(c.tier.membership().len(), 2);
        assert!(!c.tier.node(NodeId(1)).unwrap().is_online());
        assert!(c.tier.node(NodeId(0)).unwrap().is_crashed());
    }

    #[test]
    fn discard_secondary_is_noop_for_crashed_node() {
        let mut c = warmed_cluster();
        let mut m = Master::new(MigrationPolicy::cachescale(), MigrationCosts::default(), 1);
        let now = SimTime::from_secs(10_000);
        let orch = m.scale_in(&mut c, 1, now).unwrap();
        let victim = orch.nodes[0];
        // The secondary crashes inside the CacheScale window.
        c.tier.crash(victim).unwrap();
        Master::apply(&mut c, &orch.deferred[0].kind);
        assert!(!c.secondary_armed());
        // The power-off directive could not reach the dead node: it stays
        // crashed (not cleanly powered off), and nothing panicked.
        assert!(c.tier.node(victim).unwrap().is_crashed());
        assert!(!c.tier.node(victim).unwrap().is_online());
    }

    #[test]
    fn recover_evict_only_shrinks_membership() {
        use crate::healing::HealingConfig;
        let mut c = warmed_cluster();
        let mut m = Master::new(MigrationPolicy::elmem(), MigrationCosts::default(), 1);
        let now = SimTime::from_secs(10_000);
        c.tier.crash(NodeId(2)).unwrap();
        let orch = m
            .recover_supervised(
                &mut c,
                &[NodeId(2)],
                now,
                &HealingConfig::evict_only(),
                &mut Supervision::none(),
            )
            .unwrap();
        assert!(orch.nodes.is_empty(), "no replacement admitted");
        assert!(orch.deferred.is_empty());
        assert_eq!(c.tier.membership().len(), 3);
        assert!(!c.tier.membership().members().contains(&NodeId(2)));
    }

    #[test]
    fn recover_warm_replacement_fills_before_commit() {
        use crate::healing::HealingConfig;
        let mut c = warmed_cluster();
        let mut m = Master::new(MigrationPolicy::elmem(), MigrationCosts::default(), 1);
        let now = SimTime::from_secs(10_000);
        c.tier.crash(NodeId(2)).unwrap();
        let orch = m
            .recover_supervised(
                &mut c,
                &[NodeId(2)],
                now,
                &HealingConfig::warm_replacement(),
                &mut Supervision::none(),
            )
            .unwrap();
        assert_eq!(orch.nodes.len(), 1, "one replacement per death");
        let replacement = orch.nodes[0];
        // Corpse already evicted; replacement filled but not yet a member.
        assert_eq!(c.tier.membership().len(), 3);
        assert!(!c.tier.node(replacement).unwrap().store.is_empty());
        assert!(orch.committed_at > now, "warmup takes time");
        assert!(!m.is_idle(now));
        for d in &orch.deferred {
            Master::apply(&mut c, &d.kind);
        }
        assert_eq!(c.tier.membership().len(), 4, "capacity restored");
        assert!(c.tier.membership().members().contains(&replacement));
    }

    #[test]
    fn recover_cold_replacement_commits_immediately() {
        use crate::healing::HealingConfig;
        let mut c = warmed_cluster();
        let mut m = Master::new(MigrationPolicy::Baseline, MigrationCosts::default(), 1);
        let now = SimTime::from_secs(10_000);
        c.tier.crash(NodeId(1)).unwrap();
        let orch = m
            .recover_supervised(
                &mut c,
                &[NodeId(1)],
                now,
                &HealingConfig::cold_replacement(),
                &mut Supervision::none(),
            )
            .unwrap();
        assert_eq!(orch.committed_at, now);
        assert_eq!(c.tier.membership().len(), 4);
        assert!(c.tier.node(orch.nodes[0]).unwrap().store.is_empty(), "cold");
    }

    #[test]
    fn admission_allows_a_fill_to_overlap_a_drain() {
        let mut c = warmed_cluster();
        let mut m = Master::new(MigrationPolicy::elmem(), MigrationCosts::default(), 1);
        let now = SimTime::from_secs(10_000);
        let orch = m.scale_in(&mut c, 1, now).unwrap();
        let mid = now + SimTime::from_millis(1);
        assert!(mid < orch.committed_at, "the drain is still in flight");
        // A second drain conflicts and is deferred to the commit window's
        // end; a fill moves disjoint ownership and is granted.
        assert_eq!(
            m.admit(JobKind::ScaleIn, mid),
            Admission::Deferred {
                until: orch.committed_at,
                reason: "concurrent drain in flight",
            }
        );
        assert_eq!(m.admit(JobKind::ScaleOut, mid), Admission::Granted);
        // Once the window closes the job is pruned and drains flow again.
        assert_eq!(
            m.admit(JobKind::ScaleIn, orch.committed_at),
            Admission::Granted
        );
    }

    #[test]
    fn admission_defers_conflicting_fills() {
        let mut c = warmed_cluster();
        let mut m = Master::new(MigrationPolicy::elmem(), MigrationCosts::default(), 1);
        let now = SimTime::from_secs(10_000);
        let orch = m.scale_out(&mut c, 1, now).unwrap();
        let mid = now + SimTime::from_millis(1);
        assert!(mid < orch.committed_at);
        assert!(matches!(
            m.admit(JobKind::ScaleOut, mid),
            Admission::Deferred { .. }
        ));
        // Recovery's warm replacement is fill-shaped: it conflicts too.
        assert!(matches!(
            m.admit(JobKind::Recovery, mid),
            Admission::Deferred { .. }
        ));
        assert_eq!(m.admit(JobKind::ScaleIn, mid), Admission::Granted);
    }

    #[test]
    fn journaled_scalings_commit_into_the_journal() {
        let mut c = warmed_cluster();
        let mut m = Master::new(MigrationPolicy::elmem(), MigrationCosts::default(), 1);
        let now = SimTime::from_secs(10_000);
        m.scale_in(&mut c, 1, now).unwrap();
        let later = m.busy_until() + SimTime::from_secs(1);
        m.scale_out(&mut c, 1, later).unwrap();
        // Two jobs, two terminal Committed records, distinct ids.
        let committed: Vec<u64> = m
            .journal()
            .entries()
            .iter()
            .filter_map(|e| match e.record {
                crate::journal::JournalRecord::Committed { id, .. } => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(committed, vec![0, 1]);
        assert!(m.journal().replay(0).committed);
        assert!(m.journal().replay(1).committed);
    }

    #[test]
    fn naive_uses_random_victims_deterministically() {
        let mut c1 = warmed_cluster();
        let mut c2 = warmed_cluster();
        let mut m1 = Master::new(MigrationPolicy::Naive, MigrationCosts::default(), 9);
        let mut m2 = Master::new(MigrationPolicy::Naive, MigrationCosts::default(), 9);
        let now = SimTime::from_secs(10_000);
        let o1 = m1.scale_in(&mut c1, 1, now).unwrap();
        let o2 = m2.scale_in(&mut c2, 1, now).unwrap();
        assert_eq!(o1.nodes, o2.nodes, "same seed, same victims");
    }
}
