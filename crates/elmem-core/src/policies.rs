//! Scaling policies: ElMem and the comparators of §V.
//!
//! All policies answer Q1 (when/how much — the AutoScaler) and Q2 (which
//! nodes — median scoring) the same way; they differ only in Q3, how data
//! moves before the scaling action (§V-B1, §V-B4):
//!
//! * **Baseline** — no migration; scale immediately, eat the cold cache;
//! * **ElMem** — the 3-phase FuseCache migration, then scale;
//! * **Naive** — ship the hottest `(n−x)/n` fraction of each retiring
//!   node's items without cross-node comparison, prepending at the
//!   destinations (can displace hotter residents);
//! * **CacheScale** — no up-front migration: retiring nodes become a
//!   *secondary cache*; primary misses retry there and hits are promoted;
//!   the secondary is discarded after a window.

use elmem_store::ImportMode;
use elmem_util::SimTime;
use serde::{Deserialize, Serialize};

/// How a scaling decision is executed (Q3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MigrationPolicy {
    /// Scale immediately with no data movement.
    Baseline,
    /// The paper's system: optimal hot-data migration before scaling.
    ElMem {
        /// How destinations incorporate migrated items. [`ImportMode::Merge`]
        /// preserves the MRU-sorted invariant; [`ImportMode::Prepend`]
        /// follows the paper's prose verbatim. Benchmarked as an ablation.
        import: ImportMode,
    },
    /// Fraction-based migration without cross-node hotness comparison.
    Naive,
    /// Passive request-driven migration with a secondary cache (the
    /// CacheScale system \[8\], as implemented in §V-B4).
    CacheScale {
        /// How long the secondary (retiring) nodes keep serving before
        /// being discarded; the paper uses ≈2 min, matching ElMem's
        /// migration overhead.
        window: SimTime,
    },
}

impl MigrationPolicy {
    /// ElMem with the default (merge) import.
    pub fn elmem() -> Self {
        MigrationPolicy::ElMem {
            import: ImportMode::Merge,
        }
    }

    /// CacheScale with the paper's 2-minute discard window.
    pub fn cachescale() -> Self {
        MigrationPolicy::CacheScale {
            window: SimTime::from_secs(120),
        }
    }

    /// Short display name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            MigrationPolicy::Baseline => "baseline",
            MigrationPolicy::ElMem { .. } => "elmem",
            MigrationPolicy::Naive => "naive",
            MigrationPolicy::CacheScale { .. } => "cachescale",
        }
    }
}

impl std::fmt::Display for MigrationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(MigrationPolicy::Baseline.name(), "baseline");
        assert_eq!(MigrationPolicy::elmem().name(), "elmem");
        assert_eq!(MigrationPolicy::Naive.to_string(), "naive");
        assert_eq!(MigrationPolicy::cachescale().name(), "cachescale");
    }

    #[test]
    fn cachescale_default_window_is_two_minutes() {
        match MigrationPolicy::cachescale() {
            MigrationPolicy::CacheScale { window } => {
                assert_eq!(window, SimTime::from_secs(120));
            }
            _ => unreachable!(),
        }
    }
}
