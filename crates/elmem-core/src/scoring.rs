//! Which node(s) to scale in (§III-C).
//!
//! ElMem retires the node whose hot-data migration will move the fewest
//! bytes. Exactly determining that would require comparing every item
//! across nodes; instead the Master compares only the **median** MRU
//! timestamp of each slab, weighted by the fraction of memory pages the
//! slab holds: `score_i = Σ_b s_{b,i} · w_b`, retiring the `argmin` — the
//! node whose data is coldest at the middle of its MRU lists.

use elmem_cluster::CacheTier;
use elmem_store::SlabStore;
use elmem_util::{ElmemError, NodeId};

/// The §III-C node score: page-weighted sum of per-slab median hotness
/// timestamps (seconds). Lower = colder = better to retire.
///
/// Empty classes hold no pages and contribute nothing.
///
/// # Example
///
/// ```
/// use elmem_core::scoring::node_score;
/// use elmem_store::{SlabStore, StoreConfig};
/// use elmem_util::{ByteSize, KeyId, SimTime};
///
/// let mut cold = SlabStore::new(StoreConfig::with_memory(ByteSize::from_mib(2)));
/// let mut hot = SlabStore::new(StoreConfig::with_memory(ByteSize::from_mib(2)));
/// for k in 0..100u64 {
///     cold.set(KeyId(k), 10, SimTime::from_secs(k)).unwrap();
///     hot.set(KeyId(k), 10, SimTime::from_secs(1000 + k)).unwrap();
/// }
/// assert!(node_score(&cold) < node_score(&hot));
/// ```
pub fn node_score(store: &SlabStore) -> f64 {
    store
        .page_weights()
        .into_iter()
        .map(|(class, w)| {
            if w == 0.0 {
                return 0.0;
            }
            match store.median_hotness(class) {
                Some(h) => w * h.time().as_secs_f64(),
                None => 0.0,
            }
        })
        .sum()
}

/// Chooses the `x` member nodes with the smallest (coldest) scores to
/// retire. Returns the chosen ids together with the full sorted scoring,
/// coldest first (useful for the Fig. 7 analysis).
///
/// # Errors
///
/// * [`ElmemError::InvalidScaling`] if `x` is not smaller than the
///   membership size (the tier cannot scale to zero nodes);
/// * [`ElmemError::UnknownNode`] if the membership lists a node the tier
///   does not hold (a torn commit — under chaos schedules this surfaces as
///   an invariant failure rather than a panic).
#[allow(clippy::type_complexity)]
pub fn choose_retiring(
    tier: &CacheTier,
    x: usize,
) -> Result<(Vec<NodeId>, Vec<(NodeId, f64)>), ElmemError> {
    let members = tier.membership().members();
    if x >= members.len() {
        return Err(ElmemError::InvalidScaling(format!(
            "cannot retire {x} of {} nodes",
            members.len()
        )));
    }
    let mut scored: Vec<(NodeId, f64)> = Vec::with_capacity(members.len());
    for &id in members.iter() {
        let node = tier.node(id)?;
        scored.push((id, node_score(&node.store)));
    }
    // Scores are finite (page weights and timestamps both are), so the
    // comparison never sees a NaN; total_cmp keeps the sort infallible.
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    let chosen = scored.iter().take(x).map(|(id, _)| *id).collect();
    Ok((chosen, scored))
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmem_cluster::ClusterConfig;
    use elmem_util::{KeyId, SimTime};

    fn warmed_tier() -> CacheTier {
        let mut tier = CacheTier::new(ClusterConfig::small_test());
        // Node i's items are touched at time base = (i+1)*1000s, so node 0
        // is coldest, node 3 hottest.
        for i in 0..4u32 {
            let id = NodeId(i);
            for k in 0..200u64 {
                let t = SimTime::from_secs(u64::from(i + 1) * 1000 + k);
                tier.node_mut(id)
                    .unwrap()
                    .store
                    .set(KeyId(k), 50, t)
                    .unwrap();
            }
        }
        tier
    }

    #[test]
    fn coldest_node_chosen() {
        let tier = warmed_tier();
        let (chosen, scored) = choose_retiring(&tier, 1).unwrap();
        assert_eq!(chosen, vec![NodeId(0)]);
        assert_eq!(scored.len(), 4);
        // Scores strictly increase with node id in this construction.
        for w in scored.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn multiple_victims_are_the_coldest_set() {
        let tier = warmed_tier();
        let (chosen, _) = choose_retiring(&tier, 2).unwrap();
        assert_eq!(chosen, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn empty_store_scores_zero() {
        let tier = CacheTier::new(ClusterConfig::small_test());
        let s = node_score(&tier.node(NodeId(0)).unwrap().store);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn score_weights_by_pages() {
        use elmem_store::{SlabStore, StoreConfig};
        use elmem_util::ByteSize;
        // Two stores, same small-class data; one also has a large, *hot*
        // class holding most pages — its weighted score must be higher.
        let mut plain = SlabStore::new(StoreConfig::with_memory(ByteSize::from_mib(8)));
        let mut skewed = SlabStore::new(StoreConfig::with_memory(ByteSize::from_mib(8)));
        for k in 0..100u64 {
            plain.set(KeyId(k), 10, SimTime::from_secs(k)).unwrap();
            skewed.set(KeyId(k), 10, SimTime::from_secs(k)).unwrap();
        }
        for k in 1000..1200u64 {
            skewed
                .set(KeyId(k), 50_000, SimTime::from_secs(100_000 + k))
                .unwrap();
        }
        assert!(node_score(&skewed) > node_score(&plain));
    }

    #[test]
    fn retiring_all_nodes_is_an_error() {
        let tier = warmed_tier();
        let err = choose_retiring(&tier, 4).unwrap_err();
        assert!(matches!(err, ElmemError::InvalidScaling(_)), "{err}");
    }
}
