//! Predictive autoscaling (the paper's pluggable Q1 module).
//!
//! §III-B: "the exact autoscaling algorithm is a pluggable module. Thus,
//! the user can input a different autoscaling algorithm, such as a
//! predictive scaling framework \[6\]\[41\], if needed." This module is
//! that plug-in point: a Holt linear-trend (double-exponential) demand
//! forecaster layered on the same Eq. (1) + stack-distance sizing.
//!
//! The operational win of prediction under ElMem: migration takes ~2
//! minutes (§V-B2), so acting on demand forecast `lead_epochs` ahead means
//! capacity (with its hot data!) is ready *when* the demand arrives rather
//! than 2 minutes after. Scale-in remains reactive (`max(current,
//! predicted)`) — scaling down on a forecast risks SLOs for pennies.

use elmem_util::{KeyId, SimTime};
use serde::{Deserialize, Serialize};

use crate::autoscaler::{AutoScaler, AutoScalerConfig, ScalingHint};

/// Configuration of the predictive wrapper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictiveConfig {
    /// The underlying reactive sizing.
    pub reactive: AutoScalerConfig,
    /// Smoothing factor for the demand level (0–1; higher = more reactive).
    pub alpha: f64,
    /// Smoothing factor for the demand trend (0–1).
    pub beta: f64,
    /// How many epochs ahead the forecast looks.
    pub lead_epochs: u32,
}

impl PredictiveConfig {
    /// Sensible defaults: Holt(α = 0.5, β = 0.3), two epochs of lead —
    /// enough to cover ElMem's migration overhead at a 1-minute epoch.
    pub fn new(reactive: AutoScalerConfig) -> Self {
        PredictiveConfig {
            reactive,
            alpha: 0.5,
            beta: 0.3,
            lead_epochs: 2,
        }
    }
}

/// A Holt linear-trend forecaster wrapped around the reactive
/// [`AutoScaler`]: sizes for `max(current, forecast)` demand.
///
/// # Example
///
/// ```
/// use elmem_core::{AutoScalerConfig, PredictiveAutoScaler, PredictiveConfig};
/// use elmem_util::{ByteSize, KeyId, SimTime};
///
/// let reactive = AutoScalerConfig::new(1000.0, ByteSize::from_mib(64));
/// let mut p = PredictiveAutoScaler::new(PredictiveConfig::new(reactive));
/// for k in 0..200u64 {
///     p.observe(KeyId(k % 50), 100);
/// }
/// // Rising demand: 500 now, forecast climbs above it.
/// let _ = p.decide(SimTime::from_secs(60), 500.0, 4);
/// let hint = p.decide(SimTime::from_secs(120), 900.0, 4);
/// assert!(hint.is_none() || hint.unwrap().target_nodes >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct PredictiveAutoScaler {
    inner: AutoScaler,
    config: PredictiveConfig,
    level: f64,
    trend: f64,
    initialized: bool,
}

impl PredictiveAutoScaler {
    /// Creates the predictive scaler.
    ///
    /// # Panics
    ///
    /// Panics if `alpha`/`beta` are outside `(0, 1]` or the reactive config
    /// is invalid.
    pub fn new(config: PredictiveConfig) -> Self {
        assert!(
            config.alpha > 0.0 && config.alpha <= 1.0,
            "alpha out of range"
        );
        assert!(config.beta > 0.0 && config.beta <= 1.0, "beta out of range");
        PredictiveAutoScaler {
            inner: AutoScaler::new(config.reactive.clone()),
            config,
            level: 0.0,
            trend: 0.0,
            initialized: false,
        }
    }

    /// Records one sampled cache lookup (delegates to the reactive core).
    pub fn observe(&mut self, key: KeyId, footprint: u64) {
        self.inner.observe(key, footprint);
    }

    /// Whether an epoch has elapsed since the last decision.
    pub fn epoch_elapsed(&self, now: SimTime) -> bool {
        self.inner.epoch_elapsed(now)
    }

    /// Distinct keys the reactive core's stack-distance engine tracks.
    pub fn profiler_tracked_keys(&self) -> usize {
        self.inner.profiler_tracked_keys()
    }

    /// The current demand forecast `lead_epochs` ahead, after at least one
    /// rate observation.
    pub fn forecast(&self) -> Option<f64> {
        self.initialized
            .then(|| (self.level + self.trend * f64::from(self.config.lead_epochs)).max(0.0))
    }

    /// Updates the forecast with the epoch's observed rate and runs the
    /// Eq. (1) sizing on `max(current, forecast)` — scale out ahead of
    /// demand, scale in only on observed demand.
    pub fn decide(
        &mut self,
        now: SimTime,
        arrival_rate: f64,
        current_nodes: u32,
    ) -> Option<ScalingHint> {
        self.update_forecast(arrival_rate);
        let planning_rate = self
            .forecast()
            .map_or(arrival_rate, |f| f.max(arrival_rate));
        self.inner.decide(now, planning_rate, current_nodes)
    }

    fn update_forecast(&mut self, rate: f64) {
        if !self.initialized {
            self.level = rate;
            self.trend = 0.0;
            self.initialized = true;
            return;
        }
        let prev_level = self.level;
        self.level =
            self.config.alpha * rate + (1.0 - self.config.alpha) * (prev_level + self.trend);
        self.trend =
            self.config.beta * (self.level - prev_level) + (1.0 - self.config.beta) * self.trend;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmem_util::ByteSize;

    fn reactive() -> AutoScalerConfig {
        let mut cfg = AutoScalerConfig::new(1000.0, ByteSize::from_kib(64));
        cfg.min_observations = 50;
        cfg
    }

    fn warmed(cfg: PredictiveConfig) -> PredictiveAutoScaler {
        let mut p = PredictiveAutoScaler::new(cfg);
        for round in 0..5u64 {
            for k in 0..500u64 {
                p.observe(KeyId(k), 1024);
            }
            let _ = round;
        }
        p
    }

    #[test]
    fn steady_demand_matches_reactive() {
        let mut p = warmed(PredictiveConfig::new(reactive()));
        let mut r = AutoScaler::new(reactive());
        for round in 0..5u64 {
            for k in 0..500u64 {
                r.observe(KeyId(k), 1024);
            }
            let _ = round;
        }
        for epoch in 1..6u64 {
            let now = SimTime::from_secs(60 * epoch);
            let hp = p.decide(now, 5000.0, 1);
            let hr = r.decide(now, 5000.0, 1);
            assert_eq!(
                hp.map(|h| h.target_nodes),
                hr.map(|h| h.target_nodes),
                "epoch {epoch}"
            );
        }
    }

    #[test]
    fn rising_demand_provisions_ahead() {
        let mut p = warmed(PredictiveConfig::new(reactive()));
        let mut r = AutoScaler::new(reactive());
        for round in 0..5u64 {
            for k in 0..500u64 {
                r.observe(KeyId(k), 1024);
            }
            let _ = round;
        }
        // Demand ramps 2k, 4k, 6k, 8k per epoch.
        let mut predictive_target = 0;
        let mut reactive_target = 0;
        for (epoch, rate) in [(1u64, 2000.0), (2, 4000.0), (3, 6000.0), (4, 8000.0)] {
            let now = SimTime::from_secs(60 * epoch);
            if let Some(h) = p.decide(now, rate, 1) {
                predictive_target = h.target_nodes;
            }
            if let Some(h) = r.decide(now, rate, 1) {
                reactive_target = h.target_nodes;
            }
        }
        assert!(
            predictive_target >= reactive_target,
            "predictive {predictive_target} < reactive {reactive_target}"
        );
        // The forecast itself must exceed the last observed rate.
        assert!(p.forecast().unwrap() > 8000.0);
    }

    #[test]
    fn falling_demand_never_scales_below_reactive() {
        let mut p = warmed(PredictiveConfig::new(reactive()));
        let mut r = AutoScaler::new(reactive());
        for round in 0..5u64 {
            for k in 0..500u64 {
                r.observe(KeyId(k), 1024);
            }
            let _ = round;
        }
        for (epoch, rate) in [(1u64, 9000.0), (2, 6000.0), (3, 3000.0), (4, 2000.0)] {
            let now = SimTime::from_secs(60 * epoch);
            let hp = p.decide(now, rate, 20).map(|h| h.target_nodes);
            let hr = r.decide(now, rate, 20).map(|h| h.target_nodes);
            if let (Some(tp), Some(tr)) = (hp, hr) {
                assert!(
                    tp >= tr,
                    "epoch {epoch}: predictive scaled in deeper ({tp}) than reactive ({tr})"
                );
            }
        }
    }

    #[test]
    fn forecast_none_before_first_rate() {
        let p = PredictiveAutoScaler::new(PredictiveConfig::new(reactive()));
        assert!(p.forecast().is_none());
    }

    #[test]
    fn forecast_tracks_linear_ramp() {
        let mut p = PredictiveAutoScaler::new(PredictiveConfig::new(reactive()));
        for i in 0..30u64 {
            p.decide(SimTime::from_secs(60 * (i + 1)), 100.0 * i as f64, 1);
        }
        // A converged Holt forecast on a perfect ramp of slope 100/epoch
        // with lead 2 sits ~200 above the last level.
        let f = p.forecast().unwrap();
        assert!(
            (2900.0..3400.0).contains(&f),
            "forecast {f} for ramp ending at 2900"
        );
    }

    #[test]
    #[should_panic]
    fn invalid_alpha_rejected() {
        let mut cfg = PredictiveConfig::new(reactive());
        cfg.alpha = 0.0;
        let _ = PredictiveAutoScaler::new(cfg);
    }
}
