//! Stack-distance analysis and hit-rate curves.
//!
//! ElMem's AutoScaler sizes the Memcached tier by computing, from the recent
//! request trace, "the amount of memory required for every integer hit rate
//! percentage (in a single pass)" (§III-B). That computation rests on the
//! *stack distance* (reuse distance): the number of unique items — here,
//! unique *bytes* — referenced between successive accesses to the same key.
//! Under LRU, a request hits in a cache of capacity `C` iff its stack
//! distance is at most `C`, so one pass yields the full hit-rate-vs-capacity
//! curve (Mattson et al.; MIMIR \[38\]).
//!
//! Two engines are provided:
//!
//! * [`exact::ExactStackDistance`] — exact distances via a Fenwick tree,
//!   `O(log W)` per request over a window of `W` requests;
//! * [`mimir::Mimir`] — the MIMIR bucket approximation the paper uses,
//!   `O(1)` amortized per request with bounded relative error.
//!
//! [`hrc::HitRateCurve`] turns either engine's distances into the
//! memory-for-hit-rate query the AutoScaler needs.
//!
//! # Example
//!
//! ```
//! use elmem_stackdist::exact::ExactStackDistance;
//! use elmem_stackdist::hrc::HitRateCurve;
//! use elmem_util::KeyId;
//!
//! let mut engine = ExactStackDistance::new();
//! let mut distances = Vec::new();
//! // Cyclic access over 3 keys of 100 B each.
//! for _round in 0..4u64 {
//!     for k in 0..3u64 {
//!         distances.push(engine.record(KeyId(k), 100));
//!     }
//! }
//! let curve = HitRateCurve::from_distances(&distances);
//! // With capacity for all 3 keys, only the 3 cold misses remain.
//! assert!(curve.hit_rate_at(300) > 0.7);
//! ```

pub mod exact;
pub mod hrc;
pub mod mimir;

pub use exact::ExactStackDistance;
pub use hrc::HitRateCurve;
pub use mimir::Mimir;
