//! Stack-distance analysis and hit-rate curves.
//!
//! ElMem's AutoScaler sizes the Memcached tier by computing, from the recent
//! request trace, "the amount of memory required for every integer hit rate
//! percentage (in a single pass)" (§III-B). That computation rests on the
//! *stack distance* (reuse distance): the number of unique items — here,
//! unique *bytes* — referenced between successive accesses to the same key.
//! Under LRU, a request hits in a cache of capacity `C` iff its stack
//! distance is at most `C`, so one pass yields the full hit-rate-vs-capacity
//! curve (Mattson et al.; MIMIR \[38\]).
//!
//! Two engines are provided:
//!
//! * [`exact::ExactStackDistance`] — exact distances via a Fenwick tree,
//!   `O(log W)` per request over a window of `W` requests;
//! * [`mimir::Mimir`] — the MIMIR bucket approximation the paper uses,
//!   `O(1)` amortized per request with bounded relative error.
//!
//! [`hrc::HitRateCurve`] turns either engine's distances into the
//! memory-for-hit-rate query the AutoScaler needs.
//!
//! # Example
//!
//! ```
//! use elmem_stackdist::exact::ExactStackDistance;
//! use elmem_stackdist::hrc::HitRateCurve;
//! use elmem_util::KeyId;
//!
//! let mut engine = ExactStackDistance::new();
//! let mut distances = Vec::new();
//! // Cyclic access over 3 keys of 100 B each.
//! for _round in 0..4u64 {
//!     for k in 0..3u64 {
//!         distances.push(engine.record(KeyId(k), 100));
//!     }
//! }
//! let curve = HitRateCurve::from_distances(&distances);
//! // With capacity for all 3 keys, only the 3 cold misses remain.
//! assert!(curve.hit_rate_at(300) > 0.7);
//! ```

pub mod adaptive;
pub mod exact;
pub mod hrc;
pub mod legacy;
pub mod mimir;

pub use adaptive::AdaptiveStackDistance;
pub use exact::ExactStackDistance;
pub use hrc::HitRateCurve;
pub use legacy::LegacyExactStackDistance;
pub use mimir::Mimir;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Default distinct-key count at which [`AdaptiveStackDistance`] hands
/// off from the exact engine to MIMIR. Above every laptop-scale keyspace
/// (≤ 1.4M keys) so pinned golden traces keep their exact distances;
/// comfortably below the paper's ~19M-key ETC population.
pub const DEFAULT_ADAPTIVE_SWITCH_KEYS: u64 = 2_000_000;

static ADAPTIVE_SWITCH_KEYS: AtomicU64 = AtomicU64::new(DEFAULT_ADAPTIVE_SWITCH_KEYS);

/// The exact→MIMIR switch threshold read by [`AdaptiveStackDistance::new`].
pub fn adaptive_switch_keys() -> u64 {
    ADAPTIVE_SWITCH_KEYS.load(Ordering::Relaxed)
}

/// Overrides [`adaptive_switch_keys`] (benches: `u64::MAX` pins the exact
/// engine — the pre-optimization behavior — regardless of scale).
pub fn set_adaptive_switch_keys(keys: u64) {
    ADAPTIVE_SWITCH_KEYS.store(keys, Ordering::Relaxed);
}

static LEGACY_EXACT: AtomicBool = AtomicBool::new(false);

/// Whether [`AdaptiveStackDistance::new`] should run the preserved
/// pre-optimization engine ([`LegacyExactStackDistance`]) instead of the
/// packed exact engine. Benchmark-only; a legacy engine never hands off
/// to MIMIR.
pub fn legacy_exact() -> bool {
    LEGACY_EXACT.load(Ordering::Relaxed)
}

/// Routes subsequently constructed adaptive engines through the preserved
/// pre-optimization exact engine (`tab_scale`'s pre-opt column).
pub fn set_legacy_exact(on: bool) {
    LEGACY_EXACT.store(on, Ordering::Relaxed);
}
