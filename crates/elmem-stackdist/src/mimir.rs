//! MIMIR-style bucketed stack-distance estimation.
//!
//! The paper uses "the MIMIR \[38\] implementation to periodically compute the
//! amount of memory required for every integer hit rate percentage (in a
//! single pass)" (§III-B). MIMIR trades exactness for O(1) amortized cost:
//! tracked keys live in a fixed number of recency *buckets*; an access to a
//! key in bucket *i* is estimated to have stack distance equal to the total
//! weight of hotter buckets plus half of bucket *i*'s weight. The key then
//! moves to the front bucket; when the front bucket fills, a new front is
//! opened and the oldest bucket retires ("rounder" aging), **evicting** any
//! key still living in it — a retired key reads as cold on its next access,
//! exactly like a key the modeled cache would long since have evicted. The
//! tracked population is therefore bounded by
//! `num_buckets × bucket_capacity` keys, no matter how many distinct keys
//! the stream contains.

use std::collections::VecDeque;

use elmem_util::hashutil::FastIntMap;
use elmem_util::KeyId;

#[derive(Debug, Clone)]
struct Bucket {
    /// Monotone tag identifying the bucket; larger = more recent.
    tag: u64,
    /// Tracked keys in this bucket.
    count: u64,
    /// Sum of those keys' footprints.
    bytes: u64,
    /// Keys inserted while this bucket was the front. Lazy: a key
    /// re-accessed since carries a newer tag in `keys` and the entry here
    /// is stale. Length is capped at `bucket_capacity` by the split rule.
    members: Vec<KeyId>,
}

/// MIMIR bucketed stack-distance estimator (byte-weighted).
///
/// # Example
///
/// ```
/// use elmem_stackdist::Mimir;
/// use elmem_util::KeyId;
///
/// let mut m = Mimir::new(8, 4);
/// assert_eq!(m.record(KeyId(1), 100), None); // cold
/// assert_eq!(m.record(KeyId(2), 100), None);
/// // Reuse of key 1 is estimated within the tracked population.
/// let d = m.record(KeyId(1), 100).unwrap();
/// assert!(d >= 100);
/// ```
#[derive(Debug, Clone)]
pub struct Mimir {
    buckets: VecDeque<Bucket>,
    /// key → (bucket tag, footprint bytes). Deterministic integer hashing:
    /// iteration is never exposed, but probe cost is on the per-request
    /// path once the adaptive profiler switches over.
    keys: FastIntMap<KeyId, (u64, u64)>,
    num_buckets: usize,
    /// Front bucket splits once it has received this many insertions.
    bucket_capacity: u64,
    next_tag: u64,
}

impl Mimir {
    /// Creates an estimator with `num_buckets` recency buckets that each
    /// hold up to `bucket_capacity` keys before aging rotates them.
    ///
    /// MIMIR's relative error shrinks with more buckets; 128 buckets is the
    /// paper's implementation default ballpark.
    ///
    /// # Panics
    ///
    /// Panics if either argument is below 2.
    pub fn new(num_buckets: usize, bucket_capacity: u64) -> Self {
        assert!(num_buckets >= 2, "need at least 2 buckets");
        assert!(bucket_capacity >= 2, "bucket capacity too small");
        let mut buckets = VecDeque::with_capacity(num_buckets + 1);
        buckets.push_front(Bucket {
            tag: 0,
            count: 0,
            bytes: 0,
            members: Vec::new(),
        });
        Mimir {
            buckets,
            keys: FastIntMap::default(),
            num_buckets,
            bucket_capacity,
            next_tag: 1,
        }
    }

    /// Number of tracked keys.
    pub fn tracked_keys(&self) -> usize {
        self.keys.len()
    }

    /// Records an access; returns the *estimated* byte-weighted stack
    /// distance, or `None` for a key not currently tracked (cold).
    pub fn record(&mut self, key: KeyId, bytes: u64) -> Option<u64> {
        let estimate = match self.keys.get(&key).copied() {
            Some((tag, old_bytes)) => {
                match self.bucket_index(tag) {
                    Some(idx) => {
                        // Weight of strictly hotter buckets + half own bucket.
                        let hotter: u64 = self.buckets.iter().take(idx).map(|b| b.bytes).sum();
                        let own_bucket = &mut self.buckets[idx];
                        let half = own_bucket.bytes / 2;
                        own_bucket.count -= 1;
                        own_bucket.bytes = own_bucket.bytes.saturating_sub(old_bytes);
                        Some(hotter + half.max(old_bytes))
                    }
                    None => {
                        // Unreachable — eviction removes a key from `keys`
                        // when its bucket retires — but stay safe: treat a
                        // stale entry as cold.
                        self.keys.remove(&key);
                        None
                    }
                }
            }
            None => None,
        };
        self.insert_front(key, bytes);
        estimate
    }

    fn bucket_index(&self, tag: u64) -> Option<usize> {
        // Tags are strictly descending from front; binary search.
        let idx = self.buckets.partition_point(|b| b.tag > tag);
        (idx < self.buckets.len() && self.buckets[idx].tag == tag).then_some(idx)
    }

    fn insert_front(&mut self, key: KeyId, bytes: u64) {
        let front = self.buckets.front_mut().expect("at least one bucket");
        front.count += 1;
        front.bytes += bytes;
        front.members.push(key);
        let front_tag = front.tag;
        self.keys.insert(key, (front_tag, bytes));

        // Split on *insertions* (members), not the live count: a re-access
        // inside the front bucket leaves the count unchanged but still adds
        // a member entry, and the split is what bounds member-list memory.
        if front.members.len() as u64 >= self.bucket_capacity {
            // Open a new front bucket.
            let tag = self.next_tag;
            self.next_tag += 1;
            self.buckets.push_front(Bucket {
                tag,
                count: 0,
                bytes: 0,
                members: Vec::new(),
            });
            if self.buckets.len() > self.num_buckets {
                // Retire the oldest bucket ("rounder" aging with eviction):
                // any key still living in it leaves the tracked population
                // and reads as cold on its next access. Member entries are
                // lazy — a key re-accessed since it was inserted here holds
                // a newer tag in `keys` and survives.
                let oldest = self.buckets.pop_back().expect("buckets nonempty");
                if oldest.count > 0 {
                    for k in oldest.members {
                        if self.keys.get(&k).is_some_and(|&(t, _)| t <= oldest.tag) {
                            self.keys.remove(&k);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_then_warm() {
        let mut m = Mimir::new(4, 4);
        assert_eq!(m.record(KeyId(1), 10), None);
        assert!(m.record(KeyId(1), 10).is_some());
    }

    #[test]
    fn estimate_grows_with_intervening_keys() {
        let mut m = Mimir::new(16, 8);
        m.record(KeyId(0), 100);
        for k in 1..20 {
            m.record(KeyId(k), 100);
        }
        let far = m.record(KeyId(0), 100).unwrap();

        let mut m2 = Mimir::new(16, 8);
        m2.record(KeyId(0), 100);
        m2.record(KeyId(1), 100);
        let near = m2.record(KeyId(0), 100).unwrap();
        assert!(far > near, "far {far} vs near {near}");
    }

    #[test]
    fn tracked_keys_counts_unique() {
        let mut m = Mimir::new(4, 16);
        for k in 0..10 {
            m.record(KeyId(k), 1);
        }
        m.record(KeyId(0), 1);
        assert_eq!(m.tracked_keys(), 10);
    }

    #[test]
    fn aging_caps_bucket_count() {
        let mut m = Mimir::new(4, 4);
        for k in 0..1000 {
            m.record(KeyId(k), 1);
        }
        assert!(m.buckets.len() <= 4);
        // Tags stay strictly descending.
        for w in m
            .buckets
            .iter()
            .map(|b| b.tag)
            .collect::<Vec<_>>()
            .windows(2)
        {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn approximates_exact_on_cyclic_trace() {
        use crate::exact::ExactStackDistance;
        let keys = 64u64;
        let mut mimir = Mimir::new(32, 8);
        let mut exact = ExactStackDistance::new();
        let mut mimir_sum = 0f64;
        let mut exact_sum = 0f64;
        let mut n = 0u64;
        for _round in 0..50 {
            for k in 0..keys {
                let me = mimir.record(KeyId(k), 100);
                let ee = exact.record(KeyId(k), 100);
                if let (Some(a), Some(b)) = (me, ee) {
                    mimir_sum += a as f64;
                    exact_sum += b as f64;
                    n += 1;
                }
            }
        }
        assert!(n > 0);
        let ratio = mimir_sum / exact_sum;
        assert!(
            (0.5..2.0).contains(&ratio),
            "MIMIR estimate off by {ratio}x"
        );
    }

    #[test]
    fn eviction_bounds_tracked_population() {
        let mut m = Mimir::new(4, 8);
        for k in 0..10_000 {
            m.record(KeyId(k), 1);
        }
        // Rounder aging evicts: the population never exceeds
        // num_buckets × bucket_capacity, however many distinct keys flow by.
        assert!(m.tracked_keys() <= 32, "tracked {}", m.tracked_keys());
        // A long-evicted key reads as cold again.
        assert_eq!(m.record(KeyId(0), 1), None);
    }

    #[test]
    fn reaccess_hammering_still_rotates_buckets() {
        // A single hot key re-accessed forever keeps the front bucket's
        // live count at 1; the split must still trigger (on insertions) or
        // the member list would grow without bound.
        let mut m = Mimir::new(4, 4);
        for _ in 0..1_000 {
            m.record(KeyId(7), 1);
        }
        for b in &m.buckets {
            assert!(
                b.members.len() <= 4,
                "member list grew to {}",
                b.members.len()
            );
        }
        assert_eq!(m.tracked_keys(), 1);
    }

    #[test]
    #[should_panic]
    fn too_few_buckets_rejected() {
        let _ = Mimir::new(1, 4);
    }
}
