//! MIMIR-style bucketed stack-distance estimation.
//!
//! The paper uses "the MIMIR \[38\] implementation to periodically compute the
//! amount of memory required for every integer hit rate percentage (in a
//! single pass)" (§III-B). MIMIR trades exactness for O(1) amortized cost:
//! tracked keys live in a fixed number of recency *buckets*; an access to a
//! key in bucket *i* is estimated to have stack distance equal to the total
//! weight of hotter buckets plus half of bucket *i*'s weight. The key then
//! moves to the front bucket; when the front bucket fills, a new front is
//! opened and the two oldest buckets merge ("rounder" aging).

use std::collections::{HashMap, VecDeque};

use elmem_util::KeyId;

#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Monotone tag identifying the bucket; larger = more recent.
    tag: u64,
    /// Tracked keys in this bucket.
    count: u64,
    /// Sum of those keys' footprints.
    bytes: u64,
}

/// MIMIR bucketed stack-distance estimator (byte-weighted).
///
/// # Example
///
/// ```
/// use elmem_stackdist::Mimir;
/// use elmem_util::KeyId;
///
/// let mut m = Mimir::new(8, 4);
/// assert_eq!(m.record(KeyId(1), 100), None); // cold
/// assert_eq!(m.record(KeyId(2), 100), None);
/// // Reuse of key 1 is estimated within the tracked population.
/// let d = m.record(KeyId(1), 100).unwrap();
/// assert!(d >= 100);
/// ```
#[derive(Debug, Clone)]
pub struct Mimir {
    buckets: VecDeque<Bucket>,
    /// key → (bucket tag, footprint bytes).
    keys: HashMap<KeyId, (u64, u64)>,
    num_buckets: usize,
    /// Front bucket splits when it holds this many keys.
    bucket_capacity: u64,
    next_tag: u64,
}

impl Mimir {
    /// Creates an estimator with `num_buckets` recency buckets that each
    /// hold up to `bucket_capacity` keys before aging rotates them.
    ///
    /// MIMIR's relative error shrinks with more buckets; 128 buckets is the
    /// paper's implementation default ballpark.
    ///
    /// # Panics
    ///
    /// Panics if either argument is below 2.
    pub fn new(num_buckets: usize, bucket_capacity: u64) -> Self {
        assert!(num_buckets >= 2, "need at least 2 buckets");
        assert!(bucket_capacity >= 2, "bucket capacity too small");
        let mut buckets = VecDeque::with_capacity(num_buckets + 1);
        buckets.push_front(Bucket {
            tag: 0,
            count: 0,
            bytes: 0,
        });
        Mimir {
            buckets,
            keys: HashMap::new(),
            num_buckets,
            bucket_capacity,
            next_tag: 1,
        }
    }

    /// Number of tracked keys.
    pub fn tracked_keys(&self) -> usize {
        self.keys.len()
    }

    /// Records an access; returns the *estimated* byte-weighted stack
    /// distance, or `None` for a key not currently tracked (cold).
    pub fn record(&mut self, key: KeyId, bytes: u64) -> Option<u64> {
        let estimate = match self.keys.get(&key).copied() {
            Some((tag, old_bytes)) => {
                match self.bucket_index_with_floor(tag) {
                    Some(idx) => {
                        // Weight of strictly hotter buckets + half own bucket.
                        let hotter: u64 = self.buckets.iter().take(idx).map(|b| b.bytes).sum();
                        let own_bucket = &mut self.buckets[idx];
                        let half = own_bucket.bytes / 2;
                        own_bucket.count -= 1;
                        own_bucket.bytes = own_bucket.bytes.saturating_sub(old_bytes);
                        Some(hotter + half.max(old_bytes))
                    }
                    None => {
                        // Unreachable given the floor rule, but stay safe:
                        // treat a stale entry as cold.
                        self.keys.remove(&key);
                        None
                    }
                }
            }
            None => None,
        };
        self.insert_front(key, bytes);
        estimate
    }

    fn bucket_index(&self, tag: u64) -> Option<usize> {
        // Tags are strictly descending from front; binary search.
        let idx = self.buckets.partition_point(|b| b.tag > tag);
        (idx < self.buckets.len() && self.buckets[idx].tag == tag).then_some(idx)
    }

    fn insert_front(&mut self, key: KeyId, bytes: u64) {
        let front = self.buckets.front_mut().expect("at least one bucket");
        front.count += 1;
        front.bytes += bytes;
        let front_tag = front.tag;
        self.keys.insert(key, (front_tag, bytes));

        if front.count >= self.bucket_capacity {
            // Open a new front bucket.
            let tag = self.next_tag;
            self.next_tag += 1;
            self.buckets.push_front(Bucket {
                tag,
                count: 0,
                bytes: 0,
            });
            if self.buckets.len() > self.num_buckets {
                // Merge the two oldest buckets ("rounder" aging). The
                // survivor keeps the *newer* tag; keys still holding the
                // dropped older tag resolve to the back bucket through the
                // floor rule in `bucket_index_with_floor`.
                let oldest = self.buckets.pop_back().expect("buckets nonempty");
                let second = self.buckets.back_mut().expect("buckets nonempty");
                second.count += oldest.count;
                second.bytes += oldest.bytes;
            }
        }
    }

    /// Like [`bucket_index`](Self::bucket_index) but mapping any tag at or
    /// below the back bucket's tag to the back bucket (merged history).
    fn bucket_index_with_floor(&self, tag: u64) -> Option<usize> {
        if let Some(back) = self.buckets.back() {
            if tag <= back.tag {
                return Some(self.buckets.len() - 1);
            }
        }
        self.bucket_index(tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_then_warm() {
        let mut m = Mimir::new(4, 4);
        assert_eq!(m.record(KeyId(1), 10), None);
        assert!(m.record(KeyId(1), 10).is_some());
    }

    #[test]
    fn estimate_grows_with_intervening_keys() {
        let mut m = Mimir::new(16, 8);
        m.record(KeyId(0), 100);
        for k in 1..20 {
            m.record(KeyId(k), 100);
        }
        let far = m.record(KeyId(0), 100).unwrap();

        let mut m2 = Mimir::new(16, 8);
        m2.record(KeyId(0), 100);
        m2.record(KeyId(1), 100);
        let near = m2.record(KeyId(0), 100).unwrap();
        assert!(far > near, "far {far} vs near {near}");
    }

    #[test]
    fn tracked_keys_counts_unique() {
        let mut m = Mimir::new(4, 16);
        for k in 0..10 {
            m.record(KeyId(k), 1);
        }
        m.record(KeyId(0), 1);
        assert_eq!(m.tracked_keys(), 10);
    }

    #[test]
    fn aging_caps_bucket_count() {
        let mut m = Mimir::new(4, 4);
        for k in 0..1000 {
            m.record(KeyId(k), 1);
        }
        assert!(m.buckets.len() <= 4);
        // Tags stay strictly descending.
        for w in m
            .buckets
            .iter()
            .map(|b| b.tag)
            .collect::<Vec<_>>()
            .windows(2)
        {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn approximates_exact_on_cyclic_trace() {
        use crate::exact::ExactStackDistance;
        let keys = 64u64;
        let mut mimir = Mimir::new(32, 8);
        let mut exact = ExactStackDistance::new();
        let mut mimir_sum = 0f64;
        let mut exact_sum = 0f64;
        let mut n = 0u64;
        for _round in 0..50 {
            for k in 0..keys {
                let me = mimir.record(KeyId(k), 100);
                let ee = exact.record(KeyId(k), 100);
                if let (Some(a), Some(b)) = (me, ee) {
                    mimir_sum += a as f64;
                    exact_sum += b as f64;
                    n += 1;
                }
            }
        }
        assert!(n > 0);
        let ratio = mimir_sum / exact_sum;
        assert!(
            (0.5..2.0).contains(&ratio),
            "MIMIR estimate off by {ratio}x"
        );
    }

    #[test]
    #[should_panic]
    fn too_few_buckets_rejected() {
        let _ = Mimir::new(1, 4);
    }
}
