//! Exact byte-weighted stack distances via a Fenwick (binary indexed) tree.
//!
//! Classic single-pass algorithm: keep, for every key, the position of its
//! last access; a Fenwick tree over positions holds the byte footprint of
//! each key *at its most recent access only*. The stack distance of a new
//! access to key `k` is then the sum of footprints at positions after `k`'s
//! previous access — i.e. the unique bytes touched in between.

use elmem_util::hashutil::FastIntMap;
use elmem_util::KeyId;

/// Fenwick tree over u64 weights.
#[derive(Debug, Clone, Default)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn with_capacity(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Builds a tree of capacity `n` whose first positions hold `weights`,
    /// in O(n) (the in-place construction), instead of `weights.len()`
    /// O(log n) point inserts.
    fn from_weights(n: usize, weights: impl Iterator<Item = u64>) -> Self {
        let mut tree = vec![0u64; n + 1];
        for (slot, w) in tree[1..].iter_mut().zip(weights) {
            *slot = w;
        }
        for i in 1..=n {
            let parent = i + (i & i.wrapping_neg());
            if parent <= n {
                tree[parent] += tree[i];
            }
        }
        Fenwick { tree }
    }

    fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Adds `delta` at 0-based position `i` (delta may be "negative" via
    /// wrapping — callers only ever remove what they added).
    fn add(&mut self, i: usize, delta: i128) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i128 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based, inclusive).
    fn prefix(&self, i: usize) -> u64 {
        let mut i = i + 1;
        let mut s = 0u64;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    fn grow(&mut self) {
        // Rebuild at double capacity, preserving point values, in O(n):
        // run the classic in-place Fenwick construction *backwards* to
        // recover point values (descending: `tree[i]` is final when its
        // parent's contribution is removed), resize, then re-run it
        // forwards over the widened array. The old approach recovered each
        // value via two prefix sums and re-inserted with `add` — O(n log n)
        // on every doubling.
        let old_n = self.len();
        for i in (1..=old_n).rev() {
            let parent = i + (i & i.wrapping_neg());
            if parent <= old_n {
                self.tree[parent] -= self.tree[i];
            }
        }
        // tree[1..=old_n] now holds point values; positions past old_n are 0.
        let new_n = (old_n * 2).max(1024);
        self.tree.resize(new_n + 1, 0);
        for i in 1..=new_n {
            let parent = i + (i & i.wrapping_neg());
            if parent <= new_n {
                self.tree[parent] += self.tree[i];
            }
        }
    }
}

/// Exact stack-distance engine (byte-weighted).
///
/// [`record`](Self::record) returns the distance of each access:
/// `None` for a cold (first-ever) access, otherwise the number of unique
/// bytes accessed since the key's previous access — the smallest LRU cache
/// size (in bytes of item footprint) at which this access would hit.
///
/// # Example
///
/// ```
/// use elmem_stackdist::ExactStackDistance;
/// use elmem_util::KeyId;
///
/// let mut e = ExactStackDistance::new();
/// assert_eq!(e.record(KeyId(1), 100), None);      // cold
/// assert_eq!(e.record(KeyId(2), 50), None);       // cold
/// assert_eq!(e.record(KeyId(1), 100), Some(150)); // k2 + k1 itself
/// assert_eq!(e.record(KeyId(1), 100), Some(100)); // immediate reuse
/// ```
#[derive(Debug, Clone)]
pub struct ExactStackDistance {
    fenwick: Fenwick,
    /// key → `(footprint << 32) | last_position`, one deterministic-hash
    /// probe per record instead of two `HashMap` lookups. Footprints and
    /// positions both fit u32: item footprints are capped far below 4 GB,
    /// and positions are bounded by the tree capacity, which compaction
    /// keeps near the live-key count.
    slots: FastIntMap<KeyId, u64>,
    time: usize,
    /// Reusable compaction scratch (position, key), kept across
    /// compactions so steady-state recording never allocates.
    scratch: Vec<(u32, KeyId)>,
}

impl Default for ExactStackDistance {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactStackDistance {
    /// Creates an empty engine.
    pub fn new() -> Self {
        ExactStackDistance {
            fenwick: Fenwick::with_capacity(1024),
            slots: FastIntMap::default(),
            time: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of accesses recorded.
    pub fn accesses(&self) -> usize {
        self.time
    }

    /// Number of distinct keys seen.
    pub fn unique_keys(&self) -> usize {
        self.slots.len()
    }

    /// Records an access to `key` whose item footprint is `bytes`; returns
    /// the byte-weighted stack distance (`None` = cold access).
    ///
    /// The distance *includes* the key's own footprint, so a distance `d`
    /// means the access hits in any LRU cache of capacity `>= d` bytes.
    pub fn record(&mut self, key: KeyId, bytes: u64) -> Option<u64> {
        debug_assert!(bytes <= u64::from(u32::MAX), "footprint exceeds u32");
        if self.time >= self.fenwick.len() {
            self.compact_or_grow();
        }
        let pos = self.time;
        debug_assert!(pos <= u32::MAX as usize, "position exceeds u32");
        let result = match self.slots.insert(key, (bytes << 32) | pos as u64) {
            Some(old) => {
                // Unique bytes of *other* keys accessed strictly after
                // `prev`: the prefix through `prev` includes this key's own
                // weight, so the suffix beyond it is exactly the others.
                // Add the item's own (new) footprint — it must itself fit
                // in the cache for the access to hit.
                let prev = (old & 0xffff_ffff) as usize;
                let own = old >> 32;
                let others = self.total() - self.fenwick.prefix(prev);
                self.fenwick.add(prev, -(own as i128));
                Some(others + bytes)
            }
            None => None,
        };
        self.fenwick.add(pos, bytes as i128);
        self.time += 1;
        result
    }

    /// The tracked keys oldest-first (by recency of last access), with
    /// their footprints — the hand-off order when an adaptive profile
    /// replays its exact history into a MIMIR estimator.
    pub fn entries_by_recency(&self) -> Vec<(KeyId, u64)> {
        let mut order: Vec<(u32, KeyId, u64)> = self
            .slots
            .iter()
            .map(|(k, &packed)| ((packed & 0xffff_ffff) as u32, *k, packed >> 32))
            .collect();
        order.sort_unstable_by_key(|&(pos, _, _)| pos);
        order.into_iter().map(|(_, k, b)| (k, b)).collect()
    }

    fn total(&self) -> u64 {
        if self.fenwick.len() == 0 {
            0
        } else {
            self.fenwick.prefix(self.fenwick.len() - 1)
        }
    }

    /// When positions run out: if many positions are dead (keys re-accessed),
    /// compact live positions to the front; otherwise grow the tree.
    fn compact_or_grow(&mut self) {
        let live = self.slots.len();
        if live * 2 <= self.time {
            // Compact: renumber live keys by their current position order.
            // The rebuilt tree is sized to the live population (plus
            // doubling headroom), *not* the old capacity — the previous
            // full-capacity preallocation meant one burst of unique keys
            // pinned the high-water tree size forever.
            self.scratch.clear();
            self.scratch.extend(
                self.slots
                    .iter()
                    .map(|(k, &packed)| ((packed & 0xffff_ffff) as u32, *k)),
            );
            self.scratch.sort_unstable();
            let cap = (live * 2).max(1024);
            for (new_pos, &(_, key)) in self.scratch.iter().enumerate() {
                let packed = self.slots.get_mut(&key).expect("scratch key is live");
                *packed = (*packed & !0xffff_ffffu64) | new_pos as u64;
            }
            let slots = &self.slots;
            self.fenwick =
                Fenwick::from_weights(cap, self.scratch.iter().map(|(_, key)| slots[key] >> 32));
            self.time = live;
        } else {
            self.fenwick.grow();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Brute-force reference: unique bytes between successive accesses.
    fn brute_force(trace: &[(u64, u64)]) -> Vec<Option<u64>> {
        let mut out = Vec::new();
        for (i, &(key, bytes)) in trace.iter().enumerate() {
            let prev = trace[..i].iter().rposition(|&(k, _)| k == key);
            match prev {
                None => out.push(None),
                Some(p) => {
                    // Each intervening key occupies its *latest* footprint
                    // at the time of the re-access: scan in reverse and
                    // count the first (most recent) occurrence.
                    let mut seen: HashSet<u64> = HashSet::new();
                    let mut sum = 0u64;
                    for &(k, b) in trace[p + 1..i].iter().rev() {
                        if k != key && seen.insert(k) {
                            sum += b;
                        }
                    }
                    out.push(Some(sum + bytes));
                }
            }
        }
        out
    }

    #[test]
    fn matches_brute_force_small() {
        let trace = vec![
            (1, 100),
            (2, 50),
            (1, 100),
            (3, 10),
            (2, 50),
            (1, 100),
            (1, 100),
        ];
        let mut e = ExactStackDistance::new();
        let got: Vec<Option<u64>> = trace.iter().map(|&(k, b)| e.record(KeyId(k), b)).collect();
        assert_eq!(got, brute_force(&trace));
    }

    #[test]
    fn matches_brute_force_with_duplicate_interleavings() {
        // Repeated accesses to the same intervening key must count once.
        let trace = vec![(1, 10), (2, 20), (2, 20), (2, 20), (1, 10)];
        let mut e = ExactStackDistance::new();
        let got: Vec<Option<u64>> = trace.iter().map(|&(k, b)| e.record(KeyId(k), b)).collect();
        assert_eq!(got, brute_force(&trace));
        assert_eq!(got[4], Some(30)); // 20 (key2 once) + own 10
    }

    #[test]
    fn immediate_reuse_distance_is_own_size() {
        let mut e = ExactStackDistance::new();
        e.record(KeyId(7), 64);
        assert_eq!(e.record(KeyId(7), 64), Some(64));
    }

    #[test]
    fn cold_accesses_are_none() {
        let mut e = ExactStackDistance::new();
        for k in 0..100 {
            assert_eq!(e.record(KeyId(k), 8), None);
        }
        assert_eq!(e.unique_keys(), 100);
        assert_eq!(e.accesses(), 100);
    }

    #[test]
    fn compaction_preserves_distances() {
        // Force many dead positions by cycling a small key set many times.
        let mut e = ExactStackDistance::new();
        let keys = 16u64;
        let mut expected_after_warm = Vec::new();
        for round in 0..2000u64 {
            for k in 0..keys {
                let d = e.record(KeyId(k), 10);
                if round > 0 {
                    expected_after_warm.push(d);
                }
            }
        }
        // Every warm access cycles through all other keys once: 16 * 10.
        assert!(expected_after_warm.iter().all(|&d| d == Some(keys * 10)));
    }

    #[test]
    fn growth_preserves_distances() {
        // All-unique keys force tree growth without compaction opportunity.
        let mut e = ExactStackDistance::new();
        for k in 0..5000u64 {
            assert_eq!(e.record(KeyId(k), 1), None);
        }
        // Re-access the first key: distance = all 5000 keys' bytes.
        assert_eq!(e.record(KeyId(0), 1), Some(5000));
    }

    #[test]
    fn growth_mid_stream_matches_brute_force() {
        use elmem_util::DetRng;
        // Enough distinct positions to force doublings past the initial
        // 1024 capacity while live weights are scattered across the tree —
        // the case `grow` must carry over exactly.
        let mut rng = DetRng::seed(7);
        let trace: Vec<(u64, u64)> = (0..2600)
            .map(|_| (rng.next_below(900), 1 + rng.next_below(64)))
            .collect();
        let mut e = ExactStackDistance::new();
        let got: Vec<Option<u64>> = trace.iter().map(|&(k, b)| e.record(KeyId(k), b)).collect();
        assert_eq!(got, brute_force(&trace));
    }

    #[test]
    fn randomized_against_brute_force() {
        use elmem_util::DetRng;
        let mut rng = DetRng::seed(42);
        let trace: Vec<(u64, u64)> = (0..300)
            .map(|_| (rng.next_below(30), 1 + rng.next_below(100)))
            .collect();
        let mut e = ExactStackDistance::new();
        let got: Vec<Option<u64>> = trace.iter().map(|&(k, b)| e.record(KeyId(k), b)).collect();
        assert_eq!(got, brute_force(&trace));
    }

    #[test]
    fn compaction_rightsizes_the_tree() {
        let mut e = ExactStackDistance::new();
        for k in 0..5000u64 {
            e.record(KeyId(k), 1);
        }
        let grown = e.fenwick.len();
        assert!(grown >= 8192, "unique burst should have doubled the tree");
        // Cycle the same keys: positions die, compaction fires, and the
        // rebuilt tree must be sized to the live population — not the old
        // capacity (the pre-fix code pinned the high-water size forever).
        for _round in 0..10 {
            for k in 0..5000u64 {
                e.record(KeyId(k), 1);
            }
        }
        assert!(
            e.fenwick.len() <= 2 * 5000,
            "tree kept high-water capacity {}",
            e.fenwick.len()
        );
        assert_eq!(e.record(KeyId(0), 1), Some(5000));
    }

    #[test]
    fn entries_by_recency_is_oldest_first() {
        let mut e = ExactStackDistance::new();
        e.record(KeyId(3), 30);
        e.record(KeyId(1), 10);
        e.record(KeyId(2), 20);
        e.record(KeyId(3), 31); // key 3 becomes most recent
        assert_eq!(
            e.entries_by_recency(),
            vec![(KeyId(1), 10), (KeyId(2), 20), (KeyId(3), 31)]
        );
    }

    #[test]
    fn changing_item_size_uses_new_size() {
        let trace = vec![(1, 10), (2, 5), (1, 99)];
        let mut e = ExactStackDistance::new();
        let got: Vec<Option<u64>> = trace.iter().map(|&(k, b)| e.record(KeyId(k), b)).collect();
        // Distance counts key2 (5) + the *new* footprint (99).
        assert_eq!(got[2], Some(104));
        assert_eq!(got, brute_force(&trace));
    }
}
