//! The pre-optimization exact engine, preserved verbatim.
//!
//! This is the exact stack-distance implementation the repo shipped
//! before the cluster-scale fast path landed: two `std::collections::
//! HashMap`s (SipHash, one probe each for position and footprint per
//! record), a Fenwick tree indexed by raw access *positions* that keeps
//! its high-water capacity forever once grown, and a fresh ordering
//! `Vec` allocated on every compaction. It is kept for two jobs:
//!
//! * **reference**: the packed [`ExactStackDistance`](crate::
//!   ExactStackDistance) must produce identical distances — the
//!   equivalence tests replay shared traces through both engines;
//! * **benchmark**: `tab_scale`'s pre-opt column runs this engine (via
//!   [`set_legacy_exact`](crate::set_legacy_exact)) so the committed
//!   baseline measures the code the optimization actually replaced, on
//!   the same machine, from the same binary.
//!
//! Do not "fix" this module — its inefficiencies are the measurement.

use std::collections::HashMap;

use elmem_util::KeyId;

/// Fenwick tree over u64 weights (pre-optimization layout).
#[derive(Debug, Clone, Default)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn with_capacity(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn len(&self) -> usize {
        self.tree.len() - 1
    }

    fn add(&mut self, i: usize, delta: i128) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i128 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    fn prefix(&self, i: usize) -> u64 {
        let mut i = i + 1;
        let mut s = 0u64;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    fn grow(&mut self) {
        let old_n = self.len();
        for i in (1..=old_n).rev() {
            let parent = i + (i & i.wrapping_neg());
            if parent <= old_n {
                self.tree[parent] -= self.tree[i];
            }
        }
        let new_n = (old_n * 2).max(1024);
        self.tree.resize(new_n + 1, 0);
        for i in 1..=new_n {
            let parent = i + (i & i.wrapping_neg());
            if parent <= new_n {
                self.tree[parent] += self.tree[i];
            }
        }
    }
}

/// The pre-optimization exact stack-distance engine (byte-weighted).
///
/// Same contract as [`ExactStackDistance`](crate::ExactStackDistance):
/// `record` returns `None` for a cold access, otherwise the unique bytes
/// touched since the key's previous access (including its own new
/// footprint).
#[derive(Debug, Clone)]
pub struct LegacyExactStackDistance {
    fenwick: Fenwick,
    last_pos: HashMap<KeyId, usize>,
    footprint: HashMap<KeyId, u64>,
    time: usize,
}

impl Default for LegacyExactStackDistance {
    fn default() -> Self {
        Self::new()
    }
}

impl LegacyExactStackDistance {
    /// Creates an empty engine.
    pub fn new() -> Self {
        LegacyExactStackDistance {
            fenwick: Fenwick::with_capacity(1024),
            last_pos: HashMap::new(),
            footprint: HashMap::new(),
            time: 0,
        }
    }

    /// Number of accesses recorded.
    pub fn accesses(&self) -> usize {
        self.time
    }

    /// Number of distinct keys seen.
    pub fn unique_keys(&self) -> usize {
        self.last_pos.len()
    }

    /// Records an access to `key` whose item footprint is `bytes`.
    pub fn record(&mut self, key: KeyId, bytes: u64) -> Option<u64> {
        if self.time >= self.fenwick.len() {
            self.compact_or_grow();
        }
        let pos = self.time;
        let result = match self.last_pos.get(&key).copied() {
            Some(prev) => {
                let others = self.total() - self.fenwick.prefix(prev);
                let own = self.footprint[&key];
                self.fenwick.add(prev, -(own as i128));
                Some(others + bytes)
            }
            None => None,
        };
        self.fenwick.add(pos, bytes as i128);
        self.last_pos.insert(key, pos);
        self.footprint.insert(key, bytes);
        self.time += 1;
        result
    }

    fn total(&self) -> u64 {
        if self.fenwick.len() == 0 {
            0
        } else {
            self.fenwick.prefix(self.fenwick.len() - 1)
        }
    }

    fn compact_or_grow(&mut self) {
        let live = self.last_pos.len();
        if live * 2 <= self.time {
            // Note the two pre-optimization costs the packed engine fixed:
            // the rebuilt tree keeps the old (high-water) capacity, and the
            // rebuild itself is O(n log n) point inserts.
            let mut order: Vec<(usize, KeyId)> =
                self.last_pos.iter().map(|(k, &p)| (p, *k)).collect();
            order.sort_unstable();
            let mut fenwick = Fenwick::with_capacity(self.fenwick.len());
            for (new_pos, &(_, key)) in order.iter().enumerate() {
                fenwick.add(new_pos, self.footprint[&key] as i128);
                self.last_pos.insert(key, new_pos);
            }
            self.fenwick = fenwick;
            self.time = live;
        } else {
            self.fenwick.grow();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExactStackDistance;
    use elmem_util::DetRng;

    /// The packed engine and the preserved legacy engine must agree on
    /// every distance of a shared trace — including across compactions
    /// and growths on both sides.
    #[test]
    fn packed_engine_matches_legacy_reference() {
        let mut rng = DetRng::seed(11);
        let mut legacy = LegacyExactStackDistance::new();
        let mut packed = ExactStackDistance::new();
        for i in 0..60_000u64 {
            // Mix a hot core with a cold tail so positions both die
            // (compaction) and accumulate (growth).
            let key = if i % 3 == 0 {
                rng.next_below(200)
            } else {
                rng.next_below(20_000)
            };
            let bytes = 1 + rng.next_below(4096);
            assert_eq!(
                legacy.record(KeyId(key), bytes),
                packed.record(KeyId(key), bytes),
                "divergence at access {i} key {key}"
            );
        }
        assert_eq!(legacy.unique_keys(), packed.unique_keys());
    }
}
