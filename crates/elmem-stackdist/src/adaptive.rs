//! Adaptive stack-distance profiling: exact until the tracked population
//! gets expensive, then MIMIR.
//!
//! The exact engine costs a Fenwick tree plus a per-key map entry —
//! perfectly affordable at laptop scale, where its distances also underpin
//! the pinned golden traces. At the paper's ~19M-key ETC scale the per-key
//! state and `O(log n)` tree walks dominate the autoscaler's observation
//! path, and the paper itself profiles with MIMIR (§III-B). The adaptive
//! engine gives both: it records exactly until [`crate::adaptive_switch_keys`]
//! distinct keys have been seen, then builds a [`Mimir`] estimator, replays
//! the tracked keys into it **oldest-first** (so the recency order — and
//! therefore every key's bucket — carries over) and drops the exact state.
//!
//! The switch is a deterministic function of the observed key sequence, so
//! two runs of the same workload switch at the same access and produce
//! identical distance streams at any worker count.

use elmem_util::KeyId;

use crate::exact::ExactStackDistance;
use crate::legacy::LegacyExactStackDistance;
use crate::mimir::Mimir;

/// Bucket count for the post-switch MIMIR estimator (the paper's
/// implementation ballpark).
const MIMIR_BUCKETS: usize = 128;

/// Stack-distance engine that is exact below a key-count threshold and
/// MIMIR-approximate above it.
///
/// # Example
///
/// ```
/// use elmem_stackdist::AdaptiveStackDistance;
/// use elmem_util::KeyId;
///
/// let mut e = AdaptiveStackDistance::new();
/// assert_eq!(e.record(KeyId(1), 100), None);      // cold
/// assert_eq!(e.record(KeyId(1), 100), Some(100)); // exact while small
/// assert!(e.is_exact());
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveStackDistance {
    engine: Engine,
    switch_keys: u64,
}

#[derive(Debug, Clone)]
enum Engine {
    Exact(ExactStackDistance),
    Mimir(Mimir),
    /// The preserved pre-optimization engine (benchmark baseline). Never
    /// hands off to MIMIR — exactly the unbounded behavior `tab_scale`'s
    /// pre-opt column measures.
    Legacy(LegacyExactStackDistance),
}

impl Default for AdaptiveStackDistance {
    fn default() -> Self {
        Self::new()
    }
}

impl AdaptiveStackDistance {
    /// Creates an engine that switches at the global
    /// [`crate::adaptive_switch_keys`] threshold (sampled at construction).
    /// With [`crate::legacy_exact`] set, the engine instead runs the
    /// preserved pre-optimization implementation and never switches.
    pub fn new() -> Self {
        if crate::legacy_exact() {
            return AdaptiveStackDistance {
                engine: Engine::Legacy(LegacyExactStackDistance::new()),
                switch_keys: u64::MAX,
            };
        }
        Self::with_switch_threshold(crate::adaptive_switch_keys())
    }

    /// Creates an engine with an explicit switch threshold (tests).
    pub fn with_switch_threshold(switch_keys: u64) -> Self {
        AdaptiveStackDistance {
            engine: Engine::Exact(ExactStackDistance::new()),
            switch_keys: switch_keys.max(1),
        }
    }

    /// Whether the engine is still in its exact phase.
    pub fn is_exact(&self) -> bool {
        matches!(self.engine, Engine::Exact(_) | Engine::Legacy(_))
    }

    /// Number of distinct keys currently tracked.
    pub fn tracked_keys(&self) -> usize {
        match &self.engine {
            Engine::Exact(e) => e.unique_keys(),
            Engine::Mimir(m) => m.tracked_keys(),
            Engine::Legacy(e) => e.unique_keys(),
        }
    }

    /// Records an access; exact distance below the switch threshold,
    /// MIMIR estimate above. `None` = cold access either way.
    pub fn record(&mut self, key: KeyId, bytes: u64) -> Option<u64> {
        match &mut self.engine {
            Engine::Exact(exact) => {
                let d = exact.record(key, bytes);
                if exact.unique_keys() as u64 >= self.switch_keys {
                    self.switch_to_mimir();
                }
                d
            }
            Engine::Mimir(mimir) => mimir.record(key, bytes),
            Engine::Legacy(legacy) => legacy.record(key, bytes),
        }
    }

    /// Hands the exact engine's population to a fresh MIMIR estimator:
    /// replaying tracked keys oldest-first reproduces the recency order,
    /// so every warm key stays warm (a key hot under exact profiling never
    /// reads as cold right after the switch).
    fn switch_to_mimir(&mut self) {
        let Engine::Exact(exact) = &self.engine else {
            return;
        };
        let entries = exact.entries_by_recency();
        // Size buckets so the tracked population at switch time spans the
        // full bucket range.
        let capacity = (entries.len() as u64 / MIMIR_BUCKETS as u64).max(2);
        let mut mimir = Mimir::new(MIMIR_BUCKETS, capacity);
        for (key, bytes) in entries {
            mimir.record(key, bytes);
        }
        self.engine = Engine::Mimir(mimir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_threshold_matches_exact_engine() {
        use elmem_util::DetRng;
        let mut rng = DetRng::seed(17);
        let trace: Vec<(u64, u64)> = (0..5_000)
            .map(|_| (rng.next_below(400), 1 + rng.next_below(200)))
            .collect();
        let mut adaptive = AdaptiveStackDistance::with_switch_threshold(100_000);
        let mut exact = ExactStackDistance::new();
        for &(k, b) in &trace {
            assert_eq!(adaptive.record(KeyId(k), b), exact.record(KeyId(k), b));
        }
        assert!(adaptive.is_exact());
    }

    #[test]
    fn switches_at_threshold() {
        let mut e = AdaptiveStackDistance::with_switch_threshold(50);
        for k in 0..49u64 {
            e.record(KeyId(k), 10);
            assert!(e.is_exact(), "still below threshold at key {k}");
        }
        e.record(KeyId(49), 10);
        assert!(!e.is_exact(), "50th distinct key must trigger the switch");
        assert_eq!(e.tracked_keys(), 50);
    }

    #[test]
    fn warm_keys_stay_warm_across_the_switch() {
        let mut e = AdaptiveStackDistance::with_switch_threshold(50);
        for k in 0..50u64 {
            e.record(KeyId(k), 10);
        }
        assert!(!e.is_exact());
        // Every key seen before the switch must still read as warm.
        for k in 0..50u64 {
            assert!(
                e.record(KeyId(k), 10).is_some(),
                "key {k} went cold across the switch"
            );
        }
    }

    #[test]
    fn estimates_track_brute_force_at_the_switch_boundary() {
        use elmem_util::DetRng;
        use std::collections::HashSet;

        // Brute-force reference (same as exact.rs's): unique intervening
        // bytes plus own footprint.
        fn brute_force(trace: &[(u64, u64)]) -> Vec<Option<u64>> {
            let mut out = Vec::new();
            for (i, &(key, bytes)) in trace.iter().enumerate() {
                match trace[..i].iter().rposition(|&(k, _)| k == key) {
                    None => out.push(None),
                    Some(p) => {
                        let mut seen: HashSet<u64> = HashSet::new();
                        let mut sum = 0u64;
                        for &(k, b) in trace[p + 1..i].iter().rev() {
                            if k != key && seen.insert(k) {
                                sum += b;
                            }
                        }
                        out.push(Some(sum + bytes));
                    }
                }
            }
            out
        }

        let threshold = 256u64;
        let mut rng = DetRng::seed(23);
        // Key range 2× the threshold so the trace crosses the switch
        // mid-stream; sizes vary.
        let trace: Vec<(u64, u64)> = (0..20_000)
            .map(|_| (rng.next_below(512), 1 + rng.next_below(64)))
            .collect();
        let reference = brute_force(&trace);
        let mut e = AdaptiveStackDistance::with_switch_threshold(threshold);

        let mut post_switch_warm = 0u64;
        let mut ratio_sum = 0f64;
        for (i, &(k, b)) in trace.iter().enumerate() {
            let got = e.record(KeyId(k), b);
            if e.is_exact() {
                // Exact phase: must equal brute force bit-for-bit.
                assert_eq!(got, reference[i], "access {i} diverged while exact");
            } else if let (Some(g), Some(r)) = (got, reference[i]) {
                post_switch_warm += 1;
                ratio_sum += g as f64 / r as f64;
            }
        }
        assert!(!e.is_exact(), "trace must cross the switch");
        assert!(post_switch_warm > 1000, "too few warm post-switch accesses");
        // MIMIR is an estimator: require the mean estimate to stay within
        // a factor of two of the truth.
        let mean_ratio = ratio_sum / post_switch_warm as f64;
        assert!(
            (0.5..2.0).contains(&mean_ratio),
            "mean estimate ratio {mean_ratio}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        use elmem_util::DetRng;
        let run = || {
            let mut rng = DetRng::seed(31);
            let mut e = AdaptiveStackDistance::with_switch_threshold(100);
            (0..5_000)
                .map(|_| {
                    let k = rng.next_below(300);
                    e.record(KeyId(k), 1 + (k % 50))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
