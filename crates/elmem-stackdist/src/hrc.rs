//! Hit-rate curves: from stack distances to "memory needed for hit rate p".

use elmem_util::ByteSize;
use serde::{Deserialize, Serialize};

/// A monotone hit-rate-vs-capacity curve built from observed stack
/// distances (§III-B: ElMem "uses the stack distance measure to derive the
/// memory capacity that achieves p_min").
///
/// For a trace of `N` requests of which `d_i` are the finite distances,
/// `hit_rate_at(C) = |{i : d_i <= C}| / N`; cold misses (infinite
/// distances) can never hit at any capacity.
///
/// # Example
///
/// ```
/// use elmem_stackdist::HitRateCurve;
///
/// let curve = HitRateCurve::from_distances(&[None, None, Some(100), Some(300)]);
/// assert_eq!(curve.hit_rate_at(99), 0.0);
/// assert_eq!(curve.hit_rate_at(100), 0.25);
/// assert_eq!(curve.hit_rate_at(300), 0.5);
/// assert_eq!(curve.max_hit_rate(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HitRateCurve {
    /// Sorted finite distances, bytes.
    distances: Vec<u64>,
    /// Total requests including cold misses.
    total: u64,
}

impl HitRateCurve {
    /// Builds a curve from per-request distances (`None` = cold miss).
    pub fn from_distances(distances: &[Option<u64>]) -> Self {
        let total = distances.len() as u64;
        let mut finite: Vec<u64> = distances.iter().filter_map(|d| *d).collect();
        finite.sort_unstable();
        HitRateCurve {
            distances: finite,
            total,
        }
    }

    /// Number of requests the curve was built from.
    pub fn total_requests(&self) -> u64 {
        self.total
    }

    /// Hit rate achievable with an LRU cache of `capacity_bytes`.
    pub fn hit_rate_at(&self, capacity_bytes: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hits = self.distances.partition_point(|&d| d <= capacity_bytes);
        hits as f64 / self.total as f64
    }

    /// The best hit rate any capacity can achieve on this trace
    /// (1 − cold-miss fraction).
    pub fn max_hit_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.distances.len() as f64 / self.total as f64
        }
    }

    /// The smallest capacity achieving hit rate `p`, or `None` if even an
    /// infinite cache cannot reach `p` on this trace.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn memory_for_hit_rate(&self, p: f64) -> Option<ByteSize> {
        assert!((0.0..=1.0).contains(&p), "hit rate out of range: {p}");
        if p <= 0.0 || self.total == 0 {
            return Some(ByteSize::ZERO);
        }
        let needed_hits = smallest_sufficient_rank(p, self.total);
        if needed_hits > self.distances.len() {
            return None;
        }
        Some(ByteSize(self.distances[needed_hits - 1]))
    }

    /// The paper's single-pass MIMIR-style output: memory needed for every
    /// integer hit-rate percentage `1..=100` (`None` where unreachable).
    pub fn memory_per_percent(&self) -> Vec<Option<ByteSize>> {
        (1..=100)
            .map(|pct| self.memory_for_hit_rate(f64::from(pct) / 100.0))
            .collect()
    }

    /// The smallest capacity at which a fraction `p` of the *warm*
    /// (re-accessed) requests hit.
    ///
    /// A finite observation window caps the overall hit rate at
    /// `1 − cold/total`, but cold (compulsory) misses cannot be fixed by
    /// memory — a window shorter than the workload's reuse horizon would
    /// make [`memory_for_hit_rate`](Self::memory_for_hit_rate) wildly
    /// underestimate the needed capacity. Sizing against the warm reuse
    /// distribution is robust to the window length.
    ///
    /// Returns `None` only when no request in the window was warm.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn memory_for_warm_hit_rate(&self, p: f64) -> Option<ByteSize> {
        assert!((0.0..=1.0).contains(&p), "hit rate out of range: {p}");
        if self.distances.is_empty() {
            return None;
        }
        if p <= 0.0 {
            return Some(ByteSize::ZERO);
        }
        let needed =
            smallest_sufficient_rank(p, self.distances.len() as u64).clamp(1, self.distances.len());
        Some(ByteSize(self.distances[needed - 1]))
    }
}

/// The smallest `h` with `h / total >= p`, robust to floating-point noise
/// in `p * total` (e.g. `0.28 * 100` evaluating to `28.000…004`).
fn smallest_sufficient_rank(p: f64, total: u64) -> usize {
    let mut h = (p * total as f64).ceil() as usize;
    while h > 1 && (h - 1) as f64 / total as f64 >= p {
        h -= 1;
    }
    h.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_curve() {
        let c = HitRateCurve::from_distances(&[]);
        assert_eq!(c.hit_rate_at(1_000_000), 0.0);
        assert_eq!(c.max_hit_rate(), 0.0);
        assert_eq!(c.memory_for_hit_rate(0.0), Some(ByteSize::ZERO));
    }

    #[test]
    fn all_cold_curve() {
        let c = HitRateCurve::from_distances(&[None, None, None]);
        assert_eq!(c.max_hit_rate(), 0.0);
        assert_eq!(c.memory_for_hit_rate(0.5), None);
    }

    #[test]
    fn monotone_in_capacity() {
        let dists: Vec<Option<u64>> = (0..100).map(|i| Some(i * 10)).collect();
        let c = HitRateCurve::from_distances(&dists);
        let mut prev = 0.0;
        for cap in (0..1200).step_by(50) {
            let h = c.hit_rate_at(cap);
            assert!(h >= prev);
            prev = h;
        }
    }

    #[test]
    fn memory_for_hit_rate_inverts_hit_rate_at() {
        let dists: Vec<Option<u64>> = (1..=100).map(|i| Some(i * 7)).collect();
        let c = HitRateCurve::from_distances(&dists);
        for pct in [1, 25, 50, 75, 100] {
            let p = f64::from(pct) / 100.0;
            let mem = c.memory_for_hit_rate(p).unwrap();
            assert!(c.hit_rate_at(mem.as_u64()) >= p);
            if mem.as_u64() > 0 {
                assert!(c.hit_rate_at(mem.as_u64() - 1) < p);
            }
        }
    }

    #[test]
    fn memory_per_percent_is_monotone() {
        let dists: Vec<Option<u64>> = (0..1000)
            .map(|i| if i % 10 == 0 { None } else { Some(i) })
            .collect();
        let c = HitRateCurve::from_distances(&dists);
        let per = c.memory_per_percent();
        assert_eq!(per.len(), 100);
        let mut prev = ByteSize::ZERO;
        for m in per.into_iter().flatten() {
            assert!(m >= prev);
            prev = m;
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_hit_rate_panics() {
        let c = HitRateCurve::from_distances(&[Some(1)]);
        let _ = c.memory_for_hit_rate(1.5);
    }
}
