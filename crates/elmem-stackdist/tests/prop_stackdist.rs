//! Property tests: the Fenwick engine matches a brute-force reference, and
//! hit-rate curves are sane.

use std::collections::HashSet;

use elmem_stackdist::{ExactStackDistance, HitRateCurve};
use elmem_util::KeyId;
use proptest::prelude::*;

fn brute_force(trace: &[(u64, u64)]) -> Vec<Option<u64>> {
    let mut out = Vec::new();
    for (i, &(key, bytes)) in trace.iter().enumerate() {
        match trace[..i].iter().rposition(|&(k, _)| k == key) {
            None => out.push(None),
            Some(p) => {
                let mut seen: HashSet<u64> = HashSet::new();
                let mut sum = 0u64;
                for &(k, b) in trace[p + 1..i].iter().rev() {
                    if k != key && seen.insert(k) {
                        sum += b;
                    }
                }
                out.push(Some(sum + bytes));
            }
        }
    }
    out
}

proptest! {
    /// Exact engine agrees with the quadratic reference on arbitrary traces.
    #[test]
    fn exact_matches_reference(
        trace in prop::collection::vec((0u64..40, 1u64..500), 0..250)
    ) {
        let mut e = ExactStackDistance::new();
        let got: Vec<Option<u64>> =
            trace.iter().map(|&(k, b)| e.record(KeyId(k), b)).collect();
        prop_assert_eq!(got, brute_force(&trace));
    }

    /// Hit rate is monotone non-decreasing in capacity and bounded by the
    /// warm fraction.
    #[test]
    fn curve_monotone_and_bounded(
        trace in prop::collection::vec((0u64..40, 1u64..500), 1..250)
    ) {
        let mut e = ExactStackDistance::new();
        let dists: Vec<Option<u64>> =
            trace.iter().map(|&(k, b)| e.record(KeyId(k), b)).collect();
        let curve = HitRateCurve::from_distances(&dists);
        let mut prev = -1.0f64;
        for cap in (0..30_000).step_by(997) {
            let h = curve.hit_rate_at(cap);
            prop_assert!(h >= prev);
            prop_assert!(h <= curve.max_hit_rate() + 1e-12);
            prev = h;
        }
    }

    /// memory_for_hit_rate returns the *smallest* sufficient capacity.
    #[test]
    fn memory_query_is_tight(
        trace in prop::collection::vec((0u64..20, 1u64..100), 2..200),
        pct in 1u32..=100,
    ) {
        let mut e = ExactStackDistance::new();
        let dists: Vec<Option<u64>> =
            trace.iter().map(|&(k, b)| e.record(KeyId(k), b)).collect();
        let curve = HitRateCurve::from_distances(&dists);
        let p = f64::from(pct) / 100.0;
        if let Some(mem) = curve.memory_for_hit_rate(p) {
            prop_assert!(curve.hit_rate_at(mem.as_u64()) >= p);
            if mem.as_u64() > 0 {
                prop_assert!(curve.hit_rate_at(mem.as_u64() - 1) < p);
            }
        } else {
            prop_assert!(curve.max_hit_rate() < p);
        }
    }
}
