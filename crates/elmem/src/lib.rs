//! # ElMem — an elastic Memcached system
//!
//! A faithful reproduction of *"ElMem: Towards an Elastic Memcached
//! System"* (Hafeez, Wajahat, Gandhi — ICDCS 2018) as a Rust workspace.
//! This facade re-exports the full public API; see the individual crates
//! for the deep documentation:
//!
//! * [`store`] — the Memcached substrate (slabs, MRU lists, LRU eviction,
//!   timestamp dump, batch import);
//! * [`hash`] — consistent hashing (ketama-style ring, membership);
//! * [`stackdist`] — stack distances and hit-rate curves (exact + MIMIR);
//! * [`workload`] — Facebook/Microsoft/SAP/NLANR trace shapes, Zipf
//!   popularity, Generalized Pareto value sizes, request generation;
//! * [`sim`] — the discrete-event substrate (event queue, links, queues);
//! * [`cluster`] — the multi-tier serving stack (web tier, cache tier,
//!   database bottleneck);
//! * [`core`] — ElMem itself: FuseCache, node scoring, the AutoScaler,
//!   3-phase migration, and the baseline/Naive/CacheScale comparators;
//! * [`util`] — shared newtypes, deterministic RNG, statistics.
//!
//! ## Quickstart
//!
//! ```
//! use elmem::core::{run_experiment, ExperimentConfig, FaultPlan, MigrationPolicy, ScaleAction};
//! use elmem::core::migration::MigrationCosts;
//! use elmem::cluster::ClusterConfig;
//! use elmem::workload::{DemandTrace, Keyspace, WorkloadConfig};
//! use elmem::util::SimTime;
//!
//! let config = ExperimentConfig {
//!     cluster: ClusterConfig::small_test(),
//!     workload: WorkloadConfig {
//!         keyspace: Keyspace::new(10_000, 1),
//!         zipf_exponent: 1.0,
//!         items_per_request: 3,
//!         peak_rate: 100.0,
//!         trace: DemandTrace::new(vec![1.0; 4], SimTime::from_secs(10)),
//!     },
//!     policy: MigrationPolicy::elmem(),
//!     autoscaler: None,
//!     scheduled: vec![(SimTime::from_secs(15), ScaleAction::In { count: 1 })],
//!     prefill_top_ranks: 5_000,
//!     costs: MigrationCosts::default(),
//!     faults: FaultPlan::new(),
//!     healing: None,
//!     master: Default::default(),
//!     seed: 42,
//! };
//! let result = run_experiment(config);
//! assert_eq!(result.final_members, 3);
//! ```

pub use elmem_cluster as cluster;
pub use elmem_core as core;
pub use elmem_hash as hash;
pub use elmem_sim as sim;
pub use elmem_stackdist as stackdist;
pub use elmem_store as store;
pub use elmem_util as util;
pub use elmem_workload as workload;
