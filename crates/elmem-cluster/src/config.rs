//! Cluster configuration.

use elmem_store::SizeClasses;
use elmem_util::{ByteSize, SimTime};

use crate::breaker::BreakerConfig;

/// Parameters of the simulated deployment.
///
/// The defaults in [`ClusterConfig::paper_scale`] mirror the paper's
/// testbed (§V-A): 10 Memcached VMs with 4 GB memory each, a database
/// bottleneck of 4,000 req/s, and sub-millisecond cache access. The
/// experiments in `elmem-bench` use [`ClusterConfig::laptop_scale`], a
/// proportionally shrunk deployment that preserves every ratio that
/// matters (cache-to-dataset size, r_DB-to-demand, migration bandwidth to
/// bytes moved) while running in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Initial number of cache nodes.
    pub initial_nodes: u32,
    /// Memory per cache node.
    pub node_memory: ByteSize,
    /// Virtual points per node on the hash ring.
    pub vnodes: u32,
    /// Database servers (cores).
    pub db_servers: usize,
    /// Database per-fetch service time. Capacity r_DB =
    /// `db_servers / service_time`.
    pub db_service: SimTime,
    /// Database admission bound: fetches arriving when the backlog exceeds
    /// this are shed (client-observed timeout, no data). Bounds the tail
    /// latency during overload, as real databases do.
    pub db_shed_delay: SimTime,
    /// Mean Memcached get latency on a hit.
    pub mc_latency: SimTime,
    /// Client-side cache timeout: what a lookup against a dead or
    /// partitioned node costs before the client falls back to the
    /// database (real Memcached clients block for their socket timeout on
    /// an unreachable server; see §V-A's client library).
    pub client_timeout: SimTime,
    /// Per-node circuit breaker tripped by `client_timeout` failures;
    /// while open, lookups fail over to the database immediately.
    pub breaker: BreakerConfig,
    /// Fixed web-tier processing overhead added to each request's RT
    /// (PHP parse + response assembly in the paper's stack).
    pub web_overhead: SimTime,
    /// NIC bandwidth per node, bytes/s (migration traffic).
    pub nic_bandwidth: f64,
    /// NIC per-transfer latency.
    pub nic_latency: SimTime,
    /// Slab size-class ladder for every node's store. Must be coarse
    /// enough that the node's page count comfortably exceeds the number of
    /// classes, or most classes can never obtain a page ("slab
    /// calcification") and sets fail.
    pub slab_classes: SizeClasses,
    /// Shard count for every node's store (the `ELMEM_SHARDS` knob).
    /// Observable behavior is shard-count-invariant — see DESIGN.md §14 —
    /// so this only affects real-thread serving parallelism.
    pub store_shards: usize,
}

impl ClusterConfig {
    /// The paper's testbed scale: 10 nodes × 4 GB, r_DB = 4,000 req/s
    /// (8 servers × 2 ms), 0.2 ms cache hits, 1 Gbit/s NICs.
    pub fn paper_scale() -> Self {
        ClusterConfig {
            initial_nodes: 10,
            node_memory: ByteSize::from_gib(4),
            vnodes: 128,
            db_servers: 8,
            db_service: SimTime::from_millis(2),
            db_shed_delay: SimTime::from_secs(2),
            mc_latency: SimTime::from_micros(200),
            client_timeout: SimTime::from_millis(250),
            breaker: BreakerConfig::default(),
            web_overhead: SimTime::from_millis(4),
            nic_bandwidth: 125_000_000.0,
            nic_latency: SimTime::from_micros(100),
            slab_classes: SizeClasses::memcached_default(),
            store_shards: elmem_store::default_shard_count(),
        }
    }

    /// A 1:64 shrink of [`paper_scale`](Self::paper_scale): 10 nodes ×
    /// 64 MB against a proportionally smaller keyspace, r_DB = 500 req/s.
    /// Same ratios, seconds-long runs.
    pub fn laptop_scale() -> Self {
        ClusterConfig {
            initial_nodes: 10,
            node_memory: ByteSize::from_mib(64),
            vnodes: 128,
            db_servers: 4,
            db_service: SimTime::from_millis(8),
            db_shed_delay: SimTime::from_secs(2),
            mc_latency: SimTime::from_micros(200),
            client_timeout: SimTime::from_millis(250),
            breaker: BreakerConfig::default(),
            web_overhead: SimTime::from_millis(4),
            nic_bandwidth: 125_000_000.0,
            nic_latency: SimTime::from_micros(100),
            // 64 pages per node vs ~15 classes: every class can get pages.
            slab_classes: SizeClasses::new(96, 2.0, ByteSize::PAGE.as_u64()),
            store_shards: elmem_store::default_shard_count(),
        }
    }

    /// A tiny 4-node × 4 MB config for unit tests.
    pub fn small_test() -> Self {
        ClusterConfig {
            initial_nodes: 4,
            node_memory: ByteSize::from_mib(4),
            vnodes: 32,
            db_servers: 2,
            db_service: SimTime::from_millis(4),
            db_shed_delay: SimTime::from_secs(2),
            mc_latency: SimTime::from_micros(200),
            client_timeout: SimTime::from_millis(250),
            breaker: BreakerConfig::default(),
            web_overhead: SimTime::from_millis(4),
            nic_bandwidth: 125_000_000.0,
            nic_latency: SimTime::from_micros(100),
            // 4 pages per node: keep the ladder tiny (~8 classes).
            slab_classes: SizeClasses::new(96, 4.0, ByteSize::PAGE.as_u64()),
            store_shards: elmem_store::default_shard_count(),
        }
    }

    /// The database capacity r_DB implied by this config, req/s.
    pub fn r_db(&self) -> f64 {
        self.db_servers as f64 / self.db_service.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_r_db_is_4000() {
        assert!((ClusterConfig::paper_scale().r_db() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn laptop_scale_r_db_is_500() {
        assert!((ClusterConfig::laptop_scale().r_db() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn small_test_is_small() {
        let c = ClusterConfig::small_test();
        assert!(c.initial_nodes <= 4);
        assert!(c.node_memory <= ByteSize::from_mib(8));
    }
}
