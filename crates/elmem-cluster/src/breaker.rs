//! Per-node circuit breakers on the client serving path.
//!
//! A request routed to a dead or partitioned cache node costs the client
//! its full `client_timeout` before it falls back to the database. The
//! breaker bounds how often that price is paid: after
//! [`BreakerConfig::threshold`] consecutive failures against one node it
//! *opens*, and subsequent requests fail over to the database immediately;
//! once [`BreakerConfig::cooldown`] has elapsed it lets a single
//! *half-open* probe request through, closing again only if that probe
//! reaches the node (the standard closed → open → half-open automaton).
//!
//! Breakers are client-side state: they live in the web tier
//! ([`crate::Cluster`]), one per cache node, and are advanced purely by
//! the deterministic simulated clock — no wall-clock, no randomness.

use elmem_util::SimTime;

/// Circuit-breaker parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub threshold: u32,
    /// How long the breaker stays open before allowing a half-open probe.
    pub cooldown: SimTime,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown: SimTime::from_secs(5),
        }
    }
}

/// The breaker automaton's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow to the node normally.
    Closed,
    /// Requests fail over to the database without contacting the node.
    Open,
    /// The cooldown elapsed: the next request is a probe.
    HalfOpen,
}

/// One node's circuit breaker.
///
/// # Example
///
/// ```
/// use elmem_cluster::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
/// use elmem_util::SimTime;
///
/// let mut b = CircuitBreaker::new(BreakerConfig {
///     threshold: 2,
///     cooldown: SimTime::from_secs(5),
/// });
/// let t = SimTime::from_secs(1);
/// assert!(b.allows(t));
/// b.record_failure(t);
/// b.record_failure(t);
/// assert_eq!(b.state(), BreakerState::Open);
/// assert!(!b.allows(SimTime::from_secs(2)), "open: fail fast");
/// assert!(b.allows(SimTime::from_secs(7)), "cooldown over: half-open probe");
/// b.record_success(SimTime::from_secs(7));
/// assert_eq!(b.state(), BreakerState::Closed);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: SimTime,
    transitions: u64,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: SimTime::ZERO,
            transitions: 0,
        }
    }

    /// Whether a request may contact the node at `now`. Open breakers
    /// whose cooldown has elapsed move to half-open here (and the request
    /// that asked becomes the probe).
    pub fn allows(&mut self, now: SimTime) -> bool {
        if self.state == BreakerState::Open && now >= self.opened_at + self.config.cooldown {
            self.set_state(BreakerState::HalfOpen);
        }
        self.state != BreakerState::Open
    }

    /// Records a request that reached the node.
    pub fn record_success(&mut self, _now: SimTime) {
        self.consecutive_failures = 0;
        if self.state != BreakerState::Closed {
            self.set_state(BreakerState::Closed);
        }
    }

    /// Records a request the node failed to answer (timeout).
    pub fn record_failure(&mut self, now: SimTime) {
        self.consecutive_failures += 1;
        let trip = match self.state {
            // A failed half-open probe re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.config.threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.opened_at = now;
            self.set_state(BreakerState::Open);
        }
    }

    /// The current state (without advancing open → half-open).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Total state transitions so far (a flap/instability metric).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    fn set_state(&mut self, state: BreakerState) {
        self.state = state;
        self.transitions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_s: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            threshold,
            cooldown: SimTime::from_secs(cooldown_s),
        })
    }

    #[test]
    fn stays_closed_below_threshold() {
        let mut b = breaker(3, 5);
        b.record_failure(SimTime::from_secs(1));
        b.record_failure(SimTime::from_secs(2));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows(SimTime::from_secs(3)));
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let mut b = breaker(3, 5);
        for s in 1..=3 {
            b.record_failure(SimTime::from_secs(s));
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows(SimTime::from_secs(4)));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = breaker(3, 5);
        b.record_failure(SimTime::from_secs(1));
        b.record_failure(SimTime::from_secs(2));
        b.record_success(SimTime::from_secs(3));
        b.record_failure(SimTime::from_secs(4));
        b.record_failure(SimTime::from_secs(5));
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let mut b = breaker(1, 5);
        b.record_failure(SimTime::from_secs(10));
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown not over: still open.
        assert!(!b.allows(SimTime::from_secs(14)));
        // Cooldown over: the next request probes.
        assert!(b.allows(SimTime::from_secs(15)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success(SimTime::from_secs(15));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_reopens_on_failure() {
        let mut b = breaker(1, 5);
        b.record_failure(SimTime::from_secs(10));
        assert!(b.allows(SimTime::from_secs(15)));
        b.record_failure(SimTime::from_secs(15));
        assert_eq!(b.state(), BreakerState::Open);
        // The cooldown restarts from the failed probe.
        assert!(!b.allows(SimTime::from_secs(19)));
        assert!(b.allows(SimTime::from_secs(20)));
    }

    #[test]
    fn transitions_count_every_state_change() {
        let mut b = breaker(1, 5);
        b.record_failure(SimTime::from_secs(1)); // -> Open
        b.allows(SimTime::from_secs(6)); // -> HalfOpen
        b.record_success(SimTime::from_secs(6)); // -> Closed
        assert_eq!(b.transitions(), 3);
    }
}
