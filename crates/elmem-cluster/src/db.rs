//! The database tier model.

use elmem_sim::ServerPool;
use elmem_util::{DetRng, SimTime};

/// Outcome of one database fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbFetch {
    /// The fetch was served; value available at the instant.
    Served(SimTime),
    /// The database shed the request (queue over the admission bound); the
    /// client observes a timeout at the instant and gets **no data** — so
    /// no cache fill happens.
    ///
    /// Shedding is a *serving-path* outcome, not a failure of the control
    /// plane: during the refill storm that follows a scaling commit, the
    /// database sheds fetches while migration traffic is still settling,
    /// and those sheds do **not** count against the migration supervisor's
    /// transfer retry budget (`RetryPolicy` in `elmem-core`). Only
    /// injected drops of the migration's own metadata/data shipments
    /// consume retries; a shed fetch is simply retried by the client on a
    /// later request, or the key ages back in through the normal miss
    /// path.
    Shed(SimTime),
}

impl DbFetch {
    /// When the client unblocks, served or not.
    pub fn completion(self) -> SimTime {
        match self {
            DbFetch::Served(t) | DbFetch::Shed(t) => t,
        }
    }

    /// Whether data actually arrived.
    pub fn is_served(self) -> bool {
        matches!(self, DbFetch::Served(_))
    }
}

/// The back-end database: a multi-server FIFO queue with exponential
/// service times and bounded admission.
///
/// The paper's ardb/RocksDB database handles ~4,000 req/s before latency
/// "rises abruptly" (§V-A); what matters for post-scaling dynamics is
/// exactly that saturation knee. A real database under sustained overload
/// does not queue unboundedly — requests time out. We model that with an
/// admission bound: a fetch arriving when the backlog exceeds
/// `shed_delay` is rejected and its client observes a timeout of that
/// length. Shed fetches return no data, so cache refills are throttled to
/// roughly the database's capacity — which is what makes the paper's
/// restoration take tens of minutes.
///
/// # Example
///
/// ```
/// use elmem_cluster::DbModel;
/// use elmem_util::{DetRng, SimTime};
///
/// let mut db = DbModel::new(4, SimTime::from_millis(2), SimTime::from_secs(2), DetRng::seed(1));
/// let done = db.fetch(SimTime::ZERO);
/// assert!(done.is_served());
/// ```
#[derive(Debug, Clone)]
pub struct DbModel {
    pool: ServerPool,
    mean_service: SimTime,
    shed_delay: SimTime,
    rng: DetRng,
    fetches: u64,
    shed: u64,
}

impl DbModel {
    /// Creates a database with `servers` parallel workers, the given mean
    /// per-fetch service time (capacity = `servers / mean_service`), and an
    /// admission bound of `shed_delay` of backlog.
    pub fn new(servers: usize, mean_service: SimTime, shed_delay: SimTime, rng: DetRng) -> Self {
        DbModel {
            pool: ServerPool::new(servers),
            mean_service,
            shed_delay,
            rng,
            fetches: 0,
            shed: 0,
        }
    }

    /// Capacity r_DB in fetches per second.
    pub fn capacity_rps(&self) -> f64 {
        self.pool.servers() as f64 / self.mean_service.as_secs_f64()
    }

    /// Submits a fetch arriving at `now`.
    pub fn fetch(&mut self, now: SimTime) -> DbFetch {
        self.fetches += 1;
        if self.pool.queue_delay(now) > self.shed_delay {
            self.shed += 1;
            return DbFetch::Shed(now + self.shed_delay);
        }
        let service =
            SimTime::from_secs_f64(self.rng.next_exp(1.0 / self.mean_service.as_secs_f64()));
        DbFetch::Served(self.pool.submit(now, service))
    }

    /// The backlog delay a fetch arriving at `now` would currently face.
    pub fn queue_delay(&self, now: SimTime) -> SimTime {
        self.pool.queue_delay(now)
    }

    /// Total fetches submitted (served + shed).
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Fetches rejected by the admission bound.
    pub fn shed(&self) -> u64 {
        self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHED: SimTime = SimTime::from_secs(2);

    #[test]
    fn capacity_formula() {
        let db = DbModel::new(8, SimTime::from_millis(2), SHED, DetRng::seed(0));
        assert!((db.capacity_rps() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn light_load_is_fast() {
        let mut db = DbModel::new(4, SimTime::from_millis(2), SHED, DetRng::seed(1));
        let mut worst = SimTime::ZERO;
        for i in 0..100u64 {
            // 100 req/s on a 2000 req/s database.
            let at = SimTime::from_millis(i * 10);
            let f = db.fetch(at);
            assert!(f.is_served());
            worst = worst.max(f.completion() - at);
        }
        assert!(worst < SimTime::from_millis(50), "worst {worst}");
        assert_eq!(db.shed(), 0);
    }

    #[test]
    fn overload_builds_backlog_then_sheds() {
        let mut db = DbModel::new(2, SimTime::from_millis(10), SHED, DetRng::seed(2));
        // 2 servers x 100/s = 200/s capacity; offer 2000/s for a second.
        let mut sojourns = Vec::new();
        for i in 0..2000u64 {
            let at = SimTime::from_micros(i * 500);
            sojourns.push(db.fetch(at).completion() - at);
        }
        // Latency climbs past the knee, then is capped by shedding.
        let max = sojourns.iter().copied().max().unwrap();
        assert!(max >= SimTime::from_secs(2), "max {max}");
        assert!(max <= SHED + SimTime::from_secs(1), "max {max}");
        assert!(db.shed() > 0);
        assert!(db.queue_delay(SimTime::from_secs(1)) > SimTime::ZERO);
    }

    #[test]
    fn shed_fetches_return_no_data() {
        let mut db = DbModel::new(
            1,
            SimTime::from_millis(100),
            SimTime::from_millis(50),
            DetRng::seed(4),
        );
        let first = db.fetch(SimTime::ZERO);
        assert!(first.is_served());
        // Backlog now ~100ms > 50ms bound: next fetch is shed.
        let mut saw_shed = false;
        for _ in 0..5 {
            if !db.fetch(SimTime::ZERO).is_served() {
                saw_shed = true;
            }
        }
        assert!(saw_shed);
    }

    #[test]
    fn shed_is_an_outcome_not_an_error() {
        // Sheds are tracked by the db's own counter and surfaced as a
        // normal DbFetch value — nothing in the serving path treats them
        // as control-plane failures (see the `Shed` docs: migration retry
        // budgets are consumed only by injected shipment drops, which are
        // accounted in MigrationReport::transfer_retries, not here).
        let mut db = DbModel::new(
            1,
            SimTime::from_millis(100),
            SimTime::from_millis(10),
            DetRng::seed(5),
        );
        let _ = db.fetch(SimTime::ZERO);
        let f = db.fetch(SimTime::ZERO);
        assert!(!f.is_served());
        assert_eq!(f.completion(), SimTime::from_millis(10));
        assert_eq!(db.shed(), 1);
        assert_eq!(db.fetches(), 2);
    }

    #[test]
    fn service_times_vary() {
        let mut db = DbModel::new(1, SimTime::from_millis(5), SHED, DetRng::seed(3));
        let a = db.fetch(SimTime::ZERO).completion();
        let b = db.fetch(SimTime::from_secs(10)).completion() - SimTime::from_secs(10);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_across_seeds() {
        let mut a = DbModel::new(2, SimTime::from_millis(2), SHED, DetRng::seed(7));
        let mut b = DbModel::new(2, SimTime::from_millis(2), SHED, DetRng::seed(7));
        for i in 0..50u64 {
            let t = SimTime::from_millis(i);
            assert_eq!(a.fetch(t), b.fetch(t));
        }
    }
}
