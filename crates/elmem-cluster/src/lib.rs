//! The multi-tier Memcached-backed web application (Fig. 1 of the paper).
//!
//! Load generator → load balancer → web servers → **Memcached tier** →
//! database. This crate models the serving path:
//!
//! * [`node::CacheNode`] — one Memcached node: a slab store plus the NIC
//!   link its Agent uses for migration traffic;
//! * [`tier::CacheTier`] — the node set plus the *client-visible*
//!   membership (the ring the web servers hash against);
//! * [`db::DbModel`] — the database as a saturating multi-server queue
//!   with capacity `r_DB` (§V-A: ~4,000 req/s before latency "rises
//!   abruptly");
//! * [`Cluster`] (in [`frontend`]) — the web tier: multi-get against the ring,
//!   miss → database fetch → cache fill, response time as the weighted
//!   average of per-item latencies (§V-A).
//!
//! The scaling *control plane* (AutoScaler, Master, Agents, FuseCache) is
//! in `elmem-core`; this crate only serves requests.
//!
//! # Example
//!
//! ```
//! use elmem_cluster::{Cluster, ClusterConfig};
//! use elmem_util::{DetRng, SimTime};
//! use elmem_workload::{Keyspace, WebRequest};
//! use elmem_util::KeyId;
//!
//! let cfg = ClusterConfig::small_test();
//! let mut cluster = Cluster::new(cfg, Keyspace::new(10_000, 0), DetRng::seed(1));
//! let req = WebRequest { arrival: SimTime::ZERO, keys: vec![KeyId(1), KeyId(2)] };
//! let outcome = cluster.handle(&req);
//! assert_eq!(outcome.lookups, 2);
//! ```

pub mod breaker;
pub mod config;
pub mod db;
pub mod frontend;
pub mod node;
pub mod telemetry;
pub mod tier;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use config::ClusterConfig;
pub use db::DbModel;
pub use frontend::{Cluster, RequestOutcome};
pub use node::{CacheNode, ImportLedger, NodeHealth};
pub use telemetry::{ClusterTelemetry, LookupClass, NodeCounters};
pub use tier::CacheTier;
