//! One Memcached node: slab store + NIC link.

use elmem_sim::Link;
use elmem_store::{SlabStore, StoreConfig};
use elmem_util::{NodeId, SimTime};

/// A cache node in the Memcached tier.
///
/// Holds the storage engine and the NIC [`Link`] that the node's ElMem
/// Agent uses for migration traffic. Whether the node is *in the client
/// membership* is tracked by the tier, not the node — mirroring the paper's
/// design where "Memcached nodes are not aware of the key range that they
/// … are responsible for storing" (§II-A).
#[derive(Debug, Clone)]
pub struct CacheNode {
    id: NodeId,
    /// The storage engine (public: agents operate on it directly, like the
    /// paper's Agents do via the patched Memcached commands).
    pub store: SlabStore,
    /// NIC used for migration transfers.
    pub link: Link,
    store_config: StoreConfig,
    online: bool,
}

impl CacheNode {
    /// Boots a node with the given storage and NIC parameters.
    pub fn new(
        id: NodeId,
        store_config: StoreConfig,
        nic_bandwidth: f64,
        nic_latency: SimTime,
    ) -> Self {
        CacheNode {
            id,
            store: SlabStore::new(store_config.clone()),
            link: Link::new(nic_bandwidth, nic_latency),
            store_config,
            online: true,
        }
    }

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether the node is powered on.
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// Powers the node off (scale-in directive from the Master). The store
    /// contents are dropped — a turned-off cache node's DRAM is gone.
    pub fn power_off(&mut self) {
        self.online = false;
        self.store = SlabStore::new(self.store_config.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmem_util::KeyId;

    #[test]
    fn power_off_drops_contents() {
        let mut n = CacheNode::new(
            NodeId(1),
            StoreConfig::with_memory(elmem_util::ByteSize::from_mib(4)),
            1e9,
            SimTime::from_micros(10),
        );
        n.store.set(KeyId(1), 100, SimTime::from_secs(1)).unwrap();
        assert_eq!(n.store.len(), 1);
        n.power_off();
        assert!(!n.is_online());
        assert_eq!(n.store.len(), 0);
    }

    #[test]
    fn new_node_is_online_and_empty() {
        let n = CacheNode::new(
            NodeId(0),
            StoreConfig::with_memory(elmem_util::ByteSize::from_mib(4)),
            1e9,
            SimTime::from_micros(10),
        );
        assert!(n.is_online());
        assert!(n.store.is_empty());
        assert_eq!(n.id(), NodeId(0));
    }
}
