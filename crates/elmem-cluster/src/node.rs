//! One Memcached node: slab store + NIC link + the Agent's migration
//! import ledger.

use std::collections::BTreeMap;

use elmem_sim::Link;
use elmem_store::{ClassId, ImportMode, ItemMeta, SlabStore, StoreConfig};
use elmem_util::{ElmemError, NodeId, SimTime};

/// The Agent's dedup ledger for journaled migration imports: which
/// `(migration id, shipment seq)` pairs this node has already applied,
/// and the content checksum each arrived with.
///
/// A crash-recovering Master re-delivers every shipment the journal never
/// durably acked; the ledger makes `batch_import` idempotent under that
/// re-delivery — a shipment already applied is suppressed (and its
/// checksum cross-checked) instead of imported twice. Volatile like the
/// store itself: a crash or power-off clears it along with the DRAM.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImportLedger {
    entries: BTreeMap<(u64, u64), u64>,
    duplicates_suppressed: u64,
}

impl ImportLedger {
    /// The applied `(migration id, seq) → checksum` entries, in order.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.entries.iter().map(|(&(id, seq), &sum)| (id, seq, sum))
    }

    /// How many re-delivered shipments the ledger suppressed.
    pub fn duplicates_suppressed(&self) -> u64 {
        self.duplicates_suppressed
    }

    /// Number of distinct shipments applied.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no shipment was ever applied through the ledger.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Failure state of a node, as the control plane sees it.
///
/// Distinct from [`CacheNode::is_online`]: a node the Master powered off
/// deliberately is offline but `Up` (it shut down cleanly and could be
/// re-provisioned); a `Crashed` node died under it — its DRAM is gone, it
/// cannot serve, and control-plane directives to it (power-off, discard)
/// are no-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// The node responds to the control plane (powered on or off).
    Up,
    /// The node failed; it is unreachable and its contents are lost.
    Crashed,
}

/// A cache node in the Memcached tier.
///
/// Holds the storage engine and the NIC [`Link`] that the node's ElMem
/// Agent uses for migration traffic. Whether the node is *in the client
/// membership* is tracked by the tier, not the node — mirroring the paper's
/// design where "Memcached nodes are not aware of the key range that they
/// … are responsible for storing" (§II-A).
#[derive(Debug, Clone)]
pub struct CacheNode {
    id: NodeId,
    /// The storage engine (public: agents operate on it directly, like the
    /// paper's Agents do via the patched Memcached commands).
    pub store: SlabStore,
    /// NIC used for migration transfers.
    pub link: Link,
    store_config: StoreConfig,
    online: bool,
    health: NodeHealth,
    ledger: ImportLedger,
}

impl CacheNode {
    /// Boots a node with the given storage and NIC parameters.
    pub fn new(
        id: NodeId,
        store_config: StoreConfig,
        nic_bandwidth: f64,
        nic_latency: SimTime,
    ) -> Self {
        CacheNode {
            id,
            store: SlabStore::new(store_config.clone()),
            link: Link::new(nic_bandwidth, nic_latency),
            store_config,
            online: true,
            health: NodeHealth::Up,
            ledger: ImportLedger::default(),
        }
    }

    /// The Agent's migration import ledger.
    pub fn import_ledger(&self) -> &ImportLedger {
        &self.ledger
    }

    /// Applies a journaled migration shipment idempotently.
    ///
    /// Returns `Ok(true)` if the import applied, `Ok(false)` if the
    /// ledger already held `(migration_id, seq)` and the re-delivery was
    /// suppressed.
    ///
    /// # Errors
    ///
    /// [`ElmemError::InvariantViolation`] if a re-delivered shipment
    /// carries a different checksum than the applied one (the world
    /// changed between deliveries — never silently re-import); any error
    /// `batch_import` raises.
    pub fn import_shipment(
        &mut self,
        migration_id: u64,
        seq: u64,
        checksum: u64,
        class: ClassId,
        items: &[ItemMeta],
        mode: ImportMode,
    ) -> Result<bool, ElmemError> {
        if let Some(&applied) = self.ledger.entries.get(&(migration_id, seq)) {
            if applied != checksum {
                return Err(ElmemError::InvariantViolation(format!(
                    "node {}: re-delivered shipment (migration {migration_id}, seq {seq}) \
                     checksum {checksum:#018x} != applied {applied:#018x}",
                    self.id
                )));
            }
            self.ledger.duplicates_suppressed += 1;
            return Ok(false);
        }
        self.store.batch_import(class, items, mode)?;
        self.ledger.entries.insert((migration_id, seq), checksum);
        Ok(true)
    }

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether the node is powered on.
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// The node's failure state.
    pub fn health(&self) -> NodeHealth {
        self.health
    }

    /// Whether the node has crashed.
    pub fn is_crashed(&self) -> bool {
        self.health == NodeHealth::Crashed
    }

    /// Whether a client request can reach the node at `now`: powered on,
    /// not crashed, and its NIC not inside an injected partition window.
    /// An unreachable node costs the client its full timeout.
    pub fn is_reachable(&self, now: SimTime) -> bool {
        self.online && !self.link.is_partitioned(now)
    }

    /// Powers the node off (scale-in directive from the Master). The store
    /// contents are dropped — a turned-off cache node's DRAM is gone.
    ///
    /// A **no-op for a crashed node**: the Master's directive cannot reach
    /// it, and its contents are already lost.
    pub fn power_off(&mut self) {
        if self.is_crashed() {
            return;
        }
        self.online = false;
        self.store = SlabStore::new(self.store_config.clone());
        self.ledger = ImportLedger::default();
    }

    /// Crashes the node (fault injection): contents lost, unreachable.
    /// Idempotent.
    pub fn crash(&mut self) {
        self.online = false;
        self.health = NodeHealth::Crashed;
        self.store = SlabStore::new(self.store_config.clone());
        self.ledger = ImportLedger::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmem_util::KeyId;

    #[test]
    fn power_off_drops_contents() {
        let mut n = CacheNode::new(
            NodeId(1),
            StoreConfig::with_memory(elmem_util::ByteSize::from_mib(4)),
            1e9,
            SimTime::from_micros(10),
        );
        n.store.set(KeyId(1), 100, SimTime::from_secs(1)).unwrap();
        assert_eq!(n.store.len(), 1);
        n.power_off();
        assert!(!n.is_online());
        assert_eq!(n.store.len(), 0);
    }

    #[test]
    fn crash_is_terminal_and_idempotent() {
        let mut n = CacheNode::new(
            NodeId(2),
            StoreConfig::with_memory(elmem_util::ByteSize::from_mib(4)),
            1e9,
            SimTime::from_micros(10),
        );
        n.store.set(KeyId(7), 100, SimTime::from_secs(1)).unwrap();
        n.crash();
        assert!(!n.is_online());
        assert!(n.is_crashed());
        assert_eq!(n.health(), NodeHealth::Crashed);
        assert_eq!(n.store.len(), 0);
        n.crash();
        assert!(n.is_crashed());
    }

    #[test]
    fn power_off_is_noop_on_crashed_node() {
        let mut n = CacheNode::new(
            NodeId(3),
            StoreConfig::with_memory(elmem_util::ByteSize::from_mib(4)),
            1e9,
            SimTime::from_micros(10),
        );
        n.crash();
        n.power_off();
        // Still reported crashed, not cleanly powered off.
        assert!(n.is_crashed());
        assert!(!n.is_online());
    }

    #[test]
    fn partition_makes_node_unreachable_until_heal() {
        let mut n = CacheNode::new(
            NodeId(4),
            StoreConfig::with_memory(elmem_util::ByteSize::from_mib(4)),
            1e9,
            SimTime::from_micros(10),
        );
        assert!(n.is_reachable(SimTime::ZERO));
        n.link.partition_until(SimTime::from_secs(5));
        assert!(!n.is_reachable(SimTime::from_secs(2)));
        assert!(n.is_reachable(SimTime::from_secs(5)), "partition healed");
        // The store itself is intact: only reachability was lost.
        assert!(n.is_online());
    }

    #[test]
    fn import_ledger_suppresses_redelivery_and_rejects_checksum_drift() {
        let mut n = CacheNode::new(
            NodeId(5),
            StoreConfig::with_memory(elmem_util::ByteSize::from_mib(4)),
            1e9,
            SimTime::from_micros(10),
        );
        let items = vec![ItemMeta {
            key: KeyId(11),
            value_size: 100,
            last_access: SimTime::from_secs(1),
            expires: SimTime::MAX,
        }];
        let class = n.store.classes().class_for(items[0].footprint()).unwrap();
        assert!(n
            .import_shipment(7, 0, 0xfeed, class, &items, ImportMode::Merge)
            .unwrap());
        let len = n.store.len();
        // Same (migration, seq): suppressed, store untouched.
        assert!(!n
            .import_shipment(7, 0, 0xfeed, class, &items, ImportMode::Merge)
            .unwrap());
        assert_eq!(n.store.len(), len);
        assert_eq!(n.import_ledger().duplicates_suppressed(), 1);
        assert_eq!(n.import_ledger().len(), 1);
        // Same identity, different checksum: an invariant violation.
        assert!(n
            .import_shipment(7, 0, 0xdead, class, &items, ImportMode::Merge)
            .is_err());
        // A different seq applies normally.
        assert!(n
            .import_shipment(7, 1, 0xfeed, class, &items, ImportMode::Merge)
            .unwrap());
        assert_eq!(n.import_ledger().len(), 2);
    }

    #[test]
    fn crash_and_power_off_clear_the_ledger() {
        let mut n = CacheNode::new(
            NodeId(6),
            StoreConfig::with_memory(elmem_util::ByteSize::from_mib(4)),
            1e9,
            SimTime::from_micros(10),
        );
        let items = vec![ItemMeta {
            key: KeyId(3),
            value_size: 64,
            last_access: SimTime::from_secs(1),
            expires: SimTime::MAX,
        }];
        let class = n.store.classes().class_for(items[0].footprint()).unwrap();
        n.import_shipment(1, 0, 1, class, &items, ImportMode::Merge)
            .unwrap();
        assert!(!n.import_ledger().is_empty());
        n.crash();
        assert!(n.import_ledger().is_empty());
    }

    #[test]
    fn new_node_is_online_and_empty() {
        let n = CacheNode::new(
            NodeId(0),
            StoreConfig::with_memory(elmem_util::ByteSize::from_mib(4)),
            1e9,
            SimTime::from_micros(10),
        );
        assert!(n.is_online());
        assert!(n.store.is_empty());
        assert_eq!(n.id(), NodeId(0));
    }
}
