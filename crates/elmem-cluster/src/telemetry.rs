//! Serving-path telemetry: per-command latency histograms, per-node
//! counters, and serving-path events feeding the shared [`EventTrace`].
//!
//! The [`Cluster`](crate::Cluster) owns one [`ClusterTelemetry`] and feeds
//! it from the lookup path: every `get` lands in exactly one of the
//! `get_hit` / `get_miss` / `timeout_path` histograms, every request's
//! response time lands in `request_rt`, and per-node counters track where
//! hits and failures concentrate. Serving-path *events* — client timeouts,
//! fast failovers, circuit-breaker transitions and (optionally) one event
//! per request — go into the same trace the control plane writes to, so a
//! dump interleaves "breaker opened on node 1" with "migration phase 2
//! started" on one clock.
//!
//! Histograms are always recorded (they are cheap and deterministic);
//! events respect [`TelemetryConfig::trace_capacity`], with capacity 0 —
//! the default for a bare `Cluster::new` — tracing nothing.

use elmem_util::telemetry::{BreakerPhase, EventKind, EventTrace};
use elmem_util::{LatencyHistogram, NodeId, NodeMap, SimTime, TelemetryConfig};

use crate::breaker::BreakerState;

/// Where one cache lookup ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupClass {
    /// Answered from cache (primary or promoted secondary).
    Hit,
    /// Missed and fetched from the database.
    Miss,
    /// The owner was unreachable: timeout-and-failover path.
    Failover,
}

/// Per-node serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Cache lookups routed to the node.
    pub lookups: u64,
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that paid the full client timeout.
    pub timeouts: u64,
    /// Lookups that failed over instantly on an open breaker.
    pub fast_failovers: u64,
}

/// The serving path's telemetry sink.
#[derive(Debug, Clone, Default)]
pub struct ClusterTelemetry {
    /// The shared event trace (serving path + control plane).
    pub trace: EventTrace,
    /// Whether to record one [`EventKind::RequestServed`] per web request.
    pub trace_requests: bool,
    /// Response time of whole web requests (overhead + mean item latency).
    pub request_rt: LatencyHistogram,
    /// Latency of lookups answered from cache.
    pub get_hit: LatencyHistogram,
    /// Latency of lookups that missed and fetched from the database.
    pub get_miss: LatencyHistogram,
    /// Latency of lookups whose owner was unreachable (timeout/failover).
    pub timeout_path: LatencyHistogram,
    /// Per-node counters, id-indexed (ascending-id iteration, exactly
    /// like the `BTreeMap` this replaced; bumped on every lookup).
    pub per_node: NodeMap<NodeCounters>,
}

impl ClusterTelemetry {
    /// Re-arms the trace with the given capacity and request tracing flag.
    /// Existing histogram contents are kept; the trace restarts empty.
    pub fn configure(&mut self, config: &TelemetryConfig) {
        self.trace = EventTrace::with_capacity(config.trace_capacity);
        self.trace_requests = config.trace_requests;
    }

    /// Counters for one node (zeroes if it never served a lookup).
    pub fn node_counters(&self, node: NodeId) -> NodeCounters {
        self.per_node.get(node).copied().unwrap_or_default()
    }

    #[inline]
    fn node_mut(&mut self, node: NodeId) -> &mut NodeCounters {
        self.per_node
            .get_or_insert_with(node, NodeCounters::default)
    }

    /// Records one classified lookup: its latency into the matching
    /// histogram and, when it was routed to a node, that node's counters.
    pub fn on_lookup(&mut self, node: Option<NodeId>, class: LookupClass, latency: SimTime) {
        match class {
            LookupClass::Hit => self.get_hit.record_time(latency),
            LookupClass::Miss => self.get_miss.record_time(latency),
            LookupClass::Failover => self.timeout_path.record_time(latency),
        }
        if let Some(node) = node {
            let c = self.node_mut(node);
            c.lookups += 1;
            if class == LookupClass::Hit {
                c.hits += 1;
            }
        }
    }

    /// Records a lookup that paid the full client timeout against `node`.
    pub fn on_client_timeout(&mut self, at: SimTime, node: NodeId) {
        self.node_mut(node).timeouts += 1;
        self.trace.record(at, Some(node), EventKind::RequestTimeout);
    }

    /// Records a lookup that failed over instantly on an open breaker.
    pub fn on_fast_failover(&mut self, at: SimTime, node: NodeId) {
        self.node_mut(node).fast_failovers += 1;
        self.trace.record(at, Some(node), EventKind::FastFailover);
    }

    /// Records one served web request: always into the response-time
    /// histogram, and as an event when request tracing is on.
    pub fn on_request(&mut self, at: SimTime, rt: SimTime, hits: u64, lookups: u64) {
        self.request_rt.record_time(rt);
        if self.trace_requests {
            self.trace.record(
                at,
                None,
                EventKind::RequestServed {
                    hits: hits as u32,
                    lookups: lookups as u32,
                },
            );
        }
    }

    /// Records a breaker state change as an event (no-op when unchanged).
    pub fn on_breaker(&mut self, at: SimTime, node: NodeId, from: BreakerState, to: BreakerState) {
        if from != to {
            self.trace.record(
                at,
                Some(node),
                EventKind::BreakerTransition {
                    from: phase(from),
                    to: phase(to),
                },
            );
        }
    }
}

/// Maps the breaker automaton's state onto the trace vocabulary.
pub fn phase(state: BreakerState) -> BreakerPhase {
    match state {
        BreakerState::Closed => BreakerPhase::Closed,
        BreakerState::Open => BreakerPhase::Open,
        BreakerState::HalfOpen => BreakerPhase::HalfOpen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_land_in_exactly_one_histogram() {
        let mut t = ClusterTelemetry::default();
        t.on_lookup(Some(NodeId(0)), LookupClass::Hit, SimTime::from_micros(100));
        t.on_lookup(Some(NodeId(0)), LookupClass::Miss, SimTime::from_millis(5));
        t.on_lookup(
            Some(NodeId(1)),
            LookupClass::Failover,
            SimTime::from_millis(50),
        );
        assert_eq!(t.get_hit.count(), 1);
        assert_eq!(t.get_miss.count(), 1);
        assert_eq!(t.timeout_path.count(), 1);
        assert_eq!(t.node_counters(NodeId(0)).lookups, 2);
        assert_eq!(t.node_counters(NodeId(0)).hits, 1);
        assert_eq!(t.node_counters(NodeId(1)).lookups, 1);
    }

    #[test]
    fn breaker_event_only_on_change() {
        let mut t = ClusterTelemetry::default();
        t.configure(&TelemetryConfig::default());
        t.on_breaker(
            SimTime::ZERO,
            NodeId(0),
            BreakerState::Closed,
            BreakerState::Closed,
        );
        assert!(t.trace.is_empty());
        t.on_breaker(
            SimTime::ZERO,
            NodeId(0),
            BreakerState::Closed,
            BreakerState::Open,
        );
        assert_eq!(t.trace.len(), 1);
    }

    #[test]
    fn request_events_are_gated() {
        let mut t = ClusterTelemetry::default();
        t.configure(&TelemetryConfig::default());
        t.on_request(SimTime::ZERO, SimTime::from_millis(1), 2, 3);
        assert_eq!(t.request_rt.count(), 1);
        assert!(t.trace.is_empty(), "request tracing is off by default");
        t.trace_requests = true;
        t.on_request(SimTime::ZERO, SimTime::from_millis(1), 2, 3);
        assert_eq!(t.trace.len(), 1);
    }

    #[test]
    fn default_trace_capacity_is_zero() {
        let mut t = ClusterTelemetry::default();
        t.on_client_timeout(SimTime::ZERO, NodeId(0));
        assert!(t.trace.is_empty(), "untraced cluster retains no events");
        assert_eq!(
            t.node_counters(NodeId(0)).timeouts,
            1,
            "counters still count"
        );
    }
}
