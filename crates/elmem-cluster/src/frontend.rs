//! The web tier's serving path: multi-get, miss handling, response times.

use std::collections::BTreeMap;

use elmem_hash::HashRing;
use elmem_util::{DetRng, KeyId, NodeId, NodeMap, SimTime};
use elmem_workload::{Keyspace, WebRequest};

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::config::ClusterConfig;
use crate::db::DbModel;
use crate::telemetry::{ClusterTelemetry, LookupClass};
use crate::tier::CacheTier;
use elmem_util::TelemetryConfig;

/// Key count below which [`Cluster::prefill`] always runs the plain serial
/// loop — fan-out setup isn't worth it for laptop-scale fills.
pub const PREFILL_FANOUT_MIN: usize = 100_000;

/// Result of serving one web request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestOutcome {
    /// The request's response time (weighted average of per-item latencies
    /// plus web-tier overhead, per §V-A).
    pub rt: SimTime,
    /// When the last item fetch completed (used for timeline bucketing).
    pub completion: SimTime,
    /// Cache lookups that hit.
    pub hits: u64,
    /// Total cache lookups.
    pub lookups: u64,
}

impl RequestOutcome {
    /// Response time in fractional milliseconds.
    pub fn rt_ms(&self) -> f64 {
        self.rt.as_millis_f64()
    }
}

/// The full serving stack: cache tier + database + web-tier behaviour.
///
/// A `get` that hits is answered in cache latency; a miss goes to the
/// database (absorbing its queueing delay) and the fetched pair is inserted
/// into the responsible cache node, "possibly leading to evictions" (§V-A).
///
/// A `get` routed to a node that cannot answer — crashed, powered off, or
/// inside a NIC partition window — costs the client its configured
/// `client_timeout` before falling back to the database. A per-node
/// [`CircuitBreaker`] bounds that price: after a streak of timeouts the
/// breaker opens and subsequent lookups fail over immediately, re-probing
/// the node once per cooldown.
///
/// For the CacheScale comparator (§V-B4), a *secondary ring* can be armed:
/// misses on the primary retry on the secondary's node; secondary hits are
/// *promoted* (migrated) to the primary node.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The cache tier.
    pub tier: CacheTier,
    /// The database model.
    pub db: DbModel,
    keyspace: Keyspace,
    latency_rng: DetRng,
    secondary: Option<HashRing>,
    promoted: u64,
    secondary_hits: u64,
    // Id-indexed: walked once per lookup (hot path).
    breakers: NodeMap<CircuitBreaker>,
    client_timeouts: u64,
    fast_failovers: u64,
    telemetry: ClusterTelemetry,
    // 1 / mc_latency, cached at construction: the exponential-jitter rate
    // is re-derived on every single lookup otherwise, and the config mean
    // never changes after the tier is built.
    mc_rate: f64,
}

impl Cluster {
    /// Builds the stack from a config, a keyspace and an RNG.
    pub fn new(config: ClusterConfig, keyspace: Keyspace, rng: DetRng) -> Self {
        let db = DbModel::new(
            config.db_servers,
            config.db_service,
            config.db_shed_delay,
            rng.split("db"),
        );
        let mc_rate = 1.0 / config.mc_latency.as_secs_f64();
        Cluster {
            tier: CacheTier::new(config),
            db,
            keyspace,
            latency_rng: rng.split("mc-latency"),
            secondary: None,
            promoted: 0,
            secondary_hits: 0,
            breakers: NodeMap::new(),
            client_timeouts: 0,
            fast_failovers: 0,
            telemetry: ClusterTelemetry::default(),
            mc_rate,
        }
    }

    /// The keyspace driving value sizes.
    pub fn keyspace(&self) -> &Keyspace {
        &self.keyspace
    }

    /// Arms event tracing per the given config. Histograms and per-node
    /// counters are always recorded; only the trace needs arming.
    pub fn set_telemetry_config(&mut self, config: &TelemetryConfig) {
        self.telemetry.configure(config);
    }

    /// The serving path's telemetry (histograms, counters, event trace).
    pub fn telemetry(&self) -> &ClusterTelemetry {
        &self.telemetry
    }

    /// Mutable telemetry access — the control plane records its events
    /// (probe outcomes, migration phases, scaling decisions) into the same
    /// trace so one dump holds the whole story in one clock.
    pub fn telemetry_mut(&mut self) -> &mut ClusterTelemetry {
        &mut self.telemetry
    }

    /// Serves one web request at its arrival time.
    pub fn handle(&mut self, req: &WebRequest) -> RequestOutcome {
        let now = req.arrival;
        let mut hits = 0u64;
        let mut sum = SimTime::ZERO;
        let mut worst = SimTime::ZERO;
        for &key in &req.keys {
            let (latency, hit) = self.lookup_and_fill(key, now);
            if hit {
                hits += 1;
            }
            sum += latency;
            worst = worst.max(latency);
        }
        let overhead = self.tier.config().web_overhead;
        let mean = if req.keys.is_empty() {
            SimTime::ZERO
        } else {
            sum / req.keys.len() as u64
        };
        let outcome = RequestOutcome {
            rt: overhead + mean,
            completion: now + overhead + worst,
            hits,
            lookups: req.keys.len() as u64,
        };
        self.telemetry
            .on_request(now, outcome.rt, outcome.hits, outcome.lookups);
        outcome
    }

    /// One cache lookup with fill-on-miss; returns (latency, hit).
    ///
    /// An unreachable owner (crashed, powered off, partitioned) or one so
    /// slow-linked that a get would outlast `client_timeout` goes through
    /// [`Self::failover`]: the client pays the timeout (unless the node's
    /// breaker is already open) and fetches from the database instead.
    pub fn lookup_and_fill(&mut self, key: KeyId, now: SimTime) -> (SimTime, bool) {
        let Some(node_id) = self.tier.node_for_key(key) else {
            // No cache tier at all: straight to the database.
            let latency = self.db.fetch(now).completion() - now;
            self.telemetry.on_lookup(None, LookupClass::Miss, latency);
            return (latency, false);
        };
        let timeout = self.tier.config().client_timeout;
        let (reachable, slowdown) = {
            let node = self.tier.node(node_id).expect("member node exists");
            (node.is_reachable(now), node.link.slowdown_factor())
        };
        // A degraded NIC stretches the get by the link's slowdown factor;
        // past the client timeout the node is as good as dead.
        let cache_latency = self.mc_latency().mul_f64(slowdown);
        if !reachable || cache_latency >= timeout {
            let latency = self.failover(node_id, now);
            self.telemetry
                .on_lookup(Some(node_id), LookupClass::Failover, latency);
            return (latency, false);
        }
        // Enforce the breaker even when the node is reachable again: an
        // open breaker fails over fast until its cooldown elapses, and the
        // first allowed request is the half-open probe. Without this gate
        // a heal inside the cooldown would jump the breaker open → closed
        // without ever probing. One breaker-map walk per lookup (this is
        // the hot path), not one per state read.
        let breaker = self.breaker(node_id);
        let before = breaker.state();
        let allowed = breaker.allows(now);
        let probing = breaker.state();
        if !allowed {
            self.telemetry.on_breaker(now, node_id, before, probing);
            self.fast_failovers += 1;
            self.telemetry.on_fast_failover(now, node_id);
            let fetch = self.db.fetch(now);
            let latency = fetch.completion() - now;
            self.telemetry
                .on_lookup(Some(node_id), LookupClass::Failover, latency);
            return (latency, false);
        }
        breaker.record_success(now);
        let after = breaker.state();
        self.telemetry.on_breaker(now, node_id, before, probing);
        self.telemetry.on_breaker(now, node_id, probing, after);
        let hit = {
            let node = self.tier.node_mut(node_id).expect("member node exists");
            node.store.get(key, now).is_some()
        };
        if hit {
            self.telemetry
                .on_lookup(Some(node_id), LookupClass::Hit, cache_latency);
            return (cache_latency, true);
        }
        // CacheScale path: retry on the secondary (retiring) nodes.
        if let Some(promoted) = self.try_secondary(key, node_id, now) {
            self.telemetry
                .on_lookup(Some(node_id), LookupClass::Hit, promoted);
            return (promoted, true);
        }
        // Miss: fetch from the database and fill the cache. A shed
        // fetch (database overloaded) returns no data: the client eats
        // the timeout and nothing is cached.
        let fetch = self.db.fetch(now);
        if fetch.is_served() {
            let size = self.keyspace.value_size(key);
            let node = self.tier.node_mut(node_id).expect("member node exists");
            let _ = node.store.set(key, size, now);
        }
        let latency = fetch.completion() - now + cache_latency;
        self.telemetry
            .on_lookup(Some(node_id), LookupClass::Miss, latency);
        (latency, false)
    }

    /// A lookup whose owner cannot answer. With the breaker closed the
    /// client blocks for its full `client_timeout` before going to the
    /// database (the fetch starts only once it gives up); with the breaker
    /// open it fails over immediately.
    fn failover(&mut self, node_id: NodeId, now: SimTime) -> SimTime {
        let timeout = self.tier.config().client_timeout;
        // Capture breaker state around each step so the trace sees every
        // edge (an open → half-open → open probe cycle is two events).
        // All breaker steps run on one map walk; the trace events are
        // emitted afterwards in the same order as before.
        let breaker = self.breaker(node_id);
        let before = breaker.state();
        let allowed = breaker.allows(now);
        let probing = breaker.state();
        let after = if allowed {
            breaker.record_failure(now);
            Some(breaker.state())
        } else {
            None
        };
        self.telemetry.on_breaker(now, node_id, before, probing);
        let charged = if let Some(after) = after {
            self.telemetry.on_breaker(now, node_id, probing, after);
            self.client_timeouts += 1;
            self.telemetry.on_client_timeout(now, node_id);
            timeout
        } else {
            self.fast_failovers += 1;
            self.telemetry.on_fast_failover(now, node_id);
            SimTime::ZERO
        };
        let fetch = self.db.fetch(now + charged);
        fetch.completion() - now
    }

    #[inline]
    fn breaker(&mut self, node_id: NodeId) -> &mut CircuitBreaker {
        let config = self.tier.config().breaker;
        self.breakers
            .get_or_insert_with(node_id, || CircuitBreaker::new(config))
    }

    fn try_secondary(&mut self, key: KeyId, primary: NodeId, now: SimTime) -> Option<SimTime> {
        let ring = self.secondary.as_ref()?;
        let sec_node = ring.node_for(key)?;
        if sec_node == primary {
            return None;
        }
        let item = {
            let node = self.tier.node_mut(sec_node).ok()?;
            if !node.is_reachable(now) {
                return None;
            }
            node.store.get(key, now)?
        };
        self.secondary_hits += 1;
        // Promote: move the pair to the primary node (CacheScale migration).
        let moved = {
            let node = self.tier.node_mut(sec_node).expect("checked above");
            node.store.delete(key)
        };
        if moved {
            let node = self.tier.node_mut(primary).expect("member node exists");
            if node.is_online() && node.store.set(key, item.value_size, now).is_ok() {
                self.promoted += 1;
            }
        }
        // Two cache hops: primary miss + secondary hit.
        Some(self.mc_latency() + self.mc_latency())
    }

    /// Arms the CacheScale secondary ring (the pre-scaling membership whose
    /// retiring nodes act as a secondary cache).
    pub fn arm_secondary(&mut self, ring: HashRing) {
        self.secondary = Some(ring);
    }

    /// Disarms the secondary ring (CacheScale's discard step).
    pub fn disarm_secondary(&mut self) {
        self.secondary = None;
    }

    /// Whether a secondary ring is armed.
    pub fn secondary_armed(&self) -> bool {
        self.secondary.is_some()
    }

    /// Items promoted from secondary to primary (CacheScale metric).
    pub fn promoted(&self) -> u64 {
        self.promoted
    }

    /// Secondary-cache hits (CacheScale metric).
    pub fn secondary_hits(&self) -> u64 {
        self.secondary_hits
    }

    /// Lookups that paid the full `client_timeout` against an unreachable
    /// node.
    pub fn client_timeouts(&self) -> u64 {
        self.client_timeouts
    }

    /// Lookups that failed over to the database immediately because the
    /// node's breaker was open.
    pub fn fast_failovers(&self) -> u64 {
        self.fast_failovers
    }

    /// Total breaker state transitions across all nodes (flap metric).
    pub fn breaker_transitions(&self) -> u64 {
        self.breakers.values().map(|b| b.transitions()).sum()
    }

    /// The breaker state for one node, if any request ever touched it.
    pub fn breaker_state(&self, node_id: NodeId) -> Option<BreakerState> {
        self.breakers.get(node_id).map(|b| b.state())
    }

    /// Pre-fills caches by directly setting keys on their current owners
    /// (used to start experiments warm, like the paper's steady state).
    ///
    /// Above [`PREFILL_FANOUT_MIN`] keys (and `par_jobs() > 1`) the fill
    /// fans out one worker per owning node: ring lookups are a parallel
    /// pure map, timestamps are assigned in one serial pass in global key
    /// order (exactly the serial loop's assignment), and each node's sets
    /// run in their original relative order against that node's own store
    /// — stores and their LRU clocks are per-node, so the final state is
    /// byte-identical to the serial fill at any worker count.
    pub fn prefill(&mut self, keys: impl Iterator<Item = KeyId>, start: SimTime) {
        let jobs = elmem_util::par::par_jobs();
        let keys: Vec<KeyId> = keys.collect();
        if jobs > 1 && keys.len() >= PREFILL_FANOUT_MIN {
            self.prefill_fanout(&keys, start, jobs);
            return;
        }
        let mut t = start;
        for key in keys {
            if let Some(node_id) = self.tier.node_for_key(key) {
                let size = self.keyspace.value_size(key);
                let node = self.tier.node_mut(node_id).expect("member node exists");
                if node.is_online() {
                    let _ = node.store.set(key, size, t);
                }
                t += SimTime::from_nanos(1);
            }
        }
    }

    /// The parallel prefill path: group `(key, timestamp)` per owning node
    /// serially, then fill every involved node's store concurrently
    /// (driven through the thread-safe concurrent facade, one worker per
    /// node, per-node order preserved).
    fn prefill_fanout(&mut self, keys: &[KeyId], start: SimTime, jobs: usize) {
        use elmem_store::{ConcurrentSlabStore, SlabStore, StoreConfig};

        // Owner lookup is a pure function of the ring — parallel map.
        let tier = &self.tier;
        let owners: Vec<Option<NodeId>> =
            elmem_util::par::par_map_indexed(jobs, keys, |_, &k| tier.node_for_key(k));

        // Serial pass: the timestamp sequence is identical to the serial
        // loop's (`t` advances only for owned keys, online or not), and
        // grouping preserves each node's relative set order.
        let mut t = start;
        let mut per_node: BTreeMap<NodeId, Vec<(KeyId, SimTime)>> = BTreeMap::new();
        for (&key, &owner) in keys.iter().zip(&owners) {
            if let Some(node_id) = owner {
                per_node.entry(node_id).or_default().push((key, t));
                t += SimTime::from_nanos(1);
            }
        }

        // Move each online node's store out (a one-page placeholder holds
        // the slot), fill all of them in parallel through the concurrent
        // facade, and reinstall in node order. The `Mutex<Option<_>>`
        // wrapper only ferries ownership into the worker; each store is
        // taken exactly once.
        type FillJob = (
            NodeId,
            std::sync::Mutex<Option<SlabStore>>,
            Vec<(KeyId, SimTime)>,
        );
        let mut work: Vec<FillJob> = Vec::new();
        for (node_id, items) in per_node {
            let node = self.tier.node_mut(node_id).expect("member node exists");
            if !node.is_online() {
                continue; // timestamps consumed above, sets skipped
            }
            let store = std::mem::replace(
                &mut node.store,
                SlabStore::new(StoreConfig::with_memory(elmem_util::ByteSize::PAGE)),
            );
            work.push((node_id, std::sync::Mutex::new(Some(store)), items));
        }
        let keyspace = &self.keyspace;
        let filled = elmem_util::par::par_map_indexed(jobs, &work, |_, (_, cell, items)| {
            let store = cell
                .lock()
                .expect("fill worker panicked")
                .take()
                .expect("each store is filled exactly once");
            let cstore = ConcurrentSlabStore::from_serial(store);
            for &(key, at) in items {
                let _ = cstore.set(key, keyspace.value_size(key), at);
            }
            cstore.into_serial()
        });
        for ((node_id, _, _), store) in work.into_iter().zip(filled) {
            self.tier
                .node_mut(node_id)
                .expect("member node exists")
                .store = store;
        }
    }

    fn mc_latency(&mut self) -> SimTime {
        // Exponential jitter around the configured mean (rate cached in
        // `mc_rate`).
        SimTime::from_secs_f64(self.latency_rng.next_exp(self.mc_rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;

    fn cluster() -> Cluster {
        Cluster::new(
            ClusterConfig::small_test(),
            Keyspace::new(10_000, 0),
            DetRng::seed(1),
        )
    }

    fn req(arrival_ms: u64, keys: &[u64]) -> WebRequest {
        WebRequest {
            arrival: SimTime::from_millis(arrival_ms),
            keys: keys.iter().map(|&k| KeyId(k)).collect(),
        }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cluster();
        let first = c.handle(&req(0, &[1]));
        assert_eq!(first.hits, 0);
        assert_eq!(first.lookups, 1);
        let second = c.handle(&req(100, &[1]));
        assert_eq!(second.hits, 1);
        // Hits are much faster than DB misses.
        assert!(second.rt < first.rt);
    }

    #[test]
    fn rt_includes_web_overhead() {
        let mut c = cluster();
        c.prefill((0..10).map(KeyId), SimTime::ZERO);
        let out = c.handle(&req(10, &[1, 2, 3]));
        assert!(out.rt >= c.tier.config().web_overhead);
        assert_eq!(out.hits, 3);
    }

    #[test]
    fn miss_fills_cache_on_owner() {
        let mut c = cluster();
        let key = KeyId(77);
        let owner = c.tier.node_for_key(key).unwrap();
        c.handle(&req(0, &[77]));
        assert!(c.tier.node(owner).unwrap().store.contains(key));
    }

    #[test]
    fn prefill_makes_requests_hit() {
        let mut c = cluster();
        c.prefill((0..1000).map(KeyId), SimTime::ZERO);
        let out = c.handle(&req(1, &[5, 500, 999]));
        assert_eq!(out.hits, 3);
    }

    #[test]
    fn prefill_fanout_is_byte_identical_to_serial() {
        // Same key stream through the serial loop and the per-node fan-out
        // (forced directly, below the public threshold), with one node
        // offline to exercise the timestamp-consumed-but-set-skipped rule.
        let keys: Vec<KeyId> = (0..4000).rev().map(KeyId).collect();
        let start = SimTime::from_millis(3);

        let mut serial = cluster();
        serial.tier.power_off(&[NodeId(1)]);
        let mut t = start;
        for &key in &keys {
            if let Some(node_id) = serial.tier.node_for_key(key) {
                let size = serial.keyspace.value_size(key);
                let node = serial.tier.node_mut(node_id).unwrap();
                if node.is_online() {
                    let _ = node.store.set(key, size, t);
                }
                t += SimTime::from_nanos(1);
            }
        }

        for jobs in [2, 4] {
            let mut fanout = cluster();
            fanout.tier.power_off(&[NodeId(1)]);
            fanout.prefill_fanout(&keys, start, jobs);
            for node in serial.tier.membership().members() {
                let a = serial.tier.node(*node).unwrap().store.dump_metadata();
                let b = fanout.tier.node(*node).unwrap().store.dump_metadata();
                assert_eq!(a, b, "node {node:?} diverged at jobs={jobs}");
            }
        }
    }

    #[test]
    fn scale_in_without_migration_causes_misses() {
        let mut c = cluster();
        c.prefill((0..1000).map(KeyId), SimTime::ZERO);
        // Find keys owned by node 0.
        let owned: Vec<u64> = (0..1000)
            .filter(|&k| c.tier.node_for_key(KeyId(k)) == Some(NodeId(0)))
            .collect();
        assert!(!owned.is_empty());
        c.tier.immediate_scale_in(&[NodeId(0)]).unwrap();
        let out = c.handle(&req(1, &owned[..3.min(owned.len())]));
        assert_eq!(out.hits, 0, "keys formerly on node0 must now miss");
    }

    #[test]
    fn secondary_ring_promotes() {
        let mut c = cluster();
        c.prefill((0..2000).map(KeyId), SimTime::ZERO);
        let old_ring = c.tier.membership().ring().clone();
        // Retire node 0 from membership but keep it online (CacheScale).
        let victims: Vec<u64> = (0..2000)
            .filter(|&k| old_ring.node_for(KeyId(k)) == Some(NodeId(0)))
            .collect();
        c.tier.membership_remove_keep_online(&[NodeId(0)]).unwrap();
        c.arm_secondary(old_ring);
        let k = victims[0];
        let out = c.handle(&req(1, &[k]));
        assert_eq!(out.hits, 1, "secondary hit should count as hit");
        assert_eq!(c.promoted(), 1);
        // The item now lives on the primary owner.
        let new_owner = c.tier.node_for_key(KeyId(k)).unwrap();
        assert!(c.tier.node(new_owner).unwrap().store.contains(KeyId(k)));
        assert!(!c.tier.node(NodeId(0)).unwrap().store.contains(KeyId(k)));
    }

    #[test]
    fn disarm_secondary_stops_promotion() {
        let mut c = cluster();
        c.arm_secondary(c.tier.membership().ring().clone());
        assert!(c.secondary_armed());
        c.disarm_secondary();
        assert!(!c.secondary_armed());
    }

    #[test]
    fn empty_request_is_overhead_only() {
        let mut c = cluster();
        let out = c.handle(&req(0, &[]));
        assert_eq!(out.lookups, 0);
        assert_eq!(out.rt, c.tier.config().web_overhead);
    }

    /// A key owned by the given node, found by scanning key ids.
    fn key_on(c: &Cluster, node: NodeId) -> u64 {
        (0..10_000)
            .find(|&k| c.tier.node_for_key(KeyId(k)) == Some(node))
            .expect("some key hashes to the node")
    }

    #[test]
    fn crashed_node_lookup_pays_the_client_timeout() {
        let mut c = cluster();
        let k = key_on(&c, NodeId(0));
        c.tier.crash(NodeId(0)).unwrap();
        let (latency, hit) = c.lookup_and_fill(KeyId(k), SimTime::from_secs(1));
        assert!(!hit);
        assert!(
            latency >= c.tier.config().client_timeout,
            "dead-node lookup must cost at least the timeout, got {latency:?}"
        );
        assert_eq!(c.client_timeouts(), 1);
    }

    #[test]
    fn breaker_opens_and_failover_becomes_fast() {
        let mut c = cluster();
        let k = key_on(&c, NodeId(0));
        c.tier.crash(NodeId(0)).unwrap();
        let timeout = c.tier.config().client_timeout;
        let threshold = c.tier.config().breaker.threshold as u64;
        for i in 0..threshold {
            c.lookup_and_fill(KeyId(k), SimTime::from_secs(i));
        }
        assert_eq!(c.breaker_state(NodeId(0)), Some(BreakerState::Open));
        // Next lookup inside the cooldown: no timeout paid.
        let (latency, _) = c.lookup_and_fill(KeyId(k), SimTime::from_secs(threshold));
        assert!(latency < timeout, "open breaker must fail over fast");
        assert_eq!(c.fast_failovers(), 1);
        assert_eq!(c.client_timeouts(), threshold);
    }

    #[test]
    fn half_open_probe_closes_breaker_after_heal() {
        let mut c = cluster();
        let k = key_on(&c, NodeId(0));
        let cooldown = c.tier.config().breaker.cooldown;
        c.tier
            .node_mut(NodeId(0))
            .unwrap()
            .link
            .partition_until(SimTime::from_secs(2));
        for i in 0..3 {
            c.lookup_and_fill(KeyId(k), SimTime::from_millis(i));
        }
        assert_eq!(c.breaker_state(NodeId(0)), Some(BreakerState::Open));
        // Partition healed and cooldown elapsed: the probe succeeds.
        let probe_at = SimTime::from_secs(2) + cooldown;
        let (_, _) = c.lookup_and_fill(KeyId(k), probe_at);
        assert_eq!(c.breaker_state(NodeId(0)), Some(BreakerState::Closed));
        // Back to normal service afterwards.
        let (latency, _) = c.lookup_and_fill(KeyId(k), probe_at + SimTime::from_secs(1));
        assert!(latency < c.tier.config().client_timeout);
    }

    #[test]
    fn slow_link_stretches_hit_latency() {
        let mut c = cluster();
        c.prefill((0..1000).map(KeyId), SimTime::ZERO);
        let k = key_on(&c, NodeId(0));
        let (fast, hit) = c.lookup_and_fill(KeyId(k), SimTime::from_secs(1));
        assert!(hit);
        // Degrade the owner's NIC 50x: hits still land but cost more.
        c.tier
            .node_mut(NodeId(0))
            .unwrap()
            .link
            .apply_slowdown(50.0);
        let (slow, hit) = c.lookup_and_fill(KeyId(k), SimTime::from_secs(2));
        assert!(hit, "a slow link degrades, it does not kill");
        assert!(
            slow > fast * 5,
            "50x slowdown must be visible in hit latency ({fast:?} -> {slow:?})"
        );
    }
}
