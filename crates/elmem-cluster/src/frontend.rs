//! The web tier's serving path: multi-get, miss handling, response times.

use elmem_hash::HashRing;
use elmem_util::{DetRng, KeyId, NodeId, SimTime};
use elmem_workload::{Keyspace, WebRequest};

use crate::config::ClusterConfig;
use crate::db::DbModel;
use crate::tier::CacheTier;

/// Result of serving one web request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestOutcome {
    /// The request's response time (weighted average of per-item latencies
    /// plus web-tier overhead, per §V-A).
    pub rt: SimTime,
    /// When the last item fetch completed (used for timeline bucketing).
    pub completion: SimTime,
    /// Cache lookups that hit.
    pub hits: u64,
    /// Total cache lookups.
    pub lookups: u64,
}

impl RequestOutcome {
    /// Response time in fractional milliseconds.
    pub fn rt_ms(&self) -> f64 {
        self.rt.as_millis_f64()
    }
}

/// The full serving stack: cache tier + database + web-tier behaviour.
///
/// A `get` that hits is answered in cache latency; a miss goes to the
/// database (absorbing its queueing delay) and the fetched pair is inserted
/// into the responsible cache node, "possibly leading to evictions" (§V-A).
///
/// For the CacheScale comparator (§V-B4), a *secondary ring* can be armed:
/// misses on the primary retry on the secondary's node; secondary hits are
/// *promoted* (migrated) to the primary node.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The cache tier.
    pub tier: CacheTier,
    /// The database model.
    pub db: DbModel,
    keyspace: Keyspace,
    latency_rng: DetRng,
    secondary: Option<HashRing>,
    promoted: u64,
    secondary_hits: u64,
}

impl Cluster {
    /// Builds the stack from a config, a keyspace and an RNG.
    pub fn new(config: ClusterConfig, keyspace: Keyspace, rng: DetRng) -> Self {
        let db = DbModel::new(
            config.db_servers,
            config.db_service,
            config.db_shed_delay,
            rng.split("db"),
        );
        Cluster {
            tier: CacheTier::new(config),
            db,
            keyspace,
            latency_rng: rng.split("mc-latency"),
            secondary: None,
            promoted: 0,
            secondary_hits: 0,
        }
    }

    /// The keyspace driving value sizes.
    pub fn keyspace(&self) -> &Keyspace {
        &self.keyspace
    }

    /// Serves one web request at its arrival time.
    pub fn handle(&mut self, req: &WebRequest) -> RequestOutcome {
        let now = req.arrival;
        let mut hits = 0u64;
        let mut sum = SimTime::ZERO;
        let mut worst = SimTime::ZERO;
        for &key in &req.keys {
            let (latency, hit) = self.lookup_and_fill(key, now);
            if hit {
                hits += 1;
            }
            sum += latency;
            worst = worst.max(latency);
        }
        let overhead = self.tier.config().web_overhead;
        let mean = if req.keys.is_empty() {
            SimTime::ZERO
        } else {
            sum / req.keys.len() as u64
        };
        RequestOutcome {
            rt: overhead + mean,
            completion: now + overhead + worst,
            hits,
            lookups: req.keys.len() as u64,
        }
    }

    /// One cache lookup with fill-on-miss; returns (latency, hit).
    pub fn lookup_and_fill(&mut self, key: KeyId, now: SimTime) -> (SimTime, bool) {
        let primary = self.tier.node_for_key(key);
        if let Some(node_id) = primary {
            let hit = {
                let node = self.tier.node_mut(node_id).expect("member node exists");
                node.is_online() && node.store.get(key, now).is_some()
            };
            if hit {
                return (self.mc_latency(), true);
            }
            // CacheScale path: retry on the secondary (retiring) nodes.
            if let Some(promoted) = self.try_secondary(key, node_id, now) {
                return (promoted, true);
            }
            // Miss: fetch from the database and fill the cache. A shed
            // fetch (database overloaded) returns no data: the client eats
            // the timeout and nothing is cached.
            let fetch = self.db.fetch(now);
            if fetch.is_served() {
                let size = self.keyspace.value_size(key);
                let node = self.tier.node_mut(node_id).expect("member node exists");
                if node.is_online() {
                    let _ = node.store.set(key, size, now);
                }
            }
            (fetch.completion() - now + self.mc_latency(), false)
        } else {
            // No cache tier at all: straight to the database.
            (self.db.fetch(now).completion() - now, false)
        }
    }

    fn try_secondary(&mut self, key: KeyId, primary: NodeId, now: SimTime) -> Option<SimTime> {
        let ring = self.secondary.as_ref()?;
        let sec_node = ring.node_for(key)?;
        if sec_node == primary {
            return None;
        }
        let item = {
            let node = self.tier.node_mut(sec_node).ok()?;
            if !node.is_online() {
                return None;
            }
            node.store.get(key, now)?
        };
        self.secondary_hits += 1;
        // Promote: move the pair to the primary node (CacheScale migration).
        let moved = {
            let node = self.tier.node_mut(sec_node).expect("checked above");
            node.store.delete(key)
        };
        if moved {
            let node = self.tier.node_mut(primary).expect("member node exists");
            if node.is_online() && node.store.set(key, item.value_size, now).is_ok() {
                self.promoted += 1;
            }
        }
        // Two cache hops: primary miss + secondary hit.
        Some(self.mc_latency() + self.mc_latency())
    }

    /// Arms the CacheScale secondary ring (the pre-scaling membership whose
    /// retiring nodes act as a secondary cache).
    pub fn arm_secondary(&mut self, ring: HashRing) {
        self.secondary = Some(ring);
    }

    /// Disarms the secondary ring (CacheScale's discard step).
    pub fn disarm_secondary(&mut self) {
        self.secondary = None;
    }

    /// Whether a secondary ring is armed.
    pub fn secondary_armed(&self) -> bool {
        self.secondary.is_some()
    }

    /// Items promoted from secondary to primary (CacheScale metric).
    pub fn promoted(&self) -> u64 {
        self.promoted
    }

    /// Secondary-cache hits (CacheScale metric).
    pub fn secondary_hits(&self) -> u64 {
        self.secondary_hits
    }

    /// Pre-fills caches by directly setting keys on their current owners
    /// (used to start experiments warm, like the paper's steady state).
    pub fn prefill(&mut self, keys: impl Iterator<Item = KeyId>, start: SimTime) {
        let mut t = start;
        for key in keys {
            if let Some(node_id) = self.tier.node_for_key(key) {
                let size = self.keyspace.value_size(key);
                let node = self.tier.node_mut(node_id).expect("member node exists");
                if node.is_online() {
                    let _ = node.store.set(key, size, t);
                }
                t += SimTime::from_nanos(1);
            }
        }
    }

    fn mc_latency(&mut self) -> SimTime {
        // Exponential jitter around the configured mean.
        let mean = self.tier.config().mc_latency.as_secs_f64();
        SimTime::from_secs_f64(self.latency_rng.next_exp(1.0 / mean))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;

    fn cluster() -> Cluster {
        Cluster::new(
            ClusterConfig::small_test(),
            Keyspace::new(10_000, 0),
            DetRng::seed(1),
        )
    }

    fn req(arrival_ms: u64, keys: &[u64]) -> WebRequest {
        WebRequest {
            arrival: SimTime::from_millis(arrival_ms),
            keys: keys.iter().map(|&k| KeyId(k)).collect(),
        }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cluster();
        let first = c.handle(&req(0, &[1]));
        assert_eq!(first.hits, 0);
        assert_eq!(first.lookups, 1);
        let second = c.handle(&req(100, &[1]));
        assert_eq!(second.hits, 1);
        // Hits are much faster than DB misses.
        assert!(second.rt < first.rt);
    }

    #[test]
    fn rt_includes_web_overhead() {
        let mut c = cluster();
        c.prefill((0..10).map(KeyId), SimTime::ZERO);
        let out = c.handle(&req(10, &[1, 2, 3]));
        assert!(out.rt >= c.tier.config().web_overhead);
        assert_eq!(out.hits, 3);
    }

    #[test]
    fn miss_fills_cache_on_owner() {
        let mut c = cluster();
        let key = KeyId(77);
        let owner = c.tier.node_for_key(key).unwrap();
        c.handle(&req(0, &[77]));
        assert!(c.tier.node(owner).unwrap().store.contains(key));
    }

    #[test]
    fn prefill_makes_requests_hit() {
        let mut c = cluster();
        c.prefill((0..1000).map(KeyId), SimTime::ZERO);
        let out = c.handle(&req(1, &[5, 500, 999]));
        assert_eq!(out.hits, 3);
    }

    #[test]
    fn scale_in_without_migration_causes_misses() {
        let mut c = cluster();
        c.prefill((0..1000).map(KeyId), SimTime::ZERO);
        // Find keys owned by node 0.
        let owned: Vec<u64> = (0..1000)
            .filter(|&k| c.tier.node_for_key(KeyId(k)) == Some(NodeId(0)))
            .collect();
        assert!(!owned.is_empty());
        c.tier.immediate_scale_in(&[NodeId(0)]).unwrap();
        let out = c.handle(&req(1, &owned[..3.min(owned.len())]));
        assert_eq!(out.hits, 0, "keys formerly on node0 must now miss");
    }

    #[test]
    fn secondary_ring_promotes() {
        let mut c = cluster();
        c.prefill((0..2000).map(KeyId), SimTime::ZERO);
        let old_ring = c.tier.membership().ring().clone();
        // Retire node 0 from membership but keep it online (CacheScale).
        let victims: Vec<u64> = (0..2000)
            .filter(|&k| old_ring.node_for(KeyId(k)) == Some(NodeId(0)))
            .collect();
        c.tier.membership_remove_keep_online(&[NodeId(0)]).unwrap();
        c.arm_secondary(old_ring);
        let k = victims[0];
        let out = c.handle(&req(1, &[k]));
        assert_eq!(out.hits, 1, "secondary hit should count as hit");
        assert_eq!(c.promoted(), 1);
        // The item now lives on the primary owner.
        let new_owner = c.tier.node_for_key(KeyId(k)).unwrap();
        assert!(c.tier.node(new_owner).unwrap().store.contains(KeyId(k)));
        assert!(!c.tier.node(NodeId(0)).unwrap().store.contains(KeyId(k)));
    }

    #[test]
    fn disarm_secondary_stops_promotion() {
        let mut c = cluster();
        c.arm_secondary(c.tier.membership().ring().clone());
        assert!(c.secondary_armed());
        c.disarm_secondary();
        assert!(!c.secondary_armed());
    }

    #[test]
    fn empty_request_is_overhead_only() {
        let mut c = cluster();
        let out = c.handle(&req(0, &[]));
        assert_eq!(out.lookups, 0);
        assert_eq!(out.rt, c.tier.config().web_overhead);
    }
}
