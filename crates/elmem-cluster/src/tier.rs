//! The Memcached tier: nodes plus the client-visible membership.

use elmem_hash::Membership;
use elmem_store::StoreConfig;
use elmem_util::{ByteSize, ElmemError, NodeId, NodeMap, SimTime};

use crate::config::ClusterConfig;
use crate::node::CacheNode;

/// The cache tier: the node fleet and the membership the web servers'
/// client library hashes against.
///
/// Nodes can exist *outside* the membership in two situations that the
/// ElMem control plane creates deliberately (§III-A):
///
/// * a **retiring** node stays in the membership (still serving) while its
///   hot data migrates, and is powered off only after the membership flip;
/// * a **new** node is provisioned and filled by migration *before* being
///   added to the membership.
#[derive(Debug, Clone)]
pub struct CacheTier {
    // Id-indexed: the serving path resolves the owner node on every
    // lookup, so this must be a slot read, not a tree walk.
    nodes: NodeMap<CacheNode>,
    membership: Membership,
    config: ClusterConfig,
}

impl CacheTier {
    /// Boots `config.initial_nodes` nodes, all in the membership.
    pub fn new(config: ClusterConfig) -> Self {
        let ids: Vec<NodeId> = (0..config.initial_nodes).map(NodeId).collect();
        let nodes = ids
            .iter()
            .map(|&id| {
                (
                    id,
                    CacheNode::new(
                        id,
                        StoreConfig {
                            memory: config.node_memory,
                            classes: config.slab_classes.clone(),
                            shards: config.store_shards,
                        },
                        config.nic_bandwidth,
                        config.nic_latency,
                    ),
                )
            })
            .collect();
        CacheTier {
            nodes,
            membership: Membership::new(ids.into_iter(), config.vnodes),
            config,
        }
    }

    /// The client-visible membership.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Ids of all *online* nodes (member or not).
    pub fn online_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .values()
            .filter(|n| n.is_online())
            .map(|n| n.id())
            .collect()
    }

    /// Total memory across member nodes.
    pub fn member_memory(&self) -> ByteSize {
        self.config.node_memory * self.membership.len() as u64
    }

    /// Immutable node access.
    ///
    /// # Errors
    ///
    /// [`ElmemError::UnknownNode`] for an unknown id.
    #[inline]
    pub fn node(&self, id: NodeId) -> Result<&CacheNode, ElmemError> {
        self.nodes.get(id).ok_or(ElmemError::UnknownNode(id.0))
    }

    /// Mutable node access.
    ///
    /// # Errors
    ///
    /// [`ElmemError::UnknownNode`] for an unknown id.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut CacheNode, ElmemError> {
        self.nodes.get_mut(id).ok_or(ElmemError::UnknownNode(id.0))
    }

    /// Two nodes mutably at once (migration source and destination).
    ///
    /// # Errors
    ///
    /// [`ElmemError::UnknownNode`] if either id is unknown;
    /// [`ElmemError::InvalidConfig`] if `a == b`.
    pub fn node_pair_mut(
        &mut self,
        a: NodeId,
        b: NodeId,
    ) -> Result<(&mut CacheNode, &mut CacheNode), ElmemError> {
        if a == b {
            return Err(ElmemError::InvalidConfig(format!(
                "node pair must be distinct, got {a} twice"
            )));
        }
        if !self.nodes.contains(a) {
            return Err(ElmemError::UnknownNode(a.0));
        }
        if !self.nodes.contains(b) {
            return Err(ElmemError::UnknownNode(b.0));
        }
        Ok(self
            .nodes
            .get_pair_mut(a, b)
            .expect("checked membership above"))
    }

    /// Provisions `count` fresh nodes *outside* the membership (scale-out
    /// step 1); returns their ids.
    pub fn provision_nodes(&mut self, count: usize) -> Vec<NodeId> {
        let start = self.nodes.keys().map(|n| n.0 + 1).max().unwrap_or(0).max(
            self.membership
                .members()
                .iter()
                .map(|n| n.0 + 1)
                .max()
                .unwrap_or(0),
        );
        let ids: Vec<NodeId> = (0..count as u32).map(|i| NodeId(start + i)).collect();
        for &id in &ids {
            self.nodes.insert(
                id,
                CacheNode::new(
                    id,
                    StoreConfig {
                        memory: self.config.node_memory,
                        classes: self.config.slab_classes.clone(),
                        shards: self.config.store_shards,
                    },
                    self.config.nic_bandwidth,
                    self.config.nic_latency,
                ),
            );
        }
        ids
    }

    /// Flips membership to include `ids` (scale-out commit: clients start
    /// hashing to the new nodes).
    ///
    /// # Errors
    ///
    /// Propagates membership errors (already a member / unknown node).
    pub fn commit_add(&mut self, ids: &[NodeId]) -> Result<(), ElmemError> {
        for id in ids {
            if !self.nodes.contains(*id) {
                return Err(ElmemError::UnknownNode(id.0));
            }
        }
        self.membership.add(ids)
    }

    /// Flips membership to exclude `ids` and powers them off (scale-in
    /// commit).
    ///
    /// # Errors
    ///
    /// Propagates membership errors (unknown node / emptying the tier).
    pub fn commit_remove(&mut self, ids: &[NodeId]) -> Result<(), ElmemError> {
        self.membership.remove(ids)?;
        for id in ids {
            if let Some(n) = self.nodes.get_mut(*id) {
                n.power_off();
            }
        }
        Ok(())
    }

    /// Baseline-style *immediate* scale-in: drop from membership and power
    /// off with no migration (the paper's `baseline` comparator).
    ///
    /// # Errors
    ///
    /// Propagates membership errors.
    pub fn immediate_scale_in(&mut self, ids: &[NodeId]) -> Result<(), ElmemError> {
        self.commit_remove(ids)
    }

    /// Removes nodes from the membership but keeps them powered on —
    /// CacheScale's "secondary cache" arrangement, where retiring nodes
    /// keep serving retried misses until they are discarded (§V-B4).
    ///
    /// # Errors
    ///
    /// Propagates membership errors.
    pub fn membership_remove_keep_online(&mut self, ids: &[NodeId]) -> Result<(), ElmemError> {
        self.membership.remove(ids)
    }

    /// Powers off nodes without touching the membership (CacheScale's
    /// final discard of the secondary cache).
    pub fn power_off(&mut self, ids: &[NodeId]) {
        for id in ids {
            if let Some(n) = self.nodes.get_mut(*id) {
                n.power_off();
            }
        }
    }

    /// Crashes a node (fault injection): contents lost, unreachable.
    /// The node *stays in the membership* until the control plane evicts
    /// it — clients keep hashing to it and observe misses, exactly like a
    /// real Memcached fleet with no automatic failover. Idempotent.
    ///
    /// # Errors
    ///
    /// [`ElmemError::UnknownNode`] for an unknown id.
    pub fn crash(&mut self, id: NodeId) -> Result<(), ElmemError> {
        self.node_mut(id)?.crash();
        Ok(())
    }

    /// Ids of crashed nodes (member or not), ascending.
    pub fn crashed_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .values()
            .filter(|n| n.is_crashed())
            .map(|n| n.id())
            .collect()
    }

    /// Removes every crashed node from the membership (the control plane's
    /// failure response), returning the ids actually evicted. Idempotent;
    /// refuses to empty the membership — if every member has crashed, the
    /// last one is kept so clients still have a (missing) place to hash to.
    pub fn evict_crashed(&mut self) -> Vec<NodeId> {
        let mut evictable: Vec<NodeId> = self
            .membership
            .members()
            .iter()
            .copied()
            .filter(|&id| self.nodes.get(id).is_some_and(|n| n.is_crashed()))
            .collect();
        let members = self.membership.len();
        if evictable.len() >= members {
            evictable.truncate(members.saturating_sub(1));
        }
        if !evictable.is_empty() {
            let _ = self.membership.remove(&evictable);
        }
        evictable
    }

    /// Resolves which member node serves `key` at the current membership.
    pub fn node_for_key(&self, key: elmem_util::KeyId) -> Option<NodeId> {
        self.membership.ring().node_for(key)
    }

    /// The tier configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Sum of items across online nodes.
    pub fn total_items(&self) -> u64 {
        self.nodes
            .values()
            .filter(|n| n.is_online())
            .map(|n| n.store.len())
            .sum()
    }

    /// Iterates over all nodes.
    pub fn iter_nodes(&self) -> impl Iterator<Item = &CacheNode> {
        self.nodes.values()
    }
}

/// Convenience: drive a store set with the tier's timestamp domain.
pub fn warm_node(node: &mut CacheNode, key: elmem_util::KeyId, size: u32, now: SimTime) {
    let _ = node.store.set(key, size, now);
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmem_util::KeyId;

    fn tier() -> CacheTier {
        CacheTier::new(ClusterConfig::small_test())
    }

    #[test]
    fn boots_initial_membership() {
        let t = tier();
        assert_eq!(t.membership().len(), 4);
        assert_eq!(t.online_nodes().len(), 4);
    }

    #[test]
    fn provision_outside_membership() {
        let mut t = tier();
        let ids = t.provision_nodes(2);
        assert_eq!(ids, vec![NodeId(4), NodeId(5)]);
        assert_eq!(t.membership().len(), 4); // unchanged until commit
        assert_eq!(t.online_nodes().len(), 6);
        t.commit_add(&ids).unwrap();
        assert_eq!(t.membership().len(), 6);
    }

    #[test]
    fn commit_remove_powers_off() {
        let mut t = tier();
        t.node_mut(NodeId(0))
            .unwrap()
            .store
            .set(KeyId(1), 10, SimTime::from_secs(1))
            .unwrap();
        t.commit_remove(&[NodeId(0)]).unwrap();
        assert_eq!(t.membership().len(), 3);
        assert!(!t.node(NodeId(0)).unwrap().is_online());
        assert_eq!(t.node(NodeId(0)).unwrap().store.len(), 0);
    }

    #[test]
    fn node_pair_mut_distinct() {
        let mut t = tier();
        let (a, b) = t.node_pair_mut(NodeId(0), NodeId(1)).unwrap();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn node_pair_mut_same_id_rejected() {
        let mut t = tier();
        assert!(t.node_pair_mut(NodeId(0), NodeId(0)).is_err());
    }

    #[test]
    fn node_pair_mut_unknown_rejected() {
        let mut t = tier();
        assert!(matches!(
            t.node_pair_mut(NodeId(0), NodeId(99)),
            Err(ElmemError::UnknownNode(99))
        ));
    }

    #[test]
    fn key_routing_stays_in_membership() {
        let t = tier();
        for k in 0..100 {
            let n = t.node_for_key(KeyId(k)).unwrap();
            assert!(t.membership().members().contains(&n));
        }
    }

    #[test]
    fn commit_add_unknown_node_rejected() {
        let mut t = tier();
        assert!(t.commit_add(&[NodeId(42)]).is_err());
    }

    #[test]
    fn crash_keeps_membership_until_eviction() {
        let mut t = tier();
        t.crash(NodeId(1)).unwrap();
        assert!(t.node(NodeId(1)).unwrap().is_crashed());
        assert_eq!(t.membership().len(), 4, "crash does not flip membership");
        assert_eq!(t.crashed_nodes(), vec![NodeId(1)]);
        let evicted = t.evict_crashed();
        assert_eq!(evicted, vec![NodeId(1)]);
        assert_eq!(t.membership().len(), 3);
        // Idempotent: nothing left to evict.
        assert!(t.evict_crashed().is_empty());
    }

    #[test]
    fn evict_crashed_never_empties_membership() {
        let mut t = tier();
        for id in 0..4 {
            t.crash(NodeId(id)).unwrap();
        }
        let evicted = t.evict_crashed();
        assert_eq!(evicted.len(), 3);
        assert_eq!(t.membership().len(), 1);
    }

    #[test]
    fn crash_unknown_node_rejected() {
        let mut t = tier();
        assert!(matches!(
            t.crash(NodeId(99)),
            Err(ElmemError::UnknownNode(99))
        ));
    }
}
