//! Serving-path behavior under database saturation: shed fetches return no
//! data (no cache fill), latencies stay bounded by the admission control,
//! and the cache warms at roughly the database's service rate.

use elmem_cluster::{Cluster, ClusterConfig};
use elmem_store::SizeClasses;
use elmem_util::{ByteSize, DetRng, KeyId, SimTime};
use elmem_workload::{GeneralizedPareto, Keyspace, WebRequest};

fn tight_db_cluster() -> Cluster {
    let mut cfg = ClusterConfig::small_test();
    cfg.db_servers = 1;
    cfg.db_service = SimTime::from_millis(10); // r_DB = 100/s
    cfg.db_shed_delay = SimTime::from_millis(500);
    cfg.slab_classes = SizeClasses::new(96, 4.0, ByteSize::PAGE.as_u64());
    Cluster::new(
        cfg,
        Keyspace::with_distribution(100_000, 5, GeneralizedPareto::facebook_etc(), 4_000),
        DetRng::seed(5),
    )
}

#[test]
fn miss_storm_latency_is_bounded_by_admission_control() {
    let mut c = tight_db_cluster();
    // 2,000 cold misses in one second against a 100/s database.
    let mut worst_ms = 0.0f64;
    for i in 0..2000u64 {
        let req = WebRequest {
            arrival: SimTime::from_micros(i * 500),
            keys: vec![KeyId(i)],
        };
        let out = c.handle(&req);
        worst_ms = worst_ms.max(out.rt_ms());
    }
    // Admission control caps the tail near the shed delay (+ overheads),
    // instead of letting the queue diverge.
    assert!(
        worst_ms >= 400.0,
        "storm should hit the shed bound: {worst_ms}"
    );
    assert!(worst_ms < 700.0, "latency must stay bounded: {worst_ms}");
    assert!(c.db.shed() > 0, "the database must have shed load");
}

#[test]
fn shed_fetches_do_not_fill_the_cache() {
    let mut c = tight_db_cluster();
    for i in 0..2000u64 {
        let req = WebRequest {
            arrival: SimTime::from_micros(i * 500),
            keys: vec![KeyId(i)],
        };
        c.handle(&req);
    }
    // Only served fetches (≈ r_DB × 1 s plus the shed-free warmup) filled.
    let cached = c.tier.total_items();
    let served = c.db.fetches() - c.db.shed();
    assert_eq!(cached, served, "every served fetch fills exactly one item");
    assert!(cached < 600, "fills are throttled to the DB rate: {cached}");
}

#[test]
fn recovery_after_storm_is_rate_limited() {
    let mut c = tight_db_cluster();
    // Same 200 keys requested over and over: the hot set re-fills at the
    // database's pace, then everything hits.
    let mut first_full_hit_second = None;
    for s in 0..30u64 {
        let mut hits = 0;
        for i in 0..200u64 {
            let req = WebRequest {
                arrival: SimTime::from_secs(s) + SimTime::from_millis(i * 5),
                keys: vec![KeyId(i)],
            };
            let out = c.handle(&req);
            hits += out.hits;
        }
        if hits == 200 && first_full_hit_second.is_none() {
            first_full_hit_second = Some(s);
        }
    }
    let warm_at = first_full_hit_second.expect("should eventually warm");
    // 200 fills at 100/s plus shedding during the first bursts: warm within
    // a handful of seconds, but never instantly.
    assert!((1..10).contains(&warm_at), "warmed at second {warm_at}");
}

#[test]
fn request_outcome_accounts_every_lookup() {
    let mut c = tight_db_cluster();
    c.prefill((0..100).map(KeyId), SimTime::ZERO);
    let req = WebRequest {
        arrival: SimTime::from_millis(10),
        keys: vec![KeyId(1), KeyId(2), KeyId(99_999), KeyId(3)],
    };
    let out = c.handle(&req);
    assert_eq!(out.lookups, 4);
    assert_eq!(out.hits, 3);
    assert!(out.completion >= req.arrival + c.tier.config().web_overhead);
    assert!(out.rt_ms() > 0.0);
}
