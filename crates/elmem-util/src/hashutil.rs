//! Stable, seedable 64-bit hashing.
//!
//! Consistent hashing and key→node placement must be *stable across runs and
//! platforms* (std's `DefaultHasher` is explicitly not), so we use our own
//! small implementations: a 64-bit FNV-1a for short byte strings and a
//! SplitMix-style integer finalizer for numeric ids.

/// 64-bit FNV-1a hash of a byte string.
///
/// # Example
///
/// ```
/// use elmem_util::hashutil::fnv1a64;
/// assert_eq!(fnv1a64(b"abc"), fnv1a64(b"abc"));
/// assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
/// ```
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Mixes a 64-bit integer into a well-distributed 64-bit hash
/// (SplitMix64 finalizer).
///
/// # Example
///
/// ```
/// use elmem_util::hashutil::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(7), mix64(7));
/// ```
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Combines two hashes (e.g. a key hash and a seed) into one.
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    mix64(a ^ b.rotate_left(32))
}

/// A [`std::hash::Hasher`] for integer keys, built on [`mix64`].
///
/// Std's default `HashMap` hasher (SipHash with a random per-process key)
/// costs tens of cycles per lookup and varies across runs; for hot maps
/// keyed by `KeyId`/`NodeId` — plain newtypes over `u64`/`u32` that feed
/// the hasher one integer write — the SplitMix64 finalizer is both several
/// times cheaper and *deterministic across runs and platforms*, matching
/// the rest of this module. Not DoS-resistant, which is fine: keys come
/// from the workload generator, not an adversary.
///
/// # Example
///
/// ```
/// use elmem_util::hashutil::FastIntMap;
/// let mut m: FastIntMap<u64, &str> = FastIntMap::default();
/// m.insert(7, "seven");
/// assert_eq!(m.get(&7), Some(&"seven"));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct FastIntHasher {
    state: u64,
}

impl std::hash::Hasher for FastIntHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    /// Fallback for non-integer writes (tuple keys, byte strings): FNV-1a
    /// folded into the running state, so compound keys still hash soundly.
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.state = mix64(self.state ^ fnv1a64(bytes));
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = mix64(self.state ^ i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`FastIntHasher`]: stateless, so every map starts
/// from the same (deterministic) hash function.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastIntBuildHasher;

impl std::hash::BuildHasher for FastIntBuildHasher {
    type Hasher = FastIntHasher;

    #[inline]
    fn build_hasher(&self) -> FastIntHasher {
        FastIntHasher::default()
    }
}

/// A `HashMap` keyed by small integer ids, using [`FastIntHasher`].
pub type FastIntMap<K, V> = std::collections::HashMap<K, V, FastIntBuildHasher>;

/// A `HashSet` of small integer ids, using [`FastIntHasher`].
pub type FastIntSet<K> = std::collections::HashSet<K, FastIntBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fnv_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
    }

    #[test]
    fn fnv_distinguishes_prefixes() {
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"aa"));
    }

    #[test]
    fn mix64_is_injective_on_small_range() {
        let set: HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn mix64_distributes_low_bits() {
        // Count low-bit balance over sequential inputs.
        let ones = (0..10_000u64).filter(|&i| mix64(i) & 1 == 1).count();
        assert!((4_500..5_500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn combine_depends_on_both_inputs() {
        assert_ne!(combine(1, 2), combine(1, 3));
        assert_ne!(combine(1, 2), combine(2, 2));
        assert_ne!(combine(1, 2), combine(2, 1));
    }

    #[test]
    fn fast_map_matches_default_hashmap_semantics() {
        // Drive a FastIntMap and a std-hasher HashMap through an identical
        // deterministic insert/remove/lookup schedule; contents must agree
        // at every step. Keys collide on purpose (mod 64).
        let mut fast: FastIntMap<u64, u64> = FastIntMap::default();
        let mut base: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut x: u64 = 0x243F6A8885A308D3;
        for step in 0..10_000u64 {
            x = mix64(x ^ step);
            let key = x % 64;
            match x % 3 {
                0 => {
                    assert_eq!(fast.insert(key, step), base.insert(key, step));
                }
                1 => {
                    assert_eq!(fast.remove(&key), base.remove(&key));
                }
                _ => {
                    assert_eq!(fast.get(&key), base.get(&key));
                }
            }
            assert_eq!(fast.len(), base.len());
        }
        let mut f: Vec<_> = fast.into_iter().collect();
        let mut b: Vec<_> = base.into_iter().collect();
        f.sort_unstable();
        b.sort_unstable();
        assert_eq!(f, b);
    }

    #[test]
    fn fast_hasher_distinguishes_sequential_ids() {
        use std::hash::BuildHasher;
        let bh = FastIntBuildHasher;
        let set: HashSet<u64> = (0..100_000u64).map(|k| bh.hash_one(k)).collect();
        assert_eq!(set.len(), 100_000);
    }

    #[test]
    fn fast_hasher_is_deterministic_across_builders() {
        use std::hash::BuildHasher;
        let hash_of = |k: u32| FastIntBuildHasher.hash_one(k);
        // Two independently built hashers agree (no per-instance state),
        // so map placement is reproducible run to run.
        for k in [0u32, 1, 7, 0xFFFF_FFFF] {
            assert_eq!(hash_of(k), hash_of(k));
        }
    }

    #[test]
    fn fast_hasher_byte_writes_are_sound() {
        use std::hash::Hasher;
        let mut a = FastIntHasher::default();
        let mut b = FastIntHasher::default();
        a.write(b"abc");
        b.write(b"abd");
        assert_ne!(a.finish(), b.finish());
    }
}
