//! Stable, seedable 64-bit hashing.
//!
//! Consistent hashing and key→node placement must be *stable across runs and
//! platforms* (std's `DefaultHasher` is explicitly not), so we use our own
//! small implementations: a 64-bit FNV-1a for short byte strings and a
//! SplitMix-style integer finalizer for numeric ids.

/// 64-bit FNV-1a hash of a byte string.
///
/// # Example
///
/// ```
/// use elmem_util::hashutil::fnv1a64;
/// assert_eq!(fnv1a64(b"abc"), fnv1a64(b"abc"));
/// assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
/// ```
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Mixes a 64-bit integer into a well-distributed 64-bit hash
/// (SplitMix64 finalizer).
///
/// # Example
///
/// ```
/// use elmem_util::hashutil::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(7), mix64(7));
/// ```
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Combines two hashes (e.g. a key hash and a seed) into one.
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    mix64(a ^ b.rotate_left(32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fnv_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
    }

    #[test]
    fn fnv_distinguishes_prefixes() {
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"aa"));
    }

    #[test]
    fn mix64_is_injective_on_small_range() {
        let set: HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn mix64_distributes_low_bits() {
        // Count low-bit balance over sequential inputs.
        let ones = (0..10_000u64).filter(|&i| mix64(i) & 1 == 1).count();
        assert!((4_500..5_500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn combine_depends_on_both_inputs() {
        assert_ne!(combine(1, 2), combine(1, 3));
        assert_ne!(combine(1, 2), combine(2, 2));
        assert_ne!(combine(1, 2), combine(2, 1));
    }
}
