//! Statistics utilities: percentiles, online moments, and per-second
//! timelines of tail response times (how the paper reports Fig. 2/6/8).

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Computes the `q`-quantile (0.0–1.0) of a set of samples using the
/// nearest-rank method on a sorted copy.
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or NaN.
///
/// # Example
///
/// ```
/// use elmem_util::stats::quantile;
/// let xs = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
/// assert_eq!(quantile(&xs, 0.95), Some(10.0));
/// assert_eq!(quantile(&xs, 0.5), Some(5.0));
/// ```
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Streaming mean/variance (Welford's algorithm).
///
/// # Example
///
/// ```
/// use elmem_util::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 6.0] { s.push(x); }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// One point of a reported timeline: a one-second bucket with its hit rate
/// and tail response time, matching the per-second plots of Figs. 2, 6, 8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Bucket start, whole seconds since simulation start.
    pub second: u64,
    /// Cache hit rate over the bucket (0–1); `NaN`-free: 1.0 when idle.
    pub hit_rate: f64,
    /// 95th-percentile response time over the bucket, in milliseconds.
    pub p95_ms: f64,
    /// Mean response time over the bucket, in milliseconds.
    pub mean_ms: f64,
    /// Number of web requests completed in the bucket.
    pub requests: u64,
}

/// Accumulates per-second hit-rate / response-time buckets.
///
/// The paper reports "the hit rate and the 95%ile response time, for each
/// second" (§V-B1); this type is that measurement pipeline.
///
/// # Example
///
/// ```
/// use elmem_util::stats::TimelineRecorder;
/// use elmem_util::SimTime;
///
/// let mut rec = TimelineRecorder::new();
/// rec.record_request(SimTime::from_millis(100), 5.0, 3, 3);
/// rec.record_request(SimTime::from_millis(1200), 50.0, 0, 3);
/// let tl = rec.finish();
/// assert_eq!(tl.len(), 2);
/// assert_eq!(tl[0].hit_rate, 1.0);
/// assert_eq!(tl[1].hit_rate, 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimelineRecorder {
    buckets: Vec<Bucket>,
}

#[derive(Debug, Clone, Default)]
struct Bucket {
    second: u64,
    rts_ms: Vec<f64>,
    hits: u64,
    lookups: u64,
}

impl TimelineRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed web request.
    ///
    /// * `at` — completion time;
    /// * `rt_ms` — the request's (weighted) response time in milliseconds;
    /// * `hits` / `lookups` — cache lookups that hit vs. total, for the
    ///   request's multi-get batch.
    pub fn record_request(&mut self, at: SimTime, rt_ms: f64, hits: u64, lookups: u64) {
        let second = at.as_secs();
        match self.buckets.last_mut() {
            Some(b) if b.second == second => {
                b.rts_ms.push(rt_ms);
                b.hits += hits;
                b.lookups += lookups;
            }
            Some(b) if b.second > second => {
                // Out-of-order completion into an earlier bucket: find it.
                if let Some(b) = self.buckets.iter_mut().rev().find(|b| b.second == second) {
                    b.rts_ms.push(rt_ms);
                    b.hits += hits;
                    b.lookups += lookups;
                }
            }
            _ => {
                self.buckets.push(Bucket {
                    second,
                    rts_ms: vec![rt_ms],
                    hits,
                    lookups,
                });
            }
        }
    }

    /// Finalizes into a dense timeline (one point per bucket that saw
    /// traffic, in time order).
    pub fn finish(self) -> Vec<TimelinePoint> {
        let mut points: Vec<TimelinePoint> = self
            .buckets
            .into_iter()
            .map(|b| {
                let p95 = quantile(&b.rts_ms, 0.95).unwrap_or(0.0);
                let mean = if b.rts_ms.is_empty() {
                    0.0
                } else {
                    b.rts_ms.iter().sum::<f64>() / b.rts_ms.len() as f64
                };
                TimelinePoint {
                    second: b.second,
                    hit_rate: if b.lookups == 0 {
                        1.0
                    } else {
                        b.hits as f64 / b.lookups as f64
                    },
                    p95_ms: p95,
                    mean_ms: mean,
                    requests: b.rts_ms.len() as u64,
                }
            })
            .collect();
        points.sort_by_key(|p| p.second);
        points
    }
}

/// Summary of post-scaling degradation for a timeline, relative to a scaling
/// instant: the two quantities the paper headlines (peak RT and restoration
/// time) plus the average post-scaling p95.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationSummary {
    /// Highest per-second p95 at/after the scaling action, ms.
    pub peak_p95_ms: f64,
    /// Average per-second p95 at/after the scaling action, ms
    /// (the paper's "average of the 1-second 95%ile RTs after the mark").
    pub mean_p95_ms: f64,
    /// Seconds from the scaling action until p95 returns below
    /// `restore_threshold_ms` and stays below it for at least
    /// [`RESTORE_SUSTAIN_SECS`] consecutive observed seconds (or to the end
    /// of the timeline); `None` if never restored.
    pub restoration_secs: Option<u64>,
    /// Pre-scaling average p95, ms (for reference).
    pub pre_p95_ms: f64,
}

/// How long the p95 must stay below the threshold for the system to count
/// as restored (isolated later spikes don't reset the clock).
pub const RESTORE_SUSTAIN_SECS: usize = 120;

/// Computes a [`DegradationSummary`] from a timeline and the second at which
/// the scaling action took effect.
///
/// `restore_threshold_ms` defines "stable": restoration is the first
/// post-scaling second from which the p95 stays below the threshold for
/// [`RESTORE_SUSTAIN_SECS`] consecutive observed seconds (or through the
/// end of the timeline).
pub fn degradation_summary(
    timeline: &[TimelinePoint],
    scale_second: u64,
    restore_threshold_ms: f64,
) -> DegradationSummary {
    let pre: Vec<f64> = timeline
        .iter()
        .filter(|p| p.second < scale_second && p.requests > 0)
        .map(|p| p.p95_ms)
        .collect();
    let post: Vec<&TimelinePoint> = timeline
        .iter()
        .filter(|p| p.second >= scale_second && p.requests > 0)
        .collect();
    let peak = post.iter().map(|p| p.p95_ms).fold(0.0, f64::max);
    let mean = if post.is_empty() {
        0.0
    } else {
        post.iter().map(|p| p.p95_ms).sum::<f64>() / post.len() as f64
    };
    // Restoration: the first point from which the p95 stays under the
    // threshold for RESTORE_SUSTAIN_SECS consecutive observed points (or
    // to the end of the timeline).
    let mut restoration = None;
    let mut run_start: Option<usize> = None;
    for (i, p) in post.iter().enumerate() {
        if p.p95_ms <= restore_threshold_ms {
            let start = *run_start.get_or_insert(i);
            if i - start + 1 >= RESTORE_SUSTAIN_SECS || i + 1 == post.len() {
                restoration = Some(if start == 0 {
                    0
                } else {
                    post[start].second - scale_second
                });
                break;
            }
        } else {
            run_start = None;
        }
    }
    DegradationSummary {
        peak_p95_ms: peak,
        mean_p95_ms: mean,
        restoration_secs: restoration,
        pre_p95_ms: if pre.is_empty() {
            0.0
        } else {
            pre.iter().sum::<f64>() / pre.len() as f64
        },
    }
}

/// Seconds from `crash_second` until the per-second hit rate climbs back to
/// `target` and stays there for `sustain_secs` consecutive observed seconds
/// (or through the end of the timeline); `None` if it never recovers.
///
/// The complement of [`degradation_summary`] for failure experiments: a
/// crash costs *capacity* (misses), not queueing, so recovery is measured on
/// the hit rate rather than the p95.
pub fn hit_rate_recovery_secs(
    timeline: &[TimelinePoint],
    crash_second: u64,
    target: f64,
    sustain_secs: usize,
) -> Option<u64> {
    let post: Vec<&TimelinePoint> = timeline
        .iter()
        .filter(|p| p.second >= crash_second && p.requests > 0)
        .collect();
    let mut run_start: Option<usize> = None;
    for (i, p) in post.iter().enumerate() {
        if p.hit_rate >= target {
            let start = *run_start.get_or_insert(i);
            if i - start + 1 >= sustain_secs || i + 1 == post.len() {
                return Some(post[start].second - crash_second);
            }
        } else {
            run_start = None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&xs, 0.95), Some(95.0));
        assert_eq!(quantile(&xs, 1.0), Some(100.0));
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
    }

    #[test]
    fn quantile_empty_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_single_sample() {
        assert_eq!(quantile(&[3.5], 0.95), Some(3.5));
    }

    #[test]
    #[should_panic]
    fn quantile_out_of_range_panics() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn online_stats_moments() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    fn tl(hit: impl Fn(u64) -> f64) -> Vec<TimelinePoint> {
        (0..100)
            .map(|s| TimelinePoint {
                second: s,
                hit_rate: hit(s),
                p95_ms: 1.0,
                mean_ms: 1.0,
                requests: 10,
            })
            .collect()
    }

    #[test]
    fn hit_rate_recovery_finds_the_sustained_return() {
        // Crash at 20 drops the hit rate; it recovers at 50 with one
        // transient dip at 55 that must reset the clock.
        let t = tl(|s| match s {
            0..=19 => 0.95,
            20..=49 => 0.60,
            55 => 0.60,
            _ => 0.95,
        });
        assert_eq!(hit_rate_recovery_secs(&t, 20, 0.9, 10), Some(36));
        // A short sustain window accepts the first return at 50.
        assert_eq!(hit_rate_recovery_secs(&t, 20, 0.9, 3), Some(30));
    }

    #[test]
    fn hit_rate_recovery_none_when_never_restored() {
        let t = tl(|s| if s < 20 { 0.95 } else { 0.5 });
        assert_eq!(hit_rate_recovery_secs(&t, 20, 0.9, 5), None);
    }

    #[test]
    fn hit_rate_recovery_immediate_when_never_degraded() {
        let t = tl(|_| 0.95);
        assert_eq!(hit_rate_recovery_secs(&t, 20, 0.9, 5), Some(0));
    }

    #[test]
    fn timeline_buckets_by_second() {
        let mut rec = TimelineRecorder::new();
        rec.record_request(SimTime::from_millis(0), 1.0, 1, 1);
        rec.record_request(SimTime::from_millis(999), 2.0, 0, 1);
        rec.record_request(SimTime::from_millis(1000), 3.0, 1, 1);
        let tl = rec.finish();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].requests, 2);
        assert_eq!(tl[0].hit_rate, 0.5);
        assert_eq!(tl[1].requests, 1);
    }

    #[test]
    fn timeline_handles_out_of_order_completions() {
        let mut rec = TimelineRecorder::new();
        rec.record_request(SimTime::from_secs(0), 1.0, 1, 1);
        rec.record_request(SimTime::from_secs(2), 9.0, 1, 1);
        rec.record_request(SimTime::from_millis(500), 2.0, 0, 1);
        let tl = rec.finish();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].requests, 2);
    }

    #[test]
    fn timeline_idle_hit_rate_is_one() {
        let mut rec = TimelineRecorder::new();
        rec.record_request(SimTime::ZERO, 1.0, 0, 0);
        let tl = rec.finish();
        assert_eq!(tl[0].hit_rate, 1.0);
    }

    #[test]
    fn degradation_summary_basic() {
        let tl: Vec<TimelinePoint> = (0..10)
            .map(|s| TimelinePoint {
                second: s,
                hit_rate: 1.0,
                p95_ms: if (3..6).contains(&s) { 100.0 } else { 5.0 },
                mean_ms: 5.0,
                requests: 10,
            })
            .collect();
        let d = degradation_summary(&tl, 3, 10.0);
        assert_eq!(d.peak_p95_ms, 100.0);
        assert_eq!(d.restoration_secs, Some(3));
        assert!((d.pre_p95_ms - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degradation_never_restored() {
        let tl: Vec<TimelinePoint> = (0..5)
            .map(|s| TimelinePoint {
                second: s,
                hit_rate: 0.5,
                p95_ms: 100.0,
                mean_ms: 50.0,
                requests: 1,
            })
            .collect();
        let d = degradation_summary(&tl, 2, 10.0);
        assert_eq!(d.restoration_secs, None);
    }

    #[test]
    fn degradation_no_spike_restores_immediately() {
        let tl: Vec<TimelinePoint> = (0..5)
            .map(|s| TimelinePoint {
                second: s,
                hit_rate: 1.0,
                p95_ms: 5.0,
                mean_ms: 4.0,
                requests: 1,
            })
            .collect();
        let d = degradation_summary(&tl, 2, 10.0);
        assert_eq!(d.restoration_secs, Some(0));
    }
}
