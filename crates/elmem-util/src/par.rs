//! Deterministic indexed parallel map — the one concurrency primitive the
//! workspace uses.
//!
//! [`par_map_indexed`] runs a pure function over a slice on up to `jobs`
//! worker threads and returns the results **in input order**: workers pull
//! indices off a shared atomic cursor (so scheduling is nondeterministic),
//! but results are collected keyed by index and reassembled afterwards on
//! one thread. When every call is a pure function of `(index, item)`, the
//! returned vector — and anything formatted from it — is byte-identical
//! whatever `jobs` is. `jobs <= 1` (or a single item) takes a plain serial
//! path with no threads at all: the reference the determinism tests
//! compare against.
//!
//! Both the experiment sweep harness (`elmem-bench::sweep`) and the
//! migration planner (`elmem-core::migration`) are built on this.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count used by library-internal fan-outs (prefill, probe rounds)
/// when the caller doesn't pass one explicitly. `0` = unset.
static PAR_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Environment variable consulted by [`par_jobs`] when no explicit count
/// has been set — the same knob the bench sweep harness honors.
pub const PAR_JOBS_ENV: &str = "ELMEM_JOBS";

/// Sets the worker count returned by [`par_jobs`]. `jobs = 1` forces every
/// internal fan-out onto the serial reference path (the byte-identity
/// baseline); `0` resets to the env-var/core-count default.
pub fn set_par_jobs(jobs: usize) {
    PAR_JOBS.store(jobs, Ordering::Relaxed);
}

/// The worker count for library-internal fan-outs: the value installed by
/// [`set_par_jobs`], else `ELMEM_JOBS`, else the rayon pool size. Always
/// at least 1.
pub fn par_jobs() -> usize {
    let v = PAR_JOBS.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    if let Ok(s) = std::env::var(PAR_JOBS_ENV) {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    rayon::current_num_threads().max(1)
}

/// Runs `f` over every item, on up to `jobs` worker threads, returning
/// the results in item order.
///
/// `f` must be a pure function of `(index, item)` for the parallel run to
/// be byte-identical to the serial one; the helper guarantees only the
/// *ordering* (results keyed by index, reassembled in input order).
///
/// # Panics
///
/// Propagates a panic from any item's call.
pub fn par_map_indexed<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, c)| f(i, c)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
    rayon::scope(|s| {
        for _ in 0..jobs.min(items.len()) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move |_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                tx.send((i, r)).expect("collector outlives workers");
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in rx {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("item {i} produced no result")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_in_order() {
        let items: Vec<u64> = (0..32).collect();
        let work = |_: usize, &s: &u64| {
            (0..5_000u64).fold(s, |acc, i| {
                acc.wrapping_mul(6364136223846793005).wrapping_add(i)
            })
        };
        let serial = par_map_indexed(1, &items, work);
        for jobs in [2, 3, 8] {
            assert_eq!(serial, par_map_indexed(jobs, &items, work), "jobs={jobs}");
        }
    }

    #[test]
    fn call_gets_matching_index() {
        let items: Vec<u64> = (100..120).collect();
        let out = par_map_indexed(4, &items, |i, &c| (i, c));
        for (i, (idx, c)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*c, items[i]);
        }
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<u64> = par_map_indexed(8, &[], |_, &c: &u64| c);
        assert!(out.is_empty());
        assert_eq!(par_map_indexed(8, &[9u64], |_, &c| c * 2), vec![18]);
    }
}
