//! A minimal JSON reader for replaying committed fixtures.
//!
//! The workspace *writes* JSON by hand everywhere (telemetry dumps, bench
//! results) so that output is byte-stable across platforms; this module is
//! the matching *reader*, used by the chaos engine to parse minimized
//! failing schedules back into plans. It is deliberately small: objects,
//! arrays, strings (with the escapes our writers emit), numbers, booleans
//! and null — no streaming, no arbitrary-precision arithmetic.
//!
//! Numbers keep their source text ([`JsonValue::Number`] stores the raw
//! token) so `u64` values above 2^53 survive a parse → reserialize cycle
//! bit-exactly, and `f64` fields written with Rust's shortest-round-trip
//! `Display` read back as the identical bit pattern.
//!
//! # Example
//!
//! ```
//! use elmem_util::json::JsonValue;
//!
//! let v = JsonValue::parse("{\"seed\": 42, \"on\": true}").unwrap();
//! assert_eq!(v.get("seed").and_then(JsonValue::as_u64), Some(42));
//! assert_eq!(v.get("on").and_then(JsonValue::as_bool), Some(true));
//! ```

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source token for lossless round-trips.
    Number(String),
    /// A string (escapes already decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Looks up a key in an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number parsed as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", want as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected '{}' at byte {}", *c as char, *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected '{word}' at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number token");
    // Validate up front so a bad token fails at parse time, not at access.
    token
        .parse::<f64>()
        .map_err(|_| format!("invalid number '{token}' at byte {start}"))?;
    Ok(JsonValue::Number(token.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let ch_len = utf8_len(c);
                let chunk = bytes
                    .get(*pos..*pos + ch_len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or_else(|| format!("invalid UTF-8 at byte {}", *pos))?;
                out.push_str(chunk);
                *pos += ch_len;
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect_byte(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(
            JsonValue::parse("\"hi\\n\"").unwrap(),
            JsonValue::String("hi\n".to_string())
        );
    }

    #[test]
    fn numbers_keep_full_u64_precision() {
        let big = u64::MAX;
        let v = JsonValue::parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn floats_round_trip_through_display() {
        for x in [0.1f64, 1.0 / 3.0, 2.5e-8, f64::MAX] {
            let v = JsonValue::parse(&format!("{x}")).unwrap();
            assert_eq!(v.as_f64(), Some(x));
            // The token text itself is preserved.
            assert_eq!(v, JsonValue::Number(format!("{x}")));
        }
    }

    #[test]
    fn objects_and_arrays_nest() {
        let v = JsonValue::parse("{\"a\": [1, 2, {\"b\": \"c\"}], \"d\": -3.5}").unwrap();
        let arr = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b").and_then(JsonValue::as_str), Some("c"));
        assert_eq!(v.get("d").and_then(JsonValue::as_f64), Some(-3.5));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn unicode_escapes_and_raw_utf8() {
        assert_eq!(JsonValue::parse("\"\\u00e9\"").unwrap().as_str(), Some("é"));
        assert_eq!(JsonValue::parse("\"é\"").unwrap().as_str(), Some("é"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
        assert!(JsonValue::parse("\"open").is_err());
        assert!(JsonValue::parse("nul").is_err());
        assert!(JsonValue::parse("--5").is_err());
    }

    #[test]
    fn whitespace_everywhere_is_fine() {
        let v = JsonValue::parse(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_array).unwrap().len(), 2);
    }
}
