//! Byte quantities.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A number of bytes (memory capacity, value size, transfer volume).
///
/// Memcached divides its memory into 1 MB pages ([`ByteSize::PAGE`]), so that
/// constant lives here too.
///
/// # Example
///
/// ```
/// use elmem_util::ByteSize;
///
/// let cap = ByteSize::from_gib(4);
/// assert_eq!(cap / ByteSize::PAGE, 4 * 1024);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);
    /// A Memcached memory page: 1 MB (§II-A of the paper).
    pub const PAGE: ByteSize = ByteSize(1 << 20);

    /// Creates a size from bytes.
    pub const fn from_bytes(b: u64) -> Self {
        ByteSize(b)
    }

    /// Creates a size from kibibytes.
    pub const fn from_kib(k: u64) -> Self {
        ByteSize(k << 10)
    }

    /// Creates a size from mebibytes.
    pub const fn from_mib(m: u64) -> Self {
        ByteSize(m << 20)
    }

    /// Creates a size from gibibytes.
    pub const fn from_gib(g: u64) -> Self {
        ByteSize(g << 30)
    }

    /// The raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The byte count as `f64` (for rate arithmetic).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// Number of whole 1 MB pages needed to hold this many bytes (rounds up).
    ///
    /// ```
    /// use elmem_util::ByteSize;
    /// assert_eq!(ByteSize::from_bytes(1).pages_ceil(), 1);
    /// assert_eq!(ByteSize::from_mib(2).pages_ceil(), 2);
    /// ```
    pub fn pages_ceil(self) -> u64 {
        self.0.div_ceil(Self::PAGE.0)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

/// Integer division: how many times `rhs` fits into `self` (truncated).
impl Div<ByteSize> for ByteSize {
    type Output = u64;
    fn div(self, rhs: ByteSize) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        ByteSize(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: u64 = 1 << 10;
        const MIB: u64 = 1 << 20;
        const GIB: u64 = 1 << 30;
        if self.0 >= GIB {
            write!(f, "{:.2}GiB", self.0 as f64 / GIB as f64)
        } else if self.0 >= MIB {
            write!(f, "{:.2}MiB", self.0 as f64 / MIB as f64)
        } else if self.0 >= KIB {
            write!(f, "{:.2}KiB", self.0 as f64 / KIB as f64)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(ByteSize::from_kib(1).as_u64(), 1024);
        assert_eq!(ByteSize::from_mib(1).as_u64(), 1 << 20);
        assert_eq!(ByteSize::from_gib(1).as_u64(), 1 << 30);
    }

    #[test]
    fn page_is_one_mib() {
        assert_eq!(ByteSize::PAGE, ByteSize::from_mib(1));
    }

    #[test]
    fn pages_ceil_rounds_up() {
        assert_eq!(ByteSize::ZERO.pages_ceil(), 0);
        assert_eq!(ByteSize(1).pages_ceil(), 1);
        assert_eq!(ByteSize::PAGE.pages_ceil(), 1);
        assert_eq!((ByteSize::PAGE + ByteSize(1)).pages_ceil(), 2);
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: ByteSize = [ByteSize(1), ByteSize(2), ByteSize(3)].into_iter().sum();
        assert_eq!(total, ByteSize(6));
        assert_eq!(ByteSize(10) - ByteSize(4), ByteSize(6));
        assert_eq!(ByteSize(10).saturating_sub(ByteSize(40)), ByteSize::ZERO);
        assert_eq!(ByteSize(3) * 4, ByteSize(12));
        assert_eq!(ByteSize::from_mib(4) / ByteSize::PAGE, 4);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteSize(512).to_string(), "512B");
        assert_eq!(ByteSize::from_kib(2).to_string(), "2.00KiB");
        assert_eq!(ByteSize::from_mib(3).to_string(), "3.00MiB");
        assert_eq!(ByteSize::from_gib(4).to_string(), "4.00GiB");
        assert_eq!(ByteSize::ZERO.to_string(), "0B");
    }
}
